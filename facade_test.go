package power8

// Tests of the public facade: everything a downstream user can reach
// without internal imports must work end to end.

import (
	"math"
	"testing"
)

func TestFacadeGraphPipeline(t *testing.T) {
	g := NewRMAT(10, 3, true)
	if g.Rows != 1024 {
		t.Fatalf("vertices = %d", g.Rows)
	}
	st := AllPairsJaccard(g, 0, nil)
	if st.Pairs == 0 {
		t.Fatal("no similar pairs")
	}
	tk := NewJaccardTopK(5)
	AllPairsJaccard(g, 0, tk.Emit)
	if got := tk.Pairs(); len(got) != 5 || got[0].Similarity <= 0 {
		t.Fatalf("top pairs = %v", got)
	}

	x := make([]float64, g.Cols)
	y := make([]float64, g.Rows)
	for i := range x {
		x[i] = 1
	}
	SpMV(y, g, x, 0)
	ts := NewTwoScan(g, 256)
	y2 := make([]float64, g.Rows)
	ts.Multiply(y2, x, 0)
	for i := range y {
		if math.Abs(y[i]-y2[i]) > 1e-9 {
			t.Fatalf("facade SpMV engines disagree at %d", i)
		}
	}
	ranks, _ := PageRank(NewRMAT(9, 1, false), 0.85, 1e-9, 100, 0)
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-7 {
		t.Errorf("PageRank mass %v", sum)
	}
}

func TestFacadeMatrixSuite(t *testing.T) {
	suite := MatrixSuite()
	if len(suite) < 10 || suite[0].Name != "Dense" {
		t.Fatalf("suite = %d entries", len(suite))
	}
	small := suite[0]
	small.N, small.NNZ = 128, 128*128
	m := GenerateMatrix(small, 1)
	if m.NNZ() != 128*128 {
		t.Errorf("generated nnz = %d", m.NNZ())
	}
}

func TestFacadeHF(t *testing.T) {
	specs := TableVMolecules()
	if len(specs) != 5 {
		t.Fatalf("molecules = %d", len(specs))
	}
	mol := specs[3].Scaled(40).Build()
	res, err := RunHF(mol, HFConfig{Mode: HFMem, UseDIIS: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Energy >= 0 {
		t.Errorf("SCF result: converged=%v E=%v", res.Converged, res.Energy)
	}
	rows := ProjectTableVI(0)
	if len(rows) != 5 || rows[1].Speedup <= 1 {
		t.Errorf("projection rows = %v", rows)
	}
}

func TestFacadeRoofline(t *testing.T) {
	spec := E870Spec()
	main := RooflineFor(spec)
	wo := WriteOnlyRoofline(spec)
	if main.BalancePoint() >= 1.3 || main.BalancePoint() <= 1.1 {
		t.Errorf("balance = %v", main.BalancePoint())
	}
	if wo.Attainable(1).GFs() >= main.Attainable(1).GFs() {
		t.Error("write-only ceiling not below the main roof")
	}
	if len(RooflineKernels()) != 4 {
		t.Error("kernel set wrong")
	}
}

func TestFacadeWalkerAndAblations(t *testing.T) {
	m := NewE870()
	w := m.NewWalker(WalkerConfig{DisablePrefetch: true})
	if lat := w.Access(0); lat < 90 {
		t.Errorf("cold access latency %v ns", lat)
	}
	v := AblateVictimL3(m)
	if v.Factor() <= 1 {
		t.Errorf("victim L3 factor %v", v.Factor())
	}
	r := AblateInterGroupRouting(E870Spec())
	if r.With <= r.Without {
		t.Error("routing ablation inverted")
	}
}
