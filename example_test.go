package power8_test

import (
	"fmt"

	power8 "repro"
)

// The machine model answers the paper's headline questions directly.
func Example() {
	m := power8.NewE870()
	fmt.Printf("balance: %.2f FLOP/B\n", m.Spec.Balance())
	fmt.Printf("2:1 STREAM: %v\n", m.Mem.SystemStream(2.0/3))
	fmt.Printf("cross-group latency: %.0f ns\n", m.DemandLatencyNs(0, 5))
	// Output:
	// balance: 1.21 FLOP/B
	// 2:1 STREAM: 1472.7 GB/s
	// cross-group latency: 235 ns
}

// Every table and figure of the paper is a named experiment.
func ExampleRun() {
	m := power8.NewE870()
	rep, err := power8.Run("figure9", m, true)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Lines[0])
	// Output:
	// peak compute: 2227.2 GFLOP/s   peak bandwidth: 1843.2 GB/s   balance point: 1.21 FLOP/B
}

// The roofline model bounds a kernel's attainable performance.
func ExampleRooflineFor() {
	main := power8.RooflineFor(power8.E870Spec())
	for _, k := range power8.RooflineKernels() {
		fmt.Printf("%-8s %6.0f GFLOP/s\n", k.Name, main.Attainable(k.OI).GFs())
	}
	// Output:
	// SpMV        307 GFLOP/s
	// Stencil     922 GFLOP/s
	// LBMHD      1843 GFLOP/s
	// 3D FFT     2227 GFLOP/s
}

// The application kernels run for real; here the Jaccard output-size
// phenomenon that motivates large-memory SMPs.
func ExampleAllPairsJaccard() {
	g := power8.NewRMAT(10, 7, true)
	st := power8.AllPairsJaccard(g, 1, nil)
	fmt.Printf("output is %.0fx the input\n",
		float64(st.OutputBytes)/float64(st.InputBytes()))
	// Output:
	// output is 14x the input
}

// Projections reach the scales the paper ran on 4 TB of memory.
func ExampleProjectTableVI() {
	rows := power8.ProjectTableVI(0)
	r := rows[1] // graphene-252, a cross-validated prediction
	fmt.Printf("%s: HF-Mem %.2fx faster than HF-Comp\n", r.Molecule, r.Speedup)
	// Output:
	// graphene-252: HF-Mem 6.57x faster than HF-Comp
}
