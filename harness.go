package power8

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// FaultPlan is a deterministic RAS degradation plan; see internal/fault
// for the event taxonomy, the Parse grammar and the canned plans.
type FaultPlan = fault.Plan

// FaultExperiments returns the degradation suite: bandwidth-vs-fault
// sweeps and a healthy-vs-degraded comparison driven by a FaultPlan.
// It is separate from Experiments() because a degraded machine fails
// the paper suite's healthy-system checks by construction.
func FaultExperiments() []Experiment { return experiments.DegradationSuite() }

// RunOptions configures a hardened suite run. The zero value runs the
// suite the way RunAll always has: all CPUs, no instrumentation, no
// watchdog, no retries.
type RunOptions struct {
	// Quick shrinks working sets and scales for fast runs.
	Quick bool
	// Workers caps the run's goroutines; <= 0 means runtime.NumCPU().
	Workers int
	// Stats, when non-nil, instruments the run: every experiment gets a
	// child scope keyed by its id, and the harness's own counters
	// (panics recovered, watchdog trips, cancellations, retries) land
	// under a "harness" scope.
	Stats *StatsRegistry
	// EventBudget bounds each experiment attempt: every simulated event
	// (DES dispatch or walker access) charges one unit, and exhaustion
	// aborts the experiment with a failed report instead of hanging the
	// suite. 0 means unlimited.
	EventBudget uint64
	// Cancel, when non-nil, aborts the run when closed: running
	// experiments trip at their next budget poll, experiments that have
	// not started return cancelled reports immediately.
	Cancel <-chan struct{}
	// Retries re-runs a failed experiment up to this many extra times —
	// but only experiments marked Retryable; deterministic model
	// experiments would fail identically and are never retried.
	Retries int
	// RetryBackoff is the pause before the first retry; it doubles on
	// each subsequent attempt (deterministic, no jitter).
	RetryBackoff time.Duration
	// Faults selects the degradation plan for the fault-suite
	// experiments (nil falls back to their canned default). The paper
	// suite ignores it.
	Faults *FaultPlan
	// Shards is the DES shard count for the Figure-4-class simulations:
	// 0 (the default) auto-picks from GOMAXPROCS, 1 forces the
	// sequential merged engine, and larger divisors of the socket count
	// run that many parallel shard workers. Sharding is a wall-time
	// knob only — every legal value yields bit-identical reports.
	Shards int
	// Cache, when non-nil, memoizes the run: completed reports are
	// served from (and stored into) the content-addressed result cache,
	// and fault-plan derivation inside the deg-* experiments is
	// deduplicated and reused. FAILED reports are never stored. Report
	// caching is bypassed when Stats is non-nil — counters describe the
	// execution that actually happened — but derivation memoization
	// stays on. Like Shards, the cache is a wall-time knob only: warm
	// and cold runs return the same bits.
	Cache *SuiteCache
	// OnReport, when non-nil, is called once per experiment as its
	// report becomes final (after the retry loop and the cache layer),
	// from the worker goroutine that produced it and in completion
	// order — the returned slice is still in suite order. index is the
	// experiment's position in the suite; fromCache reports whether the
	// result was served from the suite cache rather than executed. p8d
	// uses it to stream per-experiment progress and to attribute
	// warm-vs-cold provenance; the callback must be safe for concurrent
	// calls when Workers > 1.
	OnReport func(index int, rep *Report, fromCache bool)
}

// RunSuite executes a set of experiments against one machine under the
// hardened harness contract: every experiment runs isolated (a panic
// becomes that experiment's failed report, the rest of the suite is
// unaffected), optionally watched (event budget, cancellation) and
// optionally retried. Reports come back in suite order regardless of
// completion order, one per experiment, always.
func RunSuite(suite []Experiment, m *Machine, opts RunOptions) []*Report {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// runtime.MemStats is process-global: allocation deltas are only
	// attributable on sequential runs.
	recordAllocs := workers == 1
	h := opts.Stats.Child("harness")
	broker := newCancelBroker()
	if opts.Cancel != nil {
		stop := broker.watch(opts.Cancel)
		defer stop()
	}
	return parallel.Map(workers, suite, func(i int, e Experiment) *Report {
		rep, fromCache := runHardened(e, m, opts, h, broker, recordAllocs)
		if opts.OnReport != nil {
			opts.OnReport(i, rep, fromCache)
		}
		return rep
	})
}

// runHardened serves one experiment through the result cache when one
// is configured (and the run is uninstrumented), falling back to the
// attempt loop on a miss; without a cache it is the attempt loop. The
// second return reports whether the cache supplied the report.
func runHardened(e Experiment, m *Machine, opts RunOptions, h *obs.Registry, broker *cancelBroker, recordAllocs bool) (*Report, bool) {
	run := func() *Report { return runAttempts(e, m, opts, h, broker, recordAllocs) }
	if opts.Cache == nil || opts.Stats != nil {
		return run(), false
	}
	return opts.Cache.lookupOrRun(e, m, opts, run)
}

// runAttempts is one experiment's attempt loop: run, and for retryable
// experiments re-run failures up to the retry bound with doubling
// backoff.
func runAttempts(e Experiment, m *Machine, opts RunOptions, h *obs.Registry, broker *cancelBroker, recordAllocs bool) *Report {
	attempts := 1
	if e.Retryable && opts.Retries > 0 {
		attempts += opts.Retries
	}
	var rep *Report
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			h.Counter("retries").Inc()
			if opts.RetryBackoff > 0 {
				time.Sleep(opts.RetryBackoff << (attempt - 1))
			}
		}
		rep = runAttempt(e, m, opts, h, broker, recordAllocs)
		if !rep.Failed() {
			break
		}
	}
	return rep
}

// runAttempt executes one isolated attempt with a fresh watchdog
// budget and its own registry scope.
func runAttempt(e Experiment, m *Machine, opts RunOptions, h *obs.Registry, broker *cancelBroker, recordAllocs bool) *Report {
	var budget *engine.Budget
	if opts.EventBudget > 0 || opts.Cancel != nil {
		budget = engine.NewBudget(opts.EventBudget)
		if !broker.add(budget) {
			h.Counter("cancellations").Inc()
			return &Report{ID: e.ID, Title: e.Title, Err: engine.Trip{Cancelled: true}.Error()}
		}
	}
	scope := opts.Stats.Child(e.ID) // nil Stats -> nil scope: uninstrumented
	var m0 runtime.MemStats
	if opts.Stats != nil && recordAllocs {
		runtime.ReadMemStats(&m0)
	}
	start := time.Now()
	rep := safeRun(e, &experiments.Context{
		Machine: m,
		Quick:   opts.Quick,
		Obs:     scope,
		Budget:  budget,
		Faults:  opts.Faults,
		Shards:  opts.Shards,
		Deriver: opts.Cache.Deriver(),
	}, h)
	if opts.Stats != nil {
		hs := scope.Child("harness")
		hs.Distribution("wall_ns").Observe(time.Since(start).Nanoseconds())
		if recordAllocs {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			hs.Gauge("allocs").Set(int64(m1.Mallocs - m0.Mallocs))
		}
		s := scope.Snapshot()
		rep.Stats = &s
	}
	return rep
}

// safeRun executes one experiment attempt, converting panics into
// failed reports so one broken experiment cannot take down the suite: a
// tripped watchdog (engine.Trip) becomes a deterministic one-line
// diagnostic, any other panic keeps its value and stack. This wrapper
// is the only place in the repository allowed to call recover — the
// p8lint isolation analyzer enforces that panics elsewhere stay fatal
// instead of being silently swallowed.
//
//p8:isolation
func safeRun(e Experiment, ctx *experiments.Context, h *obs.Registry) (rep *Report) {
	defer func() {
		cause := recover()
		if cause == nil {
			return
		}
		rep = &Report{ID: e.ID, Title: e.Title}
		switch t := cause.(type) {
		case engine.Trip:
			if t.Cancelled {
				h.Counter("cancellations").Inc()
			} else {
				h.Counter("watchdog_trips").Inc()
			}
			rep.Err = t.Error()
		default:
			h.Counter("panics_recovered").Inc()
			rep.Err = fmt.Sprintf("panic: %v\n%s", cause, debug.Stack())
		}
	}()
	return e.Run(ctx)
}

// cancelBroker fans one cancellation signal out to every live budget
// and turns not-yet-started experiments away.
type cancelBroker struct {
	mu        sync.Mutex
	cancelled bool
	budgets   []*engine.Budget
}

func newCancelBroker() *cancelBroker { return &cancelBroker{} }

// add registers a budget for cancellation fan-out; it reports false —
// and registers nothing — when the run is already cancelled.
func (b *cancelBroker) add(bud *engine.Budget) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cancelled {
		return false
	}
	b.budgets = append(b.budgets, bud)
	return true
}

// cancelAll cancels every registered budget and every future add.
func (b *cancelBroker) cancelAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cancelled = true
	for _, bud := range b.budgets {
		bud.Cancel()
	}
	b.budgets = nil
}

// watch cancels the broker when cancel closes; the returned stop
// function ends the watch (idempotent with the cancellation itself).
func (b *cancelBroker) watch(cancel <-chan struct{}) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-cancel:
			b.cancelAll()
		case <-done:
		}
	}()
	return func() { close(done) }
}
