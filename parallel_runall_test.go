package power8

// Determinism and safety tests for the parallel experiment harness: a
// concurrent RunAll must deliver the reports in the paper's order with
// the same content a sequential run produces. Run under -race this also
// exercises the Machine read-only-after-construction contract.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// hostMeasured marks the experiments whose report lines embed host
// wall-clock measurements (real kernel runs). Those lines legitimately
// differ between any two runs — parallel or not — so the byte-identity
// requirement applies to everything else, and the host-measured reports
// are compared structurally (ids, titles, notes, line counts, check
// names).
var hostMeasured = map[string]bool{
	"figure9": true, "figure10": true, "figure11": true, "figure12": true,
	"table6": true,
}

func TestParallelRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	m := NewE870()
	seq := RunAllParallel(m, true, 1)
	par := RunAllParallel(m, true, 8)

	if len(seq) != len(par) {
		t.Fatalf("sequential produced %d reports, parallel %d", len(seq), len(par))
	}
	wantOrder := make([]string, 0, len(seq))
	for _, e := range Experiments() {
		wantOrder = append(wantOrder, e.ID)
	}
	for i, rep := range par {
		if rep.ID != wantOrder[i] {
			t.Fatalf("parallel report %d is %q, want paper order %q", i, rep.ID, wantOrder[i])
		}
	}

	for i := range seq {
		s, p := seq[i], par[i]
		if s.ID != p.ID || s.Title != p.Title {
			t.Errorf("report %d: header (%q, %q) vs (%q, %q)", i, s.ID, s.Title, p.ID, p.Title)
			continue
		}
		if !reflect.DeepEqual(s.Notes, p.Notes) {
			t.Errorf("%s: notes differ:\n  seq: %v\n  par: %v", s.ID, s.Notes, p.Notes)
		}
		if len(s.Lines) != len(p.Lines) {
			t.Errorf("%s: %d lines sequential vs %d parallel", s.ID, len(s.Lines), len(p.Lines))
			continue
		}
		if names(s.Checks) != names(p.Checks) {
			t.Errorf("%s: check names differ:\n  seq: %s\n  par: %s",
				s.ID, names(s.Checks), names(p.Checks))
		}
		if hostMeasured[s.ID] {
			continue
		}
		// Fully simulated experiment: byte-identical output required.
		if !reflect.DeepEqual(s.Lines, p.Lines) {
			t.Errorf("%s: lines differ between sequential and parallel runs", s.ID)
		}
		for j := range s.Checks {
			if s.Checks[j].String() != p.Checks[j].String() {
				t.Errorf("%s: check %d differs:\n  seq: %s\n  par: %s",
					s.ID, j, s.Checks[j].String(), p.Checks[j].String())
			}
		}
	}
}

// TestHostMeasuredListIsCurrent fails when an experiment id in the
// exemption list above disappears from the registry, so the list cannot
// silently rot.
func TestHostMeasuredListIsCurrent(t *testing.T) {
	known := map[string]bool{}
	for _, e := range Experiments() {
		known[e.ID] = true
	}
	for id := range hostMeasured {
		if !known[id] {
			t.Errorf("hostMeasured lists unknown experiment %q", id)
		}
	}
}

func names(checks []experiments.Check) string {
	var b strings.Builder
	for _, c := range checks {
		b.WriteString(c.Name)
		b.WriteString(";")
	}
	return b.String()
}
