package power8

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section. Each benchmark regenerates its
// artifact through the experiment registry (quick mode bounds working
// sets so a full `go test -bench=. -benchmem` stays tractable) and
// reports the artifact's headline quantity as a custom metric, so a
// bench run doubles as a reproduction summary:
//
//	go test -bench=. -benchmem
//
// Host-kernel benchmarks for the real STREAM/SpMV/Jaccard/HF code paths
// live alongside in hostkernels_bench_test.go.

import (
	"strings"
	"testing"
)

// benchMachine is shared across benchmarks; the model is stateless
// between experiments.
var benchMachine = NewE870()

// runExperiment drives one registry entry b.N times and extracts a
// headline metric from its checks.
func runExperiment(b *testing.B, id string, metricCheck, metricUnit string) {
	b.Helper()
	var rep *Report
	for i := 0; i < b.N; i++ {
		rep = MustRun(id, benchMachine, true)
	}
	if rep == nil || !rep.Passed() {
		for _, c := range rep.Checks {
			if !c.Pass() {
				b.Fatalf("%s reproduction check failed: %s", id, c.String())
			}
		}
	}
	if metricCheck == "" {
		return
	}
	for _, c := range rep.Checks {
		if strings.Contains(c.Name, metricCheck) {
			b.ReportMetric(c.Got, metricUnit)
			return
		}
	}
	b.Fatalf("%s: metric check %q not found", id, metricCheck)
}

func BenchmarkTable1_PowerComparison(b *testing.B) {
	runExperiment(b, "table1", "POWER8 threads/core", "threads/core")
}

func BenchmarkTable2_E870Characteristics(b *testing.B) {
	runExperiment(b, "table2", "peak memory GB/s", "GB/s-peak")
}

func BenchmarkFigure1_Topology(b *testing.B) {
	runExperiment(b, "figure1", "X-bus links", "links")
}

func BenchmarkFigure2_LatencyCurve(b *testing.B) {
	runExperiment(b, "figure2", "L3 plateau ns", "ns-L3")
}

func BenchmarkTable3_StreamRatios(b *testing.B) {
	runExperiment(b, "table3", "bandwidth 2:1", "GB/s-2:1")
}

func BenchmarkFigure3_BandwidthScaling(b *testing.B) {
	runExperiment(b, "figure3", "single-chip peak", "GB/s-chip")
}

func BenchmarkTable4_SMPInterconnect(b *testing.B) {
	runExperiment(b, "table4", "X aggregate GB/s", "GB/s-xbus")
}

func BenchmarkFigure4_RandomAccess(b *testing.B) {
	runExperiment(b, "figure4", "peak random bandwidth", "GB/s-random")
}

func BenchmarkFigure5_FMAThroughput(b *testing.B) {
	runExperiment(b, "figure5", "chains needed for peak", "chains")
}

func BenchmarkFigure6_PrefetchDepth(b *testing.B) {
	runExperiment(b, "figure6", "deepest/none latency improvement", "x-improvement")
}

func BenchmarkFigure7_StrideN(b *testing.B) {
	runExperiment(b, "figure7", "enabled latency at deepest", "ns-stride")
}

func BenchmarkFigure8_DCBT(b *testing.B) {
	runExperiment(b, "figure8", "DCBT gain on 1 KiB blocks", "x-gain")
}

func BenchmarkFigure9_Roofline(b *testing.B) {
	runExperiment(b, "figure9", "LBMHD bound GFLOP/s (red diamond)", "GFLOPs-LBMHD")
}

func BenchmarkFigure10_Jaccard(b *testing.B) {
	runExperiment(b, "figure10", "projected time growth per scale", "x-per-scale")
}

func BenchmarkFigure11_SpMVSuite(b *testing.B) {
	runExperiment(b, "figure11", "Dense is the reference peak", "GFLOPs-dense")
}

func BenchmarkFigure12_GraphSpMV(b *testing.B) {
	runExperiment(b, "figure12", "performance declines from 24 to 31", "x-decline")
}

func BenchmarkTable5_MolecularSystems(b *testing.B) {
	runExperiment(b, "table5", "", "")
}

func BenchmarkTable6_HartreeFock(b *testing.B) {
	runExperiment(b, "table6", "", "")
}

// BenchmarkFullReproduction runs every experiment once per iteration —
// the whole paper in one number. RunAll fans the experiments out across
// the host's CPUs; the sequential variant below is the one-worker
// baseline, so comparing the two benches measures the harness's own
// parallel speedup on the current host.
func BenchmarkFullReproduction(b *testing.B) {
	benchRunAll(b, 0)
}

// BenchmarkFullReproductionSequential is the single-worker baseline.
func BenchmarkFullReproductionSequential(b *testing.B) {
	benchRunAll(b, 1)
}

func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		reports := RunAllParallel(benchMachine, true, workers)
		passed := 0
		for _, r := range reports {
			if r.Passed() {
				passed++
			}
		}
		if passed != len(reports) {
			b.Fatalf("only %d/%d experiments passed", passed, len(reports))
		}
		b.ReportMetric(float64(passed), "experiments")
	}
}

// Guard against accidental registry drift: the per-artifact benchmarks
// above must cover the registry exactly.
func TestBenchmarkCoverage(t *testing.T) {
	covered := map[string]bool{
		"table1": true, "table2": true, "figure1": true, "figure2": true,
		"table3": true, "figure3": true, "table4": true, "figure4": true,
		"figure5": true, "figure6": true, "figure7": true, "figure8": true,
		"figure9": true, "figure10": true, "figure11": true, "figure12": true,
		"table5": true, "table6": true,
	}
	for _, e := range Experiments() {
		if !covered[e.ID] {
			t.Errorf("experiment %s has no benchmark", e.ID)
		}
		delete(covered, e.ID)
	}
	for id := range covered {
		t.Errorf("benchmark covers unknown experiment %s", id)
	}
}
