package power8

// Tests for content-addressed result memoization: warm runs serve
// bit-identical reports without re-executing, FAILED / tripped /
// cancelled reports never enter the cache, instrumented runs bypass
// report reuse, and the request key honours its inclusion contract.

import (
	"encoding/json"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// countingSuite builds a deterministic stub suite whose executions are
// observable — the unit-level stand-in for "did the cache re-run it?".
func countingSuite(runs *atomic.Int64) []Experiment {
	mk := func(id string) Experiment {
		return Experiment{ID: id, Title: "stub " + id, Run: func(ctx *experiments.Context) *experiments.Report {
			runs.Add(1)
			r := &experiments.Report{ID: id, Title: "stub " + id}
			r.Printf("quick=%v", ctx.Quick)
			r.CheckMin("always", 1, 0)
			return r
		}}
	}
	return []Experiment{mk("stub-a"), mk("stub-b"), mk("stub-c")}
}

func newTestCache(t *testing.T, opts CacheOptions) *SuiteCache {
	t.Helper()
	sc, err := NewSuiteCache(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestSuiteCacheWarmRun: the second identical RunSuite executes nothing
// and returns byte-identical reports.
func TestSuiteCacheWarmRun(t *testing.T) {
	var runs atomic.Int64
	suite := countingSuite(&runs)
	cache := newTestCache(t, CacheOptions{})
	m := NewE870()

	cold := RunSuite(suite, m, RunOptions{Workers: 2, Cache: cache})
	if got := runs.Load(); got != 3 {
		t.Fatalf("cold run executed %d experiments, want 3", got)
	}
	warm := RunSuite(suite, m, RunOptions{Workers: 2, Cache: cache})
	if got := runs.Load(); got != 3 {
		t.Fatalf("warm run re-executed experiments (total %d runs, want 3)", got)
	}
	for i := range cold {
		a, _ := json.Marshal(cold[i])
		b, _ := json.Marshal(warm[i])
		if string(a) != string(b) {
			t.Errorf("%s: warm report differs from cold:\n%s\n%s", cold[i].ID, a, b)
		}
	}
}

// TestSuiteCacheKeySensitivity: changing a key input (Quick) recomputes;
// repeating it hits again.
func TestSuiteCacheKeySensitivity(t *testing.T) {
	var runs atomic.Int64
	suite := countingSuite(&runs)
	cache := newTestCache(t, CacheOptions{})
	m := NewE870()

	RunSuite(suite, m, RunOptions{Workers: 1, Cache: cache})
	RunSuite(suite, m, RunOptions{Workers: 1, Quick: true, Cache: cache})
	if got := runs.Load(); got != 6 {
		t.Fatalf("quick-mode change did not recompute (%d runs, want 6)", got)
	}
	RunSuite(suite, m, RunOptions{Workers: 1, Quick: true, Cache: cache})
	if got := runs.Load(); got != 6 {
		t.Fatalf("repeated quick run recomputed (%d runs, want 6)", got)
	}
}

// TestRequestKeyShardCountExcluded is the PR-6 contract carried into the
// cache: sharded and sequential runs are bit-identical, so a report
// computed at any shard count must serve every other. Worker count,
// retry policy and event budget are equally excluded.
func TestRequestKeyShardCountExcluded(t *testing.T) {
	m := NewE870()
	e := Experiment{ID: "x"}
	base := requestKey(m, e, RunOptions{})
	same := []RunOptions{
		{Shards: 1}, {Shards: 8}, {Workers: 3}, {Retries: 2}, {EventBudget: 1 << 20},
	}
	for _, opts := range same {
		if requestKey(m, e, opts) != base {
			t.Errorf("options %+v changed the request key; they must not", opts)
		}
	}
	plan, err := fault.Parse("guard:0:1")
	if err != nil {
		t.Fatal(err)
	}
	diff := []RunOptions{{Quick: true}, {Faults: plan}}
	for _, opts := range diff {
		if requestKey(m, e, opts) == base {
			t.Errorf("options %+v did not change the request key; they must", opts)
		}
	}
	if requestKey(m, Experiment{ID: "y"}, RunOptions{}) == base {
		t.Error("experiment id is not in the request key")
	}
}

// TestSuiteCacheNeverStoresFailed: panics, watchdog trips and
// cancellations all produce FAILED reports, and none of them may be
// served to a later identical request.
func TestSuiteCacheNeverStoresFailed(t *testing.T) {
	m := NewE870()

	t.Run("panic", func(t *testing.T) {
		var runs atomic.Int64
		cache := newTestCache(t, CacheOptions{})
		e := Experiment{ID: "boom", Run: func(*experiments.Context) *experiments.Report {
			runs.Add(1)
			panic("injected")
		}}
		for i := 0; i < 2; i++ {
			rep := RunSuite([]Experiment{e}, m, RunOptions{Workers: 1, Cache: cache})[0]
			if !rep.Failed() {
				t.Fatal("sabotaged experiment did not fail")
			}
		}
		if got := runs.Load(); got != 2 {
			t.Errorf("failed report was served from cache (%d runs, want 2)", got)
		}
		if n := cache.Reports().Len(); n != 0 {
			t.Errorf("%d failed reports resident in cache, want 0", n)
		}
	})

	t.Run("watchdog", func(t *testing.T) {
		var runs atomic.Int64
		cache := newTestCache(t, CacheOptions{})
		e := Experiment{ID: "hang", Run: func(ctx *experiments.Context) *experiments.Report {
			runs.Add(1)
			for {
				ctx.Budget.Charge(1)
			}
		}}
		for i := 0; i < 2; i++ {
			rep := RunSuite([]Experiment{e}, m, RunOptions{Workers: 1, EventBudget: 100, Cache: cache})[0]
			if !rep.Failed() {
				t.Fatal("tripped experiment did not fail")
			}
		}
		if got := runs.Load(); got != 2 {
			t.Errorf("tripped report was served from cache (%d runs, want 2)", got)
		}
	})

	t.Run("cancelled", func(t *testing.T) {
		cache := newTestCache(t, CacheOptions{})
		cancelled := make(chan struct{})
		close(cancelled)
		e := Experiment{ID: "late", Run: func(ctx *experiments.Context) *experiments.Report {
			for {
				ctx.Budget.Charge(1)
			}
		}}
		rep := RunSuite([]Experiment{e}, m, RunOptions{Workers: 1, Cancel: cancelled, Cache: cache})[0]
		if !rep.Failed() {
			t.Fatal("cancelled experiment did not fail")
		}
		// The cancelled generation stored nothing; an uncancelled rerun
		// against the same cache computes fresh and succeeds.
		var runs atomic.Int64
		e.Run = func(*experiments.Context) *experiments.Report {
			runs.Add(1)
			return &experiments.Report{ID: "late"}
		}
		rep = RunSuite([]Experiment{e}, m, RunOptions{Workers: 1, Cache: cache})[0]
		if rep.Failed() || runs.Load() != 1 {
			t.Errorf("rerun after cancellation: failed=%v runs=%d, want a fresh success", rep.Failed(), runs.Load())
		}
	})
}

// TestSuiteCacheBypassedUnderStats: instrumented runs must re-execute —
// counters describe the run that happened — while uninstrumented runs
// against the same cache still hit.
func TestSuiteCacheBypassedUnderStats(t *testing.T) {
	var runs atomic.Int64
	suite := countingSuite(&runs)
	cache := newTestCache(t, CacheOptions{})
	m := NewE870()

	RunSuite(suite, m, RunOptions{Workers: 1, Cache: cache})
	RunSuite(suite, m, RunOptions{Workers: 1, Cache: cache, Stats: NewStatsRegistry("t")})
	if got := runs.Load(); got != 6 {
		t.Fatalf("instrumented run used the report cache (%d runs, want 6)", got)
	}
	RunSuite(suite, m, RunOptions{Workers: 1, Cache: cache})
	if got := runs.Load(); got != 6 {
		t.Fatalf("uninstrumented rerun missed the cache (%d runs, want 6)", got)
	}
}

// TestSuiteCacheRetryInteraction: with the cache wrapped around the
// attempt loop, a flaky-then-successful retryable experiment stores its
// final successful report — the next run hits without re-running.
func TestSuiteCacheRetryInteraction(t *testing.T) {
	var runs atomic.Int64
	cache := newTestCache(t, CacheOptions{})
	m := NewE870()
	e := Experiment{ID: "flaky", Retryable: true, Run: func(*experiments.Context) *experiments.Report {
		if runs.Add(1) == 1 {
			panic("transient")
		}
		return &experiments.Report{ID: "flaky"}
	}}
	rep := RunSuite([]Experiment{e}, m, RunOptions{Workers: 1, Retries: 2, Cache: cache})[0]
	if rep.Failed() {
		t.Fatalf("retry did not recover: %s", rep.Err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	rep = RunSuite([]Experiment{e}, m, RunOptions{Workers: 1, Retries: 2, Cache: cache})[0]
	if rep.Failed() || runs.Load() != 2 {
		t.Errorf("recovered report was not served warm (failed=%v, %d attempts)", rep.Failed(), runs.Load())
	}
}

// TestSuiteCacheDiskWarmProcess: a fresh SuiteCache over the same
// directory — a new process in miniature — serves the previous cache's
// reports without executing anything.
func TestSuiteCacheDiskWarmProcess(t *testing.T) {
	dir := t.TempDir()
	m := NewE870()
	var runs atomic.Int64
	suite := countingSuite(&runs)

	cold := newTestCache(t, CacheOptions{Dir: dir})
	first := RunSuite(suite, m, RunOptions{Workers: 1, Cache: cold})

	warm := newTestCache(t, CacheOptions{Dir: dir})
	second := RunSuite(suite, m, RunOptions{Workers: 1, Cache: warm})
	if got := runs.Load(); got != 3 {
		t.Fatalf("cross-cache warm run executed experiments (%d total runs, want 3)", got)
	}
	for i := range first {
		a, _ := json.Marshal(first[i])
		b, _ := json.Marshal(second[i])
		if string(a) != string(b) {
			t.Errorf("%s: disk-served report differs from computed", first[i].ID)
		}
	}
}

// TestFaultSuiteWarmIdentical runs the real degradation suite cold and
// warm through one cache and demands bit-identical reports — the
// end-to-end form of the warm-run contract, over experiments that
// exercise the memoized deriver and the sharded DES.
func TestFaultSuiteWarmIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick degradation suite")
	}
	cache := newTestCache(t, CacheOptions{})
	m := NewE870()
	opts := RunOptions{Quick: true, Workers: 2, Cache: cache}
	cold := RunSuite(FaultExperiments(), m, opts)
	warm := RunSuite(FaultExperiments(), m, opts)
	if len(cold) != len(warm) || len(cold) == 0 {
		t.Fatalf("report counts differ: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i].Failed() {
			t.Fatalf("%s failed cold: %s", cold[i].ID, cold[i].Err)
		}
		if !reflect.DeepEqual(cold[i].Lines, warm[i].Lines) {
			t.Errorf("%s: warm lines differ from cold", cold[i].ID)
		}
		if !reflect.DeepEqual(cold[i].Checks, warm[i].Checks) {
			t.Errorf("%s: warm checks differ from cold", cold[i].ID)
		}
	}
}

// TestDeriverSharedAcrossRuns: under -stats the report cache is
// bypassed but derivation memoization stays on — the second observed
// run derives nothing new.
func TestDeriverSharedAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick degradation suite")
	}
	reg := NewStatsRegistry("t")
	cache, err := NewSuiteCache(CacheOptions{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewE870()
	opts := RunOptions{Quick: true, Workers: 1, Cache: cache, Stats: reg}
	RunSuite(FaultExperiments(), m, opts)
	counters := func(name string) uint64 {
		for _, c := range reg.Child("memo").Child("derive").Snapshot().Counters {
			if c.Name == name {
				return c.Value
			}
		}
		return 0
	}
	missesAfterCold := counters("misses")
	if missesAfterCold == 0 {
		t.Fatal("degradation suite derived nothing through the deriver")
	}
	RunSuite(FaultExperiments(), m, opts)
	if got := counters("misses"); got != missesAfterCold {
		t.Errorf("second observed run re-derived machines: misses %d -> %d", missesAfterCold, got)
	}
	if counters("hits") == 0 {
		t.Error("second observed run recorded no derive hits")
	}
}
