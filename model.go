package power8

// Model-layer facade: roofline analysis, E870-scale projections and the
// design-choice ablation studies, re-exported for downstream users.

import (
	"repro/internal/ablation"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/roofline"
)

// Roofline is the Section IV performance model.
type Roofline = roofline.Model

// RooflineKernel is a named workload at an operational intensity.
type RooflineKernel = roofline.Kernel

// RooflineFor builds the main roofline of Figure 9 for a system.
func RooflineFor(spec *SystemSpec) Roofline { return roofline.ForSystem(spec) }

// WriteOnlyRoofline builds the dashed write-only ceiling of Figure 9.
func WriteOnlyRoofline(spec *SystemSpec) Roofline { return roofline.WriteOnly(spec) }

// RooflineKernels returns the four Figure 9 kernels (SpMV, Stencil,
// LBMHD, 3D FFT) at their conventional intensities.
func RooflineKernels() []RooflineKernel { return roofline.ScientificKernels() }

// MeasureStencil runs the executable 7-point 3D stencil (one of the
// Figure 9 kernels) on the host at grid edge n and returns its rate.
func MeasureStencil(n, threads, iters int) Rate { return kernels.MeasureStencil(n, threads, iters) }

// MeasureFFT3D runs the executable 3D FFT (one of the Figure 9 kernels)
// on the host at cube edge n (a power of two) and returns its rate.
func MeasureFFT3D(n, threads, iters int) Rate { return kernels.MeasureFFT3D(n, threads, iters) }

// Walker is the trace-driven latency simulator for one hardware thread.
type Walker = machine.Walker

// WalkerConfig configures a Walker.
type WalkerConfig = machine.WalkerConfig

// TableVIRow is one projected Hartree-Fock timing row.
type TableVIRow = perfmodel.TableVIRow

// ProjectTableVI projects every Table V molecule's Table VI row with
// stage costs calibrated on the molecule at anchorIdx (0 = alkane-842);
// all other rows are cross-validated predictions.
func ProjectTableVI(anchorIdx int) []TableVIRow { return perfmodel.ProjectTableVI(anchorIdx) }

// AblationComparison is one with/without design-choice result.
type AblationComparison = ablation.Comparison

// AblateVictimL3 measures what the NUCA lateral castout is worth.
func AblateVictimL3(m *Machine) AblationComparison { return ablation.VictimL3(m) }

// AblateInterGroupRouting measures what multi-route inter-group routing
// is worth.
func AblateInterGroupRouting(spec *SystemSpec) AblationComparison {
	return ablation.InterGroupRouting(spec)
}
