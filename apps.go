package power8

// Application-layer facade: the paper's Section V workloads, re-exported
// so downstream users of this module can run them without reaching into
// internal packages.

import (
	"repro/internal/graph"
	"repro/internal/hf"
	"repro/internal/jaccard"
	"repro/internal/spmv"
	"repro/internal/units"
)

// CSR is a sparse matrix in compressed sparse row form.
type CSR = graph.CSR

// COO is a triplet list for matrix assembly.
type COO = graph.COO

// RMATConfig parameterizes the R-MAT graph generator.
type RMATConfig = graph.RMATConfig

// MatrixProfile describes one synthetic matrix of the Figure 11 suite.
type MatrixProfile = graph.MatrixProfile

// NewRMAT generates a deduplicated R-MAT adjacency matrix with Graph500
// parameters at the given scale (the paper's Jaccard/SpMV workload).
func NewRMAT(scale int, seed uint64, undirected bool) *CSR {
	cfg := graph.DefaultRMAT(scale, seed)
	cfg.Undirected = undirected
	if undirected {
		cfg.EdgeFactor = 8 // mirrored to the paper's average degree 16
	}
	return graph.RMAT(cfg)
}

// MatrixSuite returns the Figure 11 matrix profiles (Dense plus the UF
// stand-ins); materialize one with GenerateMatrix.
func MatrixSuite() []MatrixProfile { return graph.Suite() }

// GenerateMatrix synthesizes a suite matrix deterministically.
func GenerateMatrix(p MatrixProfile, seed uint64) *CSR { return graph.Generate(p, seed) }

// SpMV computes y = A*x with the row-partitioned CSR kernel
// (Section V-B-1). threads <= 0 uses every CPU.
func SpMV(y []float64, a *CSR, x []float64, threads int) { spmv.CSR(y, a, x, threads) }

// TwoScan is the blocked scaled/reduce SpMV for scale-free graphs
// (Section V-B-2).
type TwoScan = spmv.TwoScan

// NewTwoScan blocks a matrix for the two-scan algorithm.
func NewTwoScan(a *CSR, blockSize int) *TwoScan { return spmv.NewTwoScan(a, blockSize) }

// PageRank runs power iteration over a directed adjacency matrix — one
// of the SpMV consumers the paper names.
func PageRank(g *CSR, damping, tol float64, maxIters, threads int) ([]float64, int) {
	return spmv.PageRank(g, damping, tol, maxIters, threads)
}

// JaccardStats summarizes an all-pairs similarity run.
type JaccardStats = jaccard.Stats

// JaccardEmit receives similar pairs; implementations must be safe for
// concurrent use.
type JaccardEmit = jaccard.Emit

// JaccardTopK collects the K most similar pairs concurrently.
type JaccardTopK = jaccard.TopK

// AllPairsJaccard computes the similarity of every vertex pair sharing a
// neighbor (Section V-A). A nil emit counts without materializing.
func AllPairsJaccard(g *CSR, threads int, emit JaccardEmit) JaccardStats {
	return jaccard.AllPairs(g, threads, emit)
}

// NewJaccardTopK returns a collector for the k most similar pairs; pass
// its Emit method to AllPairsJaccard.
func NewJaccardTopK(k int) *JaccardTopK { return jaccard.NewTopK(k) }

// Molecule is a nuclear geometry plus basis set for Hartree-Fock.
type Molecule = hf.Molecule

// MoleculeSpec identifies one Table V molecular system.
type MoleculeSpec = hf.MoleculeSpec

// HFConfig controls a self-consistent-field run.
type HFConfig = hf.Config

// HFResult summarizes an SCF run.
type HFResult = hf.Result

// The two ERI strategies Table VI compares.
const (
	HFComp = hf.HFComp // recompute integrals every iteration
	HFMem  = hf.HFMem  // precompute and store them (needs the memory)
)

// TableVMolecules returns the paper's five molecular systems; scale one
// down with its Scaled method for host-sized runs.
func TableVMolecules() []MoleculeSpec { return hf.TableV() }

// RunHF executes restricted Hartree-Fock on a molecule.
func RunHF(mol *Molecule, cfg HFConfig) (*HFResult, error) { return hf.Run(mol, cfg) }

// Bytes is a memory size; Bandwidth a data rate; Rate a FLOP/s
// throughput — the quantity types the model's answers use.
type (
	Bytes     = units.Bytes
	Bandwidth = units.Bandwidth
	Rate      = units.Rate
)
