package roofline

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/stats"
	"repro/internal/units"
)

// TestFigure9Headline verifies the Section IV numbers: 2,227 GFLOP/s and
// 1,843 GB/s give a balance of 1.2; LBMHD at OI 1 is bounded at 1,843
// GFLOP/s on the main roof and 614 GFLOP/s write-only.
func TestFigure9Headline(t *testing.T) {
	sys := arch.E870()
	m := ForSystem(sys)
	if !stats.Within(m.PeakCompute.GFs(), 2227, 0.001) {
		t.Errorf("peak compute = %v", m.PeakCompute)
	}
	if !stats.Within(m.PeakBandwidth.GBps(), 1843, 0.001) {
		t.Errorf("peak bandwidth = %v", m.PeakBandwidth)
	}
	if bp := m.BalancePoint(); math.Abs(bp-1.208) > 0.01 {
		t.Errorf("balance point = %v, want ~1.2", bp)
	}
	if got := m.Attainable(1.0).GFs(); !stats.Within(got, 1843, 0.001) {
		t.Errorf("LBMHD bound = %v GFLOP/s, want 1843 (red diamond)", got)
	}
	w := WriteOnly(sys)
	if got := w.Attainable(1.0).GFs(); !stats.Within(got, 614, 0.01) {
		t.Errorf("write-only LBMHD bound = %v, want 614 (red square)", got)
	}
	if w.PeakBandwidth.GBps() >= m.PeakBandwidth.GBps()/2 {
		t.Error("write-only bandwidth should be less than half the combined peak")
	}
}

func TestAttainablePiecewise(t *testing.T) {
	m := Model{PeakCompute: 1000e9, PeakBandwidth: 100e9}
	if got := m.Attainable(5).GFs(); got != 500 {
		t.Errorf("memory-bound region: %v, want 500", got)
	}
	if got := m.Attainable(10).GFs(); got != 1000 {
		t.Errorf("knee: %v, want 1000", got)
	}
	if got := m.Attainable(100).GFs(); got != 1000 {
		t.Errorf("compute-bound region: %v, want 1000", got)
	}
	if got := m.Attainable(0).GFs(); got != 0 {
		t.Errorf("OI 0: %v, want 0", got)
	}
}

func TestAttainablePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative OI did not panic")
		}
	}()
	Model{PeakCompute: 1, PeakBandwidth: 1}.Attainable(-1)
}

// TestKernelsAllMemoryBound checks Section IV's point: on the balanced
// E870, even kernels up to LBMHD-like intensity sit near the bandwidth
// roof, and all four named kernels are memory bound.
func TestKernelsAllMemoryBound(t *testing.T) {
	m := ForSystem(arch.E870())
	for _, k := range ScientificKernels() {
		if !m.MemoryBound(k.OI) && k.OI < m.BalancePoint() {
			t.Errorf("%s: inconsistent bound classification", k.Name)
		}
	}
	ks := ScientificKernels()
	if len(ks) != 4 {
		t.Fatalf("want 4 kernels, got %d", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i].OI <= ks[i-1].OI {
			t.Error("kernels not in increasing OI order")
		}
	}
}

// TestTypicalSystemBalanceComparison verifies the paper's contrast: a
// conventional system with balance 6-7 leaves the same kernels much
// further below its compute peak.
func TestTypicalSystemBalanceComparison(t *testing.T) {
	e870 := ForSystem(arch.E870())
	conventional := Model{PeakCompute: e870.PeakCompute, PeakBandwidth: units.BandwidthOf(e870.PeakCompute, 6.5)}
	for _, k := range ScientificKernels() {
		frac8 := float64(e870.Attainable(k.OI)) / float64(e870.PeakCompute)
		fracC := float64(conventional.Attainable(k.OI)) / float64(conventional.PeakCompute)
		if frac8 <= fracC {
			t.Errorf("%s: E870 fraction-of-peak %v not above conventional %v", k.Name, frac8, fracC)
		}
	}
}

func TestCurve(t *testing.T) {
	m := ForSystem(arch.E870())
	pts := m.Curve(0.01, 100, 50)
	if len(pts) != 50 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].OI != 0.01 || math.Abs(pts[49].OI-100) > 1e-9 {
		t.Errorf("endpoints = %v, %v", pts[0].OI, pts[49].OI)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].OI <= pts[i-1].OI {
			t.Error("OIs not increasing")
		}
		if pts[i].Attainable < pts[i-1].Attainable {
			t.Error("attainable not monotone")
		}
	}
}

func TestCurvePanics(t *testing.T) {
	m := ForSystem(arch.E870())
	for _, fn := range []func(){
		func() { m.Curve(0, 1, 10) },
		func() { m.Curve(1, 1, 10) },
		func() { m.Curve(0.1, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
