// Package roofline implements the roofline model of Section IV: attainable
// performance as a function of operational intensity, bounded by peak
// compute and peak memory bandwidth, with the POWER8-specific twist of an
// asymmetric write-only bandwidth ceiling (Figure 9).
package roofline

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/units"
)

// Model is a roofline: a compute ceiling and a bandwidth slope.
type Model struct {
	Name          string
	PeakCompute   units.Rate
	PeakBandwidth units.Bandwidth
}

// ForSystem builds the main roofline of Figure 9 from a system spec: peak
// double precision against the sustainable (2:1 read:write) memory peak.
func ForSystem(sys *arch.SystemSpec) Model {
	return Model{
		Name:          sys.Name,
		PeakCompute:   sys.PeakDP(),
		PeakBandwidth: sys.PeakMemoryBW(),
	}
}

// WriteOnly builds the dashed write-only roofline of Figure 9: the same
// compute ceiling over the write-only bandwidth, less than half of the
// combined peak.
func WriteOnly(sys *arch.SystemSpec) Model {
	return Model{
		Name:          sys.Name + " (write-only)",
		PeakCompute:   sys.PeakDP(),
		PeakBandwidth: sys.PeakWriteBW(),
	}
}

// Attainable returns the performance bound at operational intensity oi
// (FLOPs per byte of DRAM traffic): min(peak, oi x bandwidth).
func (m Model) Attainable(oi float64) units.Rate {
	if oi < 0 {
		panic(fmt.Sprintf("roofline: negative operational intensity %g", oi))
	}
	bw := float64(m.PeakBandwidth) * oi
	if bw < float64(m.PeakCompute) {
		return units.Rate(bw)
	}
	return m.PeakCompute
}

// BalancePoint returns the operational intensity where the model turns
// compute bound — the system balance Section IV reports as 1.2 for the
// E870 (most systems sit at 6-7).
func (m Model) BalancePoint() float64 {
	return float64(m.PeakCompute) / float64(m.PeakBandwidth)
}

// MemoryBound reports whether a kernel of intensity oi is limited by
// memory bandwidth on this model.
func (m Model) MemoryBound(oi float64) bool { return oi < m.BalancePoint() }

// Kernel is a named workload pinned at an operational intensity.
type Kernel struct {
	Name string
	OI   float64
}

// ScientificKernels returns the four kernels Figure 9 places on the
// roofline with their conventional operational intensities (Williams et
// al.): sparse matrix-vector multiply, 7-point 3D stencil,
// Lattice-Boltzmann MHD and 3D FFT.
func ScientificKernels() []Kernel {
	return []Kernel{
		{Name: "SpMV", OI: 1.0 / 6},
		{Name: "Stencil", OI: 0.5},
		{Name: "LBMHD", OI: 1.0},
		{Name: "3D FFT", OI: 1.64},
	}
}

// Point is one sample of the roofline curve.
type Point struct {
	OI         float64
	Attainable units.Rate
}

// Curve samples the roofline at n log-spaced intensities across
// [oiMin, oiMax] for plotting; n must be at least 2 and the range valid.
func (m Model) Curve(oiMin, oiMax float64, n int) []Point {
	if n < 2 || oiMin <= 0 || oiMax <= oiMin {
		panic("roofline: invalid curve parameters")
	}
	pts := make([]Point, n)
	logMin, logMax := math.Log10(oiMin), math.Log10(oiMax)
	for i := range pts {
		oi := math.Pow(10, logMin+(logMax-logMin)*float64(i)/float64(n-1))
		pts[i] = Point{OI: oi, Attainable: m.Attainable(oi)}
	}
	return pts
}
