package ablation

import (
	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/units"
)

// GroupScalingRow describes one SMP size in the group-scaling study.
type GroupScalingRow struct {
	Groups     int
	Chips      int
	AllToAll   units.Bandwidth
	XAggregate units.Bandwidth
	AAggregate units.Bandwidth
	// WorstLatencyNs is the largest chip-to-chip demand latency.
	WorstLatencyNs float64
}

// GroupScaling evaluates the POWER8 interconnect as the SMP grows from
// one group (the smallest E870-class machine) to the four-group maximum
// of Section II-B, quantifying how the A-bus tier becomes the binding
// constraint for global traffic — an extension study beyond the paper's
// single 2-group data point.
func GroupScaling() []GroupScalingRow {
	spec := arch.E870()
	var out []GroupScalingRow
	for groups := 1; groups <= 4; groups++ {
		// A chip has three A-bus ports total, split over its partner
		// groups: 2 groups bond all three lanes to the single partner
		// (the E870), 3-4 groups get one lane per partner.
		aLanes := 3
		if groups > 2 {
			aLanes = 3 / (groups - 1)
		}
		topo := arch.NewGroupedTopology(groups, 4, aLanes)
		net := fabric.New(topo, spec.Latency, fabric.E870Calibration())
		row := GroupScalingRow{
			Groups:     groups,
			Chips:      topo.Chips,
			XAggregate: net.AggregateBandwidth(arch.XBus),
			AAggregate: net.AggregateBandwidth(arch.ABus),
		}
		if groups > 1 {
			row.AllToAll = net.AllToAll()
		} else {
			// A single group has no A tier; all-to-all is X-bound.
			shares := net.AllToAllShares()
			row.AllToAll = units.Bandwidth(float64(net.AggregateBandwidth(arch.XBus)) * 0.92 / shares.X)
		}
		for src := 0; src < topo.Chips; src++ {
			for dst := 0; dst < topo.Chips; dst++ {
				if lat := spec.Latency.LocalDRAMNs + net.HopLatencyNs(arch.ChipID(src), arch.ChipID(dst)); lat > row.WorstLatencyNs {
					row.WorstLatencyNs = lat
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// MaxSMPHeadline projects the paper's headline bandwidth and latency
// quantities onto the largest configuration of Section II-B (16 sockets,
// 192 cores, 16 TB): what Table III's 2:1 row and Figure 4's saturation
// would read on the big machine.
type MaxSMPHeadline struct {
	PeakDP         units.Rate
	Stream2to1     units.Bandwidth
	RandomSat      units.Bandwidth
	Balance        float64
	WorstLatencyNs float64
}

// MaxSMP runs the projection with the E870-fitted calibrations.
func MaxSMP() MaxSMPHeadline {
	m := machine.New(arch.MaxPOWER8SMP())
	h := MaxSMPHeadline{
		PeakDP:     m.Spec.PeakDP(),
		Stream2to1: m.Mem.SystemStream(2.0 / 3),
		RandomSat:  m.RandomAccessBandwidth(8, 8),
		Balance:    m.Spec.Balance(),
	}
	chips := m.Spec.Topology.Chips
	for src := 0; src < chips; src++ {
		for dst := 0; dst < chips; dst++ {
			if lat := m.DemandLatencyNs(arch.ChipID(src), arch.ChipID(dst)); lat > h.WorstLatencyNs {
				h.WorstLatencyNs = lat
			}
		}
	}
	return h
}
