// Package ablation quantifies the POWER8 design choices the paper calls
// out, by re-running the machine model with individual features removed:
//
//   - the NUCA victim L3 (Section II-A: "each L3 also serving requests
//     for other cores, and working as a victim cache for other L3s");
//   - the multi-route inter-group fabric (Section III-B's explanation of
//     why inter-group bandwidth exceeds intra-group);
//   - the asymmetric 2:1 read:write Centaur links (Section II-A);
//   - the large architected register file (Section III-C's two-level
//     register hierarchy);
//   - DCBT software hints versus a faster hardware detector
//     (Section III-D).
//
// Each study returns a with/without comparison plus the factor the
// feature is worth, and is exercised by tests that pin the direction and
// rough magnitude of every conclusion.
package ablation

import (
	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prefetch"
	"repro/internal/smt"
	"repro/internal/trace"
	"repro/internal/units"
)

// Comparison is one with/without result.
type Comparison struct {
	Name    string
	With    float64
	Without float64
	Unit    string
}

// Factor returns the benefit ratio, oriented so that > 1 means the
// feature helps (for latencies, Without/With; for bandwidths, With/Without
// — the caller picks by constructing the comparison accordingly).
func (c Comparison) Factor() float64 {
	if c.With == 0 {
		return 0
	}
	return c.Without / c.With
}

// VictimL3 measures the chase latency of a working set that fits the
// chip-level L3 but not the core-local region (32 MiB), with and without
// the NUCA lateral castout. Without it, those misses fall to the Centaur
// L4.
func VictimL3(m *machine.Machine) Comparison {
	run := func(disable bool) float64 {
		lines := 32 * 1024 * 1024 / 128
		w := m.NewWalker(machine.WalkerConfig{
			DisablePrefetch: true,
			DisableVictimL3: disable,
		})
		w.Run(trace.NewChase(0, lines, 1, 42), 0)
		res := w.Run(trace.NewChase(0, lines, 1, 42), 0)
		return res.AvgNs()
	}
	return Comparison{
		Name:    "NUCA victim L3 (32 MiB chase latency)",
		With:    run(false),
		Without: run(true),
		Unit:    "ns",
	}
}

// InterGroupRouting compares the inter-group pair bandwidth with the
// multi-route protocol against a hypothetical single-route fabric that
// only uses the direct A-bus bundle.
func InterGroupRouting(spec *arch.SystemSpec) Comparison {
	multi := fabric.New(spec.Topology, spec.Latency, fabric.E870Calibration())
	single := fabric.E870Calibration()
	single.InterGroupRouteCapGBs = 3 * arch.ABusLaneGBs // direct bundle only
	direct := fabric.New(spec.Topology, spec.Latency, single)
	return Comparison{
		Name:    "multi-route inter-group bandwidth (chip0->chip5)",
		With:    multi.PairBandwidth(0, 5, false).GBps(),
		Without: direct.PairBandwidth(0, 5, false).GBps(),
		Unit:    "GB/s",
	}
}

// AsymmetricLinks compares the best streaming mix on the real asymmetric
// Centaur links (2 read : 1 write) against a symmetric design with the
// same total raw bandwidth, answering "what does the 2:1 specialization
// buy a 2:1 workload, and what does it cost a 1:1 workload".
type AsymmetricResult struct {
	At2to1 Comparison
	At1to1 Comparison
}

// AsymmetricLinks runs the study. The symmetric strawman splits the
// 28.8 GB/s of raw per-Centaur bandwidth evenly.
func AsymmetricLinks() AsymmetricResult {
	real := memsys.New(arch.E870(), memsys.E870Calibration())
	symSpec := arch.E870()
	symSpec.Memory.Centaur.ReadLink = units.GBps(14.4)
	symSpec.Memory.Centaur.WriteLink = units.GBps(14.4)
	sym := memsys.New(symSpec, memsys.E870Calibration())
	return AsymmetricResult{
		At2to1: Comparison{
			Name:    "asymmetric links at the 2:1 mix",
			With:    real.SystemStream(2.0 / 3).GBps(),
			Without: sym.SystemStream(2.0 / 3).GBps(),
			Unit:    "GB/s",
		},
		At1to1: Comparison{
			Name:    "asymmetric links at the 1:1 mix",
			With:    real.SystemStream(0.5).GBps(),
			Without: sym.SystemStream(0.5).GBps(),
			Unit:    "GB/s",
		},
	}
}

// RegisterFile evaluates the Figure 5 worst point (12 FMAs x 8 threads,
// 192 registers demanded) on register files of different sizes: the
// POWER7-sized 64, the POWER8 128, and a hypothetical 256.
func RegisterFile() []Comparison {
	base := arch.POWER8(8, 4.35)
	k := smt.FMAKernel{FMAs: 12, Threads: 8}
	out := make([]Comparison, 0, 3)
	for _, regs := range []int{64, 128, 256} {
		chip := base
		chip.ArchVSXRegs = regs
		out = append(out, Comparison{
			Name:    "12 FMAs x 8 threads fraction of peak",
			With:    smt.FractionOfPeak(chip, k),
			Without: float64(regs),
			Unit:    "fraction (Without = architected registers)",
		})
	}
	return out
}

// DCBTVersusFasterDetector asks whether a hardware detector that locks on
// after a single access (DetectAfter=1) would make the DCBT instruction
// unnecessary for the paper's small-block workload. It returns the scan
// bandwidth of 8-line random blocks under the normal detector, the
// 1-access detector, and DCBT hints.
type DetectorResult struct {
	NormalDetector units.Bandwidth
	FastDetector   units.Bandwidth
	DCBT           units.Bandwidth
}

// DCBTVersusFasterDetector runs the study.
func DCBTVersusFasterDetector(m *machine.Machine) DetectorResult {
	const blockLines = 8
	const blocks = 1 << 14
	run := func(detectAfter int, hint bool) units.Bandwidth {
		g := trace.NewBlockedRandom(0, blocks, blockLines, 7)
		w := m.NewWalker(machine.WalkerConfig{
			Prefetch: prefetch.Config{DSCR: 7, DetectAfter: detectAfter},
		})
		var ns float64
		var n uint64
		for {
			atStart := g.BlockStart()
			addr, ok := g.Next()
			if !ok {
				break
			}
			if hint && atStart {
				w.Hint(addr, blockLines, 1)
			}
			ns += w.Access(addr)
			n++
		}
		return machine.WalkResult{Accesses: n, TotalNs: ns}.ThreadBandwidth()
	}
	return DetectorResult{
		NormalDetector: run(3, false),
		FastDetector:   run(1, false),
		DCBT:           run(3, true),
	}
}
