package ablation

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/machine"
)

func e870() *machine.Machine { return machine.New(arch.E870()) }

// TestVictimL3Worth: the NUCA lateral castout is what keeps a 32 MiB
// working set at remote-L3 latency (~31 ns) instead of Centaur L4
// latency (~67 ns) — roughly a 2x effect.
func TestVictimL3Worth(t *testing.T) {
	c := VictimL3(e870())
	if c.With >= c.Without {
		t.Fatalf("victim L3 did not help: with %.1f ns, without %.1f ns", c.With, c.Without)
	}
	if f := c.Factor(); f < 1.5 || f > 3 {
		t.Errorf("victim L3 factor = %.2fx, want ~2x", f)
	}
	if c.With < 25 || c.With > 40 {
		t.Errorf("with-victim latency %.1f ns, want remote-L3 plateau", c.With)
	}
	if c.Without < 55 || c.Without > 80 {
		t.Errorf("without-victim latency %.1f ns, want L4 plateau", c.Without)
	}
}

// TestInterGroupRoutingWorth: without multi-route spillover, inter-group
// bandwidth falls from 45 GB/s to the direct bundle's ~29 GB/s — below
// the intra-group X-bus, inverting the paper's counter-intuitive finding.
func TestInterGroupRoutingWorth(t *testing.T) {
	c := InterGroupRouting(arch.E870())
	if c.With <= c.Without {
		t.Fatalf("multi-route did not help: %.1f vs %.1f", c.With, c.Without)
	}
	if c.Without >= 30 {
		t.Errorf("single-route bandwidth %.1f GB/s should fall below the intra-group 30", c.Without)
	}
	if c.With < 42 || c.With > 48 {
		t.Errorf("multi-route bandwidth %.1f GB/s, want ~45", c.With)
	}
}

// TestAsymmetricLinksTradeoff: the 2:1 link specialization helps 2:1
// traffic and costs 1:1 traffic relative to a symmetric design of the
// same raw capacity.
func TestAsymmetricLinksTradeoff(t *testing.T) {
	r := AsymmetricLinks()
	if r.At2to1.With <= r.At2to1.Without {
		t.Errorf("asymmetric links should win at 2:1: %.0f vs %.0f GB/s",
			r.At2to1.With, r.At2to1.Without)
	}
	if r.At1to1.With >= r.At1to1.Without {
		t.Errorf("asymmetric links should lose at 1:1: %.0f vs %.0f GB/s",
			r.At1to1.With, r.At1to1.Without)
	}
}

// TestRegisterFileScaling: with 64 architected registers the 12x8 kernel
// collapses; 128 recovers most of it; 256 removes the penalty entirely.
func TestRegisterFileScaling(t *testing.T) {
	rows := RegisterFile()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	frac64, frac128, frac256 := rows[0].With, rows[1].With, rows[2].With
	if !(frac64 < frac128 && frac128 < frac256) {
		t.Fatalf("fractions not increasing with register file: %v %v %v", frac64, frac128, frac256)
	}
	if frac256 != 1 {
		t.Errorf("256 registers should reach peak, got %v", frac256)
	}
	if frac128 < 0.6 || frac128 > 0.7 {
		t.Errorf("128 registers at 12x8 = %v, want 128/192", frac128)
	}
}

// TestDCBTVersusFasterDetector: even an ideal 1-access hardware detector
// cannot match DCBT on tiny blocks, because DCBT prefetches the whole
// block before the first touch.
func TestDCBTVersusFasterDetector(t *testing.T) {
	r := DCBTVersusFasterDetector(e870())
	if r.FastDetector.GBps() <= r.NormalDetector.GBps() {
		t.Errorf("faster detector should beat the normal one: %.1f vs %.1f",
			r.FastDetector.GBps(), r.NormalDetector.GBps())
	}
	if r.DCBT.GBps() <= r.FastDetector.GBps() {
		t.Errorf("DCBT should beat even a 1-access detector: %.1f vs %.1f",
			r.DCBT.GBps(), r.FastDetector.GBps())
	}
}

// TestGroupScaling: as groups are added, X capacity grows linearly with
// chips but the A tier grows slower, so all-to-all bandwidth per chip
// falls — the scaling pressure on the fabric's second tier.
func TestGroupScaling(t *testing.T) {
	rows := GroupScaling()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Chips != 4*(i+1) {
			t.Errorf("row %d: chips = %d", i, r.Chips)
		}
		if r.AllToAll <= 0 || r.XAggregate <= 0 {
			t.Errorf("row %d: non-positive bandwidths %+v", i, r)
		}
	}
	perChip2 := rows[1].AllToAll.GBps() / float64(rows[1].Chips)
	perChip4 := rows[3].AllToAll.GBps() / float64(rows[3].Chips)
	if perChip4 >= perChip2 {
		t.Errorf("per-chip all-to-all should fall with more groups: %0.f -> %.0f GB/s",
			perChip2, perChip4)
	}
	if rows[0].WorstLatencyNs >= rows[1].WorstLatencyNs {
		t.Error("adding a second group should add A-hop latency")
	}
	// The paper's E870 point (2 groups) must match Table IV.
	if got := rows[1].AllToAll.GBps(); got < 360 || got > 400 {
		t.Errorf("2-group all-to-all = %.0f, want ~380", got)
	}
}

// TestMaxSMPHeadline: the 192-way maximum configuration reaches the
// Section II-B paper numbers and keeps the balanced design.
func TestMaxSMPHeadline(t *testing.T) {
	h := MaxSMP()
	if got := h.PeakDP.GFs(); got < 6143 || got > 6145 {
		t.Errorf("peak DP = %v, want 6144", got)
	}
	// 2:1 stream at the same 80% efficiency: 16 x 230.4 x 0.8 ~ 2949.
	if got := h.Stream2to1.GBps(); got < 2800 || got > 3050 {
		t.Errorf("2:1 stream = %.0f GB/s, want ~2949", got)
	}
	if h.Balance < 1.5 || h.Balance > 1.8 {
		t.Errorf("balance = %v; the 4 GHz 12-core chip trades balance slightly", h.Balance)
	}
	// The four-group machine's worst route is still one A + one X hop
	// (groups are fully A-connected), so the E870's 243 ns worst case
	// carries over rather than growing.
	if h.WorstLatencyNs < 243 {
		t.Errorf("worst latency %v ns, want >= the E870's 243", h.WorstLatencyNs)
	}
	if h.RandomSat.GBps() <= 500 {
		t.Error("random saturation should scale with the larger read capacity")
	}
}

func TestComparisonFactor(t *testing.T) {
	if (Comparison{With: 2, Without: 6}).Factor() != 3 {
		t.Error("Factor wrong")
	}
	if (Comparison{With: 0, Without: 6}).Factor() != 0 {
		t.Error("zero With should give 0")
	}
}
