package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with 0 did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 2.13808993529939 // sample stddev
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := NewCurve([]float64{0, 1, 2}, []float64{10, 20, 40})
	cases := []struct{ x, want float64 }{
		{-1, 10},  // clamp low
		{0, 10},   // endpoint
		{0.5, 15}, // interpolate
		{1, 20},   // breakpoint
		{1.5, 30}, // interpolate second segment
		{2, 40},   // endpoint
		{5, 40},   // clamp high
	}
	for _, k := range cases {
		if got := c.At(k.x); math.Abs(got-k.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", k.x, got, k.want)
		}
	}
}

func TestCurveMonotoneBetweenAnchors(t *testing.T) {
	// Property: a curve built from increasing ys is monotone everywhere.
	c := NewCurve([]float64{0, 0.5, 1}, []float64{1, 2, 3})
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 1))
		y := math.Abs(math.Mod(b, 1))
		if x > y {
			x, y = y, x
		}
		return c.At(x) <= c.At(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveRejectsBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCurve(nil, nil) },
		func() { NewCurve([]float64{1, 1}, []float64{2, 3}) },
		func() { NewCurve([]float64{2, 1}, []float64{2, 3}) },
		func() { NewCurve([]float64{1}, []float64{2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad curve construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestWithin(t *testing.T) {
	if !Within(105, 100, 0.05) {
		t.Error("105 should be within 5% of 100")
	}
	if Within(106, 100, 0.05) {
		t.Error("106 should not be within 5% of 100")
	}
	if !Within(0, 0, 0.1) || Within(1, 0, 0.1) {
		t.Error("zero-want handling wrong")
	}
}
