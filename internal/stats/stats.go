// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, monotone piecewise-linear curves used
// for calibrated efficiency profiles, and geometric means for reporting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must all be positive.
// It returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when len(xs) < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Curve is a piecewise-linear function defined by sorted breakpoints. The
// machine model uses curves for calibrated efficiency profiles: the
// breakpoints are measurement anchors, and queries interpolate between
// them. Outside the breakpoint range the curve is clamped to the endpoint
// values (efficiencies do not extrapolate).
type Curve struct {
	xs, ys []float64
}

// NewCurve builds a curve from breakpoint pairs. xs must be strictly
// increasing and the same length as ys; NewCurve panics otherwise so that
// malformed calibration tables fail loudly at construction.
func NewCurve(xs, ys []float64) *Curve {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: NewCurve needs equal-length, non-empty breakpoints")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			panic(fmt.Sprintf("stats: NewCurve xs not strictly increasing at %d", i))
		}
	}
	return &Curve{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
}

// Points returns copies of the curve's breakpoints in x order —
// the canonical form internal/canon hashes into calibration
// fingerprints.
func (c *Curve) Points() (xs, ys []float64) {
	return append([]float64(nil), c.xs...), append([]float64(nil), c.ys...)
}

// At evaluates the curve at x with clamping at both ends.
func (c *Curve) At(x float64) float64 {
	n := len(c.xs)
	if x <= c.xs[0] {
		return c.ys[0]
	}
	if x >= c.xs[n-1] {
		return c.ys[n-1]
	}
	i := sort.SearchFloat64s(c.xs, x)
	// xs[i-1] < x <= xs[i] after the boundary checks above.
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Within reports whether got is within frac (e.g. 0.1 = 10%) of want.
// It treats want == 0 specially, requiring got == 0.
func Within(got, want, frac float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= math.Abs(want)*frac
}
