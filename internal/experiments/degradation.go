package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/smt"
)

// DegradationSuite returns the fault-injection experiments: bandwidth-
// vs-fault curves for RAS-degraded machine variants, each derived from
// the healthy machine through internal/fault. They are deliberately
// not part of the paper registry (All) — a degraded machine fails the
// paper's healthy-system checks by construction — and run via
// power8.RunSuite or `p8repro -faults`.
func DegradationSuite() []Experiment {
	return []Experiment{
		{ID: "deg-lanes", Title: "Degraded fabric: X/A-bus lane-sparing sweep", Run: runDegLanes},
		{ID: "deg-cores", Title: "Degraded chips: guarded-core sweep (chip 0)", Run: runDegCores},
		{ID: "deg-channels", Title: "Degraded memory: lost-channel sweep (chip 0)", Run: runDegChannels},
		{ID: "deg-plan", Title: "Degraded machine: full fault plan vs healthy", Run: runDegPlan},
	}
}

// derive applies a single-event plan to the context's machine spec,
// through the context's memoizing deriver when one is configured.
func derive(ctx *Context, name string, e fault.Event) *machine.Machine {
	p := &fault.Plan{Name: name, Events: []fault.Event{e}}
	p.Publish(ctx.Obs)
	return ctx.Derive(p)
}

// checkCurve records that a bandwidth-vs-fault curve starts at the
// healthy figure and never recovers as faults accumulate.
func checkCurve(r *Report, name string, healthy float64, curve []float64) {
	r.CheckMin(name+": healthy point matches baseline", 1e-9-abs(curve[0]-healthy), 0)
	for i := 1; i < len(curve); i++ {
		r.CheckMin(fmt.Sprintf("%s: step %d does not recover bandwidth", name, i),
			curve[i-1]-curve[i], 0)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// runDegLanes sweeps lane sparing on one X-bus (chips 0-1) and one
// bonded A-bus (chips 0-4) and reports the pair and system bandwidth
// against the healthy baseline.
func runDegLanes(ctx *Context) *Report {
	r := newReport("deg-lanes", "Degraded fabric: X/A-bus lane-sparing sweep")
	spec := ctx.Machine.Spec
	healthy := ctx.Machine

	r.Printf("%-28s %14s %14s", "fault", "pair GB/s", "all-to-all GB/s")
	xFactors := []float64{1, 0.75, 0.5, 0.25}
	var xPair, xA2A []float64
	for _, f := range xFactors {
		m := healthy
		if f < 1 {
			m = derive(ctx, fmt.Sprintf("xlane-%g", f), fault.Event{Kind: fault.SpareXLanes, A: 0, B: 1, Factor: f})
		}
		pair := m.Net.PairBandwidth(0, 1, false).GBps()
		a2a := m.Net.AllToAll().GBps()
		xPair, xA2A = append(xPair, pair), append(xA2A, a2a)
		r.Printf("%-28s %14.1f %14.1f", fmt.Sprintf("X-bus 0<->1 at %3.0f%%", 100*f), pair, a2a)
	}
	checkCurve(r, "X pair bandwidth", healthy.Net.PairBandwidth(0, 1, false).GBps(), xPair)
	checkCurve(r, "X all-to-all", healthy.Net.AllToAll().GBps(), xA2A)

	link, ok := spec.Topology.LinkBetween(0, 4)
	if !ok {
		r.Note("no A-bus between chips 0 and 4 on this topology; A sweep skipped")
		return r
	}
	var aPair, aA2A []float64
	for spared := 0; spared < link.Count; spared++ {
		m := healthy
		if spared > 0 {
			f := float64(link.Count-spared) / float64(link.Count)
			m = derive(ctx, fmt.Sprintf("alane-%d", spared), fault.Event{Kind: fault.SpareALanes, A: 0, B: 4, Factor: f})
		}
		pair := m.Net.PairBandwidth(0, 4, false).GBps()
		a2a := m.Net.AllToAll().GBps()
		aPair, aA2A = append(aPair, pair), append(aA2A, a2a)
		r.Printf("%-28s %14.1f %14.1f", fmt.Sprintf("A-bus 0<->4, %d/%d lanes spared", spared, link.Count), pair, a2a)
	}
	checkCurve(r, "A pair bandwidth", healthy.Net.PairBandwidth(0, 4, false).GBps(), aPair)
	checkCurve(r, "A all-to-all", healthy.Net.AllToAll().GBps(), aA2A)
	r.Note("lane sparing derates only the affected bundle; protocol spillover through neighbour chips is untouched")
	return r
}

// runDegCores sweeps guarded cores on chip 0 and reports compute peak,
// re-homed FMA throughput and random-access bandwidth.
func runDegCores(ctx *Context) *Report {
	r := newReport("deg-cores", "Degraded chips: guarded-core sweep (chip 0)")
	spec := ctx.Machine.Spec
	healthy := ctx.Machine
	// Threads that were running on the chip before the guard: the chip
	// fully loaded at SMT4.
	chipThreads := spec.Chip.Cores * 4

	maxGuard := spec.Chip.Cores / 2
	var peaks, fmas, rnds []float64
	r.Printf("%-24s %12s %16s %14s", "guarded cores", "peak GF/s", "chip FMA/cycle", "random GB/s")
	for k := 0; k <= maxGuard; k++ {
		m := healthy
		if k > 0 {
			m = derive(ctx, fmt.Sprintf("guard-%d", k), fault.Event{Kind: fault.GuardCores, Chip: 0, N: k})
		}
		peak := float64(m.Spec.PeakDP()) / 1e9
		fma := smt.RemappedThroughput(m.Spec.Chip, m.Spec.ActiveCores(0), chipThreads, 4)
		rnd := m.RandomAccessBandwidth(8, 4).GBps()
		peaks, fmas, rnds = append(peaks, peak), append(fmas, fma), append(rnds, rnd)
		r.Printf("%-24d %12.0f %16.2f %14.1f", k, peak, fma, rnd)
	}
	checkCurve(r, "peak DP", float64(healthy.Spec.PeakDP())/1e9, peaks)
	checkCurve(r, "re-homed FMA throughput", fmas[0], fmas)
	checkCurve(r, "random-access bandwidth", healthy.RandomAccessBandwidth(8, 4).GBps(), rnds)
	// Guarding k of 8 cores removes exactly k/64 of the system peak.
	lost := (peaks[0] - peaks[len(peaks)-1]) / peaks[0]
	want := float64(maxGuard) / float64(spec.TotalCores())
	r.Checkf("guarded fraction of peak DP removed", lost, want, 0.001)
	r.Note("guarded cores re-home their threads onto chip survivors (higher SMT modes), per POWER8 firmware core guarding")
	return r
}

// runDegChannels sweeps lost memory channels on chip 0 and reports the
// stream bandwidth and the rebalanced interleave weights.
func runDegChannels(ctx *Context) *Report {
	r := newReport("deg-channels", "Degraded memory: lost-channel sweep (chip 0)")
	spec := ctx.Machine.Spec
	healthy := ctx.Machine
	maxLost := spec.Memory.CentaursPerChip / 2

	var streams, rndPeaks []float64
	r.Printf("%-20s %16s %18s %22s", "lost channels", "stream GB/s", "random peak GB/s", "chip0 interleave wt")
	for k := 0; k <= maxLost; k++ {
		m := healthy
		if k > 0 {
			m = derive(ctx, fmt.Sprintf("channel-%d", k), fault.Event{Kind: fault.LoseChannels, Chip: 0, N: k})
		}
		stream := m.Mem.SystemStream(2.0 / 3).GBps()
		rnd := m.Mem.RandomPeakBandwidth().GBps()
		weights := m.Mem.Degradation().InterleaveWeights(spec.Topology.Chips, spec.Memory.CentaursPerChip)
		streams, rndPeaks = append(streams, stream), append(rndPeaks, rnd)
		r.Printf("%-20d %16.1f %18.1f %18d/%d", k, stream, rnd, weights[0], spec.Memory.CentaursPerChip)
	}
	checkCurve(r, "system stream", healthy.Mem.SystemStream(2.0/3).GBps(), streams)
	checkCurve(r, "random peak", healthy.Mem.RandomPeakBandwidth().GBps(), rndPeaks)
	r.Note("placement rebalancing: interleave weights drop with the chip's surviving channel count (memsys.WeightedInterleaved)")
	return r
}

// runDegPlan applies a whole fault plan (Context.Faults, defaulting to
// the canned "worst-day") and tabulates the degraded machine against
// the healthy baseline.
func runDegPlan(ctx *Context) *Report {
	r := newReport("deg-plan", "Degraded machine: full fault plan vs healthy")
	plan := ctx.Faults
	if plan.Healthy() {
		p, err := fault.Canned("worst-day")
		if err != nil {
			panic(err)
		}
		plan = p
	}
	plan.Publish(ctx.Obs)
	healthy := ctx.Machine
	degraded := ctx.Derive(plan)

	r.Printf("plan %q (%d events):", plan.Name, len(plan.Events))
	for _, line := range plan.Summary() {
		r.Printf("  - %s", line)
	}
	r.Printf("")
	r.Printf("%-34s %14s %14s", "metric", "healthy", "degraded")
	row := func(name string, h, d float64, lowerIsWorse bool) {
		r.Printf("%-34s %14.1f %14.1f", name, h, d)
		if lowerIsWorse {
			r.CheckMin(name+": degraded does not exceed healthy", h-d, 0)
		} else {
			r.CheckMin(name+": degraded not faster than healthy", d-h, 0)
		}
	}
	row("peak DP GFLOP/s", float64(healthy.Spec.PeakDP())/1e9, float64(degraded.Spec.PeakDP())/1e9, true)
	row("system stream GB/s (2:1)", healthy.Mem.SystemStream(2.0/3).GBps(), degraded.Mem.SystemStream(2.0/3).GBps(), true)
	row("all-to-all GB/s", healthy.Net.AllToAll().GBps(), degraded.Net.AllToAll().GBps(), true)
	row("random access GB/s (SMT8 x 4)", healthy.RandomAccessBandwidth(8, 4).GBps(), degraded.RandomAccessBandwidth(8, 4).GBps(), true)
	row("demand latency ns (0 -> 4)", healthy.DemandLatencyNs(0, arch.ChipID(4)), degraded.DemandLatencyNs(0, arch.ChipID(4)), false)

	// The DES cross-check must degrade with the analytic model: both
	// derive their ceilings from the same degraded calibration.
	horizon := 200_000.0
	if ctx.Quick {
		horizon = 50_000.0
	}
	desH := healthy.SimulateRandomAccessSharded(8, 4, horizon, ctx.Shards, ctx.Obs, ctx.Budget).GBps()
	desD := degraded.SimulateRandomAccessSharded(8, 4, horizon, ctx.Shards, ctx.Obs, ctx.Budget).GBps()
	row("DES random access GB/s", desH, desD, true)
	r.Note("degraded machine derived through machine.NewDegraded — the healthy Machine is never mutated")
	return r
}
