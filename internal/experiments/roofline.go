package experiments

import (
	"math"

	"repro/internal/kernels"
	"repro/internal/roofline"
	"repro/internal/units"
)

func init() {
	register("figure9", "Figure 9: Roofline for the IBM Power System E870", runFigure9)
}

func runFigure9(ctx *Context) *Report {
	r := newReport("figure9", "Figure 9: Roofline for the IBM Power System E870")
	sys := ctx.Machine.Spec
	main := roofline.ForSystem(sys)
	wo := roofline.WriteOnly(sys)

	r.Printf("peak compute: %v   peak bandwidth: %v   balance point: %.2f FLOP/B",
		main.PeakCompute, main.PeakBandwidth, main.BalancePoint())
	r.Printf("write-only ceiling: %v", wo.PeakBandwidth)
	r.Printf("%-10s %8s %22s %22s", "kernel", "OI", "bound (2:1 roof)", "bound (write-only)")
	for _, k := range roofline.ScientificKernels() {
		r.Printf("%-10s %8.3f %17.0f GF/s %17.0f GF/s",
			k.Name, k.OI, main.Attainable(k.OI).GFs(), wo.Attainable(k.OI).GFs())
	}
	for _, p := range main.Curve(0.05, 16, 9) {
		r.Printf("  roofline OI %7.3f -> %8.0f GFLOP/s", p.OI, p.Attainable.GFs())
	}

	// Two of the four kernels exist as executable code; verify their
	// operational intensities from first principles and measure them on
	// the host for reference.
	n := 64
	if ctx.Quick {
		n = 32
	}
	stencilRate := kernels.MeasureStencil(n, ctx.Threads, 2) //p8:allow determdeep: deliberate host measurement — the rate is reported as a labeled host reference and only bounded below, never fingerprinted
	fftRate := kernels.MeasureFFT3D(n, ctx.Threads, 2)       //p8:allow determdeep: deliberate host measurement — the rate is reported as a labeled host reference and only bounded below, never fingerprinted
	r.Printf("executable kernels (host): Stencil %v at OI %.3f; 3D FFT %v at OI %.2f",
		stencilRate, kernels.StencilOI(), fftRate, kernels.FFT3DOI(512))
	r.Checkf("stencil OI from code (FLOP/B)", kernels.StencilOI(), 0.5, 0.01)
	r.CheckMin("host stencil rate (GFLOP/s)", stencilRate.GFs(), 0.01)
	r.CheckMin("host 3D FFT rate (GFLOP/s)", fftRate.GFs(), 0.01)

	r.Checkf("peak compute GFLOP/s", main.PeakCompute.GFs(), 2227, 0.001)
	r.Checkf("peak bandwidth GB/s", main.PeakBandwidth.GBps(), 1843, 0.001)
	r.Checkf("system balance", main.BalancePoint(), 1.2, 0.01)
	r.Checkf("LBMHD bound GFLOP/s (red diamond)", main.Attainable(1).GFs(), 1843, 0.001)
	r.Checkf("LBMHD write-only bound GFLOP/s (red square)", wo.Attainable(1).GFs(), 614, 0.01)
	// SpMV, Stencil and LBMHD sit in the memory-bound region; 3D FFT's
	// intensity (~1.64) crosses the E870's unusually low balance point
	// (1.2) into the compute-bound region — on a conventional balance-6
	// system all four would be memory bound.
	memBound := 1.0
	for _, k := range roofline.ScientificKernels() {
		if k.OI <= 1 && !main.MemoryBound(k.OI) {
			memBound = 0
		}
	}
	r.Checkf("kernels up to LBMHD memory bound (1 = yes)", memBound, 1, 0)
	conventional := roofline.Model{
		PeakCompute:   main.PeakCompute,
		PeakBandwidth: units.BandwidthOf(main.PeakCompute, 6.5),
	}
	worst := math.Inf(1)
	for _, k := range roofline.ScientificKernels() {
		e870Frac := float64(main.Attainable(k.OI)) / float64(main.PeakCompute)
		convFrac := float64(conventional.Attainable(k.OI)) / float64(conventional.PeakCompute)
		if r := e870Frac / convFrac; r < worst {
			worst = r
		}
	}
	r.CheckMin("E870 fraction-of-peak advantage vs balance-6.5 system (x)", worst, 3)
	return r
}
