package experiments

import (
	"repro/internal/arch"
	"repro/internal/micro"
	"repro/internal/units"
)

func init() {
	register("figure2", "Figure 2: Observed memory read latency on E870", runFigure2)
	register("table3", "Table III: Observed memory bandwidth vs read:write ratio", runTable3)
	register("figure3", "Figure 3: Memory bandwidth scaling with threads and cores", runFigure3)
}

func runFigure2(ctx *Context) *Report {
	r := newReport("figure2", "Figure 2: Observed memory read latency on E870")
	sizes := micro.Figure2Sizes()
	maxAccesses := 2_000_000
	if ctx.Quick {
		sizes = []units.Bytes{
			32 * units.KiB, 256 * units.KiB, 2 * units.MiB, 6 * units.MiB,
			32 * units.MiB, 120 * units.MiB, 384 * units.MiB,
		}
		maxAccesses = 250_000
	}
	small := micro.LatencyCurve(ctx.Machine, arch.Page64K, sizes, maxAccesses, ctx.Obs, ctx.Budget)
	huge := micro.LatencyCurve(ctx.Machine, arch.Page16M, sizes, maxAccesses, ctx.Obs, ctx.Budget)
	r.Printf("%14s %16s %16s", "working set", "64 KiB pages", "16 MiB pages")
	for i := range small {
		r.Printf("%14v %13.2f ns %13.2f ns", small[i].WorkingSet, small[i].AvgNs, huge[i].AvgNs)
	}
	r.Note("lmbench-style dependent-load chase, hardware prefetch disabled, as in the paper")

	at := func(pts []micro.LatPoint, ws units.Bytes) float64 {
		for _, p := range pts {
			if p.WorkingSet == ws {
				return p.AvgNs
			}
		}
		return -1
	}
	// Plateau checks: L1/L2/L3 cycles, remote L3, L4 benefit, DRAM.
	r.Checkf("L1 plateau ns (32 KiB)", at(small, 32*units.KiB), 0.69, 0.1)
	r.Checkf("L2 plateau ns (256 KiB)", at(small, 256*units.KiB), 3.0, 0.1)
	r.Checkf("L3 plateau ns (2 MiB)", at(small, 2*units.MiB), 6.2, 0.1)
	r.Checkf("remote L3 plateau ns (32 MiB)", at(small, 32*units.MiB), 31, 0.15)
	l4 := at(small, 120*units.MiB)
	dram := at(small, 384*units.MiB)
	r.CheckMin("L4 hit benefit vs DRAM (ns)", dram-l4, 30)
	// Huge-page spike past the 3 MiB ERAT reach and flat DRAM tail.
	r.CheckMin("huge-page ERAT spike at 6 MiB (ns)", at(huge, 6*units.MiB)-at(small, 6*units.MiB), 1)
	r.CheckMin("64K-page TLB-walk penalty at 384 MiB (ns)", at(small, 384*units.MiB)-at(huge, 384*units.MiB), 10)
	return r
}

func runTable3(ctx *Context) *Report {
	r := newReport("table3", "Table III: Observed memory bandwidth vs read:write ratio")
	rows := micro.TableIII(ctx.Machine)
	paper := map[string]float64{
		"Read Only": 1141, "16:1": 1208, "8:1": 1267, "4:1": 1375,
		"2:1": 1472, "1:1": 894, "1:2": 748, "1:4": 658, "Write Only": 589,
	}
	r.Printf("%-12s %16s %12s", "Read:Write", "Bandwidth", "paper")
	for _, row := range rows {
		r.Printf("%-12s %12.0f GB/s %8.0f GB/s", row.Label, row.Bandwidth.GBps(), paper[row.Label])
		r.Checkf("bandwidth "+row.Label+" (GB/s)", row.Bandwidth.GBps(), paper[row.Label], 0.01)
	}
	peakFrac := 0.0
	for _, row := range rows {
		if row.Label == "2:1" {
			peakFrac = row.Bandwidth.GBps() / ctx.Machine.Spec.PeakMemoryBW().GBps()
		}
	}
	r.Checkf("2:1 fraction of spec peak", peakFrac, 0.80, 0.02)
	r.Note("modified STREAM on all 64 cores x SMT-8; efficiency curve calibrated per internal/memsys/efficiency.go")
	return r
}

func runFigure3(ctx *Context) *Report {
	r := newReport("figure3", "Figure 3: Bandwidth scaling (a) one core (b) one chip, 2:1 mix")
	a := micro.Figure3a(ctx.Machine)
	r.Printf("(a) single core:")
	for _, p := range a {
		r.Printf("  %d thread(s): %8.1f GB/s", p.Threads, p.Bandwidth.GBps())
	}
	b := micro.Figure3b(ctx.Machine)
	r.Printf("(b) single chip:")
	for _, p := range b {
		if p.Threads == 1 || p.Threads == 2 || p.Threads == 4 || p.Threads == 8 {
			r.Printf("  %d core(s) x %d thread(s): %8.1f GB/s", p.Cores, p.Threads, p.Bandwidth.GBps())
		}
	}
	var coreMax, chipMax float64
	for _, p := range a {
		if v := p.Bandwidth.GBps(); v > coreMax {
			coreMax = v
		}
	}
	for _, p := range b {
		if v := p.Bandwidth.GBps(); v > chipMax {
			chipMax = v
		}
	}
	r.Checkf("single-core peak GB/s", coreMax, 26, 0.05)
	r.Checkf("single-chip peak GB/s", chipMax, 189, 0.04)
	return r
}
