package experiments

import (
	"repro/internal/arch"
)

func init() {
	register("table1", "Table I: POWER7 and POWER8 at a glance", runTable1)
	register("table2", "Table II: Characteristics of the IBM Power System E870", runTable2)
	register("figure1", "Figure 1: High-level block diagram of the E870", runFigure1)
}

func runTable1(ctx *Context) *Report {
	r := newReport("table1", "Table I: POWER7 and POWER8 at a glance")
	p7 := arch.POWER7(8, 3.8)
	p8 := arch.POWER8(12, 4.0)
	r.Printf("%-36s %12s %12s", "", "POWER7", "POWER8")
	r.Printf("%-36s %12d %12d", "Threads/core", p7.ThreadsPerCore, p8.ThreadsPerCore)
	r.Printf("%-36s %12d %12d", "Maximum cores/processor", p7.Cores, p8.Cores)
	r.Printf("%-36s %12v %12v", "L1 instruction cache/core", p7.L1I.Size, p8.L1I.Size)
	r.Printf("%-36s %12v %12v", "L1 data cache/core", p7.L1D.Size, p8.L1D.Size)
	r.Printf("%-36s %12v %12v", "L2 cache/core", p7.L2.Size, p8.L2.Size)
	r.Printf("%-36s %12v %12v", "L3 cache/core", p7.L3PerCore.Size, p8.L3PerCore.Size)
	r.Printf("%-36s %12s %12s", "L4 cache/processor", "N/A", "up to 128 MiB")
	r.Printf("%-36s %12d %12d", "Instruction issue/cycle/core", p7.IssueWidth, p8.IssueWidth)
	r.Printf("%-36s %12d %12d", "Instruction completion/cycle/core", p7.CommitWidth, p8.CommitWidth)
	r.Printf("%-36s %6d ld/%d st %5d ld/%d st", "Load/store operations/cycle",
		p7.LoadPorts, p7.StorePorts, p8.LoadPorts, p8.StorePorts)

	r.Checkf("POWER8 threads/core", float64(p8.ThreadsPerCore), 8, 0)
	r.Checkf("POWER8 L1D KiB", float64(p8.L1D.Size)/1024, 64, 0)
	r.Checkf("POWER8 L2 KiB", float64(p8.L2.Size)/1024, 512, 0)
	r.Checkf("POWER8 L3/core MiB", float64(p8.L3PerCore.Size)/(1<<20), 8, 0)
	r.Checkf("POWER8 issue width", float64(p8.IssueWidth), 10, 0)
	r.Checkf("POWER8 completion width", float64(p8.CommitWidth), 8, 0)
	return r
}

func runTable2(ctx *Context) *Report {
	r := newReport("table2", "Table II: Characteristics of the E870 under evaluation")
	s := ctx.Machine.Spec
	r.Printf("%-34s %s", "System", s.Name)
	r.Printf("%-34s %d", "Sockets (chips)", s.Topology.Chips)
	r.Printf("%-34s %d cores @ %.2f GHz", "Processor", s.Chip.Cores, s.Chip.ClockGHz)
	r.Printf("%-34s %d (%d per core)", "Hardware threads", s.TotalThreads(), s.Chip.ThreadsPerCore)
	r.Printf("%-34s %v", "Memory capacity", s.MemoryCapacity())
	r.Printf("%-34s %v", "Aggregate L4 cache", s.L4Total())
	r.Printf("%-34s %v", "Peak DP throughput", s.PeakDP())
	r.Printf("%-34s %v (read %v + write %v)", "Peak memory bandwidth (2:1)",
		s.PeakMemoryBW(), s.PeakReadBW(), s.PeakWriteBW())
	r.Printf("%-34s %.2f FLOP/byte", "System balance", s.Balance())

	r.Checkf("total cores", float64(s.TotalCores()), 64, 0)
	r.Checkf("clock GHz", s.Chip.ClockGHz, 4.35, 0)
	r.Checkf("peak DP GFLOP/s", s.PeakDP().GFs(), 2227.2, 0.001)
	r.Checkf("peak memory GB/s", s.PeakMemoryBW().GBps(), 1843.2, 0.001)
	r.Checkf("system balance", s.Balance(), 1.2, 0.01)
	return r
}

func runFigure1(ctx *Context) *Report {
	r := newReport("figure1", "Figure 1: E870 topology and link capacities")
	topo := ctx.Machine.Spec.Topology
	r.Printf("%d chips in %d groups of %d", topo.Chips, topo.Groups, topo.ChipsPerGroup)
	var x, a int
	for _, l := range topo.Links() {
		kind := "X-bus"
		if l.Kind == arch.ABus {
			kind = "A-bus"
			a++
		} else {
			x++
		}
		r.Printf("  %-6s chip%d <-> chip%d  %2d lane(s) x %.1f GB/s = %v/direction",
			kind, l.A, l.B, l.Count, l.PerLane.GBps(), l.Capacity())
	}
	r.Checkf("X-bus links", float64(x), 12, 0)
	r.Checkf("A-bus bundles", float64(a), 4, 0)
	r.Checkf("X lane GB/s", arch.XBusLaneGBs, 39.2, 0)
	r.Checkf("A lane GB/s", arch.ABusLaneGBs, 12.8, 0)
	return r
}
