package experiments

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/machine"
	"repro/internal/obs"
)

// runShardedVariant runs one experiment with a given shard count and an
// observed registry (the DES cross-checks only run when ctx.Obs is set)
// and returns the report plus the des scope's counters.
func runShardedVariant(t *testing.T, e Experiment, shards int) (*Report, map[string]uint64) {
	t.Helper()
	reg := obs.NewRegistry("t")
	ctx := &Context{Machine: machine.New(arch.E870()), Quick: true, Obs: reg, Shards: shards}
	rep := e.Run(ctx)
	counters := map[string]uint64{}
	for _, c := range reg.Child("des").Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	return rep, counters
}

// TestExperimentsShardCountInvariant is the report-level identity
// contract: figure4 (the DES cross-check) and deg-plan (healthy-vs-
// degraded DES rows) must render byte-identical lines and checks at
// every shard count. Running the 8-shard variants here also puts the
// sharded drivers under CI's race-detector job (go test -race
// ./internal/...), covering the Team workers, the SPSC mailboxes and
// the barrier exchange.
func TestExperimentsShardCountInvariant(t *testing.T) {
	fig4, ok := ByID("figure4")
	if !ok {
		t.Fatal("figure4 missing from registry")
	}
	var degPlan Experiment
	for _, e := range DegradationSuite() {
		if e.ID == "deg-plan" {
			degPlan = e
		}
	}
	if degPlan.Run == nil {
		t.Fatal("deg-plan missing from degradation suite")
	}

	for _, e := range []Experiment{fig4, degPlan} {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			ref, refCounters := runShardedVariant(t, e, 1)
			if !ref.Passed() {
				t.Fatalf("sequential reference did not pass: %s", ref.Status())
			}
			for _, shards := range []int{2, 8} {
				rep, counters := runShardedVariant(t, e, shards)
				if len(rep.Lines) != len(ref.Lines) {
					t.Fatalf("%d shards: %d lines, sequential %d", shards, len(rep.Lines), len(ref.Lines))
				}
				for i := range rep.Lines {
					if rep.Lines[i] != ref.Lines[i] {
						t.Errorf("%d shards, line %d:\n  got  %q\n  want %q", shards, i, rep.Lines[i], ref.Lines[i])
					}
				}
				if len(rep.Checks) != len(ref.Checks) {
					t.Fatalf("%d shards: %d checks, sequential %d", shards, len(rep.Checks), len(ref.Checks))
				}
				for i := range rep.Checks {
					if rep.Checks[i] != ref.Checks[i] {
						t.Errorf("%d shards, check %d: %+v != %+v", shards, i, rep.Checks[i], ref.Checks[i])
					}
				}
				// The barrier machinery adds its own counters (rounds,
				// mailbox traffic); the simulation's observable totals
				// must not move.
				for _, name := range []string{"events", "scheduled", "completions"} {
					if counters[name] != refCounters[name] {
						t.Errorf("%d shards: des/%s = %d, sequential %d", shards, name, counters[name], refCounters[name])
					}
				}
			}
		})
	}
}
