package experiments

import (
	"fmt"

	"repro/internal/micro"
	"repro/internal/smt"
)

func init() {
	register("figure4", "Figure 4: Random-access bandwidth vs threads and outstanding requests", runFigure4)
	register("figure5", "Figure 5: FMA throughput vs threads per core and loop FMAs", runFigure5)
}

func runFigure4(ctx *Context) *Report {
	r := newReport("figure4", "Figure 4: Random-access bandwidth vs threads and outstanding requests")
	pts := micro.Figure4(ctx.Machine)
	r.Printf("%8s %8s %14s", "threads", "lists", "bandwidth")
	var peak float64
	for _, p := range pts {
		r.Printf("%8d %8d %10.0f GB/s", p.Threads, p.Streams, p.Bandwidth.GBps())
		if v := p.Bandwidth.GBps(); v > peak {
			peak = v
		}
	}
	readPeak := ctx.Machine.Spec.PeakReadBW().GBps()
	r.Checkf("peak random bandwidth GB/s (almost 500)", peak, 500, 0.05)
	r.Checkf("fraction of peak read (41%)", peak/readPeak, 0.41, 0.05)
	// SMT8 needs only 4 lists; SMT4 needs 8.
	at := func(t, s int) float64 {
		for _, p := range pts {
			if p.Threads == t && p.Streams == s {
				return p.Bandwidth.GBps()
			}
		}
		return -1
	}
	r.CheckMin("SMT8 x 4 lists reaches peak", at(8, 4)/peak, 0.999)
	r.CheckMin("SMT4 x 8 lists reaches peak", at(4, 8)/peak, 0.999)
	r.CheckMin("peak over SMT1 x 1 list (x)", peak/at(1, 1), 5)
	if ctx.Obs != nil {
		// The curve above is analytic; run the DES cross-check at the
		// peak configuration so the appendix shows the event engine's
		// counters (banks, chasers, queue depth, utilization, and the
		// sharded driver's rounds, mailbox traffic and per-shard split).
		horizon := 200_000.0
		if ctx.Quick {
			horizon = 50_000.0
		}
		ctx.Machine.SimulateRandomAccessSharded(8, 4, horizon, ctx.Shards, ctx.Obs, ctx.Budget)
	}
	return r
}

func runFigure5(ctx *Context) *Report {
	r := newReport("figure5", "Figure 5: FMA throughput (fraction of peak)")
	pts := micro.Figure5(ctx.Machine)
	at := func(f, t int) float64 {
		for _, p := range pts {
			if p.FMAs == f && p.Threads == t {
				return p.FractionOfPeak
			}
		}
		return -1
	}
	r.Printf("%6s | threads/core ->", "FMAs")
	for _, f := range []int{1, 2, 4, 6, 8, 12, 16} {
		line := ""
		for t := 1; t <= 8; t++ {
			line += " " + pct(at(f, t))
		}
		r.Printf("%6d |%s", f, line)
	}
	chip := ctx.Machine.Spec.Chip
	r.Checkf("chains needed for peak (2 pipes x 6 cycles)",
		float64(smt.MinChainsForPeak(chip)), 12, 0)
	r.Checkf("12 FMAs x 1 thread", at(12, 1), 1.0, 0.001)
	r.Checkf("6 FMAs x 2 threads", at(6, 2), 1.0, 0.001)
	r.Checkf("3 FMAs x 4 threads", at(3, 4), 1.0, 0.001)
	r.Checkf("12 FMAs x 6 threads (144 regs)", at(12, 6), 128.0/144, 0.001)
	r.CheckMin("even 4 threads beat odd 3 (2 FMAs)", at(2, 4)-at(2, 3), 0.01)
	r.CheckMin("12 FMAs degrade beyond 6 threads", at(12, 6)-at(12, 8), 0.01)
	return r
}

func pct(v float64) string {
	if v < 0 {
		return "   -"
	}
	return fmt.Sprintf("%3.0f%%", v*100)
}
