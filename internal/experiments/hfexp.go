package experiments

import (
	"repro/internal/hf"
	"repro/internal/perfmodel"
)

func init() {
	register("table5", "Table V: Test molecular systems", runTable5)
	register("table6", "Table VI: Timings for HF-Comp and HF-Mem on E870", runTable6)
}

// screenTol is the paper's screening tolerance.
const screenTol = 1e-10

func runTable5(ctx *Context) *Report {
	r := newReport("table5", "Table V: Test molecular systems")
	specs := hf.TableV()
	if ctx.Quick {
		// The full basis sets take ~20s; the smallest system alone
		// exercises the whole path.
		specs = specs[3:4] // 1hsg-28
	}
	r.Printf("%-14s %6s %10s %16s %14s %20s", "molecule", "atoms", "functions",
		"non-screened", "memory (GB)", "paper ERIs / GB")
	for _, s := range specs {
		mol := s.Build()
		pairs := hf.BuildPairs(mol, ctx.Threads)
		entries := pairs.CountNonScreenedEntries(screenTol)
		memGB := float64(entries) * 8 / 1e9
		r.Printf("%-14s %6d %10d %16.3g %14.1f %12.3g / %.1f",
			s.Name, s.Atoms, mol.NumFunctions(), float64(entries), memGB,
			s.PaperERIs, s.PaperMemoryGB)
		r.Checkf(s.Name+" atoms", float64(len(mol.Atoms)), float64(s.Atoms), 0)
		r.Checkf(s.Name+" basis functions", float64(mol.NumFunctions()), float64(s.Functions), 0)
		r.CheckRatio(s.Name+" non-screened ERIs", float64(entries), s.PaperERIs, 3)
		r.CheckRatio(s.Name+" ERI memory GB", memGB, s.PaperMemoryGB, 3)
		r.CheckMin(s.Name+" exceeds a 64 GB commodity node (GB)", memGB, 64)
	}
	r.Note("synthetic geometries + even-tempered s basis stand in for the unavailable coordinates and cc-pVDZ; atom and function counts match Table V exactly, screening tolerance 1e-10 as in the paper")
	return r
}

func runTable6(ctx *Context) *Report {
	r := newReport("table6", "Table VI: Timings for HF-Comp and HF-Mem on E870")

	// Projection: stage costs calibrated on alkane-842 only; the other
	// four molecules are predictions (cross-validation).
	rows := perfmodel.ProjectTableVI(0)
	specs := hf.TableV()
	r.Printf("%-14s %6s %10s | %9s %8s %9s %9s | %8s", "molecule", "iters",
		"HF-Comp", "Precomp", "Fock", "Density", "Total", "Speedup")
	for i, row := range rows {
		s := specs[i]
		r.Printf("%-14s %6d %9.1fs | %8.1fs %7.2fs %8.2fs %8.1fs | %7.2fx",
			row.Molecule, row.Iters, row.HFComp, row.Precomp, row.Fock, row.Density, row.Total, row.Speedup)
		tolComp, tolTotal := 0.30, 0.25
		if i == 0 {
			tolComp, tolTotal = 0.02, 0.02 // the calibration anchor
		}
		r.Checkf(s.Name+" HF-Comp s", row.HFComp, s.PaperHFComp, tolComp)
		r.Checkf(s.Name+" Precomp s", row.Precomp, s.PaperPrecomp, 0.20)
		r.Checkf(s.Name+" Fock s/iter", row.Fock, s.PaperFock, 0.20)
		r.CheckRatio(s.Name+" Density s/iter", row.Density, s.PaperDensity, 2.5)
		r.Checkf(s.Name+" HF-Mem total s", row.Total, s.PaperTotal, tolTotal)
		r.CheckMin(s.Name+" HF-Mem speedup (paper 3-5.3x)", row.Speedup, 2.5)
	}
	r.Note("stage costs calibrated on alkane-842 alone; all other rows are predictions compared against the paper (cross-validation)")

	// Real end-to-end SCF at host scale: both algorithms must agree and
	// HF-Mem must win on wall clock.
	maxFuncs := 60
	if !ctx.Quick {
		maxFuncs = 120
	}
	spec := hf.TableV()[3].Scaled(maxFuncs) // 1hsg-28, shrunk
	mol := spec.Build()
	comp, err := hf.Run(mol, hf.Config{Mode: hf.HFComp, Threads: ctx.Threads, ScreenTol: screenTol}) //p8:allow determdeep: deliberate host measurement — SCF wall times are reported as labeled host references and only ratio-checked, never fingerprinted
	if err != nil {
		r.Note("host SCF failed: %v", err)
		return r
	}
	mem, err := hf.Run(mol, hf.Config{Mode: hf.HFMem, Threads: ctx.Threads, ScreenTol: screenTol}) //p8:allow determdeep: deliberate host measurement — SCF wall times are reported as labeled host references and only ratio-checked, never fingerprinted
	if err != nil {
		r.Note("host SCF failed: %v", err)
		return r
	}
	r.Printf("host SCF on %s (n_f=%d): HF-Comp %.2fs vs HF-Mem %.2fs (%.2fx), E = %.6f vs %.6f Ha",
		spec.Name, mol.NumFunctions(), comp.Total.Seconds(), mem.Total.Seconds(),
		comp.Total.Seconds()/mem.Total.Seconds(), comp.Energy, mem.Energy)
	r.Checkf("host energies agree (Ha)", mem.Energy, comp.Energy, 1e-6)
	r.CheckMin("host HF-Mem also faster (x)", comp.Total.Seconds()/mem.Total.Seconds(), 1.1)
	conv := 0.0
	if comp.Converged && mem.Converged {
		conv = 1
	}
	r.Checkf("host SCF converged (1 = yes)", conv, 1, 0)
	return r
}
