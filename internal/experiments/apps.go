package experiments

import (
	"math"
	"strconv"

	"repro/internal/graph"
	"repro/internal/jaccard"
	"repro/internal/perfmodel"
	"repro/internal/spmv"
	"repro/internal/units"
)

func init() {
	register("figure10", "Figure 10: All-pairs Jaccard similarity on R-MAT graphs", runFigure10)
	register("figure11", "Figure 11: CSR SpMV performance across the matrix suite", runFigure11)
	register("figure12", "Figure 12: Graph SpMV scalability on R-MAT graphs", runFigure12)
}

func runFigure10(ctx *Context) *Report {
	r := newReport("figure10", "Figure 10: All-pairs Jaccard similarity on R-MAT graphs")

	// Real host runs at reduced scale: the algorithm itself, measured.
	hostScales := []int{12, 13, 14}
	if ctx.Quick {
		hostScales = []int{11, 12}
	}
	r.Printf("host runs (real all-pairs kernel):")
	var prevTime float64
	var growths []float64
	for _, s := range hostScales {
		cfg := graph.DefaultRMAT(s, 1)
		cfg.EdgeFactor = 8
		cfg.Undirected = true
		g := graph.RMAT(cfg)
		st := jaccard.AllPairs(g, ctx.Threads, nil) //p8:allow determdeep: deliberate host measurement — the elapsed time is reported as a labeled host reference and only sanity-bounded, never fingerprinted
		r.Printf("  scale %2d: %8.3fs  pairs %.3g  output %v  input %v",
			s, st.Elapsed.Seconds(), float64(st.Pairs), st.OutputBytes, st.InputBytes())
		r.CheckMin("scale "+itoa(s)+" output/input ratio", float64(st.OutputBytes)/float64(st.InputBytes()), 2)
		if prevTime > 0 {
			growths = append(growths, st.Elapsed.Seconds()/prevTime)
		}
		prevTime = st.Elapsed.Seconds()
	}

	// E870 projection at the paper's scales 17-23.
	r.Printf("E870 projection (scales 17-23, 1 thread/core as in the paper):")
	jm := perfmodel.DefaultJaccardModel()
	scales := []int{17, 18, 19, 20, 21, 22, 23}
	if ctx.Quick {
		scales = []int{17, 19, 21}
	}
	var first, last perfmodel.JaccardPoint
	for i, s := range scales {
		p := perfmodel.ProjectJaccard(ctx.Machine, jm, s, 1)
		r.Printf("  scale %2d: %9.2fs  pairs %.3g  footprint %v", p.Scale, p.TimeSec, p.Pairs, p.Footprint)
		if i == 0 {
			first = p
		}
		last = p
	}
	perScale := last.TimeSec / first.TimeSec
	steps := float64(last.Scale - first.Scale)
	r.CheckMin("projected time growth per scale (x, superlinear)",
		math.Pow(perScale, 1/steps), 2.05)
	r.CheckMin("scale-23 footprint exceeds commodity node (GiB)",
		float64(last.Footprint)/float64(units.GiB), 64)
	r.Note("paper reports no absolute values for Figure 10; checks are the figure's qualitative content: superlinear growth and output >> input")
	return r
}

func runFigure11(ctx *Context) *Report {
	r := newReport("figure11", "Figure 11: CSR SpMV performance across the matrix suite")
	cm := perfmodel.DefaultCSRModel()
	suite := graph.Suite()

	r.Printf("%-18s %16s %16s", "matrix", "E870 projection", "host measured")
	var dense float64
	rates := map[string]float64{}
	for _, p := range suite {
		proj := perfmodel.ProjectCSR(ctx.Machine, cm, p)
		rates[p.Name] = proj.GFLOPs
		if p.Name == "Dense" {
			dense = proj.GFLOPs
		}
		host := ""
		if runHost := !ctx.Quick || p.NNZ < 3e6; runHost {
			hp := p
			if ctx.Quick && hp.Kind != graph.KindDense {
				// Shrink for test speed, preserving the structure.
				hp.N /= 4
				hp.NNZ /= 4
			}
			if ctx.Quick && hp.Kind == graph.KindDense {
				hp.N = 512
				hp.NNZ = 512 * 512
			}
			m := graph.Generate(hp, 1)
			rate := spmv.MeasureCSR(m, ctx.Threads, 3) //p8:allow determdeep: deliberate host measurement — the rate is reported as a labeled host reference and only sanity-bounded, never fingerprinted
			host = rate.String()
		}
		r.Printf("%-18s %11.0f GF/s %16s", p.Name, proj.GFLOPs, host)
	}
	r.CheckMin("Dense is the reference peak (GF/s)", dense, 100)
	similar := 0
	for _, p := range suite {
		if p.Kind == graph.KindBanded || p.Kind == graph.KindBlocked {
			if rates[p.Name] >= 0.6*dense {
				similar++
			}
		}
	}
	r.CheckMin("structured matrices near Dense (count >= 5)", float64(similar), 5)
	r.CheckMin("power-law matrices trail structured ones",
		rates["Wind Tunnel"]-rates["Webbase"], 1)
	r.Note("suite matrices are synthetic stand-ins with the UF originals' published sizes/nnz and structure class (offline reproduction)")
	return r
}

func runFigure12(ctx *Context) *Report {
	r := newReport("figure12", "Figure 12: Graph SpMV scalability on R-MAT graphs")

	// Real host runs of the two-scan algorithm at reduced scale.
	hostScales := []int{12, 14, 16}
	if ctx.Quick {
		hostScales = []int{11, 13}
	}
	r.Printf("host runs (real two-scan kernel, block 4096):")
	for _, s := range hostScales {
		g := graph.RMAT(graph.DefaultRMAT(s, 1))
		ts := spmv.NewTwoScan(g, 4096)
		rate := spmv.MeasureTwoScan(ts, ctx.Threads, 3) //p8:allow determdeep: deliberate host measurement — the rate is reported as a labeled host reference and only sanity-bounded, never fingerprinted
		r.Printf("  scale %2d: %8.2f GFLOP/s  avg block nnz %.0f", s, rate.GFs(), ts.AvgBlockNNZ())
	}

	// E870 projection up to the paper's scale 31 (2 billion vertices).
	tm := perfmodel.DefaultTwoScanModel()
	r.Printf("E870 projection (scales 18-31):")
	var p24, p31 perfmodel.TwoScanPoint
	for s := 18; s <= 31; s++ {
		p := perfmodel.ProjectTwoScan(ctx.Machine, tm, s)
		r.Printf("  scale %2d: %8.1f GFLOP/s  avg block nnz %.0f", p.Scale, p.GFLOPs, p.AvgBlockNNZ)
		if s == 24 {
			p24 = p
		}
		if s == 31 {
			p31 = p
		}
	}
	r.CheckRatio("R-MAT 24 avg block nnz", p24.AvgBlockNNZ, 12000, 4)
	r.CheckRatio("R-MAT 31 avg block nnz", p31.AvgBlockNNZ, 63, 2)
	r.CheckMin("performance declines from 24 to 31 (x)", p24.GFLOPs/p31.GFLOPs, 1.5)
	r.Note("scales beyond ~22 are projected: the paper's scale-31 run holds 68 billion edges, beyond host memory; block populations come from the exact analytic occupancy model (internal/perfmodel)")
	return r
}

func itoa(v int) string { return strconv.Itoa(v) }
