package experiments

// Concurrency-safety test for the experiment registry and the shared
// Machine: the simulated experiments run together on one Machine via
// parallel.Map, exactly as power8.RunAllParallel drives them. Under
// `go test -race ./internal/...` this verifies the machine model's
// read-only-after-construction contract, and the content comparison
// against a sequential pass verifies report determinism.

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/machine"
	"repro/internal/parallel"
)

func TestSimulatedExperimentsRaceFree(t *testing.T) {
	// The fully simulated experiments: no host-kernel wall-clock in
	// their reports, so sequential and parallel output must be
	// byte-identical. The host-measured ones (figure9-12, table5-6) are
	// covered by the root package's TestParallelRunAllMatchesSequential.
	simulated := map[string]bool{
		"table1": true, "table2": true, "figure1": true, "figure2": true,
		"table3": true, "figure3": true, "table4": true, "figure4": true,
		"figure5": true, "figure6": true, "figure7": true, "figure8": true,
	}
	var subset []Experiment
	for _, e := range All() {
		if simulated[e.ID] {
			subset = append(subset, e)
		}
	}
	if len(subset) != len(simulated) {
		t.Fatalf("found %d simulated experiments in the registry, want %d", len(subset), len(simulated))
	}

	m := machine.New(arch.E870())
	seq := parallel.Map(1, subset, func(_ int, e Experiment) *Report {
		return e.Run(&Context{Machine: m, Quick: true})
	})
	par := parallel.Map(8, subset, func(_ int, e Experiment) *Report {
		return e.Run(&Context{Machine: m, Quick: true})
	})

	for i := range subset {
		s, p := seq[i], par[i]
		if s.ID != p.ID {
			t.Fatalf("report %d: id %q sequential vs %q parallel", i, s.ID, p.ID)
		}
		if !reflect.DeepEqual(s.Lines, p.Lines) {
			t.Errorf("%s: lines differ between sequential and parallel runs", s.ID)
		}
		if !reflect.DeepEqual(s.Checks, p.Checks) {
			t.Errorf("%s: checks differ between sequential and parallel runs", s.ID)
		}
		if !s.Passed() {
			for _, c := range s.Checks {
				if !c.Pass() {
					t.Errorf("%s: check failed: %s", s.ID, c.String())
				}
			}
		}
	}
}
