package experiments

import (
	"fmt"

	"repro/internal/micro"
)

func init() {
	register("table4", "Table IV: Memory read access latency and bandwidth between chips", runTable4)
}

func runTable4(ctx *Context) *Report {
	r := newReport("table4", "Table IV: Memory read access latency and bandwidth between chips")
	rows, agg := micro.TableIV(ctx.Machine)

	paperLat := []float64{123, 125, 133, 213, 235, 237, 243}
	paperPF := []float64{12, 15, 15, 16, 22, 22, 22}
	paperOne := []float64{30, 30, 30, 45, 45, 45, 45}
	paperBi := []float64{53, 53, 53, 87, 82, 82, 82}

	r.Printf("%-16s %14s %14s %14s %14s", "", "lat w/o pf", "lat w/ pf", "one-direction", "bi-direction")
	for i, row := range rows {
		r.Printf("Chip0 <-> Chip%-2d %11.0f ns %11.1f ns %9.0f GB/s %9.0f GB/s",
			row.Dst, row.DemandNs, row.PrefetchedNs, row.OneDirection.GBps(), row.BiDirection.GBps())
		name := fmt.Sprintf("chip0<->chip%d", row.Dst)
		r.Checkf(name+" latency ns", row.DemandNs, paperLat[i], 0.01)
		r.Checkf(name+" prefetched ns", row.PrefetchedNs, paperPF[i], 0.30)
		r.Checkf(name+" one-direction GB/s", row.OneDirection.GBps(), paperOne[i], 0.05)
		r.Checkf(name+" bi-direction GB/s", row.BiDirection.GBps(), paperBi[i], 0.06)
	}
	r.Printf("Chip0 <-> interleaved %6.0f ns %24.0f GB/s", agg.InterleavedLatNs, agg.InterleavedBW.GBps())
	r.Printf("All-to-all interleaved %29.0f GB/s", agg.AllToAll.GBps())
	r.Printf("X-Bus aggregate %36.0f GB/s", agg.XAggregate.GBps())
	r.Printf("A-Bus aggregate %36.0f GB/s", agg.AAggregate.GBps())

	r.Checkf("interleaved latency ns", agg.InterleavedLatNs, 168, 0.06)
	r.Checkf("interleaved bandwidth GB/s", agg.InterleavedBW.GBps(), 69, 0.01)
	r.Checkf("all-to-all GB/s", agg.AllToAll.GBps(), 380, 0.05)
	r.Checkf("X aggregate GB/s", agg.XAggregate.GBps(), 632, 0.02)
	r.Checkf("A aggregate GB/s", agg.AAggregate.GBps(), 206, 0.02)
	// The paper's two qualitative observations.
	r.CheckMin("inter/intra latency ratio (~2x)", rows[4].DemandNs/rows[0].DemandNs, 1.7)
	r.CheckMin("inter-group bandwidth exceeds intra-group", rows[4].OneDirection.GBps()-rows[0].OneDirection.GBps(), 1)
	r.Note("fabric efficiencies calibrated per internal/fabric; latency skews per internal/arch (Table IV anchors)")
	return r
}
