package experiments

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/machine"
)

func quickCtx() *Context {
	return &Context{Machine: machine.New(arch.E870()), Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{
		"table1", "table2", "figure1", "figure2", "table3", "figure3",
		"table4", "figure4", "figure5", "figure6", "figure7", "figure8",
		"figure9", "figure10", "figure11", "figure12", "table5", "table6",
	}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("position %d: %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table3"); !ok {
		t.Error("table3 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}

// TestEveryExperimentPassesQuick runs the entire reproduction in quick
// mode: every experiment must produce output and every recorded
// paper-vs-measured check must pass.
func TestEveryExperimentPassesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	ctx := quickCtx()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(ctx)
			if rep.ID != e.ID {
				t.Errorf("report id %q", rep.ID)
			}
			if len(rep.Lines) == 0 {
				t.Error("no output lines")
			}
			if len(rep.Checks) == 0 {
				t.Error("no checks recorded")
			}
			for _, c := range rep.Checks {
				if !c.Pass() {
					t.Errorf("check failed: %s", c.String())
				}
			}
		})
	}
}

func TestCheckSemantics(t *testing.T) {
	if !(Check{Name: "x", Got: 105, Want: 100, Tol: 0.05}).Pass() {
		t.Error("within-tolerance check failed")
	}
	if (Check{Name: "x", Got: 106, Want: 100, Tol: 0.05}).Pass() {
		t.Error("out-of-tolerance check passed")
	}
	if !(Check{Name: "x", Got: 5, Want: 3, Min: true}).Pass() {
		t.Error("min check failed")
	}
	if (Check{Name: "x", Got: 2, Want: 3, Min: true}).Pass() {
		t.Error("min check passed below bound")
	}
	if !(Check{Name: "x", Got: 42}).Pass() {
		t.Error("shape-only check failed")
	}
	for _, c := range []Check{
		{Name: "a", Got: 1, Want: 2, Tol: 0.1},
		{Name: "b", Got: 1, Want: 1, Min: true},
		{Name: "c", Got: 1},
	} {
		if c.String() == "" {
			t.Error("empty check string")
		}
	}
}

func TestReportHelpers(t *testing.T) {
	r := newReport("id", "title")
	r.Printf("value %d", 42)
	r.Note("note %s", "x")
	r.Checkf("c", 1, 1, 0.1)
	r.CheckMin("m", 2, 1)
	r.CheckRatio("r", 10, 20, 3)
	if len(r.Lines) != 1 || !strings.Contains(r.Lines[0], "42") {
		t.Error("Printf broken")
	}
	if len(r.Notes) != 1 || len(r.Checks) != 3 {
		t.Error("helpers broken")
	}
	if !r.Passed() {
		t.Error("all checks should pass")
	}
	r.Checkf("bad", 1, 100, 0.01)
	if r.Passed() {
		t.Error("failing check not detected")
	}
}

func TestCheckRatioBothDirections(t *testing.T) {
	r := newReport("id", "t")
	r.CheckRatio("under", 1, 2.5, 3) // ratio 2.5 < 3: pass
	r.CheckRatio("over", 2.5, 1, 3)  // same, other direction
	r.CheckRatio("far", 1, 10, 3)    // ratio 10 > 3: fail
	if !r.Checks[0].Pass() || !r.Checks[1].Pass() {
		t.Error("within-ratio checks failed")
	}
	if r.Checks[2].Pass() {
		t.Error("out-of-ratio check passed")
	}
}
