// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner drives the machine model, the host
// kernels or the projections, renders the same rows/series the paper
// reports, and records paper-vs-measured checks that cmd/p8repro turns
// into EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Context carries the shared inputs of a run.
type Context struct {
	Machine *machine.Machine
	// Quick reduces working sets and scales so the full suite finishes
	// in seconds (used by tests and `go test -bench`); the default
	// full-size run is what EXPERIMENTS.md records.
	Quick bool
	// Threads for host-run kernels; 0 means all CPUs.
	Threads int
	// Obs, when non-nil, is the registry scope this experiment's
	// counters land in. The harness hands every experiment its own
	// child registry, so counters from concurrently running experiments
	// never smear together; runners thread it into the walkers and
	// simulators they build. Nil (the default) runs uninstrumented.
	Obs *obs.Registry
	// Budget, when non-nil, is the harness watchdog for this run:
	// runners thread it into the walkers and DES simulations they
	// build, each simulated event charges one unit, and exhaustion (or
	// external cancellation) aborts the experiment with an engine.Trip
	// panic that the harness's isolation wrapper converts into a failed
	// report. Nil (the default) runs unwatched.
	Budget *engine.Budget
	// Faults, when non-nil, selects the RAS degradation plan the
	// fault-suite experiments apply; nil falls back to each
	// experiment's default canned plan. The paper-suite experiments
	// ignore it — they always describe the healthy machine.
	Faults *fault.Plan
	// Shards selects the DES shard count for the Figure-4-class
	// simulations (machine.SimulateRandomAccessSharded): 1 runs the
	// sequential merged engine, larger divisors of the socket count run
	// that many parallel shard workers, and 0 (the default) picks
	// machine.AutoShards. Any legal value produces bit-identical
	// results — the knob trades wall time, never output.
	Shards int
	// Deriver, when non-nil, memoizes fault-plan derivation: the deg-*
	// experiments repeatedly derive the same degraded machines (within
	// a suite and across warm suite runs), and derivation is a pure
	// function of (plan, spec, calibration), so identical requests
	// share one frozen Machine. Nil derives directly. Like Shards this
	// is a wall-time knob only: a memoized and a direct derivation are
	// the same bits.
	Deriver *fault.Deriver
}

// Derive builds the degraded machine for a plan against this context's
// machine — through the memoizing deriver when one is configured, with
// the machine's own calibration profiles either way.
func (ctx *Context) Derive(p *fault.Plan) *machine.Machine {
	m := ctx.Machine
	return ctx.Deriver.DeriveWithCalibration(p, m.Spec, m.Net.Calibration(), m.Mem.Calibration())
}

// Check is one paper-vs-produced comparison.
type Check struct {
	Name string
	Got  float64
	Want float64 // the paper's value; 0 means shape-only (no numeric ref)
	Tol  float64 // acceptable fraction, e.g. 0.05
	// Min marks a lower-bound check: pass when Got >= Want (e.g. "the
	// L4 saves more than 30 ns").
	Min bool
}

// Pass reports whether the check holds. Shape-only checks (Want == 0,
// not Min) are recorded observations and always pass.
func (c Check) Pass() bool {
	if c.Min {
		return c.Got >= c.Want
	}
	if c.Want == 0 {
		return true
	}
	return stats.Within(c.Got, c.Want, c.Tol)
}

// String renders the check for reports.
func (c Check) String() string {
	switch {
	case c.Min:
		status := "ok"
		if !c.Pass() {
			status = "MISMATCH"
		}
		return fmt.Sprintf("%-44s got %12.4g   want >= %8.4g   %s", c.Name, c.Got, c.Want, status)
	case c.Want == 0:
		return fmt.Sprintf("%-44s got %12.4g   (shape only)", c.Name, c.Got)
	default:
		status := "ok"
		if !c.Pass() {
			status = "MISMATCH"
		}
		return fmt.Sprintf("%-44s got %12.4g   paper %12.4g   (±%.0f%%) %s",
			c.Name, c.Got, c.Want, c.Tol*100, status)
	}
}

// Report is a runner's output.
type Report struct {
	ID     string
	Title  string
	Lines  []string // rendered rows/series in the paper's layout
	Notes  []string // substitutions, calibrations, caveats
	Checks []Check
	// Stats is the experiment's counter snapshot when the run was
	// observed (Context.Obs non-nil); nil otherwise. cmd/p8repro's
	// -stats flag renders it as the per-experiment counter appendix.
	Stats *obs.Snapshot
	// Err is the failure diagnostic when the experiment did not
	// complete: a recovered panic (with stack), a tripped watchdog
	// budget, or a cancellation. A report with a non-empty Err failed
	// regardless of its checks; its Lines hold whatever was rendered
	// before the abort.
	Err string
}

// Printf appends a formatted line to the report.
func (r *Report) Printf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Note appends a formatted note.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Checkf records a paper-vs-measured comparison.
func (r *Report) Checkf(name string, got, want, tol float64) {
	r.Checks = append(r.Checks, Check{Name: name, Got: got, Want: want, Tol: tol})
}

// CheckMin records a lower-bound check: got must be at least want.
func (r *Report) CheckMin(name string, got, want float64) {
	r.Checks = append(r.Checks, Check{Name: name, Got: got, Want: want, Min: true})
}

// CheckRatio records an order-of-magnitude comparison: got must be within
// a factor of maxRatio of want (both directions). Used where the
// substitution (synthetic basis, synthetic matrices) preserves scale but
// not exact values.
func (r *Report) CheckRatio(name string, got, want, maxRatio float64) {
	ratio := got / want
	if ratio < 1 {
		ratio = 1 / ratio
	}
	r.Checks = append(r.Checks, Check{
		Name: fmt.Sprintf("%s [got %.3g, paper %.3g, within %gx]", name, got, want, maxRatio),
		Got:  maxRatio - ratio, Want: 0, Min: true,
	})
}

// Passed reports whether the experiment completed and every check
// passed.
func (r *Report) Passed() bool {
	if r.Failed() {
		return false
	}
	for _, c := range r.Checks {
		if !c.Pass() {
			return false
		}
	}
	return true
}

// Failed reports whether the experiment aborted (panic, watchdog trip
// or cancellation) instead of completing.
func (r *Report) Failed() bool { return r.Err != "" }

// Status summarizes the report for rendering: "ok", "MISMATCH" (ran
// but a check failed) or "FAILED" (did not complete).
func (r *Report) Status() string {
	switch {
	case r.Failed():
		return "FAILED"
	case !r.Passed():
		return "MISMATCH"
	default:
		return "ok"
	}
}

// Experiment is one table or figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) *Report
	// Retryable marks an experiment whose failures may be transient
	// (e.g. host-measured kernels perturbed by machine load); the
	// harness's opt-in retry policy only ever re-runs retryable
	// experiments. Model-driven experiments are deterministic, so a
	// retry would fail identically and stays off.
	Retryable bool
}

var registry []Experiment

func register(id, title string, run func(*Context) *Report) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment in the paper's order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

// orderOf fixes the paper's presentation order.
func orderOf(id string) int {
	order := []string{
		"table1", "table2", "figure1", "figure2", "table3", "figure3",
		"table4", "figure4", "figure5", "figure6", "figure7", "figure8",
		"figure9", "figure10", "figure11", "figure12", "table5", "table6",
	}
	for i, v := range order {
		if v == id {
			return i
		}
	}
	return len(order)
}

// SuiteNames returns the named suites a caller can run, in a fixed
// order: "paper" (every table and figure of the evaluation, All) and
// "degradation" (the fault sweeps, DegradationSuite). p8d's job
// requests and catalog endpoint select suites by these names.
func SuiteNames() []string { return []string{"paper", "degradation"} }

// SuiteByName resolves a suite name from SuiteNames; ok is false for
// anything else.
func SuiteByName(name string) (suite []Experiment, ok bool) {
	switch name {
	case "paper":
		return All(), true
	case "degradation":
		return DegradationSuite(), true
	}
	return nil, false
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// newReport constructs a report header.
func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title}
}
