package experiments

import (
	"repro/internal/micro"
	"repro/internal/units"
)

func init() {
	register("figure6", "Figure 6: Latency and bandwidth vs DSCR prefetch depth", runFigure6)
	register("figure7", "Figure 7: Stride-256 latency with stride-N detection on/off", runFigure7)
	register("figure8", "Figure 8: DCBT benefit for randomly ordered sequential blocks", runFigure8)
}

func runFigure6(ctx *Context) *Report {
	r := newReport("figure6", "Figure 6: Latency and bandwidth vs DSCR prefetch depth")
	lines := 1 << 18
	if ctx.Quick {
		lines = 1 << 15
	}
	pts := micro.Figure6(ctx.Machine, lines, ctx.Obs, ctx.Budget)
	r.Printf("%6s %14s %16s", "DSCR", "latency", "bandwidth")
	for _, p := range pts {
		r.Printf("%6d %11.1f ns %12.0f GB/s", p.DSCR, p.LatencyNs, p.Bandwidth.GBps())
	}
	r.CheckMin("deepest/none latency improvement (x)", pts[0].LatencyNs/pts[6].LatencyNs, 3)
	r.CheckMin("deepest/none bandwidth improvement (x)",
		float64(pts[6].Bandwidth)/float64(pts[0].Bandwidth), 3)
	// Monotonicity over depth.
	mono := 1.0
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyNs > pts[i-1].LatencyNs+0.5 || pts[i].Bandwidth < pts[i-1].Bandwidth {
			mono = 0
		}
	}
	r.Checkf("monotone in depth (1 = yes)", mono, 1, 0)
	return r
}

func runFigure7(ctx *Context) *Report {
	r := newReport("figure7", "Figure 7: Stride-256 latency with stride-N detection on/off")
	count := 60000
	if ctx.Quick {
		count = 20000
	}
	pts := micro.Figure7(ctx.Machine, count, ctx.Obs, ctx.Budget)
	r.Printf("%6s %18s %18s", "DSCR", "stride-N disabled", "stride-N enabled")
	byDepth := map[int][2]float64{}
	for _, p := range pts {
		e := byDepth[p.DSCR]
		if p.StrideN {
			e[1] = p.LatencyNs
		} else {
			e[0] = p.LatencyNs
		}
		byDepth[p.DSCR] = e
	}
	for d := 1; d <= 7; d++ {
		r.Printf("%6d %15.1f ns %15.1f ns", d, byDepth[d][0], byDepth[d][1])
	}
	r.Checkf("disabled latency ns (paper ~50)", byDepth[7][0], 50, 0.25)
	r.Checkf("enabled latency at deepest ns (paper ~14)", byDepth[7][1], 14, 0.30)
	r.CheckMin("enable speedup at deepest (x)", byDepth[7][0]/byDepth[7][1], 2.5)
	return r
}

func runFigure8(ctx *Context) *Report {
	r := newReport("figure8", "Figure 8: DCBT benefit for randomly ordered sequential blocks")
	total := 1 << 20
	if ctx.Quick {
		total = 1 << 18
	}
	pts := micro.Figure8(ctx.Machine, nil, total, ctx.Obs, ctx.Budget)
	r.Printf("%12s %16s %16s %10s", "block size", "w/o DCBT", "with DCBT", "gain")
	var small, large micro.DCBTPoint
	for _, p := range pts {
		r.Printf("%12v %13.0f %% %13.0f %% %9.2fx",
			p.BlockBytes, p.PlainFrac*100, p.HintFrac*100, p.HintFrac/p.PlainFrac)
		if p.BlockBytes == 1*units.KiB {
			small = p
		}
		if p.BlockBytes == 1*units.MiB {
			large = p
		}
	}
	r.CheckMin("DCBT gain on 1 KiB blocks (paper >25%)", small.HintFrac/small.PlainFrac, 1.25)
	r.Checkf("DCBT gain on 1 MiB blocks (negligible)", large.HintFrac/large.PlainFrac, 1.0, 0.05)
	r.Note("scan runs at SMT-2 so the un-hinted path stays below the link ceiling; see micro.Figure8")
	return r
}
