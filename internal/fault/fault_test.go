package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
)

func TestParseGrammar(t *testing.T) {
	p, err := Parse("xlane:0-1:0.5, guard:1:2, centaur:0.9:0.8:30, channel:5:1, alane:0-4:0.667")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: SpareXLanes, A: 0, B: 1, Factor: 0.5},
		{Kind: GuardCores, Chip: 1, N: 2},
		{Kind: CentaurDerate, Read: 0.9, Write: 0.8, ReplayNs: 30},
		{Kind: LoseChannels, Chip: 5, N: 1},
		{Kind: SpareALanes, A: 0, B: 4, Factor: 0.667},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Errorf("parsed %+v, want %+v", p.Events, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"bogus:1:2",
		"xlane:0-1",       // missing factor
		"xlane:01:0.5",    // malformed pair
		"guard:0:x",       // non-numeric
		"centaur:0.9:0.9", // missing replay
		"xlane:0-1:0.5,,", // empty event
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestParseEmptyIsHealthy(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || !p.Healthy() {
		t.Fatalf("empty plan: %v healthy=%v", err, p.Healthy())
	}
}

func TestParseCannedNames(t *testing.T) {
	for _, name := range CannedNames() {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.Name != name || p.Healthy() {
			t.Errorf("Parse(%q) = %q with %d events", name, p.Name, len(p.Events))
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	p, err := Canned("worst-day")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", p.String(), err)
	}
	if !reflect.DeepEqual(back.Events, p.Events) {
		t.Errorf("round trip %+v != %+v", back.Events, p.Events)
	}
}

func TestCannedPlansValidate(t *testing.T) {
	spec := arch.E870()
	for _, name := range CannedNames() {
		p, err := Canned(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(spec); err != nil {
			t.Errorf("canned plan %q invalid on the E870: %v", name, err)
		}
	}
	if _, err := Canned("no-such-plan"); err == nil {
		t.Error("unknown canned plan accepted")
	}
}

func TestCannedPlansNeverAlias(t *testing.T) {
	a, _ := Canned("worst-day")
	b, _ := Canned("worst-day")
	a.Events[0].Factor = 0.001
	if b.Events[0].Factor == 0.001 {
		t.Error("canned plans share event storage")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	spec := arch.E870()
	for _, bad := range []string{
		"xlane:0-99:0.5",      // chip out of range
		"xlane:0-4:0.5",       // A-bus pair named as X-bus
		"alane:0-1:0.5",       // X-bus pair named as A-bus
		"guard:0:8",           // guards every core
		"channel:0:8",         // loses every channel
		"guard:0:4,guard:0:4", // cumulative guard leaves none
	} {
		p, err := Parse(bad)
		if err != nil {
			t.Fatalf("Parse(%q): %v", bad, err)
		}
		if err := p.Validate(spec); err == nil {
			t.Errorf("Validate accepted %q", bad)
		}
	}
}

func TestDeriveIsDerivationNotMutation(t *testing.T) {
	spec := arch.E870()
	healthy := spec.Clone()
	p, _ := Canned("worst-day")
	m := p.Derive(spec)

	if !reflect.DeepEqual(spec, healthy) {
		t.Fatal("Derive mutated the healthy spec")
	}
	if !strings.Contains(m.Spec.Name, "[degraded: worst-day]") {
		t.Errorf("degraded machine name = %q", m.Spec.Name)
	}
	if m.Spec == spec {
		t.Fatal("degraded machine shares the healthy spec")
	}
	if m.Spec.PeakDP() >= spec.PeakDP() {
		t.Error("guarded core did not reduce peak")
	}
	if m.Spec.Latency.L4HitNs != spec.Latency.L4HitNs+15 {
		t.Errorf("replay not folded into L4 latency: %g vs %g", m.Spec.Latency.L4HitNs, spec.Latency.L4HitNs)
	}
}

func TestDeriveHealthyPlanEqualsHealthyMachine(t *testing.T) {
	spec := arch.E870()
	m := (&Plan{}).Derive(spec)
	if m.Spec.Name != spec.Name || m.Spec.Guard != nil {
		t.Errorf("healthy plan derived a degraded machine: %q", m.Spec.Name)
	}
}

func TestRandomPlansDeterministicAndValid(t *testing.T) {
	spec := arch.E870()
	for _, seed := range []uint64{1, 2, 42, 1 << 40} {
		a, b := Random(seed, spec, 6), Random(seed, spec, 6)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: two generations differ", seed)
		}
		if err := a.Validate(spec); err != nil {
			t.Errorf("seed %d: random plan invalid: %v", seed, err)
		}
		if len(a.Events) != 6 || a.Seed != seed {
			t.Errorf("seed %d: plan %+v", seed, a)
		}
	}
	if reflect.DeepEqual(Random(1, spec, 6), Random(2, spec, 6)) {
		t.Error("different seeds produced identical plans")
	}
}

func TestPublishCountsEvents(t *testing.T) {
	reg := obs.NewRegistry("test")
	p, _ := Canned("worst-day")
	p.Publish(reg)
	f := reg.Child("fault")
	if got := f.Counter("injected").Load(); got != uint64(len(p.Events)) {
		t.Errorf("injected = %d, want %d", got, len(p.Events))
	}
	if got := f.Counter(GuardCores.String()).Load(); got != 1 {
		t.Errorf("guard-cores counter = %d, want 1", got)
	}
	// Nil registry and healthy plans publish nothing, without panicking.
	p.Publish(nil)
	(&Plan{}).Publish(reg)
}

func TestSummaryDescribesEveryEvent(t *testing.T) {
	p, _ := Canned("worst-day")
	lines := p.Summary()
	if len(lines) != len(p.Events) {
		t.Fatalf("summary has %d lines for %d events", len(lines), len(p.Events))
	}
	if !strings.Contains(lines[0], "X-bus") || !strings.Contains(lines[3], "guarded out") {
		t.Errorf("summary lines: %q", lines)
	}
}
