package fault

import (
	"sync"

	"repro/internal/arch"
	"repro/internal/canon"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/memo"
	"repro/internal/memsys"
	"repro/internal/obs"
)

// AppendCanon encodes the plan canonically into an ongoing hash: name,
// seed and every event with all fields in declaration order. Events
// hash in plan order — two plans with the same events in a different
// order are different plans (lane-sparing composes multiplicatively,
// but the derived spec's name records the order).
func (p *Plan) AppendCanon(h *canon.Hasher) {
	h.Section("fault-plan")
	if p == nil {
		h.Int(-1)
		return
	}
	h.Str(p.Name)
	h.U64(p.Seed)
	h.Int(len(p.Events))
	for _, e := range p.Events {
		h.Int(int(e.Kind))
		h.Int(int(e.A))
		h.Int(int(e.B))
		h.Int(int(e.Chip))
		h.Int(e.N)
		h.F64(e.Factor)
		h.F64(e.Read)
		h.F64(e.Write)
		h.F64(e.ReplayNs)
	}
}

// Fingerprint returns the plan's canonical content address. A nil plan
// and an empty plan fingerprint differently from each other and from
// any non-trivial plan.
func (p *Plan) Fingerprint() canon.Fingerprint {
	h := canon.NewHasher("canon/fault-plan/v1")
	p.AppendCanon(h)
	return h.Sum()
}

// Deriver memoizes plan derivation: Derive is a pure function of
// (plan, spec, calibrations) and a derived Machine is frozen after
// construction, so one derived machine can serve every experiment and
// every suite run that asks for the same degradation — concurrently,
// by the Machine read-only contract that p8lint's frozenmachine pass
// enforces. Under the parallel harness the deg-* experiments race to
// derive identical machines; the cache's singleflight runs that
// derivation once and the rest share it.
//
// A nil *Deriver derives directly (no cache), so callers thread it
// through unconditionally.
type Deriver struct {
	cache *memo.Cache

	// specs and calibs intern input fingerprints: a SystemSpec is
	// read-only after construction (the same contract that freezes
	// Machines) and calibration profiles are value types, so one
	// hashing pass per distinct spec object / calibration pair suffices
	// — without it the per-call hash of the full inputs costs more than
	// a small derivation itself. Both maps are bounded by the number of
	// distinct inputs a process derives against (normally one each).
	mu     sync.Mutex
	specs  map[*arch.SystemSpec]canon.Fingerprint
	calibs map[calibPair]canon.Fingerprint
}

// calibPair keys the calibration intern map; both profiles are small
// comparable values (the memsys curve compares by pointer, which is
// exactly the sharing the E870Calibration constructor provides).
type calibPair struct {
	fc fabric.Calibration
	mc memsys.Calibration
}

// NewDeriver builds a deriver with a byte budget for retained machines
// (<= 0 keeps every derivation; a derived E870 costs a few KiB). reg,
// when non-nil, receives hit/miss/eviction counters under
// "memo/derive".
func NewDeriver(maxBytes int64, reg *obs.Registry) *Deriver {
	return &Deriver{
		cache:  memo.New("derive", maxBytes, reg),
		specs:  map[*arch.SystemSpec]canon.Fingerprint{},
		calibs: map[calibPair]canon.Fingerprint{},
	}
}

// internCap bounds the intern maps: callers that mint fresh spec or
// curve objects per call would otherwise grow them without limit. Past
// the cap the fingerprint is computed but not retained.
const internCap = 64

// specFp returns the interned fingerprint of a spec, hashing it at
// most once per distinct pointer.
func (d *Deriver) specFp(spec *arch.SystemSpec) canon.Fingerprint {
	d.mu.Lock()
	fp, ok := d.specs[spec]
	d.mu.Unlock()
	if ok {
		return fp
	}
	fp = canon.Spec(spec)
	d.mu.Lock()
	if len(d.specs) < internCap {
		d.specs[spec] = fp
	}
	d.mu.Unlock()
	return fp
}

// calibFp returns the interned fingerprint of a calibration pair.
func (d *Deriver) calibFp(fc fabric.Calibration, mc memsys.Calibration) canon.Fingerprint {
	key := calibPair{fc: fc, mc: mc}
	d.mu.Lock()
	fp, ok := d.calibs[key]
	d.mu.Unlock()
	if ok {
		return fp
	}
	h := canon.NewHasher("canon/calib-pair/v1")
	canon.AppendFabricCalibration(h, fc)
	canon.AppendMemsysCalibration(h, mc)
	fp = h.Sum()
	d.mu.Lock()
	if len(d.calibs) < internCap {
		d.calibs[key] = fp
	}
	d.mu.Unlock()
	return fp
}

// Cache exposes the underlying memo cache (stats and tests).
func (d *Deriver) Cache() *memo.Cache {
	if d == nil {
		return nil
	}
	return d.cache
}

// e870Calibs shares one calibration pair across all Derive calls: the
// memsys curve compares by pointer, so a stable pointer is what lets
// the deriver's calibration interning hit (fresh constructor calls
// would allocate a new curve every time).
var e870Calibs = sync.OnceValues(func() (fabric.Calibration, memsys.Calibration) {
	return fabric.E870Calibration(), memsys.E870Calibration()
})

// Derive is the memoized Plan.Derive: the E870-fitted calibrations.
func (d *Deriver) Derive(p *Plan, spec *arch.SystemSpec) *machine.Machine {
	fc, mc := e870Calibs()
	return d.DeriveWithCalibration(p, spec, fc, mc)
}

// DeriveWithCalibration is the memoized Plan.DeriveWithCalibration.
// Like it, it panics on an invalid plan (CLIs validate first).
func (d *Deriver) DeriveWithCalibration(p *Plan, spec *arch.SystemSpec, fc fabric.Calibration, mc memsys.Calibration) *machine.Machine {
	if d == nil || d.cache == nil {
		return p.DeriveWithCalibration(spec, fc, mc)
	}
	h := canon.NewHasher("canon/derive/v1")
	p.AppendCanon(h)
	h.Fp(d.specFp(spec))
	h.Fp(d.calibFp(fc, mc))
	v, _, err := d.cache.Do(h.Sum(), func() (memo.Result, error) {
		m := p.DeriveWithCalibration(spec, fc, mc)
		return memo.Result{V: m, Cost: machineCost(spec), Store: true}, nil
	})
	if err != nil {
		// Do never invents errors and this compute returns none;
		// derivation failures arrive as panics and pass through.
		panic(err)
	}
	return v.(*machine.Machine)
}

// machineCost estimates the resident bytes of a derived Machine for
// the cache budget: the spec clone, the topology share it references,
// the overlay maps and the two model shells. It only needs to be the
// right order of magnitude — the budget bounds memory growth, it is
// not an allocator.
func machineCost(spec *arch.SystemSpec) int64 {
	const (
		specBytes    = 2048 // SystemSpec value + guard map + name
		overlayBytes = 1024 // fabric/memsys overlays + model shells
		perLink      = 64
		perChip      = 32
	)
	return specBytes + overlayBytes +
		int64(len(spec.Topology.Links()))*perLink +
		int64(spec.Topology.Chips)*perChip
}
