package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
)

// Parse reads a plan from its textual form: comma-separated events in
// the grammar
//
//	xlane:<chipA>-<chipB>:<factor>    X-bus spared to factor of width
//	alane:<chipA>-<chipB>:<factor>    A-bus spared to factor of width
//	centaur:<read>:<write>:<replayNs> link derates + replay adder
//	guard:<chip>:<cores>              cores guarded out on chip
//	channel:<chip>:<channels>         memory channels lost on chip
//
// A canned plan name (see CannedNames) is also accepted. Parse checks
// syntax only; Validate checks the events against a machine spec.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return &Plan{}, nil
	}
	if p, ok := cannedPlans()[s]; ok {
		return p, nil
	}
	p := &Plan{Name: s}
	for _, part := range strings.Split(s, ",") {
		e, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, e)
	}
	return p, nil
}

func parseEvent(s string) (Event, error) {
	fields := strings.Split(s, ":")
	bad := func(format string, args ...any) (Event, error) {
		return Event{}, fmt.Errorf("fault: bad event %q: %s", s, fmt.Sprintf(format, args...))
	}
	switch fields[0] {
	case "xlane", "alane":
		if len(fields) != 3 {
			return bad("want %s:<chipA>-<chipB>:<factor>", fields[0])
		}
		a, b, err := parseChipPair(fields[1])
		if err != nil {
			return bad("%v", err)
		}
		factor, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return bad("factor %q is not a number", fields[2])
		}
		kind := SpareXLanes
		if fields[0] == "alane" {
			kind = SpareALanes
		}
		return Event{Kind: kind, A: a, B: b, Factor: factor}, nil
	case "centaur":
		if len(fields) != 4 {
			return bad("want centaur:<read>:<write>:<replayNs>")
		}
		var vals [3]float64
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return bad("%q is not a number", f)
			}
			vals[i] = v
		}
		return Event{Kind: CentaurDerate, Read: vals[0], Write: vals[1], ReplayNs: vals[2]}, nil
	case "guard", "channel":
		if len(fields) != 3 {
			return bad("want %s:<chip>:<count>", fields[0])
		}
		chip, err := strconv.Atoi(fields[1])
		if err != nil {
			return bad("chip %q is not a number", fields[1])
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return bad("count %q is not a number", fields[2])
		}
		kind := GuardCores
		if fields[0] == "channel" {
			kind = LoseChannels
		}
		return Event{Kind: kind, Chip: arch.ChipID(chip), N: n}, nil
	default:
		return bad("unknown kind %q (want xlane, alane, centaur, guard or channel)", fields[0])
	}
}

func parseChipPair(s string) (arch.ChipID, arch.ChipID, error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("chip pair %q wants <chipA>-<chipB>", s)
	}
	ai, err := strconv.Atoi(a)
	if err != nil {
		return 0, 0, fmt.Errorf("chip %q is not a number", a)
	}
	bi, err := strconv.Atoi(b)
	if err != nil {
		return 0, 0, fmt.Errorf("chip %q is not a number", b)
	}
	return arch.ChipID(ai), arch.ChipID(bi), nil
}
