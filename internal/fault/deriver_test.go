package fault

import (
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/canon"
	"repro/internal/obs"
)

func testPlan() *Plan {
	return &Plan{Name: "t", Events: []Event{
		{Kind: SpareXLanes, A: 0, B: 1, Factor: 0.5},
		{Kind: GuardCores, Chip: 0, N: 2},
	}}
}

// TestDeriverMatchesDirect: the memoized path must produce a machine
// that fingerprints identically to a direct derivation — the cache is a
// wall-time knob, never a semantic one.
func TestDeriverMatchesDirect(t *testing.T) {
	spec := arch.E870()
	plan := testPlan()
	direct := plan.Derive(spec)
	memoized := NewDeriver(0, nil).Derive(plan, spec)
	if canon.Machine(direct) != canon.Machine(memoized) {
		t.Fatal("memoized derivation fingerprints differently from direct")
	}
}

// TestDeriverReuses: equal plans share one derived machine (pointer
// identity — safe by the Machine read-only contract), distinct plans do
// not.
func TestDeriverReuses(t *testing.T) {
	spec := arch.E870()
	d := NewDeriver(0, nil)
	a := d.Derive(testPlan(), spec)
	b := d.Derive(testPlan(), spec)
	if a != b {
		t.Fatal("equal plans derived twice")
	}
	other := testPlan()
	other.Events[0].Factor = 0.75
	if d.Derive(other, spec) == a {
		t.Fatal("different plans shared a cached machine")
	}
}

// TestDeriverConcurrent: racing derivations of one plan collapse to a
// single machine via singleflight.
func TestDeriverConcurrent(t *testing.T) {
	spec := arch.E870()
	reg := obs.NewRegistry("test")
	d := NewDeriver(0, reg)
	const n = 8
	machines := make([]*arch.SystemSpec, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			machines[i] = d.Derive(testPlan(), spec).Spec
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if machines[i] != machines[0] {
			t.Fatal("concurrent derivations did not share one machine")
		}
	}
	var misses uint64
	for _, c := range reg.Child("memo").Child("derive").Snapshot().Counters {
		if c.Name == "misses" {
			misses = c.Value
		}
	}
	if misses != 1 {
		t.Fatalf("%d derive misses for one plan, want 1", misses)
	}
}

// TestNilDeriver: a nil deriver is the documented no-cache path.
func TestNilDeriver(t *testing.T) {
	var d *Deriver
	m := d.Derive(testPlan(), arch.E870())
	if m == nil {
		t.Fatal("nil deriver returned nil machine")
	}
	if d.Cache() != nil {
		t.Fatal("nil deriver has a cache")
	}
}

// TestPlanFingerprint: nil, empty and populated plans hash apart, and
// event order matters (lane sparing composes, but the plan identity is
// ordered by contract).
func TestPlanFingerprint(t *testing.T) {
	var nilPlan *Plan
	empty := &Plan{}
	if nilPlan.Fingerprint() == empty.Fingerprint() {
		t.Error("nil and empty plans fingerprint alike")
	}
	a := &Plan{Events: []Event{{Kind: GuardCores, Chip: 0, N: 1}, {Kind: LoseChannels, Chip: 1, N: 1}}}
	b := &Plan{Events: []Event{{Kind: LoseChannels, Chip: 1, N: 1}, {Kind: GuardCores, Chip: 0, N: 1}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("event order is not part of the plan fingerprint")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("plan fingerprint unstable")
	}
}
