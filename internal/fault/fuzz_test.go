package fault

import (
	"strings"
	"testing"
)

// FuzzParse drives the plan grammar: any input either fails cleanly or
// yields a plan whose rendered form re-parses to the same plan
// (Parse → String → Parse is the identity on the grammar's image). The
// seed corpus covers every event kind, plan composition, the canned
// names and a spread of near-miss syntax.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"worst-day",
		"xlane:0-1:0.5",
		"alane:0-4:0.75",
		"centaur:0.9:0.8:10",
		"guard:0:2",
		"channel:1:1",
		"xlane:0-1:0.5,guard:0:2,channel:1:1,centaur:1:1:5",
		" guard:0:1 , channel:7:2 ",
		"xlane:0-1:0.3333333333333333",
		// near-misses: unknown kind, missing fields, bad numbers
		"xlane:0-1",
		"guard:zero:1",
		"centaur:1:1",
		"lanes:0-1:0.5",
		"xlane:01:0.5",
		"guard:0:2,",
		":::",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return // rejected cleanly; nothing more to hold
		}
		if p == nil {
			t.Fatalf("Parse(%q) returned nil plan without error", s)
		}
		text := p.String()
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q) accepted but its rendering %q does not re-parse: %v", s, text, err)
		}
		if got := p2.String(); got != text {
			t.Fatalf("round-trip not a fixed point: %q -> %q -> %q", s, text, got)
		}
		if len(p2.Events) != len(p.Events) {
			t.Fatalf("round-trip changed event count: %d -> %d", len(p.Events), len(p2.Events))
		}
		for i := range p.Events {
			// Compare through the grammar, not struct equality: NaN
			// factors (the grammar accepts them) break ==, but their
			// rendering is stable.
			if p.Events[i].String() != p2.Events[i].String() {
				t.Fatalf("event %d changed across round-trip: %q -> %q",
					i, p.Events[i].String(), p2.Events[i].String())
			}
			if p.Events[i].Kind != p2.Events[i].Kind {
				t.Fatalf("event %d kind changed across round-trip", i)
			}
		}
	})
}

// TestParseRoundTripCanned pins the round-trip identity on every canned
// plan: their event lists survive rendering and re-parsing, and the
// re-parsed plan fingerprints its events identically (names differ: a
// re-parsed plan is named by its grammar string).
func TestParseRoundTripCanned(t *testing.T) {
	for _, name := range CannedNames() {
		p, err := Canned(name)
		if err != nil {
			t.Fatalf("Canned(%q): %v", name, err)
		}
		text := p.String()
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("canned plan %q renders to %q which does not parse: %v", name, text, err)
		}
		if p2.String() != text {
			t.Fatalf("canned plan %q round-trip drifted: %q -> %q", name, text, p2.String())
		}
		// Same events => same event encoding; only Name/Seed may differ.
		a := &Plan{Events: p.Events}
		b := &Plan{Events: p2.Events}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("canned plan %q events changed across round-trip", name)
		}
	}
}

// TestParseRejections pins a few diagnostics so grammar errors stay
// actionable.
func TestParseRejections(t *testing.T) {
	for _, tc := range []struct{ in, wantSub string }{
		{"xlane:0-1", "want xlane:<chipA>-<chipB>:<factor>"},
		{"guard:zero:1", "not a number"},
		{"warp:0:1", "unknown kind"},
		{"xlane:0:0.5", "chip pair"},
	} {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error %q missing %q", tc.in, err, tc.wantSub)
		}
	}
}
