// Package fault describes RAS degradation events on a POWER8 SMP
// system and derives degraded machine variants from them. POWER8's RAS
// design degrades rather than fails: an X- or A-bus that loses lanes is
// spared down to reduced width, a Centaur link with persistent CRC
// errors retrains slower and replays transfers, a core that fails
// runtime diagnostics is guarded out by firmware, and a dead memory
// channel drops out of the interleave. A fault.Plan is a deterministic,
// seed-reproducible list of such events; Derive turns it into a frozen
// machine.Machine through the normal constructor path, so a degraded
// machine obeys exactly the same read-only contract as a healthy one —
// degradation is derivation, never mutation.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/obs"
)

// Kind is the category of one RAS event.
type Kind int

// The modelled RAS event kinds.
const (
	// SpareXLanes runs an intra-group X-bus at a fraction of its width.
	SpareXLanes Kind = iota
	// SpareALanes runs an inter-group A-bus bundle at a fraction of its
	// width (the E870 bonds three lanes; losing one leaves 2/3).
	SpareALanes
	// CentaurDerate retrains the Centaur DMI links at reduced speed and
	// adds a per-access replay latency.
	CentaurDerate
	// GuardCores fences failed cores off a chip; their threads re-home
	// onto the survivors.
	GuardCores
	// LoseChannels takes memory channels on a chip out of the
	// interleave.
	LoseChannels
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SpareXLanes:
		return "x-lane-spare"
	case SpareALanes:
		return "a-lane-spare"
	case CentaurDerate:
		return "centaur-derate"
	case GuardCores:
		return "guard-cores"
	case LoseChannels:
		return "lose-channels"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one RAS event. Which fields matter depends on Kind:
// lane-sparing events use A, B and Factor; CentaurDerate uses Read,
// Write and ReplayNs; GuardCores and LoseChannels use Chip and N.
type Event struct {
	Kind   Kind
	A, B   arch.ChipID // lane sparing: link endpoints
	Chip   arch.ChipID // guard / channel loss: target chip
	N      int         // cores guarded or channels lost
	Factor float64     // lane sparing: fraction of raw width remaining

	Read, Write float64 // Centaur link speed factors
	ReplayNs    float64 // per-access replay latency adder
}

// String renders the event in the Parse grammar.
func (e Event) String() string {
	switch e.Kind {
	case SpareXLanes:
		return fmt.Sprintf("xlane:%d-%d:%g", e.A, e.B, e.Factor)
	case SpareALanes:
		return fmt.Sprintf("alane:%d-%d:%g", e.A, e.B, e.Factor)
	case CentaurDerate:
		return fmt.Sprintf("centaur:%g:%g:%g", e.Read, e.Write, e.ReplayNs)
	case GuardCores:
		return fmt.Sprintf("guard:%d:%d", e.Chip, e.N)
	case LoseChannels:
		return fmt.Sprintf("channel:%d:%d", e.Chip, e.N)
	default:
		return fmt.Sprintf("event(%d)", int(e.Kind))
	}
}

// Describe returns a human-readable one-line description.
func (e Event) Describe() string {
	switch e.Kind {
	case SpareXLanes:
		return fmt.Sprintf("X-bus %d<->%d spared to %.0f%% width", e.A, e.B, 100*e.Factor)
	case SpareALanes:
		return fmt.Sprintf("A-bus %d<->%d spared to %.0f%% width", e.A, e.B, 100*e.Factor)
	case CentaurDerate:
		return fmt.Sprintf("Centaur links at %.0f%%/%.0f%% speed, +%.0f ns replay", 100*e.Read, 100*e.Write, e.ReplayNs)
	case GuardCores:
		return fmt.Sprintf("%d core(s) guarded out on chip %d", e.N, e.Chip)
	case LoseChannels:
		return fmt.Sprintf("%d memory channel(s) lost on chip %d", e.N, e.Chip)
	default:
		return e.String()
	}
}

// Plan is a named, reproducible list of RAS events. The zero value is
// a healthy plan. Seed is non-zero only for randomly generated plans
// and records how to regenerate them.
type Plan struct {
	Name   string
	Seed   uint64
	Events []Event
}

// Healthy reports whether the plan injects nothing.
func (p *Plan) Healthy() bool { return p == nil || len(p.Events) == 0 }

// String renders the plan in the Parse grammar (events joined by
// commas).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Validate checks every event against a system spec: link endpoints
// must be wired with the right bus kind, factors must be in (0,1],
// guarded chips must keep a core, lossy chips must keep a channel.
func (p *Plan) Validate(spec *arch.SystemSpec) error {
	if p.Healthy() {
		return nil
	}
	for i, e := range p.Events {
		if err := p.validateEvent(e, spec); err != nil {
			return fmt.Errorf("fault: plan %q event %d (%s): %w", p.Name, i, e, err)
		}
	}
	// The overlays run their own aggregate checks (e.g. cumulative
	// channel loss across several events leaving a chip empty).
	_, fd, md, err := p.build(spec)
	if err != nil {
		return err
	}
	if err := fd.Validate(spec.Topology); err != nil {
		return err
	}
	return md.Validate(spec)
}

func (p *Plan) validateEvent(e Event, spec *arch.SystemSpec) error {
	inRange := func(c arch.ChipID) bool { return int(c) >= 0 && int(c) < spec.Topology.Chips }
	switch e.Kind {
	case SpareXLanes, SpareALanes:
		if !inRange(e.A) || !inRange(e.B) {
			return fmt.Errorf("chip out of range [0,%d)", spec.Topology.Chips)
		}
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("lane factor %g out of (0,1]", e.Factor)
		}
		want := arch.XBus
		if e.Kind == SpareALanes {
			want = arch.ABus
		}
		if l, ok := spec.Topology.LinkBetween(e.A, e.B); !ok || l.Kind != want {
			return fmt.Errorf("no %v between chips %d and %d", want, e.A, e.B)
		}
	case CentaurDerate:
		if e.Read <= 0 || e.Read > 1 || e.Write <= 0 || e.Write > 1 {
			return fmt.Errorf("link derate (%g,%g) out of (0,1]", e.Read, e.Write)
		}
		if e.ReplayNs < 0 {
			return fmt.Errorf("negative replay latency %g", e.ReplayNs)
		}
	case GuardCores:
		if !inRange(e.Chip) {
			return fmt.Errorf("chip %d out of range [0,%d)", e.Chip, spec.Topology.Chips)
		}
		if e.N <= 0 || e.N >= spec.Chip.Cores {
			return fmt.Errorf("guarding %d of %d cores", e.N, spec.Chip.Cores)
		}
	case LoseChannels:
		if !inRange(e.Chip) {
			return fmt.Errorf("chip %d out of range [0,%d)", e.Chip, spec.Topology.Chips)
		}
		if e.N <= 0 || e.N >= spec.Memory.CentaursPerChip {
			return fmt.Errorf("losing %d of %d channels", e.N, spec.Memory.CentaursPerChip)
		}
	default:
		return fmt.Errorf("unknown event kind %d", int(e.Kind))
	}
	return nil
}

// build derives the degraded spec and overlays without constructing a
// Machine. The spec clone carries the guard map and the replay latency
// folded into the Centaur-path latencies (L4 and DRAM); the overlays
// carry everything bandwidth-shaped.
func (p *Plan) build(spec *arch.SystemSpec) (*arch.SystemSpec, *fabric.Degradation, *memsys.Degradation, error) {
	out := spec.Clone()
	var fd *fabric.Degradation
	var md *memsys.Degradation
	var replayNs float64
	for _, e := range p.Events {
		switch e.Kind {
		case SpareXLanes, SpareALanes:
			if fd == nil {
				fd = fabric.NewDegradation()
			}
			kind := arch.XBus
			if e.Kind == SpareALanes {
				kind = arch.ABus
			}
			fd.SpareLanes(e.A, e.B, kind, e.Factor)
		case CentaurDerate:
			if md == nil {
				md = memsys.NewDegradation()
			}
			md.DerateLinks(e.Read, e.Write).AddReplayNs(e.ReplayNs)
			replayNs += e.ReplayNs
		case GuardCores:
			if out.Guard == nil {
				out.Guard = arch.NewGuardMap()
			}
			out.Guard.GuardCores(e.Chip, e.N)
		case LoseChannels:
			if md == nil {
				md = memsys.NewDegradation()
			}
			md.LoseChannels(e.Chip, e.N)
		default:
			return nil, nil, nil, fmt.Errorf("fault: unknown event kind %d", int(e.Kind))
		}
	}
	if replayNs > 0 {
		// Every access through the Centaur — L4 hit or DRAM — pays the
		// link replay; on-chip cache levels do not.
		out.Latency.L4HitNs += replayNs
		out.Latency.LocalDRAMNs += replayNs
		out.Latency.DRAMStridedNs += replayNs
	}
	if err := out.Guard.Validate(out); err != nil {
		return nil, nil, nil, err
	}
	if !p.Healthy() {
		out.Name = fmt.Sprintf("%s [degraded: %s]", spec.Name, p.planLabel())
	}
	return out, fd, md, nil
}

func (p *Plan) planLabel() string {
	if p.Name != "" {
		return p.Name
	}
	return p.String()
}

// Derive builds the degraded machine for a plan with the E870-fitted
// calibrations. It panics on an invalid plan; CLIs validate first.
func (p *Plan) Derive(spec *arch.SystemSpec) *machine.Machine {
	return p.DeriveWithCalibration(spec, fabric.E870Calibration(), memsys.E870Calibration())
}

// DeriveWithCalibration builds the degraded machine with explicit
// calibration profiles through machine.NewDegraded — the same frozen
// constructor path a healthy machine takes.
func (p *Plan) DeriveWithCalibration(spec *arch.SystemSpec, fc fabric.Calibration, mc memsys.Calibration) *machine.Machine {
	if p.Healthy() {
		return machine.NewWithCalibration(spec, fc, mc)
	}
	out, fd, md, err := p.build(spec)
	if err != nil {
		panic(err)
	}
	return machine.NewDegraded(out, fc, mc, fd, md)
}

// Publish records the plan's injected events in a registry under a
// "fault" child scope: total injected plus one counter per event kind.
// A nil registry or a healthy plan publishes nothing.
func (p *Plan) Publish(reg *obs.Registry) {
	if reg == nil || p.Healthy() {
		return
	}
	f := reg.Child("fault")
	f.Counter("injected").Add(uint64(len(p.Events)))
	for _, e := range p.Events {
		f.Counter(e.Kind.String()).Inc()
	}
}

// Summary returns one Describe line per event, in plan order.
func (p *Plan) Summary() []string {
	if p.Healthy() {
		return nil
	}
	lines := make([]string, len(p.Events))
	for i, e := range p.Events {
		lines[i] = e.Describe()
	}
	return lines
}

// Canned returns a named predefined plan (see CannedNames), or an
// error listing the known names.
func Canned(name string) (*Plan, error) {
	if p, ok := cannedPlans()[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("fault: unknown canned plan %q (have %s)", name, strings.Join(CannedNames(), ", "))
}

// CannedNames returns the predefined plan names, sorted.
func CannedNames() []string {
	plans := cannedPlans()
	names := make([]string, 0, len(plans))
	for n := range plans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// cannedPlans defines the predefined degradation scenarios. They are
// rebuilt per call so callers can never alias shared state.
func cannedPlans() map[string]*Plan {
	return map[string]*Plan{
		// One X-bus inside group 0 running at half width.
		"spared-xbus": {Name: "spared-xbus", Events: []Event{
			{Kind: SpareXLanes, A: 0, B: 1, Factor: 0.5},
		}},
		// One of the three bonded A-bus lanes between chips 0 and 4
		// spared out.
		"spared-abus": {Name: "spared-abus", Events: []Event{
			{Kind: SpareALanes, A: 0, B: 4, Factor: 2.0 / 3.0},
		}},
		// Firmware guarded two cores out of chip 0.
		"guarded-cores": {Name: "guarded-cores", Events: []Event{
			{Kind: GuardCores, Chip: 0, N: 2},
		}},
		// Chip 3 lost two of its eight memory channels.
		"lost-channels": {Name: "lost-channels", Events: []Event{
			{Kind: LoseChannels, Chip: 3, N: 2},
		}},
		// Centaur links retrained at 90% with a 30 ns replay penalty.
		"replay-storm": {Name: "replay-storm", Events: []Event{
			{Kind: CentaurDerate, Read: 0.9, Write: 0.9, ReplayNs: 30},
		}},
		// Everything at once: the machine limps but keeps running.
		"worst-day": {Name: "worst-day", Events: []Event{
			{Kind: SpareXLanes, A: 0, B: 1, Factor: 0.5},
			{Kind: SpareALanes, A: 2, B: 6, Factor: 1.0 / 3.0},
			{Kind: CentaurDerate, Read: 0.9, Write: 0.9, ReplayNs: 15},
			{Kind: GuardCores, Chip: 1, N: 1},
			{Kind: LoseChannels, Chip: 5, N: 1},
		}},
	}
}
