package fault

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/rng"
)

// Random generates a plan of n random RAS events valid for the spec,
// fully determined by the seed: the same (seed, spec, n) triple always
// yields the same plan, so a degraded run is reproducible from its
// seed alone. Event parameters are drawn from the plausible field
// ranges (lane sparing to one half or one lane out, single-core
// guards, one or two channels lost, mild Centaur derates).
func Random(seed uint64, spec *arch.SystemSpec, n int) *Plan {
	if n < 0 {
		panic(fmt.Sprintf("fault: cannot generate %d events", n))
	}
	r := rng.New(seed)
	p := &Plan{Name: fmt.Sprintf("random-%d", seed), Seed: seed}
	var xlinks, alinks []arch.Link
	for _, l := range spec.Topology.Links() {
		if l.Kind == arch.XBus {
			xlinks = append(xlinks, l)
		} else {
			alinks = append(alinks, l)
		}
	}
	// Aggregate trackers keep cumulative random events within the
	// validity limits (a chip must keep a core and a channel).
	guarded := make([]int, spec.Topology.Chips)
	lost := make([]int, spec.Topology.Chips)
	for len(p.Events) < n {
		switch Kind(r.Intn(int(numKinds))) {
		case SpareXLanes:
			if len(xlinks) == 0 {
				continue
			}
			l := xlinks[r.Intn(len(xlinks))]
			factors := []float64{0.5, 0.75}
			p.Events = append(p.Events, Event{
				Kind: SpareXLanes, A: l.A, B: l.B,
				Factor: factors[r.Intn(len(factors))],
			})
		case SpareALanes:
			if len(alinks) == 0 {
				continue
			}
			l := alinks[r.Intn(len(alinks))]
			// Sparing whole lanes out of the bonded bundle.
			out := 1 + r.Intn(l.Count)
			if out == l.Count {
				out = l.Count - 1
			}
			if out == 0 {
				continue
			}
			p.Events = append(p.Events, Event{
				Kind: SpareALanes, A: l.A, B: l.B,
				Factor: float64(l.Count-out) / float64(l.Count),
			})
		case CentaurDerate:
			derates := []float64{0.9, 0.8}
			replays := []float64{15, 30}
			p.Events = append(p.Events, Event{
				Kind:     CentaurDerate,
				Read:     derates[r.Intn(len(derates))],
				Write:    derates[r.Intn(len(derates))],
				ReplayNs: replays[r.Intn(len(replays))],
			})
		case GuardCores:
			c := r.Intn(spec.Topology.Chips)
			if guarded[c]+1 >= spec.Chip.Cores {
				continue
			}
			guarded[c]++
			p.Events = append(p.Events, Event{Kind: GuardCores, Chip: arch.ChipID(c), N: 1})
		case LoseChannels:
			c := r.Intn(spec.Topology.Chips)
			k := 1 + r.Intn(2)
			if lost[c]+k >= spec.Memory.CentaursPerChip {
				continue
			}
			lost[c] += k
			p.Events = append(p.Events, Event{Kind: LoseChannels, Chip: arch.ChipID(c), N: k})
		}
	}
	return p
}
