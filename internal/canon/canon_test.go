package canon_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/canon"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/memsys"
)

// Golden vectors: the canonical encodings are a persistence format (the
// on-disk cache is keyed by them), so the fingerprints of fixed inputs
// are frozen here as hex. A mismatch means the encoding changed — which
// is allowed only together with a domain-tag version bump (see the
// package comment), and then these vectors are regenerated.
const (
	goldenPrimitives   = "31e5f50a3b1a4d53442a7d4177653d443e912e9358ad99460098b55198daa072"
	goldenE870Spec     = "f3a6be1d7ff537ea4a4a4a51437eb3bddf5a4eaf329e577c6fb239308b72473e"
	goldenFabricCalib  = "eb889d92f745bfff8641b8974fc809f92908b00e1ca13b3a6b3d2f2438d001e0"
	goldenMemsysCalib  = "433a101492a6bce11d8e69664d899467689cb7c7ccdbd73d86e4e759867be91d"
	goldenE870Machine  = "36f92b71319989d51d09f988bb368881f47a0a7687b7c9d0474a4a392121e6fe"
	goldenMachineInput = "3700615a18031c1d9ce2fa5443a19b10f5445dc17d59c3a50f0c0245dcae372e"
)

// TestPrimitivesGolden freezes the byte-level encoding of every Hasher
// primitive: tag, ints, floats, bools, strings, slices, sections and
// folded fingerprints.
func TestPrimitivesGolden(t *testing.T) {
	h := canon.NewHasher("canon/test/v1")
	h.U64(42)
	h.I64(-1)
	h.Int(7)
	h.F64(3.5)
	h.Bool(true)
	h.Bool(false)
	h.Str("power8")
	h.Bytes([]byte{0xde, 0xad})
	h.F64s([]float64{1, 2.5})
	h.Section("sub")
	h.Fp(canon.Fingerprint{1, 2, 3})
	if got := h.Sum().String(); got != goldenPrimitives {
		t.Errorf("primitive encoding drifted:\n got  %s\n want %s", got, goldenPrimitives)
	}
}

// TestE870Golden freezes the fingerprints of the paper system's fixed
// inputs. These must be stable across processes, runs and architectures
// — they are the cross-process half of the warm-run contract.
func TestE870Golden(t *testing.T) {
	spec := arch.E870()
	fc := fabric.E870Calibration()
	mc := memsys.E870Calibration()
	for _, tc := range []struct {
		name string
		got  canon.Fingerprint
		want string
	}{
		{"spec", canon.Spec(spec), goldenE870Spec},
		{"fabric-calib", canon.FabricCalibration(fc), goldenFabricCalib},
		{"memsys-calib", canon.MemsysCalibration(mc), goldenMemsysCalib},
		{"machine", canon.Machine(machine.New(spec)), goldenE870Machine},
		{"machine-inputs", canon.MachineInputs(spec, fc, mc), goldenMachineInput},
	} {
		if got := tc.got.String(); got != tc.want {
			t.Errorf("%s fingerprint drifted:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}
}

// TestStability recomputes each fingerprint from a fresh input graph:
// equal logical inputs must hash equal however they were built.
func TestStability(t *testing.T) {
	if canon.Spec(arch.E870()) != canon.Spec(arch.E870()) {
		t.Error("two E870 specs fingerprint differently")
	}
	if canon.Machine(machine.New(arch.E870())) != canon.Machine(machine.New(arch.E870())) {
		t.Error("two freshly built E870 machines fingerprint differently")
	}
}

// TestSensitivity flips individual fields and demands the fingerprint
// moves: a canonical encoding that ignores a model-relevant field would
// serve wrong cached results.
func TestSensitivity(t *testing.T) {
	base := canon.Spec(arch.E870())

	s := arch.E870()
	s.Name = "E870'"
	if canon.Spec(s) == base {
		t.Error("spec name change did not move the fingerprint")
	}

	s = arch.E870()
	s.Chip.ClockGHz += 0.001
	if canon.Spec(s) == base {
		t.Error("clock change did not move the fingerprint")
	}

	s = arch.E870()
	s.Latency.LocalDRAMNs += 1
	if canon.Spec(s) == base {
		t.Error("latency change did not move the fingerprint")
	}

	fc := fabric.E870Calibration()
	fcBase := canon.FabricCalibration(fc)
	fc.UniEfficiency *= 0.999
	if canon.FabricCalibration(fc) == fcBase {
		t.Error("fabric calibration change did not move the fingerprint")
	}

	mc := memsys.E870Calibration()
	mcBase := canon.MemsysCalibration(mc)
	mc.PerThreadStreamGBs += 0.1
	if canon.MemsysCalibration(mc) == mcBase {
		t.Error("memsys calibration change did not move the fingerprint")
	}
}

// TestDomainSeparation checks the two anti-collision mechanisms: the
// domain tag (same payload under different tags hashes apart) and
// length prefixes (adjacent strings cannot shift bytes into each
// other).
func TestDomainSeparation(t *testing.T) {
	a := canon.NewHasher("canon/a/v1")
	b := canon.NewHasher("canon/b/v1")
	a.U64(1)
	b.U64(1)
	if a.Sum() == b.Sum() {
		t.Error("different domain tags produced equal fingerprints")
	}

	x := canon.NewHasher("canon/t/v1")
	x.Str("ab")
	x.Str("c")
	y := canon.NewHasher("canon/t/v1")
	y.Str("a")
	y.Str("bc")
	if x.Sum() == y.Sum() {
		t.Error("string boundaries are not part of the encoding")
	}
}

func TestFingerprintStrings(t *testing.T) {
	f := canon.Fingerprint{0xab, 0xcd, 0xef, 0x01, 0x23}
	if got := f.Short(); got != "abcdef01" {
		t.Errorf("Short() = %q, want abcdef01", got)
	}
	if got := f.String(); len(got) != 64 || got[:10] != "abcdef0123" {
		t.Errorf("String() = %q, want 64 hex digits starting abcdef0123", got)
	}
}
