// Package canon computes canonical fingerprints of the simulator's
// inputs: machine specifications, calibration profiles, fault plans and
// experiment request parameters. A fingerprint is a SHA-256 digest of a
// deterministic binary encoding — fixed field order, fixed-width
// big-endian integers, IEEE-754 bit patterns for floats, length-prefixed
// strings, and never a Go map iteration — so the same logical input
// hashes identically in every process, on every run, on every
// architecture. Fingerprints are the keys of the internal/memo result
// cache: because every engine in this repository is deterministic by
// contract (see the p8lint determinism analyzer), a result is a pure
// function of its fingerprinted inputs, and equal fingerprints mean a
// recomputation can be skipped entirely.
//
// Encodings are versioned: every top-level fingerprint starts with a
// domain tag like "canon/spec/v1". Changing what an encoder writes
// requires bumping its tag, which invalidates every previously stored
// result — the cache's only invalidation story, by design.
//
// The package deliberately lives below internal/fault in the import
// order: it may hash the leaf data types (arch, fabric, memsys,
// machine), while fault fingerprints its own Plan type using the Hasher
// defined here.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Fingerprint is a 32-byte content address: the SHA-256 of a canonical
// encoding.
type Fingerprint [32]byte

// String returns the full lowercase hex form.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first eight hex digits, for logs and labels.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:4]) }

// Hasher accumulates a canonical encoding into a SHA-256 state.
// Construct with NewHasher, which stamps the domain tag first so
// fingerprints of different input kinds can never collide by field
// coincidence.
type Hasher struct {
	d       hash.Hash
	scratch [8]byte
}

// NewHasher starts a canonical encoding under a domain tag (e.g.
// "canon/spec/v1"). The tag is written length-prefixed like any string.
func NewHasher(tag string) *Hasher {
	h := &Hasher{d: sha256.New()}
	h.Str(tag)
	return h
}

// U64 writes a fixed-width big-endian uint64.
func (h *Hasher) U64(v uint64) {
	binary.BigEndian.PutUint64(h.scratch[:], v)
	h.d.Write(h.scratch[:])
}

// I64 writes a signed integer as its two's-complement bit pattern.
func (h *Hasher) I64(v int64) { h.U64(uint64(v)) }

// Int writes a platform int canonically (as int64).
func (h *Hasher) Int(v int) { h.I64(int64(v)) }

// F64 writes a float64 as its IEEE-754 bit pattern. Canonical inputs
// contain no NaNs or negative zeros; should one sneak in it still
// hashes stably, it just will not equal its normalized counterpart.
func (h *Hasher) F64(v float64) { h.U64(math.Float64bits(v)) }

// Bool writes a boolean as one byte.
func (h *Hasher) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	h.scratch[0] = b
	h.d.Write(h.scratch[:1])
}

// Str writes a length-prefixed string, making the encoding prefix-free:
// consecutive strings cannot shift into one another.
func (h *Hasher) Str(s string) {
	h.U64(uint64(len(s)))
	h.d.Write([]byte(s))
}

// Bytes writes a length-prefixed byte slice.
func (h *Hasher) Bytes(p []byte) {
	h.U64(uint64(len(p)))
	h.d.Write(p)
}

// F64s writes a length-prefixed slice of floats.
func (h *Hasher) F64s(vs []float64) {
	h.U64(uint64(len(vs)))
	for _, v := range vs {
		h.F64(v)
	}
}

// Section marks the start of a named sub-structure. It is encoded like
// a string; the name makes the encoding self-describing enough that two
// adjacent structs with coincidentally identical field lists cannot
// collide when one grows a field before the other.
func (h *Hasher) Section(name string) { h.Str(name) }

// Fp folds an already-computed fingerprint into the stream — the idiom
// for composite keys (a request fingerprints the machine fingerprint,
// not the machine again).
func (h *Hasher) Fp(f Fingerprint) { h.d.Write(f[:]) }

// Sum finishes the encoding and returns the fingerprint. The hasher
// must not be written to after Sum.
func (h *Hasher) Sum() Fingerprint {
	var out Fingerprint
	copy(out[:], h.d.Sum(nil))
	return out
}
