package canon

import (
	"repro/internal/fabric"
	"repro/internal/memsys"
)

// FabricCalibration fingerprints the fabric efficiency profile.
func FabricCalibration(c fabric.Calibration) Fingerprint {
	h := NewHasher("canon/fabric-calib/v1")
	AppendFabricCalibration(h, c)
	return h.Sum()
}

// AppendFabricCalibration encodes the profile into an ongoing hash.
func AppendFabricCalibration(h *Hasher, c fabric.Calibration) {
	h.Section("fabric-calib")
	h.F64(c.UniEfficiency)
	h.F64(c.SatEfficiency)
	h.F64(c.BiDirFactor)
	h.F64(c.InterGroupRouteCapGBs)
	h.F64(c.ChipInterleavedAbsorbGBs)
}

// MemsysCalibration fingerprints the memory-model constants, including
// the read:write efficiency curve's breakpoints.
func MemsysCalibration(c memsys.Calibration) Fingerprint {
	h := NewHasher("canon/memsys-calib/v1")
	AppendMemsysCalibration(h, c)
	return h.Sum()
}

// AppendMemsysCalibration encodes the constants into an ongoing hash.
func AppendMemsysCalibration(h *Hasher, c memsys.Calibration) {
	h.Section("memsys-calib")
	if c.RWEfficiency == nil {
		h.Bool(false)
	} else {
		h.Bool(true)
		xs, ys := c.RWEfficiency.Points()
		h.F64s(xs)
		h.F64s(ys)
	}
	h.F64(c.PerThreadStreamGBs)
	h.F64(c.CoreStreamCapGBs)
	h.F64(c.RandomBaseLatencyNs)
	h.F64(c.RandomQueueNsPerLine)
	h.F64(c.RandomPeakFraction)
}
