package canon

import (
	"repro/internal/arch"
)

// Spec fingerprints a complete system description: chip, memory
// subsystem, topology, latency profile, translation hardware and the
// guard map of a degraded spec. Two specs with equal fingerprints
// produce bit-identical model answers.
func Spec(s *arch.SystemSpec) Fingerprint {
	h := NewHasher("canon/spec/v1")
	AppendSpec(h, s)
	return h.Sum()
}

// AppendSpec encodes a spec into an ongoing hash (for composite keys).
func AppendSpec(h *Hasher, s *arch.SystemSpec) {
	h.Section("spec")
	h.Str(s.Name)
	appendChip(h, s.Chip)
	appendMemory(h, s.Memory)
	appendTopology(h, s.Topology)
	appendLatency(h, s.Latency)
	appendXlate(h, s.Xlate)
	appendGuard(h, s)
}

func appendChip(h *Hasher, c arch.ChipSpec) {
	h.Section("chip")
	h.Str(c.Name)
	h.F64(c.ClockGHz)
	h.Int(c.Cores)
	h.Int(c.ThreadsPerCore)
	h.Int(c.IssueWidth)
	h.Int(c.CommitWidth)
	h.Int(c.LoadPorts)
	h.Int(c.StorePorts)
	appendCache(h, c.L1I)
	appendCache(h, c.L1D)
	appendCache(h, c.L2)
	appendCache(h, c.L3PerCore)
	h.Int(c.VSXPipes)
	h.Int(c.VSXLatencyCycles)
	h.Int(c.VSXWidthDP)
	h.Int(c.ArchVSXRegs)
	h.Int(c.RenameVSXRegs)
	h.Int(c.LoadMissQueue)
	h.Int(c.PrefetchStreams)
}

func appendCache(h *Hasher, g arch.CacheGeom) {
	h.Section("cache")
	h.I64(int64(g.Size))
	h.I64(int64(g.LineSize))
	h.Int(g.Assoc)
	h.Int(g.LatencyCycles)
	h.Int(int(g.Policy))
}

func appendMemory(h *Hasher, m arch.MemorySubsystem) {
	h.Section("memory")
	h.I64(int64(m.Centaur.L4Size))
	h.I64(int64(m.Centaur.MaxDRAM))
	h.F64(float64(m.Centaur.ReadLink))
	h.F64(float64(m.Centaur.WriteLink))
	h.Int(m.CentaursPerChip)
	h.I64(int64(m.DRAMPerCentaur))
}

// appendTopology encodes the wiring link by link. Links() returns the
// construction order, which NewGroupedTopology fixes deterministically,
// so no sorting is needed — and must not be added, or fingerprints
// would change under a reordering refactor only when the sort differs
// from construction order.
func appendTopology(h *Hasher, t *arch.Topology) {
	h.Section("topology")
	h.Int(t.Chips)
	h.Int(t.Groups)
	h.Int(t.ChipsPerGroup)
	links := t.Links()
	h.Int(len(links))
	for _, l := range links {
		h.Int(int(l.A))
		h.Int(int(l.B))
		h.Int(int(l.Kind))
		h.F64(float64(l.PerLane))
		h.Int(l.Count)
	}
}

func appendLatency(h *Hasher, l arch.UncoreLatency) {
	h.Section("latency")
	h.F64(l.L3RemoteNs)
	h.F64(l.L4HitNs)
	h.F64(l.LocalDRAMNs)
	h.F64(l.DRAMStridedNs)
	h.F64(l.XHopNs)
	h.F64(l.AHopNs)
	h.F64s(l.IntraGroupSkewNs[:])
	h.F64s(l.InterGroupSkewNs[:])
	h.F64(l.ERATMissNs)
	h.F64(l.ERATMissHugeNs)
	h.F64(l.TLBMissNs)
	h.F64(l.PrefetchResidue)
	h.F64(l.MinPrefetchedNs)
}

func appendXlate(h *Hasher, x arch.TranslationSpec) {
	h.Section("xlate")
	h.Int(x.ERATEntries)
	h.I64(int64(x.ERATGranule))
	h.Int(x.TLBEntries)
}

// appendGuard encodes the guard map chip by chip in chip-id order —
// the GuardMap is backed by a Go map, and iterating chips [0, Chips)
// through GuardedCores is the map-free canonical order.
func appendGuard(h *Hasher, s *arch.SystemSpec) {
	h.Section("guard")
	for c := 0; c < s.Topology.Chips; c++ {
		h.Int(s.Guard.GuardedCores(arch.ChipID(c)))
	}
}
