package canon

import (
	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/memsys"
)

// Machine fingerprints a built machine: its spec, both calibration
// profiles, and the RAS degradation overlays it carries. This is the
// machine component of a memoized request key — two machines with equal
// fingerprints answer every model query and every deterministic
// simulation bit-identically, whatever constructor path produced them.
func Machine(m *machine.Machine) Fingerprint {
	h := NewHasher("canon/machine/v1")
	AppendSpec(h, m.Spec)
	AppendFabricCalibration(h, m.Net.Calibration())
	AppendMemsysCalibration(h, m.Mem.Calibration())
	appendFabricDegradation(h, m.Spec.Topology, m.Net.Degradation())
	appendMemsysDegradation(h, m.Spec, m.Mem.Degradation())
	return h.Sum()
}

// MachineInputs fingerprints the constructor inputs of a healthy
// machine without building it: machine.NewWithCalibration(spec, fc, mc)
// is a pure function of exactly these values.
func MachineInputs(spec *arch.SystemSpec, fc fabric.Calibration, mc memsys.Calibration) Fingerprint {
	h := NewHasher("canon/machine-inputs/v1")
	AppendSpec(h, spec)
	AppendFabricCalibration(h, fc)
	AppendMemsysCalibration(h, mc)
	return h.Sum()
}

// appendFabricDegradation encodes the lane-sparing overlay by walking
// the topology's links in construction order and recording each link's
// remaining-width factor — the overlay itself is map-backed, and this
// is its map-free canonical projection. A healthy (nil) overlay
// encodes as an explicit marker, not as an all-ones vector, so healthy
// and trivially-degraded machines still hash apart from a future
// overlay that derates nothing.
func appendFabricDegradation(h *Hasher, t *arch.Topology, d *fabric.Degradation) {
	h.Section("fabric-deg")
	if !d.Degraded() {
		h.Bool(false)
		return
	}
	h.Bool(true)
	for _, l := range t.Links() {
		h.F64(d.Factor(l.A, l.B, l.Kind))
	}
}

// appendMemsysDegradation encodes the memory overlay per chip in chip
// order plus its scalar derates.
func appendMemsysDegradation(h *Hasher, s *arch.SystemSpec, d *memsys.Degradation) {
	h.Section("memsys-deg")
	if !d.Degraded() {
		h.Bool(false)
		return
	}
	h.Bool(true)
	for c := 0; c < s.Topology.Chips; c++ {
		h.Int(d.LostChannels(arch.ChipID(c)))
	}
	h.F64(d.ReadDerate())
	h.F64(d.WriteDerate())
	h.F64(d.ReplayNs())
}
