package machine

import (
	"math/rand"
	"testing"
)

// TestInflightTableMatchesMap drives the open-addressing table with a
// randomized workload mirrored into a plain map and requires identical
// behaviour throughout, including across growth and heavy deletion.
func TestInflightTableMatchesMap(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	tab := newInflightTable(16)
	ref := map[uint64]float64{}
	// Line addresses cluster the way prefetch streams do: a few bases
	// with sequential runs, so probe chains actually collide.
	line := func() uint64 {
		base := uint64(r.Intn(8)) << 20
		return base + uint64(r.Intn(200))*128
	}
	for op := 0; op < 20000; op++ {
		l := line()
		switch r.Intn(3) {
		case 0:
			v := r.Float64() * 1e6
			tab.put(l, v)
			ref[l] = v
		case 1:
			got, ok := tab.get(l)
			want, wok := ref[l]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: get(%d) = (%v, %v), want (%v, %v)", op, l, got, ok, want, wok)
			}
		case 2:
			tab.del(l)
			delete(ref, l)
		}
		if tab.len() != len(ref) {
			t.Fatalf("op %d: len = %d, map has %d", op, tab.len(), len(ref))
		}
	}
	for l, want := range ref {
		if got, ok := tab.get(l); !ok || got != want {
			t.Fatalf("final scan: get(%d) = (%v, %v), want (%v, true)", l, got, ok, want)
		}
	}
}

func TestInflightTableZeroLine(t *testing.T) {
	tab := newInflightTable(4)
	if _, ok := tab.get(0); ok {
		t.Fatal("empty table claims to hold line 0")
	}
	tab.put(0, 42)
	if v, ok := tab.get(0); !ok || v != 42 {
		t.Fatalf("get(0) = (%v, %v), want (42, true)", v, ok)
	}
	tab.del(0)
	if _, ok := tab.get(0); ok || tab.len() != 0 {
		t.Fatal("line 0 survived deletion")
	}
}

func TestInflightTableGrowth(t *testing.T) {
	tab := newInflightTable(1) // minimum capacity, forces growth fast
	const n = 10000
	for i := uint64(0); i < n; i++ {
		tab.put(i*128, float64(i))
	}
	if tab.len() != n {
		t.Fatalf("len = %d, want %d", tab.len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tab.get(i * 128); !ok || v != float64(i) {
			t.Fatalf("get(%d) = (%v, %v) after growth", i*128, v, ok)
		}
	}
}

func TestInflightTableDeleteAbsent(t *testing.T) {
	tab := newInflightTable(8)
	tab.put(128, 1)
	tab.del(256) // absent; same cluster region
	if v, ok := tab.get(128); !ok || v != 1 {
		t.Fatalf("deleting an absent key disturbed a live entry: (%v, %v)", v, ok)
	}
}
