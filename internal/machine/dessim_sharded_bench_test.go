package machine

import (
	"fmt"
	"testing"
)

// The BENCH_6.json workload: the full 512-thread E870 (64 cores x
// SMT8, 4 lists — the Figure 4 peak configuration) against the
// 64-thread (SMT1) run, on the pooled sequential engine and the
// sharded engine at every legal worker count. The sharded numbers are
// what the CI bench-smoke step compares against the sequential
// baseline; real speedups need real CPUs, so BENCH_6.json records the
// host's GOMAXPROCS alongside the medians.
const benchHorizonNs = 50_000

func BenchmarkDESSequential64(b *testing.B) {
	m := e870()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SimulateRandomAccess(1, 1, benchHorizonNs)
	}
}

func BenchmarkDESSequential512(b *testing.B) {
	m := e870()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SimulateRandomAccess(8, 4, benchHorizonNs)
	}
}

func BenchmarkDESSharded512(b *testing.B) {
	m := e870()
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.SimulateRandomAccessSharded(8, 4, benchHorizonNs, shards, nil, nil)
			}
		})
	}
}
