package machine

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/stats"
)

func e870() *Machine { return New(arch.E870()) }

// TestTableIVDemandLatencies reproduces the w/o-prefetching latency
// column of Table IV.
func TestTableIVDemandLatencies(t *testing.T) {
	m := e870()
	want := map[arch.ChipID]float64{
		1: 123, 2: 125, 3: 133, 4: 213, 5: 235, 6: 237, 7: 243,
	}
	for dst, lat := range want {
		if got := m.DemandLatencyNs(0, dst); math.Abs(got-lat) > 0.01 {
			t.Errorf("chip0->chip%d = %v, want %v", dst, got, lat)
		}
	}
	if got := m.DemandLatencyNs(0, 0); got != 95 {
		t.Errorf("local = %v, want 95", got)
	}
}

// TestTableIVPrefetchedLatencies reproduces the with-prefetching column:
// an order-of-magnitude reduction, 12-23 ns across all chips.
func TestTableIVPrefetchedLatencies(t *testing.T) {
	m := e870()
	for dst := arch.ChipID(0); dst < 8; dst++ {
		demand := m.DemandLatencyNs(0, dst)
		pf := m.PrefetchedLatencyNs(0, dst)
		if pf < 11 || pf > 24 {
			t.Errorf("prefetched latency to chip%d = %v, want 11-24 ns", dst, pf)
		}
		if demand/pf < 8 {
			t.Errorf("prefetching reduced chip%d latency only %vx, want order of magnitude", dst, demand/pf)
		}
	}
}

// TestInterleavedLatency reproduces Table IV's interleaved row (~168 ns).
func TestInterleavedLatency(t *testing.T) {
	m := e870()
	if got := m.InterleavedLatencyNs(0); !stats.Within(got, 168, 0.06) {
		t.Errorf("interleaved latency = %v, want ~168 (±6%%)", got)
	}
}

// TestRandomAccessSaturation reproduces Figure 4: bandwidth rises with
// threads and streams, saturating near 500 GB/s (41% of peak read); with
// SMT8, four lists per thread already reach the peak.
func TestRandomAccessSaturation(t *testing.T) {
	m := e870()
	peak := m.RandomAccessBandwidth(8, 8).GBps()
	if !stats.Within(peak, 500, 0.05) {
		t.Errorf("saturated random bandwidth = %.1f, want ~500", peak)
	}
	if got := m.RandomAccessBandwidth(8, 4).GBps(); math.Abs(got-peak) > 1e-9 {
		t.Errorf("SMT8 x 4 lists = %v, should already be at peak %v", got, peak)
	}
	if got := m.RandomAccessBandwidth(4, 8).GBps(); math.Abs(got-peak) > 1e-9 {
		t.Errorf("SMT4 x 8 lists = %v, should already be at peak %v", got, peak)
	}
	if got := m.RandomAccessBandwidth(1, 1).GBps(); got > 0.2*peak {
		t.Errorf("1 thread x 1 list = %v, too close to peak", got)
	}
	// Monotone in both dimensions.
	for threads := 1; threads <= 8; threads++ {
		prev := 0.0
		for streams := 1; streams <= 8; streams++ {
			got := m.RandomAccessBandwidth(threads, streams).GBps()
			if got+1e-9 < prev {
				t.Errorf("bandwidth decreased at threads=%d streams=%d", threads, streams)
			}
			prev = got
		}
	}
}

func TestNewWithDifferentSystems(t *testing.T) {
	big := New(arch.MaxPOWER8SMP())
	if big.Spec.TotalCores() != 192 {
		t.Error("max SMP machine wrong")
	}
	// Latency model still answers for the 4-group topology.
	if big.DemandLatencyNs(0, 15) <= big.DemandLatencyNs(0, 1) {
		t.Error("remote group latency should exceed intra-group")
	}
}
