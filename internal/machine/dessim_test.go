package machine

import (
	"testing"

	"repro/internal/stats"
)

// TestDESMatchesAnalyticModel cross-validates the two random-access
// engines: the discrete-event queueing simulation and the analytic
// Little's-law model must agree on the Figure 4 sweep within 25% at
// every point, and tightly at saturation.
func TestDESMatchesAnalyticModel(t *testing.T) {
	m := e870()
	const horizon = 200_000 // ns
	for _, p := range []struct{ threads, streams int }{
		{1, 1}, {1, 4}, {2, 2}, {4, 2}, {4, 8}, {8, 4}, {8, 8},
	} {
		des := m.SimulateRandomAccess(p.threads, p.streams, horizon).GBps()
		analytic := m.RandomAccessBandwidth(p.threads, p.streams).GBps()
		if !stats.Within(des, analytic, 0.25) {
			t.Errorf("threads=%d streams=%d: DES %.0f GB/s vs analytic %.0f GB/s",
				p.threads, p.streams, des, analytic)
		}
	}
	// At saturation both engines must sit at the calibrated ceiling.
	des := m.SimulateRandomAccess(8, 8, horizon).GBps()
	if !stats.Within(des, 500, 0.06) {
		t.Errorf("DES saturation = %.0f GB/s, want ~500", des)
	}
}

// TestDESMonotone: bandwidth is non-decreasing in concurrency.
func TestDESMonotone(t *testing.T) {
	m := e870()
	prev := 0.0
	for _, streams := range []int{1, 2, 4, 8} {
		got := m.SimulateRandomAccess(4, streams, 100_000).GBps()
		if got+1 < prev {
			t.Errorf("DES bandwidth fell at %d streams: %.0f after %.0f", streams, got, prev)
		}
		prev = got
	}
}

func TestDESPanics(t *testing.T) {
	m := e870()
	for _, fn := range []func(){
		func() { m.SimulateRandomAccess(0, 1, 100) },
		func() { m.SimulateRandomAccess(1, 0, 100) },
		func() { m.SimulateRandomAccess(1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
