package machine

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/units"
)

// staleInflightNs is how long a completed prefetch stays useful: past
// this, the walker assumes intervening traffic evicted the prefetched
// line before its demand access arrived (accidental prefetch overruns
// across randomly ordered blocks land here, see Figure 8).
const staleInflightNs = 2000

// WalkerConfig configures a latency Walker: one hardware thread issuing
// dependent loads through its chip's cache hierarchy.
type WalkerConfig struct {
	// Chip is the requesting chip.
	Chip arch.ChipID
	// Page selects the virtual page size (Figure 2 compares 64 KiB and
	// 16 MiB). Zero defaults to 64 KiB pages.
	Page arch.PageSize
	// Prefetch configures the hardware prefetch engine. A zero value
	// gets the hardware default (DSCR 7, stride-N off).
	Prefetch prefetch.Config
	// DisablePrefetch turns the engine off entirely, as the paper does
	// for the lmbench latency curves.
	DisablePrefetch bool
	// Home maps a byte address to the chip whose memory holds it.
	// Nil homes everything on the requesting chip.
	Home func(addr uint64) arch.ChipID
	// DisableVictimL3 turns off the NUCA lateral-castout behaviour
	// (ablation studies).
	DisableVictimL3 bool
	// Obs, when non-nil, receives the walker's counters (accesses,
	// per-level hits and misses, translation misses, prefetch
	// issue/confirm/drop activity) under a "walker" child scope. The
	// walker accumulates into plain fields on the access path and
	// flushes deltas at Run boundaries (or on PublishStats), so a nil
	// registry — the default — leaves the hot path untouched.
	Obs *obs.Registry
	// Budget, when non-nil, is charged one unit per access and trips
	// the harness watchdog (panics with engine.Trip) when exhausted or
	// cancelled. Nil — the default — costs one branch per access.
	Budget *engine.Budget
}

// Walker simulates one hardware thread's dependent-load accesses with
// full cache, TLB and prefetch behaviour and a nanosecond clock.
type Walker struct {
	m    *Machine
	cfg  WalkerConfig
	hier *cache.Hierarchy
	xl   *tlb.TLB
	pf   *prefetch.Engine

	nowNs    float64
	accesses uint64
	totalNs  float64

	// Per-source accounting: how many accesses each cache level (or a
	// completed prefetch) satisfied. Indexed by cache.Level — an array,
	// not a map, because this is incremented on every access.
	levelCounts  [cache.NumLevels]uint64
	prefetchHits uint64
	eratMisses   uint64
	tlbMisses    uint64
	// staleDrops counts prefetches that completed but went stale before
	// their demand access arrived (the Figure 8 overrun effect); hints
	// counts DCBT stream declarations. Both feed the obs registry.
	staleDrops uint64
	hints      uint64
	// published remembers the counter values already flushed to cfg.Obs
	// so PublishStats adds exact deltas however often it runs.
	published walkerPublished

	// inflight maps line address -> prefetch completion time. Sized to
	// the prefetch engine's stream capacity x run-ahead depth.
	inflight *inflightTable
	// lastDone serializes prefetch completions at the per-line stream
	// service interval, modelling the finite per-stream fill bandwidth.
	lastDone float64

	// Demand-stride tracking for the Centaur row-pipelining effect.
	lastLine  int64
	lastDelta int64
	haveDelta bool

	// pfbuf is the scratch buffer OnDemandInto appends prefetch addresses
	// to, reused across accesses.
	pfbuf []uint64
}

// NewWalker builds a walker against this machine.
func (m *Machine) NewWalker(cfg WalkerConfig) *Walker {
	if cfg.Page == 0 {
		cfg.Page = arch.Page64K
	}
	if cfg.Prefetch.DSCR == 0 {
		cfg.Prefetch = prefetch.DefaultConfig()
	}
	w := &Walker{
		m:    m,
		cfg:  cfg,
		hier: cache.NewHierarchy(m.Spec.Chip, m.Spec.Memory.Centaur, m.Spec.Memory.CentaursPerChip),
		xl:   tlb.New(m.Spec.Xlate, cfg.Page),
		pf:   prefetch.New(cfg.Prefetch),
	}
	w.hier.DisableVictim = cfg.DisableVictimL3
	pc := w.pf.Config()
	w.inflight = newInflightTable(pc.MaxStreams * prefetch.DepthLines(pc.DSCR))
	w.lastLine = -1 << 62
	return w
}

// home resolves the owning chip of an address.
func (w *Walker) home(addr uint64) arch.ChipID {
	if w.cfg.Home == nil {
		return w.cfg.Chip
	}
	return w.cfg.Home(addr) //p8:allow hotpathdeep: the address-homing policy is configuration — a pure arithmetic map fixed at construction; indirection here is the design
}

// dramLatency returns the DRAM demand latency for an access, accounting
// for SMP hops and the strided row-pipelining effect.
func (w *Walker) dramLatency(home arch.ChipID, strided bool) float64 {
	lat := w.m.Spec.Latency
	base := lat.LocalDRAMNs
	if strided {
		base = lat.DRAMStridedNs
	}
	return base + w.m.Net.HopLatencyNs(w.cfg.Chip, home)
}

// levelLatencyNs maps a hierarchy level to its load-to-use latency.
func (w *Walker) levelLatencyNs(level cache.Level, home arch.ChipID, strided bool) float64 {
	spec := w.m.Spec
	cyc := spec.Chip.CycleNs()
	switch level {
	case cache.LevelL1:
		return float64(spec.Chip.L1D.LatencyCycles) * cyc
	case cache.LevelL2:
		return float64(spec.Chip.L2.LatencyCycles) * cyc
	case cache.LevelL3:
		return float64(spec.Chip.L3PerCore.LatencyCycles) * cyc
	case cache.LevelL3Remote:
		return spec.Latency.L3RemoteNs
	case cache.LevelL4:
		return spec.Latency.L4HitNs
	default:
		return w.dramLatency(home, strided)
	}
}

// Access performs one dependent load and returns its latency in
// nanoseconds. Simulated time advances by the returned latency: the next
// access cannot issue before this one completes.
//
// Its zero-allocation budget is pinned by BenchmarkWalkerSequential,
// BenchmarkWalkerChase and BenchmarkWalkerBlockedRandom in
// walker_bench_test.go.
//
//p8:hotpath
func (w *Walker) Access(addr uint64) float64 {
	w.cfg.Budget.Charge(1)
	var latency float64
	switch w.xl.Translate(addr) {
	case tlb.ERATMiss:
		w.eratMisses++
		if units.Bytes(w.cfg.Page) > w.m.Spec.Xlate.ERATGranule {
			latency += w.m.Spec.Latency.ERATMissHugeNs
		} else {
			latency += w.m.Spec.Latency.ERATMissNs
		}
	case tlb.TLBMiss:
		w.tlbMisses++
		latency += w.m.Spec.Latency.TLBMissNs
	}

	line := addr &^ uint64(trace.LineSize-1)
	home := w.home(addr)

	curLine := int64(addr / trace.LineSize)
	delta := curLine - w.lastLine
	strided := w.haveDelta && delta == w.lastDelta && delta != 0
	w.lastDelta, w.lastLine, w.haveDelta = delta, curLine, true

	if done, ok := w.inflight.get(line); ok && w.nowNs-done < staleInflightNs {
		w.inflight.del(line)
		wait := done - w.nowNs
		if wait < 0 {
			wait = 0
		}
		latency += wait + float64(w.m.Spec.Chip.L1D.LatencyCycles)*w.m.Spec.Chip.CycleNs()
		w.hier.Install(line)
		w.prefetchHits++
	} else {
		if ok {
			// The prefetch completed long ago; for the out-of-cache
			// footprints these experiments use, the line has been evicted
			// again by intervening traffic. Treat it as a fresh demand.
			w.inflight.del(line)
			w.staleDrops++
		}
		level := w.hier.Read(line, home == w.cfg.Chip)
		w.levelCounts[level]++
		latency += w.levelLatencyNs(level, home, strided)
	}

	if !w.cfg.DisablePrefetch {
		w.pfbuf = w.pf.OnDemandInto(addr, w.pfbuf[:0])
		for _, p := range w.pfbuf {
			w.schedule(p)
		}
	}

	w.nowNs += latency
	w.totalNs += latency
	w.accesses++
	return latency
}

// schedule books a hardware prefetch for a line: it completes after the
// full demand latency of its home memory, but completions are serialized
// at the stream's per-line service interval (the finite fill bandwidth of
// one prefetch stream), which is what floors the observed steady-state
// latency at UncoreLatency.MinPrefetchedNs and its distance-scaled
// variants.
//
// Runs once per prefetch candidate inside Access; same budget.
//
//p8:hotpath
func (w *Walker) schedule(lineAddr uint64) {
	if w.hier.ContainsAny(lineAddr) {
		return
	}
	if _, ok := w.inflight.get(lineAddr); ok {
		return
	}
	home := w.home(lineAddr)
	// Prefetches are stream accesses: the Centaur pipelines them like
	// strided demands.
	done := w.nowNs + w.dramLatency(home, true)
	interval := w.m.PrefetchedLatencyNs(w.cfg.Chip, home)
	if min := w.lastDone + interval; done < min {
		done = min
	}
	w.lastDone = done
	w.inflight.put(lineAddr, done)
}

// Hint issues a DCBT software-prefetch declaration for a stream of
// `lines` cache lines starting at start (dir +1/-1), booking the initial
// prefetch burst immediately (Section III-D, Figure 8).
func (w *Walker) Hint(start uint64, lines, dir int) {
	if w.cfg.DisablePrefetch {
		return
	}
	w.hints++
	for _, p := range w.pf.Hint(start, lines, dir) {
		w.schedule(p)
	}
}

// Run drives a trace through the walker, up to max accesses (all if
// max <= 0), and returns the aggregate result.
func (w *Walker) Run(g trace.Generator, max int) WalkResult {
	startNs, startAcc := w.totalNs, w.accesses
	n := 0
	for {
		addr, ok := g.Next()
		if !ok {
			break
		}
		w.Access(addr)
		n++
		if max > 0 && n >= max {
			break
		}
	}
	w.PublishStats()
	return WalkResult{
		Accesses: w.accesses - startAcc,
		TotalNs:  w.totalNs - startNs,
	}
}

// WalkResult summarizes a walker run.
type WalkResult struct {
	Accesses uint64
	TotalNs  float64
}

// AvgNs returns the mean per-access latency.
func (r WalkResult) AvgNs() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return r.TotalNs / float64(r.Accesses)
}

// ThreadBandwidth returns the single-thread data rate implied by the run
// (one line moved per access).
func (r WalkResult) ThreadBandwidth() units.Bandwidth {
	if r.TotalNs == 0 {
		return 0
	}
	return units.Bandwidth(float64(r.Accesses) * trace.LineSize / (r.TotalNs * 1e-9))
}

// WalkerStats is the per-source breakdown of a walker's accesses.
type WalkerStats struct {
	Accesses     uint64
	PrefetchHits uint64 // satisfied by a completed hardware prefetch
	Levels       map[cache.Level]uint64
	ERATMisses   uint64
	TLBMisses    uint64
}

// Stats returns the breakdown of everything this walker has simulated.
func (w *Walker) Stats() WalkerStats {
	levels := make(map[cache.Level]uint64, cache.NumLevels)
	for l, n := range w.levelCounts {
		if n > 0 {
			levels[cache.Level(l)] = n
		}
	}
	return WalkerStats{
		Accesses:     w.accesses,
		PrefetchHits: w.prefetchHits,
		Levels:       levels,
		ERATMisses:   w.eratMisses,
		TLBMisses:    w.tlbMisses,
	}
}

// DominantLevel returns the level that satisfied the most demand reads
// (prefetch hits excluded); ok is false when nothing was simulated.
func (s WalkerStats) DominantLevel() (cache.Level, bool) {
	// Iterate levels in hierarchy order rather than ranging over the
	// map: map order would break ties arbitrarily between runs, and the
	// fixed order resolves them toward the closest level.
	var best cache.Level
	var n uint64
	for l := 0; l < cache.NumLevels; l++ {
		if c := s.Levels[cache.Level(l)]; c > n {
			best, n = cache.Level(l), c
		}
	}
	return best, n > 0
}

// Hierarchy exposes the walker's cache state for tests and diagnostics.
func (w *Walker) Hierarchy() *cache.Hierarchy { return w.hier }

// Prefetcher exposes the walker's prefetch engine.
func (w *Walker) Prefetcher() *prefetch.Engine { return w.pf }

// NowNs returns the walker's simulated clock.
func (w *Walker) NowNs() float64 { return w.nowNs }
