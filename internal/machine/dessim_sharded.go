package machine

import (
	"fmt"
	"runtime"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/units"
)

// ShardCountValid reports whether a shard count divides the machine's
// socket topology. The sharded DES partitions by socket, so the only
// legal shard counts are divisors of the chip count (1..chips).
func ShardCountValid(spec *arch.SystemSpec, shards int) bool {
	return shards > 0 && shards <= spec.Topology.Chips && spec.Topology.Chips%shards == 0
}

// AutoShards picks the default shard count: the largest divisor of the
// socket count not exceeding maxWorkers (GOMAXPROCS when maxWorkers
// <= 0). More shards than schedulable CPUs would only add barrier
// handoffs without parallel progress.
func AutoShards(spec *arch.SystemSpec, maxWorkers int) int {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	best := 1
	for d := 2; d <= spec.Topology.Chips && d <= maxWorkers; d++ {
		if spec.Topology.Chips%d == 0 {
			best = d
		}
	}
	return best
}

// SimulateRandomAccessSharded runs the Figure 4 random-access DES on
// the sharded engine: one event lane per socket, grouped into `shards`
// contiguous shards (<= 0 selects AutoShards) that parallel Team
// workers execute in conservative-lookahead rounds. The lookahead is
// the fabric's cheapest hop crossing a shard boundary
// (fabric.MinCrossLatencyNs), so it widens automatically when fewer,
// larger shards leave only expensive A-bus pairs on the boundary.
//
// The model is socket-resolved where SimulateRandomAccessRun pools the
// whole machine: each socket owns its share of the calibrated bank
// pool, its chasers target a uniformly random socket per access, and
// remote accesses pay the fabric's hop latency each way on top of the
// calibrated local transit. The structure — bank homes, RNG streams,
// hop latencies — depends only on the machine, never on the shard
// count, and every cross-socket interaction travels as a timestamped
// message, so any shard count produces bit-identical bandwidth,
// completions and event counts (enforced by TestShardedDESBitIdentity).
//
// A nil registry runs unobserved; a nil budget runs unwatched. Like
// the pooled variant, invalid parameters panic — CLI front-ends
// pre-validate -shards against the topology.
func (m *Machine) SimulateRandomAccessSharded(threads, streams int, horizonNs float64, shards int, reg *obs.Registry, budget *engine.Budget) units.Bandwidth {
	if threads <= 0 || streams <= 0 || horizonNs <= 0 {
		panic(fmt.Sprintf("machine: invalid DES parameters %d/%d/%g", threads, streams, horizonNs))
	}
	chips := m.Spec.Topology.Chips
	if shards <= 0 {
		shards = AutoShards(m.Spec, 0)
	}
	if !ShardCountValid(m.Spec, shards) {
		panic(fmt.Sprintf("machine: %d shards do not divide the %d-socket topology", shards, chips))
	}

	calib := m.Mem.Calibration()
	const serviceNs = 50.0
	// Same transit derivation as the pooled model: the replay adder of a
	// degraded subsystem rides the transit leg, not the bank occupancy.
	transitNs := calib.RandomBaseLatencyNs + m.Mem.Degradation().ReplayNs() - serviceNs
	if transitNs < 0 {
		transitNs = 0
	}
	peakLinesPerNs := float64(m.Mem.RandomPeakBandwidth()) / float64(trace.LineSize) * 1e-9
	banksTotal := int(peakLinesPerNs*serviceNs + 0.5)
	if banksTotal < 1 {
		banksTotal = 1
	}

	perCore := threads * streams
	if perCore > m.Spec.Chip.LoadMissQueue {
		perCore = m.Spec.Chip.LoadMissQueue
	}

	lanesPerShard := chips / shards
	shardOf := make([]int, chips)
	for c := range shardOf {
		shardOf[c] = c / lanesPerShard
	}
	lookahead := engine.Time(m.Net.MinCrossLatencyNs(shardOf))

	ss := engine.NewShardedSim(chips, lookahead)
	ss.SetBudget(budget)

	// Precompute hop latencies: the issue path must not call into the
	// fabric model per access.
	hop := make([][]engine.Time, chips)
	for c := range hop {
		hop[c] = make([]engine.Time, chips)
		for d := range hop[c] {
			hop[c][d] = engine.Time(m.Net.HopLatencyNs(arch.ChipID(c), arch.ChipID(d)))
		}
	}

	// Per-socket lane state. Each struct is separately allocated and
	// only ever touched by events running on its own lane, so shard
	// workers never share a cache line, let alone a word.
	type socket struct {
		rng         *rng.Rand
		mem         []*engine.Resource
		completions uint64
	}
	socks := make([]*socket, chips)
	banksSum, chasersSum := 0, 0
	for c := 0; c < chips; c++ {
		banks := banksTotal / chips
		if c < banksTotal%chips {
			banks++
		}
		if banks < 1 {
			// Tiny configurations round a socket down to zero banks; every
			// socket keeps at least one so remote accesses always have a
			// home (the ceiling error is negligible at calibrated scales).
			banks = 1
		}
		banksSum += banks
		sk := &socket{
			// One decorrelated stream per socket (rng.New splitmixes the
			// seed); the pooled model's single stream would be shared
			// mutable state across lanes.
			rng: rng.New(20160523 + uint64(c)),
			mem: make([]*engine.Resource, banks),
		}
		for b := range sk.mem {
			sk.mem[b] = engine.NewResource("bank", 1)
		}
		socks[c] = sk
	}

	// The event graph, closures prebuilt per socket (and per socket
	// pair for the cross-socket legs) so a chaser's whole cycle
	// allocates nothing:
	//
	//   issue[c]      pick a target socket on c's RNG; local accesses
	//                 queue on a local bank, remote ones travel hop(c,t)
	//   arrive[t][c]  the request lands on t: pick a bank on t's RNG
	//   respond[t][c] bank service done: data travels hop(t,c) back
	//   retn[c]       the load completed at its requester: count it and
	//                 reissue after the calibrated local transit
	issue := make([]engine.Event, chips)
	retn := make([]engine.Event, chips)
	arrive := make([][]engine.Event, chips)
	respond := make([][]engine.Event, chips)
	for t := 0; t < chips; t++ {
		arrive[t] = make([]engine.Event, chips)
		respond[t] = make([]engine.Event, chips)
	}
	for c := 0; c < chips; c++ {
		c := c
		sk := socks[c]
		issue[c] = func(s *engine.Sim) {
			t := sk.rng.Intn(chips)
			if t == c {
				sk.mem[sk.rng.Intn(len(sk.mem))].Acquire(s, serviceNs, retn[c])
				return
			}
			ss.Send(c, t, hop[c][t], arrive[t][c])
		}
		retn[c] = func(s *engine.Sim) {
			sk.completions++
			s.After(engine.Time(transitNs), issue[c])
		}
	}
	for t := 0; t < chips; t++ {
		t := t
		sk := socks[t]
		for c := 0; c < chips; c++ {
			c := c
			arrive[t][c] = func(s *engine.Sim) {
				// The bank draw happens on the destination lane's RNG at
				// arrival time: lane-confined, so delivery order (which is
				// canonical) fully determines it.
				sk.mem[sk.rng.Intn(len(sk.mem))].Acquire(s, serviceNs, respond[t][c])
			}
			respond[t][c] = func(s *engine.Sim) {
				ss.Send(t, c, hop[t][c], retn[c])
			}
		}
	}

	// Stagger each socket's chasers across one transit time, as the
	// pooled model does globally.
	for c := 0; c < chips; c++ {
		chasers := perCore * m.Spec.ActiveCores(arch.ChipID(c))
		chasersSum += chasers
		for i := 0; i < chasers; i++ {
			offset := transitNs * float64(i) / float64(chasers)
			ss.At(c, engine.Time(offset), issue[c])
		}
	}

	if shards == 1 {
		ss.RunMerged(engine.Time(horizonNs))
	} else {
		ss.RunSharded(shards, engine.Time(horizonNs))
	}

	var completions uint64
	for _, sk := range socks {
		completions += sk.completions
	}
	if reg != nil {
		des := reg.Child("des")
		ss.PublishStats(des)
		des.Counter("completions").Add(completions)
		des.Gauge("banks").Set(int64(banksSum))
		des.Gauge("chasers").Set(int64(chasersSum))
		var busy float64
		for _, sk := range socks {
			for _, b := range sk.mem {
				busy += b.BusyTime / horizonNs
			}
		}
		des.Gauge("bank_utilization_permille").Set(int64(1000 * busy / float64(banksSum)))
	}
	return units.Bandwidth(float64(completions) * trace.LineSize / (horizonNs * 1e-9))
}
