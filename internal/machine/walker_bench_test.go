package machine

// Hot-path benchmarks for the trace-driven walker and the DES bandwidth
// cross-check. Every latency figure in the reproduction funnels through
// Walker.Access, and Figure 4's validation funnels through
// SimulateRandomAccess, so ns/op and allocs/op here bound the whole
// suite's wall-clock. The functions these benchmarks pin carry a
// //p8:hotpath directive (Walker.Access, Walker.schedule, the inflight
// table), so p8lint rejects allocation- and randomness-introducing
// edits before the numbers move.

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/trace"
)

func benchWalk(b *testing.B, gen func() trace.Generator, accesses int) {
	benchWalkObs(b, gen, accesses, nil)
}

func benchWalkObs(b *testing.B, gen func() trace.Generator, accesses int, reg *obs.Registry) {
	b.Helper()
	m := New(arch.E870())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := m.NewWalker(WalkerConfig{Chip: 0, Obs: reg})
		w.Run(gen(), accesses)
	}
	b.ReportMetric(float64(accesses), "accesses/op")
}

// BenchmarkWalkerSequential streams through a sequential trace: the
// prefetch engine runs fully ramped, so every access exercises the
// inflight table (hit + delete + refill).
func BenchmarkWalkerSequential(b *testing.B) {
	benchWalk(b, func() trace.Generator {
		return trace.NewSequential(0, 1<<30/trace.LineSize)
	}, 50000)
}

// BenchmarkWalkerChase pointer-chases a 64 MiB working set: mostly
// DRAM-level demand misses with no prefetch coverage, exercising the
// level-count accounting and cache lookups.
func BenchmarkWalkerChase(b *testing.B) {
	benchWalk(b, func() trace.Generator {
		return trace.NewChase(0, 64<<20/trace.LineSize, 4, 7)
	}, 50000)
}

// BenchmarkWalkerBlockedRandom runs Figure 8's randomly ordered
// sequential blocks: streams are detected, broken and re-detected, so
// inflight entries routinely go stale before deletion.
func BenchmarkWalkerBlockedRandom(b *testing.B) {
	benchWalk(b, func() trace.Generator {
		return trace.NewBlockedRandom(0, 2048, 32, 11)
	}, 50000)
}

// BenchmarkSimulateRandomAccess runs the Figure 4 DES cross-check at the
// paper's peak operating point.
func BenchmarkSimulateRandomAccess(b *testing.B) {
	m := New(arch.E870())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SimulateRandomAccess(8, 4, 50000)
	}
}

// The *Observed variants run the same workloads with a live registry
// attached, pinning the enabled-instrumentation overhead contract (<3%
// vs the uninstrumented benchmarks above; see DESIGN.md Observability).
// The flush-at-the-end design makes the delta O(1) per Run, so the gap
// should sit inside measurement noise.

// BenchmarkWalkerSequentialObserved is BenchmarkWalkerSequential with
// counters flushed into a registry at the end of every Run.
func BenchmarkWalkerSequentialObserved(b *testing.B) {
	benchWalkObs(b, func() trace.Generator {
		return trace.NewSequential(0, 1<<30/trace.LineSize)
	}, 50000, obs.NewRegistry("bench"))
}

// BenchmarkWalkerChaseObserved is BenchmarkWalkerChase instrumented.
func BenchmarkWalkerChaseObserved(b *testing.B) {
	benchWalkObs(b, func() trace.Generator {
		return trace.NewChase(0, 64<<20/trace.LineSize, 4, 7)
	}, 50000, obs.NewRegistry("bench"))
}

// BenchmarkSimulateRandomAccessObserved is BenchmarkSimulateRandomAccess
// publishing the DES engine's counters after every simulation.
func BenchmarkSimulateRandomAccessObserved(b *testing.B) {
	m := New(arch.E870())
	reg := obs.NewRegistry("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SimulateRandomAccessObs(8, 4, 50000, reg)
	}
}
