package machine

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/units"
)

// SimulateRandomAccess runs a discrete-event simulation of the Figure 4
// random-access benchmark and returns the sustained bandwidth. It is an
// independent cross-check of the analytic Little's-law model in
// internal/memsys: every core runs threads x streams pointer chasers
// (clamped at the load-miss queue); each dependent load spends a fixed
// transit time in the core/fabric and then queues for one of the memory
// subsystem's banks.
//
// The bank count and service time are derived from the same two
// calibration constants the analytic model uses (the unloaded random
// latency and the saturated random bandwidth), so agreement between the
// two engines validates the queueing structure, not just the constants.
func (m *Machine) SimulateRandomAccess(threads, streams int, horizonNs float64) units.Bandwidth {
	return m.SimulateRandomAccessObs(threads, streams, horizonNs, nil)
}

// SimulateRandomAccessObs is SimulateRandomAccess publishing the
// simulation's internals into a registry scope "des": events dispatched
// and scheduled, the event-queue high-water mark, load completions, the
// derived bank configuration and the banks' mean utilization (in
// permille, since counters and gauges are integers). A nil registry
// makes it identical to SimulateRandomAccess.
func (m *Machine) SimulateRandomAccessObs(threads, streams int, horizonNs float64, reg *obs.Registry) units.Bandwidth {
	return m.SimulateRandomAccessRun(threads, streams, horizonNs, reg, nil)
}

// SimulateRandomAccessRun is SimulateRandomAccessObs with a watchdog
// budget attached to the event loop: every dispatched event charges one
// unit, and an exhausted or cancelled budget aborts the simulation with
// an engine.Trip panic for the harness's isolation wrapper to catch. A
// nil budget runs unwatched.
func (m *Machine) SimulateRandomAccessRun(threads, streams int, horizonNs float64, reg *obs.Registry, budget *engine.Budget) units.Bandwidth {
	if threads <= 0 || streams <= 0 || horizonNs <= 0 {
		panic(fmt.Sprintf("machine: invalid DES parameters %d/%d/%g", threads, streams, horizonNs))
	}
	calib := m.Mem.Calibration()
	const serviceNs = 50.0
	// A degraded subsystem pays its replay adder in the transit leg: the
	// bank service time models DRAM occupancy, which the link replay does
	// not change. This mirrors the analytic model's LoadedRandomLatencyNs.
	transitNs := calib.RandomBaseLatencyNs + m.Mem.Degradation().ReplayNs() - serviceNs
	if transitNs < 0 {
		transitNs = 0
	}
	// Saturated line rate implied by the calibrated peak fraction; the
	// degradation-aware ceiling keeps the DES bank pool and the analytic
	// cap in agreement on degraded machines too.
	peakLinesPerNs := float64(m.Mem.RandomPeakBandwidth()) / float64(trace.LineSize) * 1e-9
	banks := int(peakLinesPerNs*serviceNs + 0.5)
	if banks < 1 {
		banks = 1
	}

	perCore := threads * streams
	if perCore > m.Spec.Chip.LoadMissQueue {
		perCore = m.Spec.Chip.LoadMissQueue
	}
	chasers := perCore * m.Spec.TotalCores()

	var sim engine.Sim
	sim.SetBudget(budget)
	// Individually addressed banks: a random access targets a specific
	// bank, so conflicts appear at birthday-paradox rates long before
	// the aggregate pool saturates — the effect behind the analytic
	// model's load-dependent latency term.
	// The banks are interchangeable, so they share one static name: the
	// name only exists for debugging, and a per-bank fmt.Sprintf shows up
	// as allocation noise when this simulation runs inside a sweep.
	mem := make([]*engine.Resource, banks)
	for b := range mem {
		mem[b] = engine.NewResource("bank", 1)
	}
	r := rng.New(20160523) // the paper's publication era; any fixed seed
	var completions uint64
	// Both closures are built once and rescheduled by value: a chaser's
	// whole issue/complete cycle costs no allocations, so the event rate
	// is bounded by the heap, not the garbage collector.
	var issue, complete engine.Event
	issue = func(s *engine.Sim) {
		mem[r.Intn(banks)].Acquire(s, engine.Time(serviceNs), complete)
	}
	complete = func(s *engine.Sim) {
		completions++
		s.After(engine.Time(transitNs), issue)
	}
	// Stagger the chasers across one transit time so the banks do not
	// see a synchronized burst at t=0.
	for c := 0; c < chasers; c++ {
		offset := transitNs * float64(c) / float64(chasers)
		sim.At(engine.Time(offset), issue)
	}
	sim.Run(engine.Time(horizonNs))
	if reg != nil {
		des := reg.Child("des")
		sim.PublishStats(des)
		des.Counter("completions").Add(completions)
		des.Gauge("banks").Set(int64(banks))
		des.Gauge("chasers").Set(int64(chasers))
		var busy float64
		for _, b := range mem {
			busy += b.Utilization(&sim)
		}
		des.Gauge("bank_utilization_permille").Set(int64(1000 * busy / float64(banks)))
	}
	return units.Bandwidth(float64(completions) * trace.LineSize / (horizonNs * 1e-9))
}
