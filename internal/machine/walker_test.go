package machine

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/memsys"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// chaseLatency runs a warmed random chase of `lines` cache lines and
// returns the measured average latency.
func chaseLatency(t *testing.T, m *Machine, lines int, page arch.PageSize, maxMeasured int) float64 {
	t.Helper()
	w := m.NewWalker(WalkerConfig{Page: page, DisablePrefetch: true})
	warm := trace.NewChase(0, lines, 1, 42)
	w.Run(warm, 0)
	measured := trace.NewChase(0, lines, 1, 42)
	res := w.Run(measured, maxMeasured)
	return res.AvgNs()
}

// TestFigure2Plateaus verifies the lmbench-style latency curve: each
// working set lands on its cache level's plateau.
func TestFigure2Plateaus(t *testing.T) {
	m := e870()
	cases := []struct {
		name     string
		kib      int
		min, max float64
	}{
		{"L1", 32, 0.5, 1.0},
		{"L2", 256, 2.5, 3.5},
		{"L3", 3 * 1024, 5.5, 7.0}, // inside the 3 MiB ERAT reach
		{"L3+ERAT", 6 * 1024, 6.0, 9.0},
		{"L3-remote", 32 * 1024, 25, 36},
		{"L4", 120 * 1024, 55, 75},
		{"DRAM", 384 * 1024, 90, 140},
	}
	for _, c := range cases {
		lines := c.kib * 1024 / 128
		got := chaseLatency(t, m, lines, arch.Page64K, 400000)
		if got < c.min || got > c.max {
			t.Errorf("%s (%d KiB): %.2f ns, want [%v, %v]", c.name, c.kib, got, c.min, c.max)
		}
	}
}

// TestFigure2HugePagesFlattenDRAM verifies the blue-curve behaviour: at
// large working sets, 16 MiB pages avoid the TLB-walk penalty that the
// 64 KiB curve pays.
func TestFigure2HugePagesFlattenDRAM(t *testing.T) {
	m := e870()
	lines := 384 * 1024 * 1024 / 128
	small := chaseLatency(t, m, lines, arch.Page64K, 300000)
	huge := chaseLatency(t, m, lines, arch.Page16M, 300000)
	if huge >= small {
		t.Errorf("huge pages (%.1f ns) not below 64K pages (%.1f ns) at 384 MiB", huge, small)
	}
	if small-huge < 10 {
		t.Errorf("TLB-walk gap = %.1f ns, want >10", small-huge)
	}
}

// TestFigure2HugePageSpike verifies the 3 MiB ERAT-reach spike appears on
// the huge-page curve and not on the 64 KiB curve.
func TestFigure2HugePageSpike(t *testing.T) {
	m := e870()
	lines := 6 * 1024 * 1024 / 128 // 6 MiB: past the 3 MiB ERAT reach, inside L3
	small := chaseLatency(t, m, lines, arch.Page64K, 0)
	huge := chaseLatency(t, m, lines, arch.Page16M, 0)
	if huge <= small {
		t.Errorf("no huge-page ERAT spike: huge %.2f ns <= 64K %.2f ns", huge, small)
	}
}

// TestSequentialPrefetchCutsLatency verifies Figure 6's headline: with
// deep prefetching, a sequential scan's average latency collapses toward
// the per-line service floor.
func TestSequentialPrefetchCutsLatency(t *testing.T) {
	m := e870()
	const lines = 1 << 17 // 16 MiB
	run := func(dscr int) float64 {
		w := m.NewWalker(WalkerConfig{Prefetch: prefetch.Config{DSCR: dscr}})
		res := w.Run(trace.NewSequential(0, lines), 0)
		return res.AvgNs()
	}
	none := run(1)
	deepest := run(7)
	if deepest >= none/3 {
		t.Errorf("deepest prefetch %.1f ns vs none %.1f ns: want large reduction", deepest, none)
	}
	// Depth must be monotone (non-increasing latency).
	prev := none
	for dscr := 2; dscr <= 7; dscr++ {
		got := run(dscr)
		if got > prev+0.5 {
			t.Errorf("latency rose from %.2f to %.2f at DSCR=%d", prev, got, dscr)
		}
		prev = got
	}
	// Deepest should approach the calibrated floor.
	floor := m.Spec.Latency.MinPrefetchedNs
	if deepest > floor*1.6 {
		t.Errorf("deepest = %.2f ns, want near floor %.2f", deepest, floor)
	}
}

// TestStrideNStreamDetection reproduces Figure 7: a stride-256 stream
// reads at ~50 ns with detection off and ~14 ns with stride-N enabled at
// the deepest setting.
func TestStrideNStreamDetection(t *testing.T) {
	m := e870()
	const count = 60000
	run := func(strideN bool, dscr int) float64 {
		// Huge pages, as the paper's stride measurements use: 64 KiB
		// pages would bury the stride behind TLB walks.
		w := m.NewWalker(WalkerConfig{
			Page:     arch.Page16M,
			Prefetch: prefetch.Config{DSCR: dscr, StrideN: strideN},
		})
		res := w.Run(trace.NewStrided(0, 256, count), 0)
		return res.AvgNs()
	}
	off := run(false, 7)
	on := run(true, 7)
	if off < 45 || off > 62 {
		t.Errorf("stride-N off: %.1f ns, want ~50", off)
	}
	if on > 20 {
		t.Errorf("stride-N on: %.1f ns, want ~14", on)
	}
	if off/on < 2.5 {
		t.Errorf("stride-N speedup only %.1fx", off/on)
	}
	// Enabled latency improves with depth.
	shallow := run(true, 2)
	if shallow <= on {
		t.Errorf("shallow depth (%.1f) not worse than deepest (%.1f)", shallow, on)
	}
}

// TestDCBTSmallBlocks reproduces Figure 8: DCBT hints speed up randomly
// ordered small sequential blocks by >25%, with negligible effect on
// large blocks.
func TestDCBTSmallBlocks(t *testing.T) {
	m := e870()
	run := func(blockLines int, hint bool) float64 {
		totalLines := 1 << 20 // 128 MiB: well beyond the cache hierarchy
		blocks := totalLines / blockLines
		g := trace.NewBlockedRandom(0, blocks, blockLines, 7)
		w := m.NewWalker(WalkerConfig{})
		for {
			if hint && g.BlockStart() {
				// Peek the next address by cloning position: the next
				// block's base is deterministic from the generator; issue
				// the DCBT for the upcoming block.
				addr, ok := g.Next()
				if !ok {
					break
				}
				w.Hint(addr, blockLines, 1)
				w.Access(addr)
				continue
			}
			addr, ok := g.Next()
			if !ok {
				break
			}
			w.Access(addr)
		}
		return float64(w.accesses) * trace.LineSize / (w.totalNs * 1e-9)
	}
	smallPlain := run(8, false)
	smallHint := run(8, true)
	largePlain := run(4096, false)
	largeHint := run(4096, true)
	if gain := smallHint / smallPlain; gain < 1.25 {
		t.Errorf("DCBT gain on 8-line blocks = %.2fx, want > 1.25x", gain)
	}
	if gain := largeHint / largePlain; gain > 1.05 {
		t.Errorf("DCBT gain on 4096-line blocks = %.2fx, want negligible", gain)
	}
}

// TestWalkerRemoteHome verifies that remote-homed memory pays the SMP hop
// in the walker, consistent with the analytic Table IV model.
func TestWalkerRemoteHome(t *testing.T) {
	m := e870()
	const lines = 1 << 16 // 8 MiB footprint, larger than L2, chase defeats L3 partially
	run := func(home arch.ChipID) float64 {
		w := m.NewWalker(WalkerConfig{
			Chip:            0,
			DisablePrefetch: true,
			Home:            func(uint64) arch.ChipID { return home },
		})
		// Working set 512 MiB so DRAM dominates.
		big := 512 * 1024 * 1024 / 128
		warm := trace.NewChase(0, big, 1, 1)
		w.Run(warm, 200000)
		res := w.Run(trace.NewChase(0, big, 1, 2), 200000)
		return res.AvgNs()
	}
	local := run(0)
	intra := run(1)
	inter := run(5)
	if !(local < intra && intra < inter) {
		t.Errorf("latency ordering wrong: local %.0f, intra %.0f, inter %.0f", local, intra, inter)
	}
	if inter-local < 100 {
		t.Errorf("inter-group premium = %.0f ns, want >100", inter-local)
	}
	_ = lines
}

// TestWalkerInterleavedMatchesAnalytic cross-validates the two latency
// paths: a walker chase over page-interleaved memory must land near the
// analytic Table IV interleaved figure.
func TestWalkerInterleavedMatchesAnalytic(t *testing.T) {
	m := e870()
	home := memsys.Interleaved(m.Spec.Topology.Chips).HomeFunc()
	w := m.NewWalker(WalkerConfig{
		Chip:            0,
		DisablePrefetch: true,
		Home:            home,
	})
	const lines = 512 * 1024 * 1024 / 128 // DRAM-resident working set
	// A cold chase over a far-beyond-cache working set is all DRAM
	// misses, which is exactly what the analytic row models.
	res := w.Run(trace.NewChase(0, lines, 1, 6), 250000)
	analytic := m.InterleavedLatencyNs(0)
	// The walker adds translation costs the analytic row excludes;
	// allow a one-TLB-walk band.
	if res.AvgNs() < analytic || res.AvgNs() > analytic+50 {
		t.Errorf("walker interleaved %.0f ns vs analytic %.0f ns", res.AvgNs(), analytic)
	}
}

// TestWalkerStats verifies the per-source accounting: a cache-sized
// chase is dominated by its expected level, a prefetched scan by
// prefetch hits, and translation misses are counted.
func TestWalkerStats(t *testing.T) {
	m := e870()
	// L2-resident chase: one cold DRAM lap, then two L2 laps.
	w := m.NewWalker(WalkerConfig{DisablePrefetch: true})
	lines := 256 * 1024 / 128
	w.Run(trace.NewChase(0, lines, 3, 1), 0)
	st := w.Stats()
	if st.Accesses != uint64(3*lines) {
		t.Errorf("accesses = %d", st.Accesses)
	}
	if lvl, ok := st.DominantLevel(); !ok || lvl != cache.LevelL2 {
		t.Errorf("dominant level = %v (counts %v), want L2", lvl, st.Levels)
	}
	if st.TLBMisses == 0 {
		t.Error("no TLB misses recorded on a cold walker")
	}

	// Prefetched sequential scan: mostly prefetch hits.
	w2 := m.NewWalker(WalkerConfig{})
	w2.Run(trace.NewSequential(0, 1<<14), 0)
	st2 := w2.Stats()
	if st2.PrefetchHits < st2.Accesses/2 {
		t.Errorf("prefetch hits %d of %d accesses", st2.PrefetchHits, st2.Accesses)
	}

	var empty WalkerStats
	if _, ok := empty.DominantLevel(); ok {
		t.Error("empty stats reported a dominant level")
	}
}

// TestWalkResultBandwidth sanity-checks the bandwidth derivation.
func TestWalkResultBandwidth(t *testing.T) {
	r := WalkResult{Accesses: 1000, TotalNs: 1000 * 12.8}
	if got := r.ThreadBandwidth().GBps(); got < 9.9 || got > 10.1 {
		t.Errorf("10 GB/s expected, got %v", got)
	}
	var zero WalkResult
	if zero.AvgNs() != 0 || zero.ThreadBandwidth() != 0 {
		t.Error("zero result should produce zeros")
	}
}

// TestWalkerDefaults checks config defaulting.
func TestWalkerDefaults(t *testing.T) {
	m := e870()
	w := m.NewWalker(WalkerConfig{})
	if w.cfg.Page != arch.Page64K {
		t.Error("page default wrong")
	}
	if w.pf.Config().DSCR != 7 {
		t.Error("prefetch default wrong")
	}
	if w.NowNs() != 0 {
		t.Error("clock not zero at start")
	}
	w.Access(0)
	if w.NowNs() <= 0 {
		t.Error("clock did not advance")
	}
	if w.Hierarchy() == nil || w.Prefetcher() == nil {
		t.Error("accessors nil")
	}
}
