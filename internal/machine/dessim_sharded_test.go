package machine_test

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// shardTestMachines is the full identity matrix: both canned system
// specs healthy, plus the E870 degraded through every canned fault
// plan (guarded cores shrink chaser pools, lost channels shrink the
// bank pool, replay storms stretch the transit — each stresses a
// different input of the sharded model).
func shardTestMachines(t *testing.T) map[string]*machine.Machine {
	t.Helper()
	ms := map[string]*machine.Machine{
		"e870-healthy":   machine.New(arch.E870()),
		"maxsmp-healthy": machine.New(arch.MaxPOWER8SMP()),
	}
	for _, name := range fault.CannedNames() {
		plan, err := fault.Canned(name)
		if err != nil {
			t.Fatalf("canned plan %q: %v", name, err)
		}
		ms["e870-"+name] = plan.Derive(arch.E870())
	}
	return ms
}

// TestShardedDESBitIdentity is the tentpole contract: on every canned
// machine (healthy and degraded) the sharded driver must reproduce the
// sequential merged driver bit for bit at every legal shard count.
func TestShardedDESBitIdentity(t *testing.T) {
	const horizon = 15_000.0
	for name, m := range shardTestMachines(t) {
		ref := m.SimulateRandomAccessSharded(8, 4, horizon, 1, nil, nil)
		if ref <= 0 {
			t.Fatalf("%s: sequential reference produced no bandwidth", name)
		}
		for _, shards := range []int{2, 4, 8} {
			got := m.SimulateRandomAccessSharded(8, 4, horizon, shards, nil, nil)
			if math.Float64bits(float64(got)) != math.Float64bits(float64(ref)) {
				t.Errorf("%s at %d shards: %v != sequential %v (bit mismatch)", name, shards, got, ref)
			}
		}
	}
}

// TestShardedDESCountersMatch extends bit-identity to the observable
// internals: events, scheduled entries, completions and the queue
// high-water mark must be shard-count-invariant (only the barrier
// machinery's own counters may differ).
func TestShardedDESCountersMatch(t *testing.T) {
	const horizon = 15_000.0
	m := machine.New(arch.E870())
	counters := func(shards int) map[string]uint64 {
		reg := obs.NewRegistry("t")
		m.SimulateRandomAccessSharded(8, 4, horizon, shards, reg, nil)
		out := map[string]uint64{}
		for _, c := range reg.Child("des").Snapshot().Counters {
			out[c.Name] = c.Value
		}
		return out
	}
	ref := counters(1)
	for _, shards := range []int{2, 8} {
		got := counters(shards)
		for _, name := range []string{"events", "scheduled", "completions"} {
			if got[name] != ref[name] {
				t.Errorf("%d shards: %s = %d, sequential %d", shards, name, got[name], ref[name])
			}
		}
	}
}

// TestShardedDESSaturates pins the model to the paper: at SMT8 x 4
// lists the machine is bank-bound, so the socket-resolved model must
// still deliver the calibrated ~500 GB/s random-access peak even
// though remote accesses now pay real fabric hops.
func TestShardedDESSaturates(t *testing.T) {
	m := machine.New(arch.E870())
	got := m.SimulateRandomAccessSharded(8, 4, 100_000, 8, nil, nil).GBps()
	if !stats.Within(got, 500, 0.10) {
		t.Errorf("sharded DES saturated bandwidth %.1f GB/s, want ~500 within 10%%", got)
	}
}

// TestShardedDESDegradedMonotone guards the deg-plan experiment's
// check: a degraded machine must not outperform the healthy one.
func TestShardedDESDegradedMonotone(t *testing.T) {
	healthy := machine.New(arch.E870())
	plan, err := fault.Canned("worst-day")
	if err != nil {
		t.Fatal(err)
	}
	degraded := plan.Derive(arch.E870())
	h := healthy.SimulateRandomAccessSharded(8, 4, 50_000, 8, nil, nil).GBps()
	d := degraded.SimulateRandomAccessSharded(8, 4, 50_000, 8, nil, nil).GBps()
	if d > h {
		t.Errorf("degraded %.1f GB/s exceeds healthy %.1f GB/s", d, h)
	}
}

func TestShardCountValidation(t *testing.T) {
	spec := arch.E870()
	for shards, want := range map[int]bool{
		-1: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 5: false, 8: true, 16: false,
	} {
		if got := machine.ShardCountValid(spec, shards); got != want {
			t.Errorf("ShardCountValid(E870, %d) = %v, want %v", shards, got, want)
		}
	}
	for maxWorkers, want := range map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 7: 4, 8: 8, 64: 8} {
		if got := machine.AutoShards(spec, maxWorkers); got != want {
			t.Errorf("AutoShards(E870, %d) = %d, want %d", maxWorkers, got, want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("non-divisor shard count did not panic")
		}
	}()
	machine.New(spec).SimulateRandomAccessSharded(8, 4, 1000, 3, nil, nil)
}
