// Package machine assembles the POWER8 machine model: the arch
// description, the cache/TLB/prefetch simulators, the SMP fabric and the
// memory-bandwidth model, into the two engines the experiments use —
// a trace-driven latency Walker for dependent-load microbenchmarks
// (Figures 2, 6, 7, 8 and the latency columns of Table IV) and analytic
// steady-state bandwidth queries delegated to internal/memsys and
// internal/fabric (Table III, Table IV bandwidth, Figures 3 and 4).
package machine

import (
	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/memsys"
	"repro/internal/units"
)

// Machine is a modelled SMP system. It is read-only after construction:
// Spec, Net and Mem only answer queries, and everything mutable — cache
// state, TLB state, prefetch streams, DES queues — lives in the Walker
// and Sim instances created per run. A single Machine may therefore be
// shared by concurrently running experiments.
type Machine struct {
	Spec *arch.SystemSpec
	Net  *fabric.Network
	Mem  *memsys.Model
}

// New builds a machine with the E870-fitted calibrations. The spec may be
// any POWER8 SystemSpec (arch.E870, arch.MaxPOWER8SMP, or a custom one).
func New(spec *arch.SystemSpec) *Machine {
	return NewWithCalibration(spec, fabric.E870Calibration(), memsys.E870Calibration())
}

// NewWithCalibration builds a machine with explicit calibration profiles.
func NewWithCalibration(spec *arch.SystemSpec, fc fabric.Calibration, mc memsys.Calibration) *Machine {
	return NewDegraded(spec, fc, mc, nil, nil)
}

// NewDegraded builds a machine carrying RAS degradation overlays: fd
// derates fabric links (lane sparing), md derates memory channels and
// Centaur links. Either may be nil. The spec's own Guard map (guarded
// cores) and latency adders are expected to already be part of spec —
// degraded machines are derived by internal/fault through this
// constructor, never by mutating a built Machine, so a degraded and a
// healthy Machine coexist safely in one process.
func NewDegraded(spec *arch.SystemSpec, fc fabric.Calibration, mc memsys.Calibration, fd *fabric.Degradation, md *memsys.Degradation) *Machine {
	if err := spec.Guard.Validate(spec); err != nil {
		panic(err)
	}
	return &Machine{
		Spec: spec,
		Net:  fabric.NewDegraded(spec.Topology, spec.Latency, fc, fd),
		Mem:  memsys.NewDegraded(spec, mc, md),
	}
}

// DemandLatencyNs returns the dependent-load latency of a DRAM access
// issued by a core on chip `from` to memory homed on chip `home`, without
// prefetching and excluding translation penalties: the local DRAM latency
// plus the SMP hop cost (the Table IV "w/o prefetching" column).
func (m *Machine) DemandLatencyNs(from, home arch.ChipID) float64 {
	return m.Spec.Latency.LocalDRAMNs + m.Net.HopLatencyNs(from, home)
}

// PrefetchedLatencyNs returns the steady-state observed latency of a
// fully-ramped sequential stream from memory homed on chip `home` (the
// Table IV "w/ prefetching" column): the residual fraction of the demand
// latency, floored at the per-line transfer-and-detect cost.
func (m *Machine) PrefetchedLatencyNs(from, home arch.ChipID) float64 {
	lat := m.Spec.Latency
	v := lat.PrefetchResidue * m.DemandLatencyNs(from, home)
	if v < lat.MinPrefetchedNs {
		v = lat.MinPrefetchedNs
	}
	return v
}

// InterleavedLatencyNs returns the average demand latency for memory
// interleaved across every chip (Table IV row "Chip0 <-> interleaved").
func (m *Machine) InterleavedLatencyNs(from arch.ChipID) float64 {
	var sum float64
	chips := m.Spec.Topology.Chips
	for c := 0; c < chips; c++ {
		sum += m.DemandLatencyNs(from, arch.ChipID(c))
	}
	return sum / float64(chips)
}

// RandomAccessBandwidth returns the system random-read bandwidth when
// every core runs `threads` threads each chasing `streams` independent
// lists (Figure 4). Outstanding requests per core are limited by the
// load-miss queue.
func (m *Machine) RandomAccessBandwidth(threads, streams int) units.Bandwidth {
	perCore := threads * streams
	if perCore > m.Spec.Chip.LoadMissQueue {
		perCore = m.Spec.Chip.LoadMissQueue
	}
	total := perCore * m.Spec.TotalCores()
	return m.Mem.RandomAccess(total)
}
