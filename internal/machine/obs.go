package machine

import (
	"fmt"

	"repro/internal/cache"
)

// This file publishes the machine layer's counters into the obs
// registry. The walker and the DES simulator accumulate into plain
// fields on their hot paths (see the fields on Walker and engine.Sim)
// and this code flushes deltas at run boundaries — so instrumentation
// costs nothing per access, and an experiment's registry still ends up
// with the same per-level hit counts a hardware PMU would have shown.
//
// Counter taxonomy under an experiment scope (see DESIGN.md
// "Observability" for units and the paper artifact each group explains):
//
//	walker/accesses                demand loads issued
//	walker/xlate/{erat_miss,tlb_miss}
//	walker/hit/{l1,l2,l3,l3_remote,l4,dram,prefetch}
//	walker/miss/{l1,l2,l3,l4}      demand loads satisfied past the level
//	walker/prefetch/dscr<k>/{issued,streams_detected,confirmed,
//	                         stale_dropped,hints}
//	des/{events,scheduled,completions}, des/queue_depth_hwm,
//	des/banks, des/chasers, des/bank_utilization_permille

// walkerPublished records what a walker has already flushed, so repeated
// PublishStats calls add exact deltas.
type walkerPublished struct {
	accesses     uint64
	prefetchHits uint64
	eratMisses   uint64
	tlbMisses    uint64
	staleDrops   uint64
	hints        uint64
	levelCounts  [cache.NumLevels]uint64
	pfIssued     uint64
	pfDetected   uint64
}

// levelSlug names a cache level in counter paths.
func levelSlug(l cache.Level) string {
	switch l {
	case cache.LevelL1:
		return "l1"
	case cache.LevelL2:
		return "l2"
	case cache.LevelL3:
		return "l3"
	case cache.LevelL3Remote:
		return "l3_remote"
	case cache.LevelL4:
		return "l4"
	default:
		return "dram"
	}
}

// PublishStats flushes the walker's counter deltas into the registry
// given as WalkerConfig.Obs, under a "walker" child scope. Run calls it
// automatically at the end of every trace; explicit calls are only
// needed around hand-rolled Access loops. With no registry configured it
// returns immediately.
func (w *Walker) PublishStats() {
	if w.cfg.Obs == nil {
		return
	}
	scope := w.cfg.Obs.Child("walker")
	p := &w.published

	scope.Counter("accesses").Add(w.accesses - p.accesses)
	xl := scope.Child("xlate")
	xl.Counter("erat_miss").Add(w.eratMisses - p.eratMisses)
	xl.Counter("tlb_miss").Add(w.tlbMisses - p.tlbMisses)

	// Per-level demand hit deltas, then the derived misses: a load
	// satisfied at level k missed every level above it. The local and
	// lateral-victim L3 probes count as one level for misses — miss/l3
	// is traffic that left the chip's L3 complex entirely.
	var d [cache.NumLevels]uint64
	hit := scope.Child("hit")
	for l := 0; l < cache.NumLevels; l++ {
		d[l] = w.levelCounts[l] - p.levelCounts[l]
		hit.Counter(levelSlug(cache.Level(l))).Add(d[l])
	}
	hit.Counter("prefetch").Add(w.prefetchHits - p.prefetchHits)
	miss := scope.Child("miss")
	dL3r, dL4, dDRAM := d[cache.LevelL3Remote], d[cache.LevelL4], d[cache.LevelDRAM]
	miss.Counter("l1").Add(d[cache.LevelL2] + d[cache.LevelL3] + dL3r + dL4 + dDRAM)
	miss.Counter("l2").Add(d[cache.LevelL3] + dL3r + dL4 + dDRAM)
	miss.Counter("l3").Add(dL4 + dDRAM)
	miss.Counter("l4").Add(dDRAM)

	pf := scope.Child("prefetch").Child(fmt.Sprintf("dscr%d", w.cfg.Prefetch.DSCR))
	pf.Counter("issued").Add(w.pf.Issued() - p.pfIssued)
	pf.Counter("streams_detected").Add(w.pf.Detected() - p.pfDetected)
	pf.Counter("confirmed").Add(w.prefetchHits - p.prefetchHits)
	pf.Counter("stale_dropped").Add(w.staleDrops - p.staleDrops)
	pf.Counter("hints").Add(w.hints - p.hints)

	p.accesses = w.accesses
	p.prefetchHits = w.prefetchHits
	p.eratMisses = w.eratMisses
	p.tlbMisses = w.tlbMisses
	p.staleDrops = w.staleDrops
	p.hints = w.hints
	p.levelCounts = w.levelCounts
	p.pfIssued = w.pf.Issued()
	p.pfDetected = w.pf.Detected()
}
