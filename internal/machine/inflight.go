package machine

import "math/bits"

// inflightTable maps in-flight prefetch line addresses to their
// completion times. It replaces a map[uint64]float64 on the walker's
// per-access path: the population is small and bounded by the prefetch
// engine's stream capacity times its run-ahead depth, so a fixed-size
// open-addressing table with linear probing stays in cache and avoids
// the hashing and bucket overhead of the runtime map. The table grows
// (rehash at 3/4 load) only in the pathological case of entries going
// stale faster than demand consumes them.
type inflightTable struct {
	keys  []uint64 // line address + 1; 0 marks an empty slot
	vals  []float64
	shift uint // 64 - log2(len(keys)), for Fibonacci hashing
	count int
}

// newInflightTable sizes the table for the expected steady-state
// population (typically streams x depth), rounded up to a power of two
// with headroom so probes stay short.
func newInflightTable(expected int) *inflightTable {
	capacity := 64
	for capacity < 2*expected {
		capacity *= 2
	}
	t := &inflightTable{}
	t.init(capacity)
	return t
}

func (t *inflightTable) init(capacity int) {
	t.keys = make([]uint64, capacity)
	t.vals = make([]float64, capacity)
	t.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
	t.count = 0
}

// slot returns the home slot of a line address.
func (t *inflightTable) slot(line uint64) int {
	return int((line * 0x9E3779B97F4A7C15) >> t.shift)
}

// get returns the completion time booked for line.
//
//p8:hotpath
func (t *inflightTable) get(line uint64) (float64, bool) {
	mask := len(t.keys) - 1
	for i := t.slot(line); ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == 0 {
			return 0, false
		}
		if k == line+1 {
			return t.vals[i], true
		}
	}
}

// put inserts or overwrites the completion time for line.
//
//p8:hotpath
func (t *inflightTable) put(line uint64, done float64) {
	if 4*(t.count+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := len(t.keys) - 1
	for i := t.slot(line); ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == 0 {
			t.keys[i] = line + 1
			t.vals[i] = done
			t.count++
			return
		}
		if k == line+1 {
			t.vals[i] = done
			return
		}
	}
}

// del removes line if present, using backward-shift deletion so probe
// chains stay tombstone-free.
//
//p8:hotpath
func (t *inflightTable) del(line uint64) {
	mask := len(t.keys) - 1
	i := t.slot(line)
	for {
		k := t.keys[i]
		if k == 0 {
			return
		}
		if k == line+1 {
			break
		}
		i = (i + 1) & mask
	}
	t.count--
	j := i
	for {
		t.keys[i] = 0
		for {
			j = (j + 1) & mask
			if t.keys[j] == 0 {
				return
			}
			home := t.slot(t.keys[j] - 1)
			// Slot j's entry may fill the hole at i only if its home
			// slot does not lie in the cyclic interval (i, j] — moving
			// it earlier than its home would break its probe chain.
			inInterval := false
			if i <= j {
				inInterval = i < home && home <= j
			} else {
				inInterval = i < home || home <= j
			}
			if !inInterval {
				break
			}
		}
		t.keys[i] = t.keys[j]
		t.vals[i] = t.vals[j]
		i = j
	}
}

// grow doubles capacity and rehashes every live entry.
func (t *inflightTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(2 * len(oldKeys))
	for i, k := range oldKeys {
		if k != 0 {
			t.put(k-1, oldVals[i])
		}
	}
}

// len returns the number of live entries.
func (t *inflightTable) len() int { return t.count }
