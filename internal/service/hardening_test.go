package service

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// quickReq is the cheapest useful request: one quick experiment.
func quickReq() Request {
	return Request{Experiments: []string{"table1"}, Quick: true}
}

// TestSubmitIDAssignedBeforeQueue pins the publication order fixed in
// the interprocedural-lint PR: the job's ID must be written before the
// channel send hands the job to the worker pool, and a queue-full
// rejection must roll the sequence number back so admission numbering
// stays dense. The worker below reads job.ID concurrently with Submit;
// under -race the old write-after-publish ordering fails here.
func TestSubmitIDAssignedBeforeQueue(t *testing.T) {
	svc := New(Options{QueueDepth: 1, Workers: 1})

	// Fill the queue before starting workers, then overflow it.
	first, err := svc.Submit(quickReq())
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if first.ID != fmt.Sprintf("j1-%s", first.Fingerprint.Short()) {
		t.Fatalf("first job ID = %q, want j1-%s", first.ID, first.Fingerprint.Short())
	}
	if _, err := svc.Submit(quickReq()); err == nil {
		t.Fatal("submit into a full queue succeeded; want 429")
	}

	// The rejected submit must not consume a sequence number: drain the
	// queue and the next admission is j2.
	svc.Start()
	waitDone(t, first)
	second, err := svc.Submit(quickReq())
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if second.ID != fmt.Sprintf("j2-%s", second.Fingerprint.Short()) {
		t.Fatalf("post-rejection job ID = %q, want j2-%s (429 must roll back seq)", second.ID, second.Fingerprint.Short())
	}
	waitDone(t, second)
	shutdownNow(t, svc)

	// Every admitted job carries a complete ID in the index.
	for _, j := range svc.Jobs() {
		if j.ID == "" {
			t.Fatal("indexed job with empty ID")
		}
	}
}

// TestShutdownDrainsUnderConcurrentSubmits races a herd of submitters
// against Shutdown: every job that was admitted (Submit returned nil)
// must be Done when Shutdown returns — an accepted job is a promise —
// and every rejection must be the typed draining/full error, never a
// panic or a send on the closed queue. Run with -race.
func TestShutdownDrainsUnderConcurrentSubmits(t *testing.T) {
	svc := New(Options{QueueDepth: 8, Workers: 2})
	svc.Start()

	var mu sync.Mutex
	var admitted []*Job
	// Seed a few synchronous admissions so there is guaranteed queued
	// work when draining begins, whatever the goroutine schedule does.
	for i := 0; i < 3; i++ {
		j, err := svc.Submit(quickReq())
		if err != nil {
			t.Fatalf("seed submit %d: %v", i, err)
		}
		admitted = append(admitted, j)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for k := 0; k < 4; k++ {
				j, err := svc.Submit(quickReq())
				if err != nil {
					continue // 429 or 503: both legal under the race
				}
				mu.Lock()
				admitted = append(admitted, j)
				mu.Unlock()
			}
		}()
	}
	close(start)
	// Begin draining while submitters are still running.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if !svc.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, j := range admitted {
		st, _ := j.watch()
		if st != Done {
			t.Fatalf("admitted job %s is %q after Shutdown returned; want done", j.ID, st)
		}
	}
}

// TestJobStatsRegistryConcurrentReads hammers a running stats job's
// detached obs registry from reader goroutines while the worker writes
// counters into it — the per-job registry contract audited in the
// interprocedural-lint PR. Run with -race.
func TestJobStatsRegistryConcurrentReads(t *testing.T) {
	svc := New(Options{QueueDepth: 4, Workers: 1})
	svc.Start()
	req := quickReq()
	req.Stats = true
	job, err := svc.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.reg == nil {
		t.Fatal("stats job has no registry")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap := job.reg.Snapshot(); snap.Name != "job" {
					t.Errorf("snapshot from live job registry named %q, want job", snap.Name)
					return
				}
			}
		}()
	}
	waitDone(t, job)
	close(stop)
	wg.Wait()
	shutdownNow(t, svc)
	final := job.reg.Snapshot()
	if len(final.Children) == 0 && len(final.Counters) == 0 {
		t.Fatal("finished stats job registry snapshot is empty")
	}
}

// waitDone blocks until the job reaches Done.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

// shutdownNow drains the service with a generous deadline.
func shutdownNow(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDrainWithStuckClient: a slow-loris client that opens a connection
// and never finishes its request headers must not pin a graceful drain.
// ReadHeaderTimeout evicts the reader, the connection closes server-side,
// and Shutdown completes. Before the hardened NewHTTPServer this test
// hangs until the Shutdown context expires.
func TestDrainWithStuckClient(t *testing.T) {
	svc := New(Options{QueueDepth: 2, Workers: 1})
	svc.Start()
	defer func() {
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Errorf("service shutdown: %v", err)
		}
	}()

	srv := NewHTTPServer("127.0.0.1:0", svc.Handler())
	// Shrink the eviction window so the test is quick; the production
	// default is pinned by TestNewHTTPServerTimeouts.
	srv.ReadHeaderTimeout = 50 * time.Millisecond
	accepted := make(chan struct{}, 4)
	srv.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			accepted <- struct{}{}
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request: request line and one header, never the
	// terminating blank line.
	if _, err := conn.Write([]byte("GET /v1/jobs HTTP/1.1\r\nHost: p8d\r\n")); err != nil {
		t.Fatal(err)
	}
	<-accepted // the server is now reading (and timing) our headers

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with stuck client: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("drain took %v; a stuck client should be evicted in ~ReadHeaderTimeout", elapsed)
	}
	// The server hung up on the stuck client, not the other way round.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(conn); err != nil {
		t.Errorf("stuck client read after eviction: %v (want clean server-side close)", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}
