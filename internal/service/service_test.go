package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	power8 "repro"
)

// newTestServer builds a service + httptest server; the cleanup drains
// the service and closes the server.
func newTestServer(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(opts)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, ts
}

// post submits a request body and returns the status code and body.
func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, buf.Bytes()
}

// get fetches a path and returns the status code and body.
func get(t *testing.T, url, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, buf.Bytes()
}

// submitAndWait submits one request and long-polls it to completion,
// returning the finished job view.
func submitAndWait(t *testing.T, url, body string) jobView {
	t.Helper()
	code, b := post(t, url, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202; body: %s", code, b)
	}
	var v jobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("submit body: %v", err)
	}
	for i := 0; i < 60; i++ {
		code, b = get(t, url, "/v1/jobs/"+v.ID+"?wait=10s")
		if code != http.StatusOK {
			t.Fatalf("poll: got %d; body: %s", code, b)
		}
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("poll body: %v", err)
		}
		if v.State == Done {
			return v
		}
	}
	t.Fatalf("job %s never finished (state %s)", v.ID, v.State)
	return v
}

// TestSubmitValidation drives every 400 path of POST /v1/jobs and pins
// the messages clients see — notably that a bad fault plan surfaces the
// fault package's own friendly diagnostics, not a generic error.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"malformed json", `{`, "bad request body"},
		{"unknown field", `{"bogus": 1}`, "bad request body"},
		{"unknown spec", `{"spec": "z15"}`, `unknown spec "z15"`},
		{"unknown suite", `{"suite": "microbench"}`, `unknown suite "microbench"`},
		{"unknown experiment", `{"experiments": ["table99"]}`, `unknown experiment "table99"`},
		{"duplicate experiment", `{"experiments": ["table3", "table3"]}`, `listed twice`},
		{"bad fault grammar", `{"faults": "meteor:3"}`, `unknown kind "meteor"`},
		{"fault validate", `{"faults": "guard:99:2"}`, "chip 99 out of range"},
		{"fault plan on paper suite", `{"suite": "paper", "faults": "worst-day"}`, "degradation"},
		{"faults and faultseed", `{"faults": "worst-day", "faultseed": 7}`, "mutually exclusive"},
		{"bad shards", `{"shards": 3}`, "does not divide"},
		{"negative workers", `{"workers": -1}`, "workers must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts.URL, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("got %d, want 400; body: %s", code, body)
			}
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error envelope: %v (body: %s)", err, body)
			}
			if e.Status != http.StatusBadRequest {
				t.Errorf("envelope status = %d, want 400", e.Status)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
}

// TestUnknownJob: every job-scoped endpoint answers 404 with the error
// envelope for an id that was never issued.
func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{
		"/v1/jobs/j999-deadbeef",
		"/v1/jobs/j999-deadbeef/reports",
		"/v1/jobs/j999-deadbeef/stream",
		"/v1/jobs/j999-deadbeef/stats",
	} {
		code, body := get(t, ts.URL, path)
		if code != http.StatusNotFound {
			t.Errorf("%s: got %d, want 404; body: %s", path, code, body)
		}
		if !strings.Contains(string(body), "unknown job") {
			t.Errorf("%s: body %q does not mention the unknown job", path, body)
		}
	}
}

// TestQueueFull: with no workers started and a one-deep queue, the
// first submit is admitted and the second is rejected with 429 and a
// Retry-After header — admission control, not a hung connection.
func TestQueueFull(t *testing.T) {
	svc := New(Options{QueueDepth: 1})
	// Deliberately not started: nothing drains the queue, so the test
	// is deterministic.
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	code, body := post(t, ts.URL, `{"experiments":["table1"],"quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: got %d, want 202; body: %s", code, body)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["table1"],"quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestReportsBeforeDone: a queued job's reports endpoint answers 409
// (not 404, not an empty body) until the job finishes.
func TestReportsBeforeDone(t *testing.T) {
	svc := New(Options{}) // not started: the job stays queued
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	code, body := post(t, ts.URL, `{"experiments":["table1"],"quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: got %d; body: %s", code, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, ts.URL, "/v1/jobs/"+v.ID+"/reports")
	if code != http.StatusConflict {
		t.Fatalf("reports while queued: got %d, want 409; body: %s", code, body)
	}
}

// TestWarmVsColdByteIdentity is the service-level restatement of the
// PR-7 contract: two identical uninstrumented jobs against one cache
// produce byte-identical /reports bodies, the second served warm. The
// two jobs share the fingerprint half of their ids and the full
// request fingerprint.
func TestWarmVsColdByteIdentity(t *testing.T) {
	cache, err := power8.NewSuiteCache(power8.CacheOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Cache: cache, Workers: 1})

	const body = `{"experiments":["table1","table3"],"quick":true}`
	cold := submitAndWait(t, ts.URL, body)
	warm := submitAndWait(t, ts.URL, body)

	if cold.Fingerprint != warm.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", cold.Fingerprint, warm.Fingerprint)
	}
	if cold.ID == warm.ID {
		t.Fatalf("distinct submissions share a job id %s", cold.ID)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != 2 {
		t.Errorf("cold job: hits=%d misses=%d, want 0/2", cold.CacheHits, cold.CacheMisses)
	}
	if warm.CacheHits != 2 || warm.CacheMisses != 0 {
		t.Errorf("warm job: hits=%d misses=%d, want 2/0", warm.CacheHits, warm.CacheMisses)
	}
	for i, hint := range warm.WarmHint {
		if !hint {
			t.Errorf("warm job: warm_hint[%d] = false, want true", i)
		}
	}

	_, coldBytes := get(t, ts.URL, "/v1/jobs/"+cold.ID+"/reports")
	_, warmBytes := get(t, ts.URL, "/v1/jobs/"+warm.ID+"/reports")
	if !bytes.Equal(coldBytes, warmBytes) {
		t.Errorf("warm /reports body differs from cold (%d vs %d bytes)", len(coldBytes), len(warmBytes))
	}
}

// TestStream: the NDJSON stream yields one line per experiment in
// suite order plus the done trailer, regardless of completion order.
func TestStream(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	code, body := post(t, ts.URL, `{"experiments":["table1","table2"],"quick":true,"workers":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: got %d; body: %s", code, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("stream content type %q", ct)
	}
	var ids []string
	sawTrailer := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			ID    string `json:"id"`
			State State  `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		if line.State == Done {
			sawTrailer = true
			continue
		}
		ids = append(ids, line.ID)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Error("stream ended without the done trailer")
	}
	if want := []string{"table1", "table2"}; fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Errorf("stream ids = %v, want %v", ids, want)
	}
}

// TestDrainOnShutdown: Shutdown finishes every admitted job before
// returning, and a post-drain submit is turned away with 503. Run
// under -race this also exercises the queue/worker/job-state fences.
func TestDrainOnShutdown(t *testing.T) {
	svc := New(Options{QueueDepth: 8, Workers: 2})
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var views []jobView
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := post(t, ts.URL, `{"experiments":["table1"],"quick":true}`)
			if code != http.StatusAccepted {
				t.Errorf("submit: got %d; body: %s", code, body)
				return
			}
			var v jobView
			if err := json.Unmarshal(body, &v); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			views = append(views, v)
			mu.Unlock()
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	for _, v := range views {
		job, ok := svc.Job(v.ID)
		if !ok {
			t.Fatalf("job %s vanished", v.ID)
		}
		if state, _ := job.watch(); state != Done {
			t.Errorf("job %s drained to %q, want done", v.ID, state)
		}
	}

	code, body := post(t, ts.URL, `{"experiments":["table1"],"quick":true}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: got %d, want 503; body: %s", code, body)
	}
	code, body = get(t, ts.URL, "/v1/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "draining") {
		t.Errorf("healthz after drain: code %d body %s", code, body)
	}
}

// TestCatalog: the catalog enumerates both specs, both suites with
// their experiment counts, and the canned fault plans.
func TestCatalog(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts.URL, "/v1/catalog")
	if code != http.StatusOK {
		t.Fatalf("catalog: got %d", code)
	}
	var cat catalogView
	if err := json.Unmarshal(body, &cat); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(cat.Specs) != fmt.Sprint([]string{"e870", "max-smp"}) {
		t.Errorf("specs = %v", cat.Specs)
	}
	counts := map[string]int{}
	for _, s := range cat.Suites {
		counts[s.Name] = len(s.Experiments)
	}
	if counts["paper"] != 18 || counts["degradation"] != 4 {
		t.Errorf("suite sizes = %v, want paper:18 degradation:4", counts)
	}
	if len(cat.CannedFaultPlans) == 0 {
		t.Error("no canned fault plans in catalog")
	}
}

// TestDegradationJob: a faulted job runs the degradation suite against
// a machine derived through the validated plan; a seeded plan is
// normalized into its event-grammar spelling.
func TestDegradationJob(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is not short")
	}
	_, ts := newTestServer(t, Options{})
	v := submitAndWait(t, ts.URL, `{"faults":"guarded-cores","experiments":["deg-cores"],"quick":true}`)
	if v.Request.Suite != "degradation" {
		t.Errorf("suite = %q, want degradation (implied by faults)", v.Request.Suite)
	}
	code, body := get(t, ts.URL, "/v1/jobs/"+v.ID+"/reports")
	if code != http.StatusOK {
		t.Fatalf("reports: got %d", code)
	}
	var reports []*power8.Report
	if err := json.Unmarshal(body, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].ID != "deg-cores" {
		t.Fatalf("reports = %d entries", len(reports))
	}
	if reports[0].Failed() {
		t.Errorf("deg-cores failed: %s", reports[0].Err)
	}
}

// TestStatsEndpoints: /v1/stats serves the service registry (counting
// its own request), and an instrumented job serves per-experiment
// counters while an uninstrumented one serves the empty snapshot.
func TestStatsEndpoints(t *testing.T) {
	root := power8.NewStatsRegistry("p8d-test")
	_, ts := newTestServer(t, Options{Stats: root, Workers: 1})

	v := submitAndWait(t, ts.URL, `{"experiments":["table1"],"quick":true,"stats":true}`)
	code, body := get(t, ts.URL, "/v1/jobs/"+v.ID+"/stats")
	if code != http.StatusOK {
		t.Fatalf("job stats: got %d", code)
	}
	if !strings.Contains(string(body), "table1") {
		t.Errorf("instrumented job stats lack the experiment scope: %s", body)
	}

	plain := submitAndWait(t, ts.URL, `{"experiments":["table1"],"quick":true}`)
	code, body = get(t, ts.URL, "/v1/jobs/"+plain.ID+"/stats")
	if code != http.StatusOK {
		t.Fatalf("uninstrumented job stats: got %d", code)
	}
	if strings.Contains(string(body), "table1") {
		t.Errorf("uninstrumented job stats should be empty, got: %s", body)
	}

	code, body = get(t, ts.URL, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: got %d", code)
	}
	if !strings.Contains(string(body), "jobs_submitted") {
		t.Errorf("/v1/stats lacks service counters: %s", body)
	}
}

// TestStatsBypassesCache: a stats job must re-execute even when warm —
// the counters describe the execution that actually happened — so its
// provenance is all-miss.
func TestStatsBypassesCache(t *testing.T) {
	cache, err := power8.NewSuiteCache(power8.CacheOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Cache: cache, Workers: 1})

	_ = submitAndWait(t, ts.URL, `{"experiments":["table1"],"quick":true}`)
	observed := submitAndWait(t, ts.URL, `{"experiments":["table1"],"quick":true,"stats":true}`)
	if observed.CacheHits != 0 {
		t.Errorf("stats job reported %d cache hits, want 0 (bypass)", observed.CacheHits)
	}
}
