package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	power8 "repro"
	"repro/internal/iofault"
	"repro/internal/journal"
)

// openTestJournal opens a journal over an in-memory filesystem.
func openTestJournal(t *testing.T, mem *iofault.Mem) (*journal.Journal, journal.RecoveryInfo) {
	t.Helper()
	j, info, err := journal.Open("wal", journal.Options{FS: mem})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	return j, info
}

// TestJournalRestartServesReports is the restart round trip in one
// process: run a job to completion under a journal and a disk cache,
// "restart" (new journal replay, new service, new cache over the same
// directories), and require the recovered job to be listed as done and
// its reports body to be byte-identical — without recomputing.
func TestJournalRestartServesReports(t *testing.T) {
	mem := iofault.NewMem()
	cacheDir := t.TempDir()
	const body = `{"experiments":["table3"],"quick":true}`

	// First life: run one job to completion.
	jnl, _ := openTestJournal(t, mem)
	cache, err := power8.NewSuiteCache(power8.CacheOptions{Dir: cacheDir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Options{Cache: cache, Journal: jnl})
	v := submitAndWait(t, ts.URL, body)
	_, firstReports := get(t, ts.URL, "/v1/jobs/"+v.ID+"/reports")
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: replay the journal into a fresh service and cache.
	jnl2, info := openTestJournal(t, mem)
	if info.CorruptStop {
		t.Fatalf("replay flagged corruption: %+v", info)
	}
	cache2, err := power8.NewSuiteCache(power8.CacheOptions{Dir: cacheDir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Options{Cache: cache2, Journal: jnl2})
	sum := svc2.Recover(info.Records)
	if sum.Done != 1 || sum.Requeued != 0 || sum.Interrupted != 0 || sum.Dropped != 0 {
		t.Fatalf("recovery summary %+v, want exactly one done job", sum)
	}
	svc2.Start()
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		ts2.Close()
		if err := svc2.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := jnl2.Close(); err != nil {
			t.Errorf("journal close: %v", err)
		}
	}()

	// The recovered job is listed, done, and flagged recovered with no
	// wall-clock provenance.
	code, b := get(t, ts2.URL, "/v1/jobs/"+v.ID)
	if code != http.StatusOK {
		t.Fatalf("recovered job poll: %d, body %s", code, b)
	}
	var rv jobView
	if err := json.Unmarshal(b, &rv); err != nil {
		t.Fatal(err)
	}
	if rv.State != Done || !rv.Recovered {
		t.Fatalf("recovered job view: state %s, recovered %v", rv.State, rv.Recovered)
	}
	if rv.SubmittedAt != "" || rv.FinishedAt != "" {
		t.Fatalf("recovered job carries wall-clock provenance: %+v", rv)
	}
	if rv.Fingerprint != v.Fingerprint {
		t.Fatalf("fingerprint changed across restart: %s vs %s", rv.Fingerprint, v.Fingerprint)
	}

	// The reports body is byte-identical to the first life's.
	code, second := get(t, ts2.URL, "/v1/jobs/"+v.ID+"/reports")
	if code != http.StatusOK {
		t.Fatalf("recovered reports: %d, body %s", code, second)
	}
	if string(second) != string(firstReports) {
		t.Fatalf("reports changed across restart:\n--- before ---\n%s\n--- after ---\n%s", firstReports, second)
	}
	// Nothing was recomputed: the reports came out of the cache.
	if misses := cache2.Reports().Len(); misses == 0 {
		t.Fatal("cache untouched — reports did not come from it")
	}
}

// TestRecoverInterruptsMidRunJobs: a journal showing a job mid-run
// (Running, no Done) recovers it as Interrupted — terminal, 410 on
// reports, trailer-only stream — and the verdict is compacted back
// into the log so the next restart agrees.
func TestRecoverInterruptsMidRunJobs(t *testing.T) {
	mem := iofault.NewMem()
	jnl, _ := openTestJournal(t, mem)
	// Forge the crashed process's log: admitted and started, never done.
	req, _ := json.Marshal(Request{Spec: "e870", Suite: "paper", Experiments: []string{"table3"}, Quick: true})
	probe := New(Options{})
	nreq, m, _, plan, err := normalize(Request{Experiments: []string{"table3"}, Quick: true}, probe.machines)
	if err != nil {
		t.Fatal(err)
	}
	req, _ = json.Marshal(nreq)
	fp := fingerprintJob(nreq, m, plan)
	id := jobID(7, fp)
	for _, r := range []journal.Record{
		{Kind: journal.KindSubmitted, JobID: id, Seq: 7, Fingerprint: fp, Request: req},
		{Kind: journal.KindRunning, JobID: id},
	} {
		if err := jnl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	jnl2, info := openTestJournal(t, mem)
	svc := New(Options{Journal: jnl2})
	sum := svc.Recover(info.Records)
	if sum.Interrupted != 1 || sum.Requeued != 0 || sum.Done != 0 {
		t.Fatalf("recovery summary %+v, want one interrupted job", sum)
	}
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := jnl2.Close(); err != nil {
			t.Errorf("journal close: %v", err)
		}
	}()

	code, b := get(t, ts.URL, "/v1/jobs/"+id)
	var rv jobView
	if code != http.StatusOK || json.Unmarshal(b, &rv) != nil {
		t.Fatalf("poll: %d %s", code, b)
	}
	if rv.State != Interrupted || !rv.Recovered {
		t.Fatalf("state %s recovered %v, want interrupted+recovered", rv.State, rv.Recovered)
	}
	// Admission numbering resumes past the recovered sequence.
	code, b = post(t, ts.URL, `{"experiments":["table1"],"quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit after recovery: %d %s", code, b)
	}
	var nv jobView
	if err := json.Unmarshal(b, &nv); err != nil {
		t.Fatal(err)
	}
	if nv.ID == id || nv.ID[:2] != "j8" {
		t.Fatalf("post-recovery job ID %q, want sequence to resume at 8", nv.ID)
	}

	code, b = get(t, ts.URL, "/v1/jobs/"+id+"/reports")
	if code != http.StatusGone {
		t.Fatalf("interrupted reports: %d %s, want 410", code, b)
	}
	// The stream ends immediately with an interrupted trailer.
	code, b = get(t, ts.URL, "/v1/jobs/"+id+"/stream")
	if code != http.StatusOK {
		t.Fatalf("stream: %d", code)
	}
	var trailer streamTrailer
	if err := json.Unmarshal(b, &trailer); err != nil || trailer.State != Interrupted {
		t.Fatalf("stream trailer %s (%v), want interrupted", b, err)
	}

	// The compacted log reduces to the same verdict: one interrupted
	// job (plus the new submission).
	states := journalStates(t, mem, jnl2)
	if len(states) != 2 || !states[0].Interrupted {
		t.Fatalf("compacted log states: %+v", states)
	}
}

// journalStates closes nothing; it re-reads the log bytes directly.
func journalStates(t *testing.T, mem *iofault.Mem, jnl *journal.Journal) []*journal.JobState {
	t.Helper()
	// Append through the same journal handle is still open; replaying a
	// copy of the directory is safe because segments are append-only.
	copyFS := iofault.NewMem()
	names, err := mem.ReadDir(jnl.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := mem.ReadFile(jnl.Dir() + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := copyFS.Create(jnl.Dir() + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	_, info, err := journal.Open(jnl.Dir(), journal.Options{FS: copyFS})
	if err != nil {
		t.Fatal(err)
	}
	return journal.Reduce(info.Records)
}

// TestRecoverRequeuesUnstartedJobs: a Submitted-only record re-enqueues
// the job on restart, and it runs to completion.
func TestRecoverRequeuesUnstartedJobs(t *testing.T) {
	mem := iofault.NewMem()
	jnl, _ := openTestJournal(t, mem)
	probe := New(Options{})
	nreq, m, _, plan, err := normalize(Request{Experiments: []string{"table3"}, Quick: true}, probe.machines)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(nreq)
	fp := fingerprintJob(nreq, m, plan)
	id := jobID(3, fp)
	if err := jnl.Append(journal.Record{Kind: journal.KindSubmitted, JobID: id, Seq: 3, Fingerprint: fp, Request: req}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	jnl2, info := openTestJournal(t, mem)
	svc := New(Options{Journal: jnl2})
	sum := svc.Recover(info.Records)
	if sum.Requeued != 1 {
		t.Fatalf("recovery summary %+v, want one requeued job", sum)
	}
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := jnl2.Close(); err != nil {
			t.Errorf("journal close: %v", err)
		}
	}()

	deadline := time.Now().Add(time.Minute)
	for {
		code, b := get(t, ts.URL, "/v1/jobs/"+id+"?wait=10s")
		if code != http.StatusOK {
			t.Fatalf("poll: %d %s", code, b)
		}
		var rv jobView
		if err := json.Unmarshal(b, &rv); err != nil {
			t.Fatal(err)
		}
		if rv.State == Done {
			if !rv.Recovered {
				t.Fatal("requeued job lost its recovered flag")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requeued job never finished (state %s)", rv.State)
		}
	}
	code, _ := get(t, ts.URL, "/v1/jobs/"+id+"/reports")
	if code != http.StatusOK {
		t.Fatalf("requeued job reports: %d", code)
	}
}

// TestRecoverEvictedReportsGone: a recovered done job whose reports
// are not in the cache answers 410 — the job's identity survived, the
// bytes did not.
func TestRecoverEvictedReportsGone(t *testing.T) {
	mem := iofault.NewMem()
	jnl, _ := openTestJournal(t, mem)
	probe := New(Options{})
	nreq, m, _, plan, err := normalize(Request{Experiments: []string{"table3"}, Quick: true}, probe.machines)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(nreq)
	fp := fingerprintJob(nreq, m, plan)
	id := jobID(1, fp)
	for _, r := range []journal.Record{
		{Kind: journal.KindSubmitted, JobID: id, Seq: 1, Fingerprint: fp, Request: req},
		{Kind: journal.KindRunning, JobID: id},
		{Kind: journal.KindReport, JobID: id, Index: 0},
		{Kind: journal.KindDone, JobID: id},
	} {
		if err := jnl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	jnl2, info := openTestJournal(t, mem)
	// A cache with an empty directory: the previous life's reports are
	// simply not there.
	cache, err := power8.NewSuiteCache(power8.CacheOptions{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Cache: cache, Journal: jnl2})
	if sum := svc.Recover(info.Records); sum.Done != 1 {
		t.Fatalf("recovery summary %+v, want one done job", sum)
	}
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := jnl2.Close(); err != nil {
			t.Errorf("journal close: %v", err)
		}
	}()
	code, b := get(t, ts.URL, "/v1/jobs/"+id+"/reports")
	if code != http.StatusGone {
		t.Fatalf("evicted recovered reports: %d %s, want 410", code, b)
	}
}

// TestSubmitRejectedWhenJournalFails: an admission whose Submitted
// record cannot be made durable answers 503 — and the next admission
// succeeds, because the journal rotates away from the broken segment.
func TestSubmitRejectedWhenJournalFails(t *testing.T) {
	mem := iofault.NewMem()
	// Write 0 is the opening segment's magic; write 1 is the first
	// record frame. Tear it: three bytes land, then ENOSPC — the
	// partial frame marks the active segment broken.
	ffs := iofault.NewFaulty(mem, iofault.Fault{Op: iofault.OpWrite, N: 1, Kind: iofault.KindNoSpace, Arg: 3})
	jnl, _, err := journal.Open("wal", journal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Options{Journal: jnl})
	t.Cleanup(func() {
		if err := jnl.Close(); err != nil {
			t.Errorf("journal close: %v", err)
		}
	})

	code, b := post(t, ts.URL, `{"experiments":["table3"],"quick":true}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit with broken journal: %d %s, want 503", code, b)
	}
	// healthz shows the degraded journal.
	code, b = get(t, ts.URL, "/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var hv healthView
	if err := json.Unmarshal(b, &hv); err != nil {
		t.Fatal(err)
	}
	if hv.Journal != "degraded" {
		t.Fatalf("healthz journal %q, want degraded", hv.Journal)
	}
	// The rejection rolled the sequence back and the journal rotated
	// away from the broken segment: the retry is j1 and succeeds.
	code, b = post(t, ts.URL, `{"experiments":["table3"],"quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit after journal recovery: %d %s", code, b)
	}
	var v jobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID[:2] != "j1" {
		t.Fatalf("post-failure job ID %q, want the sequence rolled back to j1", v.ID)
	}
	_ = svc
}

// TestNewHTTPServerTimeouts pins the hardening contract: header and
// idle timeouts set, read/write timeouts deliberately unset.
func TestNewHTTPServerTimeouts(t *testing.T) {
	s := NewHTTPServer(":0", http.NewServeMux())
	if s.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-loris clients can pin connections")
	}
	if s.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: abandoned keep-alives are never reaped")
	}
	if s.ReadTimeout != 0 || s.WriteTimeout != 0 {
		t.Error("Read/WriteTimeout set: long-polls and streams would be cut off")
	}
}
