package service

import (
	"fmt"
	"sync"
	"time"

	power8 "repro"
	"repro/internal/arch"
	"repro/internal/canon"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Request is the body of POST /v1/jobs: everything a client may vary
// about a run. The zero value is a valid request — the full paper suite
// on the E870 at full size. See API.md for the field-by-field reference
// and the cache-key contract (which fields reach the canonical job
// fingerprint and which are deliberately excluded).
type Request struct {
	// Spec selects the machine: "e870" (the paper's evaluation system,
	// the default) or "max-smp" (the 16-socket Section II-B maximum).
	Spec string `json:"spec,omitempty"`
	// Suite selects the experiment registry: "paper" (tables I-VI and
	// figures 1-12, the default) or "degradation" (the deg-* fault
	// sweeps). Setting Faults or FaultSeed implies "degradation".
	Suite string `json:"suite,omitempty"`
	// Experiments narrows the suite to these ids, run in the order
	// given; empty means the whole suite in its canonical order.
	Experiments []string `json:"experiments,omitempty"`
	// Quick shrinks working sets and scales for fast runs.
	Quick bool `json:"quick,omitempty"`
	// Faults is a degradation plan — a canned name or the event
	// grammar (see internal/fault) — validated against Spec's topology
	// at submit time.
	Faults string `json:"faults,omitempty"`
	// FaultSeed derives a reproducible random plan instead; mutually
	// exclusive with Faults. 0 means unset.
	FaultSeed uint64 `json:"faultseed,omitempty"`
	// Shards is the DES shard count (0 = auto); it must divide the
	// spec's socket count. Bit-identical at any legal value.
	Shards int `json:"shards,omitempty"`
	// Workers caps how many of the job's experiments run concurrently
	// (0 = all CPUs). Bit-identical at any value.
	Workers int `json:"workers,omitempty"`
	// Stats instruments the run: every report carries its counter
	// snapshot, and GET /v1/jobs/{id}/stats serves the live registry.
	// The report cache is bypassed (counters describe the execution
	// that actually happened), so stats jobs are never warm.
	Stats bool `json:"stats,omitempty"`
}

// State is a job's lifecycle phase.
type State string

// The job lifecycle is linear: Queued (admitted, waiting for a worker)
// → Running (a worker is executing the suite) → Done (every report is
// final; failed experiments are FAILED reports inside a Done job, not
// a distinct job state). Interrupted is the one branch, and only
// recovery takes it: a job the journal shows mid-run when the process
// died is retired there — terminal, never re-run, resubmit to retry
// (see API.md "Restart semantics").
const (
	Queued      State = "queued"
	Running     State = "running"
	Done        State = "done"
	Interrupted State = "interrupted"
)

// Job is one admitted request and its results. All fields behind mu
// are owned by the service; handlers read them through the view
// methods.
type Job struct {
	// ID is "j<seq>-<fp>": a process-local admission sequence number
	// plus the short canonical request fingerprint. The fingerprint
	// half is stable across processes for identical requests; the
	// sequence half is provenance (admission order).
	ID string
	// Fingerprint is the full canonical request fingerprint (the
	// "p8d/job/v1" domain); identical normalized requests share it.
	Fingerprint canon.Fingerprint

	req  Request // normalized: spec/suite defaulted, experiments expanded
	m    *machine.Machine
	exps []power8.Experiment
	plan *power8.FaultPlan
	reg  *obs.Registry // per-job scope when req.Stats; nil otherwise
	// recovered marks a job rebuilt from the journal at boot rather
	// than admitted by this process. Immutable after Recover publishes
	// the job, so readable without mu.
	recovered bool

	mu        sync.Mutex
	state     State
	reports   []*power8.Report // fixed length, filled by completion
	cached    []bool           // per-report: served from the suite cache
	warmHint  []bool           // advisory ProbeReport answer at admission
	completed int
	submitted time.Time
	started   time.Time
	finished  time.Time
	changed   chan struct{} // closed and replaced on every progress event
	done      chan struct{} // closed once, on entering Done
}

// jobSpecs are the machine specifications a request can select,
// in catalog order.
var jobSpecs = []struct {
	name  string
	build func() *arch.SystemSpec
}{
	{"e870", arch.E870},
	{"max-smp", arch.MaxPOWER8SMP},
}

// SpecNames returns the selectable machine spec names in catalog order.
func SpecNames() []string {
	out := make([]string, len(jobSpecs))
	for i, s := range jobSpecs {
		out[i] = s.name
	}
	return out
}

// specByName resolves a spec selector ("" defaults to e870).
func specByName(name string) (*arch.SystemSpec, string, bool) {
	if name == "" {
		name = "e870"
	}
	for _, s := range jobSpecs {
		if s.name == name {
			return s.build(), s.name, true
		}
	}
	return nil, name, false
}

// badRequest is a submit-time validation failure; its message is the
// body of the 400 response.
type badRequest struct{ msg string }

// Error returns the client-facing message.
func (e *badRequest) Error() string { return e.msg }

func badf(format string, args ...any) *badRequest {
	return &badRequest{msg: fmt.Sprintf(format, args...)}
}

// normalize validates a request against the catalog and expands its
// defaults: the spec and suite selectors are resolved, Faults/FaultSeed
// become a validated plan, and an empty experiment list becomes the
// whole suite in canonical order. It returns the normalized request,
// the resolved inputs, or a *badRequest whose message is safe (and
// meant) to show the client verbatim.
func normalize(req Request, machines map[string]*machine.Machine) (Request, *machine.Machine, []power8.Experiment, *power8.FaultPlan, error) {
	spec, specName, ok := specByName(req.Spec)
	if !ok {
		return req, nil, nil, nil, badf("unknown spec %q (have: %s)", req.Spec, joinNames(SpecNames()))
	}
	req.Spec = specName

	if req.Faults != "" && req.FaultSeed != 0 {
		return req, nil, nil, nil, badf("faults and faultseed are mutually exclusive; pick one plan source")
	}
	faulted := req.Faults != "" || req.FaultSeed != 0
	if req.Suite == "" {
		if faulted {
			req.Suite = "degradation"
		} else {
			req.Suite = "paper"
		}
	}
	suite, ok := experiments.SuiteByName(req.Suite)
	if !ok {
		return req, nil, nil, nil, badf("unknown suite %q (have: %s)", req.Suite, joinNames(experiments.SuiteNames()))
	}
	if faulted && req.Suite != "degradation" {
		return req, nil, nil, nil, badf("fault plans apply to the degradation suite; drop faults/faultseed or set suite to \"degradation\"")
	}

	var plan *power8.FaultPlan
	if req.FaultSeed != 0 {
		plan = fault.Random(req.FaultSeed, spec, 4)
		req.Faults = plan.String()
	} else if req.Faults != "" {
		p, err := fault.Parse(req.Faults)
		if err != nil {
			return req, nil, nil, nil, &badRequest{msg: err.Error()}
		}
		// Validate's message names the offending event and the
		// topology bound it violates; it goes to the client verbatim.
		if err := p.Validate(spec); err != nil {
			return req, nil, nil, nil, &badRequest{msg: err.Error()}
		}
		plan = p
	}

	if req.Shards != 0 && !machine.ShardCountValid(spec, req.Shards) {
		return req, nil, nil, nil, badf("shards %d does not divide the %d-socket topology (use 0 for auto or a divisor of %d)",
			req.Shards, spec.Topology.Chips, spec.Topology.Chips)
	}
	if req.Workers < 0 {
		return req, nil, nil, nil, badf("workers must be >= 0, got %d", req.Workers)
	}

	exps, err := resolveExperiments(suite, req.Suite, req.Experiments)
	if err != nil {
		return req, nil, nil, nil, err
	}
	req.Experiments = make([]string, len(exps))
	for i, e := range exps {
		req.Experiments[i] = e.ID
	}
	return req, machines[req.Spec], exps, plan, nil
}

// resolveExperiments expands an id filter against a suite: empty means
// everything, duplicates and unknown ids are rejected (a canonical
// experiment list keeps the job fingerprint canonical).
func resolveExperiments(suite []power8.Experiment, suiteName string, ids []string) ([]power8.Experiment, error) {
	if len(ids) == 0 {
		return suite, nil
	}
	byID := make(map[string]power8.Experiment, len(suite))
	for _, e := range suite {
		byID[e.ID] = e
	}
	seen := make(map[string]bool, len(ids))
	out := make([]power8.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := byID[id]
		if !ok {
			return nil, badf("unknown experiment %q in suite %q (try GET /v1/catalog)", id, suiteName)
		}
		if seen[id] {
			return nil, badf("experiment %q listed twice", id)
		}
		seen[id] = true
		out = append(out, e)
	}
	return out, nil
}

// fingerprintJob computes the canonical job fingerprint. The domain is
// "p8d/job/v1"; the key covers the machine (spec and calibration, via
// canon.Machine), the suite name, the normalized experiment list in
// order, Quick, the fault plan's canonical event encoding, and Stats.
// Deliberately absent, per the PR-6/PR-7 bit-identity contracts:
// Shards and Workers (wall-time knobs that never change output) and
// FaultSeed (the seed is already materialized into plan events — a
// seeded request and its spelled-out equivalent are the same job).
func fingerprintJob(req Request, m *machine.Machine, plan *power8.FaultPlan) canon.Fingerprint {
	h := canon.NewHasher("p8d/job/v1")
	h.Fp(canon.Machine(m))
	h.Str(req.Suite)
	h.Int(len(req.Experiments))
	for _, id := range req.Experiments {
		h.Str(id)
	}
	h.Bool(req.Quick)
	plan.AppendCanon(h)
	h.Bool(req.Stats)
	return h.Sum()
}

// record stores one completed report (called from RunSuite's OnReport,
// possibly concurrently) and wakes every watcher.
func (j *Job) record(index int, rep *power8.Report, fromCache bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.reports[index] = rep
	j.cached[index] = fromCache
	j.completed++
	j.wake()
}

// setRunning marks the job picked up by a worker.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = Running
	j.started = time.Now()
	j.wake()
}

// finish installs the final suite-ordered reports and moves the job to
// Done.
func (j *Job) finish(reports []*power8.Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.reports = reports
	j.state = Done
	j.finished = time.Now()
	close(j.done)
	j.wake()
}

// wake closes and replaces the change channel; callers hold mu.
func (j *Job) wake() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// watch returns the job's current state and a channel that closes on
// the next change; poll loops select on it alongside their deadline.
func (j *Job) watch() (State, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.changed
}

// cacheTally counts warm and cold reports among those completed so
// far; callers hold mu.
func (j *Job) cacheTally() (hits, misses int) {
	for i, rep := range j.reports {
		if rep == nil {
			continue
		}
		if j.cached[i] {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
