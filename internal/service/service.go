// Package service is the engine room of cmd/p8d: a long-running
// simulation service over the repository's experiment harness. It
// turns HTTP/JSON job requests into hardened, memoized RunSuite calls
// and serves their results — poll, long-poll, or stream — together
// with the live obs counter registry.
//
// The moving parts, front to back:
//
//   - Admission: POST /v1/jobs validates a Request against the machine
//     catalog and the fault grammar (400 with the validator's message),
//     then tries a non-blocking push into a bounded queue — a full
//     queue answers 429 immediately rather than holding the connection
//     hostage (admission control, not backpressure-by-timeout).
//   - Execution: a fixed pool of job workers drains the queue. Each
//     job is one power8.RunSuite call: panic-isolated per experiment,
//     optionally instrumented with a per-job obs registry, served
//     through the shared SuiteCache so identical requests are warm and
//     bit-identical.
//   - Shutdown: Shutdown stops admission (503), closes the queue, and
//     waits for the workers to drain every admitted job — an accepted
//     job is a promise, and SIGINT keeps it.
//
// See API.md at the repository root for the full endpoint reference
// and DESIGN.md "Service architecture" for the queue/shutdown design.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	power8 "repro"
	"repro/internal/canon"
	"repro/internal/journal"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Options configures a Service. The zero value is usable: a 16-deep
// queue, one job worker, no cache, no instrumentation.
type Options struct {
	// QueueDepth bounds how many admitted jobs may wait for a worker;
	// a submit beyond it is rejected with 429. <= 0 means 16.
	QueueDepth int
	// Workers is the number of concurrent job executors; <= 0 means 1.
	// Each job's internal experiment parallelism is the request's own
	// Workers field — this knob is across jobs, that one within.
	Workers int
	// Cache, when non-nil, memoizes reports and fault derivations
	// across jobs; identical requests are served bit-identically from
	// it. Sharing one cache across the whole service is the point.
	Cache *power8.SuiteCache
	// Stats, when non-nil, receives the service's own counters under a
	// "p8d" child scope (admission, rejections, completions, cache
	// provenance) and is served live at GET /v1/stats. Per-job
	// instrumentation (Request.Stats) is separate and always available.
	Stats *obs.Registry
	// WaitLimit caps the ?wait long-poll parameter; <= 0 means 60s.
	WaitLimit time.Duration
	// Journal, when non-nil, is the write-ahead job journal: every
	// lifecycle transition is logged before it becomes observable, and
	// Recover rebuilds the job table from a replayed log at boot. nil
	// means jobs are process-local, as before PR 10.
	Journal *journal.Journal
}

// Service is the job queue, worker pool and job index behind the HTTP
// API. Build with New, wire with Handler, start with Start, stop with
// Shutdown.
type Service struct {
	opts     Options
	machines map[string]*machine.Machine
	scope    *obs.Registry // "p8d" child of Options.Stats; nil-safe
	queue    chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // admission order, for GET /v1/jobs
	seq      uint64
	draining bool
	started  bool

	wg sync.WaitGroup
}

// New builds a service: the machine catalog is constructed once (one
// frozen Machine per spec, shared read-only by every job — the same
// invariant the parallel harness relies on) and the queue is sized.
func New(opts Options) *Service {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.WaitLimit <= 0 {
		opts.WaitLimit = 60 * time.Second
	}
	machines := make(map[string]*machine.Machine, len(jobSpecs))
	for _, s := range jobSpecs {
		machines[s.name] = machine.New(s.build())
	}
	return &Service{
		opts:     opts,
		machines: machines,
		scope:    opts.Stats.Child("p8d"),
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     map[string]*Job{},
	}
}

// Start launches the worker pool. It is idempotent; Submit before
// Start only queues (nothing executes until workers exist).
func (s *Service) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown drains the service: admission stops (new submits get 503),
// the queue closes, and every already-admitted job runs to completion
// before Shutdown returns — unless ctx expires first, in which case
// the workers keep draining in the background and ctx.Err() is
// returned. Idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// submitErr is an admission failure with its HTTP status.
type submitErr struct {
	code int
	msg  string
}

// Error returns the client-facing message.
func (e *submitErr) Error() string { return e.msg }

// Submit validates, fingerprints and admits one request. On success
// the job is queued and indexed; the error cases are typed for the
// HTTP layer: *badRequest (400), queue full (429), draining (503).
func (s *Service) Submit(req Request) (*Job, error) {
	req, m, exps, plan, err := normalize(req, s.machines)
	if err != nil {
		s.scope.Counter("jobs_rejected_invalid").Inc()
		return nil, err
	}
	job := &Job{
		Fingerprint: fingerprintJob(req, m, plan),
		req:         req,
		m:           m,
		exps:        exps,
		plan:        plan,
		state:       Queued,
		reports:     make([]*power8.Report, len(exps)),
		cached:      make([]bool, len(exps)),
		warmHint:    make([]bool, len(exps)),
		submitted:   time.Now(),
		changed:     make(chan struct{}),
		done:        make(chan struct{}),
	}
	if req.Stats {
		// The per-job registry is a detached root (not a child of the
		// service scope): jobs are unbounded over the service's life,
		// and a registry child would pin every job's counters forever.
		job.reg = obs.NewRegistry("job")
	}
	// The advisory warm hint: probe the cache for each experiment's
	// report key. Stats jobs bypass the report cache, so their hint
	// stays all-cold.
	if s.opts.Cache != nil && !req.Stats {
		opts := s.runOptions(job)
		for i, e := range exps {
			job.warmHint[i] = s.opts.Cache.ProbeReport(e, m, opts)
		}
	}

	// The journal's Submitted record carries the normalized request, so
	// a restarted process re-normalizes to the identical job.
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.scope.Counter("jobs_rejected_draining").Inc()
		return nil, &submitErr{code: http.StatusServiceUnavailable, msg: "service is draining; not accepting jobs"}
	}
	// The full-queue check happens BEFORE the journal append: a job the
	// queue cannot hold must not reach the log (a restart would admit
	// it). Between this check and the send the queue can only drain
	// (workers never enqueue), so the send cannot block.
	if len(s.queue) == cap(s.queue) {
		s.scope.Counter("jobs_rejected_full").Inc()
		return nil, &submitErr{code: http.StatusTooManyRequests, msg: "job queue is full; retry later"}
	}
	// The ID must be written BEFORE the job is pushed into the queue:
	// the channel send publishes the job to the worker pool, and any
	// field written after it races with the worker. On rejection the
	// sequence number rolls back so admission numbering stays dense.
	s.seq++
	job.ID = jobID(s.seq, job.Fingerprint)
	// Log-before-act: the Submitted record must be durable before the
	// job becomes runnable. 202 is a promise a restart has to keep, so
	// an append failure rejects the admission instead of weakening it.
	if err := s.journalSubmitted(job, s.seq, reqJSON); err != nil {
		s.seq--
		return nil, &submitErr{code: http.StatusServiceUnavailable, msg: "job journal unavailable; not accepting jobs"}
	}
	select {
	case s.queue <- job:
	default:
		s.seq--
		s.scope.Counter("jobs_rejected_full").Inc()
		return nil, &submitErr{code: http.StatusTooManyRequests, msg: "job queue is full; retry later"}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.scope.Counter("jobs_submitted").Inc()
	s.scope.Gauge("queue_depth").Set(int64(len(s.queue)))
	return job, nil
}

// jobID renders "j<seq>-<shortfp>": admission order plus the stable
// short fingerprint, so two identical requests share their suffix.
func jobID(seq uint64, fp canon.Fingerprint) string {
	return fmt.Sprintf("j%d-%s", seq, fp.Short())
}

// Job returns a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in admission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// worker drains the queue until Shutdown closes it.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.scope.Gauge("queue_depth").Set(int64(len(s.queue)))
		s.runJob(job)
	}
}

// runOptions maps a job onto the hardened harness: the shared cache,
// the job's own registry (when instrumented), and the request's
// wall-time knobs.
func (s *Service) runOptions(job *Job) power8.RunOptions {
	return power8.RunOptions{
		Quick:   job.req.Quick,
		Workers: job.req.Workers,
		Faults:  job.plan,
		Shards:  job.req.Shards,
		Stats:   job.reg,
		Cache:   s.opts.Cache,
	}
}

// runJob executes one job through RunSuite. Panic isolation lives in
// the harness (one broken experiment is one FAILED report); the
// OnReport hook feeds per-experiment progress and warm/cold provenance
// back into the job as it happens.
func (s *Service) runJob(job *Job) {
	// Each transition is journaled before it is published (log-before-
	// act); see durable.go for why these appends are best-effort.
	s.journalAppend(journal.Record{Kind: journal.KindRunning, JobID: job.ID})
	job.setRunning()
	s.scope.Counter("jobs_started").Inc()
	opts := s.runOptions(job)
	opts.OnReport = func(i int, rep *power8.Report, fromCache bool) {
		if fromCache {
			s.scope.Counter("reports_cached").Inc()
		} else {
			s.scope.Counter("reports_computed").Inc()
		}
		s.journalAppend(journal.Record{Kind: journal.KindReport, JobID: job.ID, Index: uint32(i), FromCache: fromCache})
		job.record(i, rep, fromCache)
	}
	reports := power8.RunSuite(job.exps, job.m, opts)
	// Done hits the log before the done channel closes: once a client
	// sees "done", a restart will too (the reports themselves were
	// persisted by the disk cache as they were computed).
	s.journalAppend(journal.Record{Kind: journal.KindDone, JobID: job.ID})
	job.finish(reports)
	s.scope.Counter("jobs_completed").Inc()
}
