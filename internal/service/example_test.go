package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/service"
)

// Example shows the full client round trip against an in-process
// server: submit a job, long-poll it to completion, fetch the
// canonical reports body. The same three requests, as curl commands
// against a real p8d, open API.md's walkthrough.
func Example() {
	svc := service.New(service.Options{Workers: 1})
	svc.Start()
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Submit: POST /v1/jobs answers 202 with the queued job.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments": ["table1"], "quick": true}`))
	if err != nil {
		panic(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("submitted:", resp.StatusCode)

	// Poll: ?wait long-polls until the job is done (or the wait cap).
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "?wait=60s")
	if err != nil {
		panic(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("state:", job.State)

	// Fetch: the reports body is the suite-ordered array; for an
	// uninstrumented request it is byte-identical between a cold run
	// and a warm replay.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/reports")
	if err != nil {
		panic(err)
	}
	var reports []struct {
		ID  string `json:"ID"`
		Err string `json:"Err"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reports); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("reports:", len(reports))
	fmt.Println(reports[0].ID, "failed:", reports[0].Err != "")

	// Output:
	// submitted: 202
	// state: done
	// reports: 1
	// table1 failed: false
}
