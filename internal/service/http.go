package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	power8 "repro"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
)

// This file is the HTTP surface of p8d. Every endpoint, schema and
// error code here is documented in API.md at the repository root —
// doccheck keeps that file in the lint scope, so if you change a
// handler, change the document.

// errorBody is the JSON envelope of every non-2xx response.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// jobView is the JSON shape of a job in list/detail/submit responses.
// Reports are deliberately not inline — GET /v1/jobs/{id}/reports
// serves them canonically — so polling stays cheap. The *Seconds
// fields and ID's admission-sequence half are provenance of this
// particular execution and differ between identical requests; every
// other field is a pure function of the normalized request.
type jobView struct {
	ID          string  `json:"id"`
	Fingerprint string  `json:"fingerprint"`
	State       State   `json:"state"`
	Request     Request `json:"request"`
	// Completed / Total count finished experiments; Total is fixed at
	// admission.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// CacheHits / CacheMisses attribute completed reports to the warm
	// path (served from the suite cache) or the cold path (executed).
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// WarmHint is the advisory per-experiment cache probe taken at
	// admission, in experiment order; the authoritative attribution is
	// CacheHits/CacheMisses once reports complete.
	WarmHint []bool `json:"warm_hint,omitempty"`
	// Recovered marks a job rebuilt from the journal by a restart
	// rather than admitted by this process; recovered jobs carry no
	// wall-clock provenance (the *At fields are omitted) and a
	// recovered done job serves its reports from the result cache.
	Recovered bool `json:"recovered,omitempty"`
	// SubmittedAt, and once reached, StartedAt/FinishedAt, are
	// RFC 3339 wall-clock provenance (volatile; never part of the
	// fingerprint or the reports body). All three are omitted on
	// recovered jobs: the clock readings died with the process that
	// took them, and the journal deliberately stores none.
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// ReportsURL is where the canonical results land when State is
	// "done".
	ReportsURL string `json:"reports_url"`
}

// view renders a job under its lock.
func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	hits, misses := j.cacheTally()
	v := jobView{
		ID:          j.ID,
		Fingerprint: j.Fingerprint.String(),
		State:       j.state,
		Request:     j.req,
		Completed:   j.completed,
		Total:       len(j.exps),
		CacheHits:   hits,
		CacheMisses: misses,
		WarmHint:    j.warmHint,
		Recovered:   j.recovered,
		ReportsURL:  "/v1/jobs/" + j.ID + "/reports",
	}
	if !j.submitted.IsZero() {
		v.SubmittedAt = j.submitted.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// streamLine is one NDJSON report line of GET /v1/jobs/{id}/stream:
// one per experiment, in suite order, as each completes.
type streamLine struct {
	Index  int            `json:"index"`
	ID     string         `json:"id"`
	Cached bool           `json:"cached"`
	Report *power8.Report `json:"report"`
}

// streamTrailer is the final NDJSON line of a stream: the only line
// with a "state" field (and no "report"), carrying the job's cache
// attribution.
type streamTrailer struct {
	State       State `json:"state"`
	CacheHits   int   `json:"cache_hits"`
	CacheMisses int   `json:"cache_misses"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs               submit a job            202 | 400 | 429 | 503
//	GET  /v1/jobs               list jobs               200
//	GET  /v1/jobs/{id}          poll one job (?wait=5s) 200 | 404
//	GET  /v1/jobs/{id}/reports  canonical results       200 | 404 | 409
//	GET  /v1/jobs/{id}/stream   NDJSON progress stream  200 | 404
//	GET  /v1/jobs/{id}/stats    per-job counters        200 | 404
//	GET  /v1/stats              service-wide counters   200
//	GET  /v1/catalog            specs/suites/plans      200
//	GET  /v1/healthz            liveness + queue state  200
//
// See API.md for request/response schemas, the cache-key contract and
// curl walkthroughs.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/reports", s.handleReports)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/stats", s.handleJobStats)
	mux.Handle("GET /v1/stats", s.opts.Stats)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s.counting(mux)
}

// counting wraps the mux with the service-wide request counter.
func (s *Service) counting(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.scope.Counter("http_requests").Inc()
		next.ServeHTTP(w, r)
	})
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr writes the error envelope.
func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg, Status: code})
}

// handleSubmit is POST /v1/jobs.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		switch e := err.(type) {
		case *badRequest:
			writeErr(w, http.StatusBadRequest, e.msg)
		case *submitErr:
			if e.code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeErr(w, e.code, e.msg)
		default:
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.view())
}

// handleList is GET /v1/jobs.
func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobView `json:"jobs"`
	}{Jobs: views})
}

// handleJob is GET /v1/jobs/{id}, with optional long-poll: ?wait=<Go
// duration> blocks until the job is done or the wait (capped at
// Options.WaitLimit) expires, then responds either way.
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad wait duration %q: %v", waitStr, err))
			return
		}
		if wait > s.opts.WaitLimit {
			wait = s.opts.WaitLimit
		}
		deadline := time.NewTimer(wait)
		defer deadline.Stop()
		select {
		case <-job.done:
		case <-deadline.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, job.view())
}

// handleReports is GET /v1/jobs/{id}/reports: the canonical results
// body — the suite-ordered reports array, indented JSON. For an
// uninstrumented request this body is a pure function of the
// normalized request: a warm replay is byte-identical to the cold run
// that populated the cache (the CI smoke job cmp's exactly this, and
// the crash-recovery smoke extends the identity across a kill -9). A
// job that is not done yet answers 409; a job a restart interrupted,
// or a recovered job whose reports have since left the result cache,
// answers 410 — in both cases the remedy is to resubmit the request.
func (s *Service) handleReports(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	job.mu.Lock()
	state := job.state
	reports := job.reports
	job.mu.Unlock()
	switch {
	case state == Interrupted:
		writeErr(w, http.StatusGone, fmt.Sprintf("job %s was interrupted by a service restart and will not resume; resubmit the request", job.ID))
	case state != Done:
		writeErr(w, http.StatusConflict, fmt.Sprintf("job %s is %s, not done; poll /v1/jobs/%s?wait=30s", job.ID, state, job.ID))
	case reportsMissing(reports):
		// Only recovered jobs have nil slots: this process never ran
		// them, so the bytes live (or lived) in the result cache.
		if loaded, ok := s.loadRecoveredReports(job); ok {
			writeJSON(w, http.StatusOK, loaded)
		} else {
			writeErr(w, http.StatusGone, fmt.Sprintf("job %s predates this process and its reports are no longer cached; resubmit the request", job.ID))
		}
	default:
		writeJSON(w, http.StatusOK, reports)
	}
}

// reportsMissing reports whether any report slot is unfilled.
func reportsMissing(reports []*power8.Report) bool {
	for _, rep := range reports {
		if rep == nil {
			return true
		}
	}
	return false
}

// handleStream is GET /v1/jobs/{id}/stream: NDJSON, one line per
// report. Lines are emitted in suite order as soon as every earlier
// experiment has completed — completion order itself is racy, suite
// order is deterministic — and a trailer line with "state":"done"
// closes the stream. The stream content for an uninstrumented request
// is as deterministic as the reports body.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	// A recovered done job streams its cache-loaded reports; if they
	// are gone the stream is just the trailer (the 410 detail lives on
	// /reports).
	job.mu.Lock()
	missing := job.state == Done && reportsMissing(job.reports)
	job.mu.Unlock()
	if job.recovered && missing {
		_, _ = s.loadRecoveredReports(job)
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		job.mu.Lock()
		var ready []streamLine
		for next < len(job.reports) && job.reports[next] != nil {
			ready = append(ready, streamLine{
				Index:  next,
				ID:     job.reports[next].ID,
				Cached: job.cached[next],
				Report: job.reports[next],
			})
			next++
		}
		state := job.state
		changed := job.changed
		// A Done job with a nil slot at the cursor is a recovered job
		// whose reports could not be reloaded: no more lines are ever
		// coming, so the stream ends at the trailer.
		stalled := state == Done && next < len(job.reports) && job.reports[next] == nil
		job.mu.Unlock()
		for _, line := range ready {
			if err := enc.Encode(line); err != nil {
				return
			}
		}
		if len(ready) > 0 && flusher != nil {
			flusher.Flush()
		}
		if state == Interrupted || (state == Done && next == len(job.reports)) || stalled {
			job.mu.Lock()
			hits, misses := job.cacheTally()
			job.mu.Unlock()
			_ = enc.Encode(streamTrailer{State: state, CacheHits: hits, CacheMisses: misses})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobStats is GET /v1/jobs/{id}/stats: the job's own counter
// registry (live while running, final afterwards), with the obs
// handler's format negotiation — JSON by default, ?format=markdown for
// the table form. A job submitted without "stats": true serves the
// empty snapshot.
func (s *Service) handleJobStats(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	if job.reg == nil {
		// The nil-registry contract: an uninstrumented job stays
		// browsable and serves its empty snapshot.
		obs.ServeSnapshot(w, r, obs.Snapshot{})
		return
	}
	job.reg.ServeHTTP(w, r)
}

// catalogView is GET /v1/catalog's body: everything a client can put
// in a Request, enumerated.
type catalogView struct {
	Specs  []string           `json:"specs"`
	Suites []catalogSuiteView `json:"suites"`
	// CannedFaultPlans are the named plans Request.Faults accepts in
	// place of the event grammar.
	CannedFaultPlans []string `json:"canned_fault_plans"`
}

// catalogSuiteView is one suite and its experiments.
type catalogSuiteView struct {
	Name        string              `json:"name"`
	Experiments []catalogExperiment `json:"experiments"`
}

// catalogExperiment is one experiment id and its title.
type catalogExperiment struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// handleCatalog is GET /v1/catalog.
func (s *Service) handleCatalog(w http.ResponseWriter, r *http.Request) {
	cat := catalogView{
		Specs:            SpecNames(),
		CannedFaultPlans: fault.CannedNames(),
	}
	for _, name := range experiments.SuiteNames() {
		suite, _ := experiments.SuiteByName(name)
		sv := catalogSuiteView{Name: name}
		for _, e := range suite {
			sv.Experiments = append(sv.Experiments, catalogExperiment{ID: e.ID, Title: e.Title})
		}
		cat.Suites = append(cat.Suites, sv)
	}
	writeJSON(w, http.StatusOK, cat)
}

// healthView is GET /v1/healthz's body.
type healthView struct {
	// Status is "ok" while admitting, "draining" once Shutdown began.
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Workers    int    `json:"workers"`
	Jobs       int    `json:"jobs"`
	// Journal is "off" (no -journal), "ok" (appends landing), or
	// "degraded" (the active segment broke; the journal rotates away on
	// the next append, but the last append did not reach the log).
	Journal string `json:"journal"`
}

// handleHealthz is GET /v1/healthz.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	journalStatus := "off"
	if s.opts.Journal != nil {
		if s.opts.Journal.Healthy() {
			journalStatus = "ok"
		} else {
			journalStatus = "degraded"
		}
	}
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	v := healthView{
		Status:     status,
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Workers:    s.opts.Workers,
		Jobs:       len(s.jobs),
		Journal:    journalStatus,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// NewHTTPServer wraps a handler in an http.Server with the network
// hygiene a long-running daemon needs: ReadHeaderTimeout bounds how
// long a connection may dribble its request head (a slow-loris client
// cannot pin a connection open through a drain), and IdleTimeout reaps
// abandoned keep-alive connections. ReadTimeout and WriteTimeout stay
// unset on purpose — ?wait long-polls and /stream responses are
// legitimately long-lived, and the handlers bound their own waits.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
