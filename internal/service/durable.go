package service

import (
	"encoding/json"
	"fmt"

	power8 "repro"
	"repro/internal/journal"
	"repro/internal/obs"
)

// This file is the durability layer of the service: the write-ahead
// journal hooks on the job lifecycle and the boot-time recovery that
// rebuilds the job table from a replayed log.
//
// The discipline is log-before-act: every lifecycle transition is
// appended (and, under SyncAlways, fsynced) BEFORE the in-memory state
// it describes becomes observable. Admission is the strict case — a
// Submitted record that fails to append rejects the job with 503,
// because answering 202 is a promise a restart must be able to keep.
// Later transitions (Running, Report, Done) are best-effort: the job
// already exists durably, so a failed append degrades recovery fidelity
// (the restart re-runs or retires the job) rather than correctness, and
// is surfaced through the journal_append_errors counter and the
// "degraded" journal health in /v1/healthz.

// RecoverySummary reports what Recover rebuilt from the replayed log.
type RecoverySummary struct {
	// Requeued jobs were admitted but never started; they run again.
	Requeued int
	// Interrupted jobs were mid-run when the process died; they are
	// retired in the Interrupted state and clients must resubmit.
	Interrupted int
	// Done jobs completed before the restart; their reports are served
	// from the result cache without recomputation.
	Done int
	// Dropped jobs could not be reconstructed: their request no longer
	// normalizes, or its fingerprint changed (a catalog or calibration
	// change invalidated the cached results). They are compacted away.
	Dropped int
}

// String renders the summary for the startup banner.
func (r RecoverySummary) String() string {
	return fmt.Sprintf("%d requeued, %d interrupted, %d done, %d dropped",
		r.Requeued, r.Interrupted, r.Done, r.Dropped)
}

// Recover rebuilds the job table from replayed journal records. It must
// run after New and before Start or any Submit: recovered queued jobs
// are pushed into the (grown, if necessary) admission queue, the
// admission sequence counter resumes past the highest recovered value,
// and the log is compacted to the minimal records that reproduce the
// recovered state — which also persists the Interrupted verdict for
// jobs found mid-run.
func (s *Service) Recover(records []journal.Record) RecoverySummary {
	var sum RecoverySummary
	states := journal.Reduce(records)

	// Reconstruction happens before the service lock: normalize and
	// fingerprinting read only immutable catalog state.
	type recovered struct {
		job *Job
		js  *journal.JobState
	}
	var keep []recovered
	var maxSeq uint64
	for _, js := range states {
		if js.Seq > maxSeq {
			maxSeq = js.Seq
		}
		job, ok := s.rebuildJob(js)
		if !ok {
			sum.Dropped++
			s.scope.Counter("jobs_recovery_dropped").Inc()
			continue
		}
		switch job.state {
		case Done:
			sum.Done++
		case Interrupted:
			js.Interrupted = true // persist the verdict through compaction
			sum.Interrupted++
		default:
			sum.Requeued++
		}
		keep = append(keep, recovered{job: job, js: js})
	}

	s.mu.Lock()
	var requeue []*Job
	for _, r := range keep {
		s.jobs[r.job.ID] = r.job
		s.order = append(s.order, r.job.ID)
		if r.job.state == Queued {
			requeue = append(requeue, r.job)
		}
	}
	if s.seq < maxSeq {
		s.seq = maxSeq
	}
	// Grow the queue when the recovered backlog exceeds the configured
	// depth: an admitted job is a promise, and the promise outlives the
	// process that made it.
	if need := len(s.queue) + len(requeue); need > cap(s.queue) {
		grown := make(chan *Job, need)
	drain:
		for {
			select {
			case job := <-s.queue:
				select {
				case grown <- job:
				default:
					// Unreachable: grown is sized for everything the old
					// queue holds.
				}
			default:
				break drain
			}
		}
		s.queue = grown
	}
	for _, job := range requeue {
		select {
		case s.queue <- job:
		default:
			// Unreachable: the queue was just sized to fit and nothing
			// drains it before Start. Kept non-blocking so recovery can
			// never wedge under the service lock.
		}
	}
	s.scope.Counter("jobs_recovered").Add(uint64(len(keep)))
	s.mu.Unlock()

	if s.opts.Journal != nil {
		var recs []journal.Record
		for _, r := range keep {
			recs = append(recs, journal.CompactionRecords(r.js)...)
		}
		if err := s.opts.Journal.Compact(recs); err != nil {
			s.scope.Counter("journal_compact_errors").Inc()
		}
	}
	return sum
}

// rebuildJob reconstructs one job from its reduced journal state. ok is
// false when the request no longer normalizes against this binary's
// catalog, or normalizes to a different fingerprint — either way the
// cached results the log points at are not the results this binary
// would produce, so the job is dropped rather than resurrected wrong.
func (s *Service) rebuildJob(js *journal.JobState) (*Job, bool) {
	var req Request
	if err := json.Unmarshal(js.Request, &req); err != nil {
		return nil, false
	}
	req, m, exps, plan, err := normalize(req, s.machines)
	if err != nil {
		return nil, false
	}
	fp := fingerprintJob(req, m, plan)
	if fp != js.Fingerprint {
		return nil, false
	}
	job := &Job{
		ID:          js.ID,
		Fingerprint: fp,
		req:         req,
		m:           m,
		exps:        exps,
		plan:        plan,
		recovered:   true,
		reports:     make([]*power8.Report, len(exps)),
		cached:      make([]bool, len(exps)),
		warmHint:    make([]bool, len(exps)),
		changed:     make(chan struct{}),
		done:        make(chan struct{}),
	}
	// Wall-clock provenance died with the previous process; recovered
	// jobs carry none (their *At fields are omitted from the JSON view).
	switch {
	case js.Done:
		job.state = Done
		job.completed = len(exps)
		for idx, fromCache := range js.Reports {
			if int(idx) < len(job.cached) {
				job.cached[idx] = fromCache
			}
		}
		close(job.done)
	case js.Started || js.Interrupted:
		job.state = Interrupted
		close(job.done)
	default:
		job.state = Queued
		if req.Stats {
			job.reg = obs.NewRegistry("job")
		}
	}
	return job, true
}

// journalSubmitted durably records an admission; the error aborts the
// admission. Callers hold s.mu (the journal serializes internally, but
// the record must hit the log before the job is published to workers).
func (s *Service) journalSubmitted(job *Job, seq uint64, reqJSON []byte) error {
	if s.opts.Journal == nil {
		return nil
	}
	err := s.opts.Journal.Append(journal.Record{
		Kind:        journal.KindSubmitted,
		JobID:       job.ID,
		Seq:         seq,
		Fingerprint: job.Fingerprint,
		Request:     reqJSON,
	})
	if err != nil {
		s.scope.Counter("journal_append_errors").Inc()
	}
	return err
}

// journalAppend best-effort records a post-admission transition; a
// failure is counted and the service carries on (see the file comment
// for why that is sound).
func (s *Service) journalAppend(r journal.Record) {
	if s.opts.Journal == nil {
		return
	}
	if err := s.opts.Journal.Append(r); err != nil {
		s.scope.Counter("journal_append_errors").Inc()
	}
}

// loadRecoveredReports reassembles a recovered done job's reports from
// the result cache — the journal stores provenance, the cache stores
// bytes. ok is false when any report is no longer resident (evicted
// since the previous process, or the job bypassed the cache): the job's
// results are gone and the client must resubmit. On success the loaded
// reports are installed on the job, so later fetches are memory hits.
func (s *Service) loadRecoveredReports(job *Job) ([]*power8.Report, bool) {
	if s.opts.Cache == nil || job.req.Stats {
		return nil, false
	}
	opts := s.runOptions(job)
	reports := make([]*power8.Report, len(job.exps))
	for i, e := range job.exps {
		rep, ok := s.opts.Cache.LoadReport(e, job.m, opts)
		if !ok {
			s.scope.Counter("recovered_reports_missing").Inc()
			return nil, false
		}
		reports[i] = rep
	}
	job.mu.Lock()
	job.reports = reports
	job.mu.Unlock()
	s.scope.Counter("recovered_reports_served").Inc()
	return reports, true
}
