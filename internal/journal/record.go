package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind is a job-lifecycle record type. The numeric values are part of
// the on-disk format; never renumber, only append.
type Kind uint8

// The record kinds, in lifecycle order. Submitted carries the job's
// identity and its normalized request; Running, Report and Done are
// progress markers keyed by job ID; Interrupted is written during
// recovery for jobs that were running when the process died.
const (
	KindSubmitted   Kind = 1
	KindRunning     Kind = 2
	KindReport      Kind = 3
	KindDone        Kind = 4
	KindInterrupted Kind = 5
)

// String names the kind for logs and tests.
func (k Kind) String() string {
	switch k {
	case KindSubmitted:
		return "submitted"
	case KindRunning:
		return "running"
	case KindReport:
		return "report"
	case KindDone:
		return "done"
	case KindInterrupted:
		return "interrupted"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// valid reports whether k is a known record kind.
func (k Kind) valid() bool { return k >= KindSubmitted && k <= KindInterrupted }

// Record is one journal entry. JobID is set on every kind; the other
// fields are kind-specific (zero elsewhere): Seq, Fingerprint and
// Request on Submitted; Index and FromCache on Report.
type Record struct {
	Kind  Kind
	JobID string
	// Seq is the service's admission sequence number (Submitted only);
	// recovery restores the counter to the maximum seen.
	Seq uint64
	// Fingerprint is the canonical job fingerprint (Submitted only).
	Fingerprint [32]byte
	// Request is the normalized request, JSON-encoded (Submitted only).
	Request []byte
	// Index is the completed experiment's suite index (Report only).
	Index uint32
	// FromCache marks a report served warm from the suite cache
	// (Report only).
	FromCache bool
}

// Framing: every record is encoded as
//
//	u32 payload length (big endian)
//	u32 CRC-32 (IEEE) of the payload
//	payload
//
// and the payload reuses the internal/canon conventions: fixed-width
// big-endian integers and u64 length-prefixed byte strings, in fixed
// field order. A reader that hits a short frame or a CRC mismatch at
// the tail of the last segment is looking at a torn write and truncates
// there; anywhere else it is corruption and replay stops.
const (
	frameHeader = 8 // u32 length + u32 crc
	// maxRecord bounds a single record's payload; a length prefix
	// beyond it is treated as corruption rather than an allocation
	// request. Requests are small JSON documents — 1 MiB is generous.
	maxRecord = 1 << 20
)

// Decode errors, matched with errors.Is by recovery and tests.
var (
	// ErrTruncated marks an incomplete frame: fewer bytes remain than
	// the header or the declared payload length needs. At the tail of
	// the final segment this is a torn write, not corruption.
	ErrTruncated = errors.New("journal: truncated record")
	// ErrCorrupt marks a frame that cannot be trusted: CRC mismatch,
	// unknown kind, an oversized length prefix, or payload fields that
	// overrun the payload.
	ErrCorrupt = errors.New("journal: corrupt record")
)

// AppendRecord appends r's framed encoding to dst and returns the
// extended slice.
func AppendRecord(dst []byte, r Record) []byte {
	payload := appendPayload(nil, r)
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendPayload encodes the record body in fixed field order.
func appendPayload(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = appendBytes(dst, []byte(r.JobID))
	switch r.Kind {
	case KindSubmitted:
		dst = binary.BigEndian.AppendUint64(dst, r.Seq)
		dst = append(dst, r.Fingerprint[:]...)
		dst = appendBytes(dst, r.Request)
	case KindReport:
		dst = binary.BigEndian.AppendUint32(dst, r.Index)
		b := byte(0)
		if r.FromCache {
			b = 1
		}
		dst = append(dst, b)
	}
	return dst
}

// appendBytes writes a u64 length-prefixed byte string (the canon
// convention).
func appendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(b)))
	return append(dst, b...)
}

// DecodeRecord parses one framed record from the front of b, returning
// the record and the number of bytes consumed. It never panics on
// arbitrary input: malformed frames return ErrTruncated (not enough
// bytes to finish the frame) or ErrCorrupt (a frame that is complete
// but cannot be trusted).
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n > maxRecord {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, n)
	}
	if len(b) < frameHeader+int(n) {
		return Record{}, 0, ErrTruncated
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.BigEndian.Uint32(b[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, frameHeader + int(n), nil
}

// decodePayload parses a CRC-verified payload.
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	r.Kind = Kind(p[0])
	p = p[1:]
	if !r.Kind.valid() {
		return r, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, uint8(r.Kind))
	}
	id, p, err := readBytes(p)
	if err != nil {
		return r, err
	}
	r.JobID = string(id)
	switch r.Kind {
	case KindSubmitted:
		if len(p) < 8+32 {
			return r, fmt.Errorf("%w: submitted payload too short", ErrCorrupt)
		}
		r.Seq = binary.BigEndian.Uint64(p[:8])
		copy(r.Fingerprint[:], p[8:40])
		req, rest, err := readBytes(p[40:])
		if err != nil {
			return r, err
		}
		// Copy out of the frame buffer: records outlive the segment
		// read they were decoded from.
		r.Request = append([]byte(nil), req...)
		p = rest
	case KindReport:
		if len(p) < 5 {
			return r, fmt.Errorf("%w: report payload too short", ErrCorrupt)
		}
		r.Index = binary.BigEndian.Uint32(p[:4])
		r.FromCache = p[4] != 0
		p = p[5:]
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return r, nil
}

// readBytes consumes one u64 length-prefixed byte string.
func readBytes(p []byte) (val, rest []byte, err error) {
	if len(p) < 8 {
		return nil, nil, fmt.Errorf("%w: short length prefix", ErrCorrupt)
	}
	n := binary.BigEndian.Uint64(p[:8])
	if n > uint64(len(p)-8) {
		return nil, nil, fmt.Errorf("%w: length %d overruns payload", ErrCorrupt, n)
	}
	return p[8 : 8+n], p[8+n:], nil
}
