package journal

import "slices"

// JobState is the reduction of one job's lifecycle records: what a
// restarted service knows about the job without recomputing anything.
type JobState struct {
	// ID, Seq, Fingerprint and Request echo the Submitted record.
	ID          string
	Seq         uint64
	Fingerprint [32]byte
	Request     []byte
	// Started is true once a Running record was seen.
	Started bool
	// Done is true once a Done record was seen: the job completed and
	// must never run again.
	Done bool
	// Interrupted is true once an Interrupted record was seen: a prior
	// recovery found the job mid-run and retired it.
	Interrupted bool
	// Reports marks which experiment indices had report-ready records,
	// and whether each was served from cache — progress provenance,
	// not the reports themselves (those live in the result cache).
	Reports map[uint32]bool
}

// Reduce folds replayed records into per-job states, returned in
// admission (Submitted-record) order. Records for jobs whose Submitted
// record was lost — possible only under SyncNever or when replay
// stopped early — are dropped: a job the log cannot identify cannot be
// listed.
func Reduce(records []Record) []*JobState {
	byID := make(map[string]*JobState)
	var order []*JobState
	for _, r := range records {
		if r.Kind == KindSubmitted {
			if _, dup := byID[r.JobID]; dup {
				continue // replayed compaction duplicate; first wins
			}
			js := &JobState{
				ID:          r.JobID,
				Seq:         r.Seq,
				Fingerprint: r.Fingerprint,
				Request:     r.Request,
				Reports:     map[uint32]bool{},
			}
			byID[r.JobID] = js
			order = append(order, js)
			continue
		}
		js, ok := byID[r.JobID]
		if !ok {
			continue
		}
		switch r.Kind {
		case KindRunning:
			js.Started = true
		case KindReport:
			js.Reports[r.Index] = r.FromCache
		case KindDone:
			js.Done = true
		case KindInterrupted:
			js.Interrupted = true
		}
	}
	return order
}

// CompactionRecords renders a job state back into the minimal record
// sequence that reduces to it — what Compact writes for each live job.
func CompactionRecords(js *JobState) []Record {
	recs := []Record{{
		Kind:        KindSubmitted,
		JobID:       js.ID,
		Seq:         js.Seq,
		Fingerprint: js.Fingerprint,
		Request:     js.Request,
	}}
	if js.Started {
		recs = append(recs, Record{Kind: KindRunning, JobID: js.ID})
	}
	// Report marks replay in index order so compaction output is
	// deterministic byte-for-byte.
	idxs := make([]uint32, 0, len(js.Reports))
	for idx := range js.Reports {
		idxs = append(idxs, idx)
	}
	slices.Sort(idxs)
	for _, idx := range idxs {
		recs = append(recs, Record{Kind: KindReport, JobID: js.ID, Index: idx, FromCache: js.Reports[idx]})
	}
	if js.Done {
		recs = append(recs, Record{Kind: KindDone, JobID: js.ID})
	}
	if js.Interrupted {
		recs = append(recs, Record{Kind: KindInterrupted, JobID: js.ID})
	}
	return recs
}
