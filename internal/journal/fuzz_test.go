package journal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord throws arbitrary bytes at the frame decoder. The
// decoder must never panic, and any frame it accepts must re-encode to
// exactly the bytes it consumed (encode∘decode is the identity on the
// accepted set — the property compaction and replay both lean on).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range testRecords() {
		f.Add(AppendRecord(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted frame with bad consumed count %d (len %d)", n, len(data))
		}
		again := AppendRecord(nil, r)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("decode(%x) re-encoded to %x", data[:n], again)
		}
		// The re-decoded record must match too (fixed point).
		r2, n2, err := DecodeRecord(again)
		if err != nil || n2 != len(again) || !recordsEqual(r, r2) {
			t.Fatalf("re-decode diverged: %v n=%d", err, n2)
		}
	})
}
