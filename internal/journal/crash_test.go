package journal

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/iofault"
)

// TestCrashPointSweep is the central durability proof: for every write
// operation n in a scripted job lifecycle, crash at exactly that write
// (with every torn-tail length 0..4 of the attempted frame), restart on
// the surviving bytes, and require
//
//  1. every record whose Append returned nil is replayed, and
//  2. replay never reports corruption — a crash can tear the tail, but
//     a torn tail is truncated, not trusted.
//
// The sweep covers crashes during segment creation, mid-frame, between
// frames, and during rotation (the tiny segment cap forces several).
func TestCrashPointSweep(t *testing.T) {
	script := testRecords()
	// Count the writes a clean run needs, then sweep one past it (the
	// no-crash control).
	clean := iofault.NewFaulty(iofault.NewMem())
	cleanWrites := runScript(t, clean, script, nil)
	if cleanWrites < len(script) {
		t.Fatalf("clean run made only %d writes for %d records", cleanWrites, len(script))
	}
	for n := 0; n <= cleanWrites; n++ {
		for _, torn := range []int{0, 1, 2, 3, 4} {
			t.Run(fmt.Sprintf("crash-at-write-%d-torn-%d", n, torn), func(t *testing.T) {
				mem := iofault.NewMem()
				ffs := iofault.NewFaulty(mem, iofault.Fault{
					Op: iofault.OpWrite, N: n, Kind: iofault.KindCrash, Arg: torn,
				})
				var acked []Record
				runScript(t, ffs, script, &acked)

				// "Restart": reopen over the crashed filesystem's
				// surviving bytes.
				_, info, err := Open("wal", Options{FS: mem})
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				if info.CorruptStop {
					t.Fatalf("crash at write %d (torn %d) produced corruption, not a torn tail", n, torn)
				}
				if len(info.Records) < len(acked) {
					t.Fatalf("acked %d records but recovered %d", len(acked), len(info.Records))
				}
				for i, r := range acked {
					if !recordsEqual(info.Records[i], r) {
						t.Fatalf("acked record %d not replayed intact", i)
					}
				}
			})
		}
	}
}

// runScript appends the script through a journal over ffs, collecting
// every acknowledged record into acked (when non-nil), and returns the
// number of write operations consumed. A crash mid-script stops it, as
// the real process would stop.
func runScript(t *testing.T, ffs *iofault.Faulty, script []Record, acked *[]Record) int {
	t.Helper()
	j, _, err := Open("wal", Options{FS: ffs, SegmentBytes: 128})
	if err != nil {
		if errors.Is(err, iofault.ErrCrashed) {
			return writeCount(ffs)
		}
		t.Fatalf("open: %v", err)
	}
	for _, r := range script {
		err := j.Append(r)
		if err == nil {
			if acked != nil {
				*acked = append(*acked, r)
			}
			continue
		}
		if errors.Is(err, iofault.ErrCrashed) {
			return writeCount(ffs)
		}
		// Non-crash append errors do not stop the service either.
	}
	if err := j.Close(); err != nil && !errors.Is(err, iofault.ErrCrashed) {
		t.Fatalf("close: %v", err)
	}
	return writeCount(ffs)
}

// writeCount reads the injector's write-op counter.
func writeCount(ffs *iofault.Faulty) int { return ffs.Ops(iofault.OpWrite) }

// TestCrashDuringCompaction sweeps crash points across a compaction and
// requires that recovery always sees either the old history or the new
// one — never neither, never corruption.
func TestCrashDuringCompaction(t *testing.T) {
	script := testRecords()
	compacted := []Record{
		{Kind: KindSubmitted, JobID: "j2-deadbeef", Seq: 2, Request: []byte(`{}`)},
		{Kind: KindInterrupted, JobID: "j2-deadbeef"},
	}
	for n := 0; n < 40; n++ {
		t.Run(fmt.Sprintf("crash-at-write-%d", n), func(t *testing.T) {
			mem := iofault.NewMem()
			// Build a clean journal first (no faults while seeding).
			j, _, err := Open("wal", Options{FS: mem, SegmentBytes: 128})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range script {
				if err := j.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen through a crashing injector and compact.
			ffs := iofault.NewFaulty(mem, iofault.Fault{
				Op: iofault.OpWrite, N: n, Kind: iofault.KindCrash, Arg: 3,
			})
			j2, info, err := Open("wal", Options{FS: ffs, SegmentBytes: 128})
			if err != nil {
				if !errors.Is(err, iofault.ErrCrashed) {
					t.Fatalf("open: %v", err)
				}
			} else {
				if len(info.Records) != len(script) {
					t.Fatalf("pre-compaction replay lost records: %d of %d", len(info.Records), len(script))
				}
				cerr := j2.Compact(compacted)
				if cerr != nil && !errors.Is(cerr, iofault.ErrCrashed) {
					t.Fatalf("compact: %v", cerr)
				}
			}

			// Recovery after the crash: all of the old history must
			// still reduce out, or all of the new.
			_, after, err := Open("wal", Options{FS: mem})
			if err != nil {
				t.Fatalf("post-crash recovery: %v", err)
			}
			if after.CorruptStop {
				t.Fatal("compaction crash produced corruption")
			}
			states := Reduce(after.Records)
			switch len(states) {
			case 2: // old history (possibly plus a replayed compaction copy)
				if states[0].ID != "j1-aabbccdd" || states[1].ID != "j2-deadbeef" {
					t.Fatalf("unexpected job set: %+v", states)
				}
			case 1: // new history only: old segments already deleted
				if states[0].ID != "j2-deadbeef" || !states[0].Interrupted {
					t.Fatalf("compacted-only state wrong: %+v", states[0])
				}
			default:
				t.Fatalf("recovered %d jobs, want 1 (new) or 2 (old)", len(states))
			}
		})
	}
}
