package journal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/iofault"
)

// testRecords builds a plausible two-job lifecycle.
func testRecords() []Record {
	fp := [32]byte{1, 2, 3}
	return []Record{
		{Kind: KindSubmitted, JobID: "j1-aabbccdd", Seq: 1, Fingerprint: fp, Request: []byte(`{"quick":true}`)},
		{Kind: KindRunning, JobID: "j1-aabbccdd"},
		{Kind: KindReport, JobID: "j1-aabbccdd", Index: 0, FromCache: false},
		{Kind: KindReport, JobID: "j1-aabbccdd", Index: 1, FromCache: true},
		{Kind: KindDone, JobID: "j1-aabbccdd"},
		{Kind: KindSubmitted, JobID: "j2-deadbeef", Seq: 2, Fingerprint: fp, Request: []byte(`{}`)},
		{Kind: KindRunning, JobID: "j2-deadbeef"},
	}
}

// recordsEqual compares through the encoding, which covers every field.
func recordsEqual(a, b Record) bool {
	return bytes.Equal(AppendRecord(nil, a), AppendRecord(nil, b))
}

// TestEncodeDecodeRoundTrip pins that decode inverts encode for every
// kind.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, r := range testRecords() {
		frame := AppendRecord(nil, r)
		got, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", r.Kind, err)
		}
		if n != len(frame) {
			t.Fatalf("%s: consumed %d of %d bytes", r.Kind, n, len(frame))
		}
		if !recordsEqual(got, r) {
			t.Fatalf("%s: round trip changed the record: %+v -> %+v", r.Kind, r, got)
		}
	}
}

// TestDecodeRejectsCorruption flips every byte of an encoded record and
// requires the decoder to reject or truncate — never accept silently,
// never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	r := testRecords()[0]
	frame := AppendRecord(nil, r)
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0xff
		got, _, err := DecodeRecord(mut)
		if err == nil && recordsEqual(got, r) {
			t.Fatalf("flipping byte %d went unnoticed", i)
		}
	}
	// Every strict prefix is truncated, not corrupt or accepted.
	for i := 0; i < len(frame); i++ {
		if _, _, err := DecodeRecord(frame[:i]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: want ErrTruncated, got %v", i, err)
		}
	}
}

// TestAppendReplay pins the basic WAL loop: append records, reopen,
// get them back in order.
func TestAppendReplay(t *testing.T) {
	mem := iofault.NewMem()
	j, info, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Records) != 0 || info.Segments != 0 {
		t.Fatalf("fresh journal recovered %+v", info)
	}
	want := testRecords()
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("append %s: %v", r.Kind, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, info, err = Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail || info.CorruptStop {
		t.Fatalf("clean log replayed dirty: %+v", info)
	}
	if len(info.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(info.Records), len(want))
	}
	for i := range want {
		if !recordsEqual(info.Records[i], want[i]) {
			t.Fatalf("record %d changed across replay", i)
		}
	}
}

// TestSegmentRotation forces rotation with a tiny segment cap and
// checks replay still sees one continuous log.
func TestSegmentRotation(t *testing.T) {
	mem := iofault.NewMem()
	j, _, err := Open("wal", Options{FS: mem, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 50; i++ {
		r := Record{Kind: KindRunning, JobID: fmt.Sprintf("j%d-cafef00d", i)}
		want = append(want, r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := mem.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected several segments, got %v", names)
	}
	_, info, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Records) != len(want) {
		t.Fatalf("replayed %d records across %d segments, want %d", len(info.Records), info.Segments, len(want))
	}
	for i := range want {
		if !recordsEqual(info.Records[i], want[i]) {
			t.Fatalf("record %d changed across rotation", i)
		}
	}
}

// TestCompaction pins the compaction contract: after Compact, old
// segments are gone, and a reopen replays exactly the compacted state.
func TestCompaction(t *testing.T) {
	mem := iofault.NewMem()
	j, _, err := Open("wal", Options{FS: mem, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Compact down to just the second job, as if the first aged out.
	compacted := []Record{
		{Kind: KindSubmitted, JobID: "j2-deadbeef", Seq: 2, Request: []byte(`{}`)},
		{Kind: KindInterrupted, JobID: "j2-deadbeef"},
	}
	if err := j.Compact(compacted); err != nil {
		t.Fatal(err)
	}
	names, err := mem.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("compaction left %d segments: %v", len(names), names)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Records) != len(compacted) {
		t.Fatalf("replayed %d records after compaction, want %d", len(info.Records), len(compacted))
	}
	for i := range compacted {
		if !recordsEqual(info.Records[i], compacted[i]) {
			t.Fatalf("compacted record %d changed", i)
		}
	}
}

// TestTornTailTruncated writes a clean log, appends garbage bytes (a
// torn frame), and requires replay to keep the clean prefix and flag
// the tear.
func TestTornTailTruncated(t *testing.T) {
	mem := iofault.NewMem()
	j, _, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()[:3]
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the tail: half a frame of a fourth record.
	frame := AppendRecord(nil, testRecords()[3])
	name := "wal/" + segName(j.segSeq)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := mem.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := mem.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := torn.Write(append(data, frame[:len(frame)/2]...)); err != nil {
		t.Fatal(err)
	}
	if err := torn.Sync(); err != nil {
		t.Fatal(err)
	}

	_, info, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail {
		t.Fatal("torn tail not detected")
	}
	if info.CorruptStop {
		t.Fatal("torn tail misclassified as corruption")
	}
	if len(info.Records) != len(want) {
		t.Fatalf("replayed %d records, want the %d-record clean prefix", len(info.Records), len(want))
	}
}

// TestCorruptionMidLogStops flips a byte in the middle of a segment and
// requires replay to stop at the last trustworthy record.
func TestCorruptionMidLogStops(t *testing.T) {
	mem := iofault.NewMem()
	j, _, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	name := "wal/" + segName(j.segSeq)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := mem.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the third record's frame.
	off := len(magic) + len(AppendRecord(AppendRecord(nil, recs[0]), recs[1])) + 10
	data[off] ^= 0xff
	f, err := mem.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	_, info, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if !info.CorruptStop {
		t.Fatal("mid-log corruption not flagged")
	}
	if len(info.Records) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(info.Records))
	}
}

// TestAppendErrorRotatesAway pins the broken-segment rule: after a
// failed (partial) write, the journal rotates before the next append,
// and every acknowledged record is still replayed.
func TestAppendErrorRotatesAway(t *testing.T) {
	mem := iofault.NewMem()
	// The magic write is write 0; records start at write 1. Fail
	// record 2's write, leaving a 4-byte partial frame.
	ffs := iofault.NewFaulty(mem, iofault.Fault{Op: iofault.OpWrite, N: 2, Kind: iofault.KindNoSpace, Arg: 4})
	j, _, err := Open("wal", Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	acked := 0
	for _, r := range recs[:4] {
		if err := j.Append(r); err == nil {
			acked++
		}
	}
	if acked != 3 {
		t.Fatalf("acked %d of 4 appends, want 3 (one injected failure)", acked)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Records) != acked {
		t.Fatalf("replayed %d records, want every acked append (%d)", len(info.Records), acked)
	}
}

// TestReduce pins the record→state reduction and its compaction
// rendering round trip.
func TestReduce(t *testing.T) {
	states := Reduce(testRecords())
	if len(states) != 2 {
		t.Fatalf("reduced to %d jobs, want 2", len(states))
	}
	j1, j2 := states[0], states[1]
	if j1.ID != "j1-aabbccdd" || !j1.Done || !j1.Started || j1.Interrupted {
		t.Fatalf("j1 state wrong: %+v", j1)
	}
	if len(j1.Reports) != 2 || j1.Reports[0] != false || j1.Reports[1] != true {
		t.Fatalf("j1 reports wrong: %+v", j1.Reports)
	}
	if j2.ID != "j2-deadbeef" || j2.Done || !j2.Started {
		t.Fatalf("j2 state wrong: %+v", j2)
	}
	// CompactionRecords must reduce back to the same state.
	var recs []Record
	for _, js := range states {
		recs = append(recs, CompactionRecords(js)...)
	}
	again := Reduce(recs)
	if len(again) != 2 {
		t.Fatalf("re-reduction lost jobs: %d", len(again))
	}
	for i := range states {
		a, b := states[i], again[i]
		if a.ID != b.ID || a.Seq != b.Seq || a.Started != b.Started ||
			a.Done != b.Done || a.Interrupted != b.Interrupted ||
			len(a.Reports) != len(b.Reports) || !bytes.Equal(a.Request, b.Request) {
			t.Fatalf("job %d state changed through compaction: %+v vs %+v", i, a, b)
		}
	}
}

// TestOSBackend drives the journal over the real filesystem once, so
// the seam's OS implementation is exercised by the same contract.
func TestOSBackend(t *testing.T) {
	dir := t.TempDir() + "/wal"
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if len(info.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(info.Records), len(want))
	}
}
