// Package journal is p8d's write-ahead log: an append-only, CRC-framed,
// fsync-disciplined record of job lifecycle transitions (submitted →
// running → report-ready → done, plus the recovery-time interrupted
// marker). The service appends a record before it acts on the
// transition; recovery replays the log into the in-memory job table, so
// a restarted daemon lists every job it ever acknowledged and never
// re-runs one it completed.
//
// The log is a directory of numbered segment files
// ("wal-%016d.log"). Each segment starts with an 8-byte magic and
// continues with framed records (see record.go for the exact bytes).
// The active segment rotates at a size threshold; Compact rewrites the
// live state into a fresh segment and deletes everything older, only
// after the fresh segment is durable. All file I/O goes through the
// internal/iofault FS seam, which is how the crash-point sweep tests
// prove the recovery invariants:
//
//   - every record whose Append returned nil under SyncAlways is
//     replayed after a crash;
//   - a torn tail (a crash mid-write) is truncated at the last intact
//     frame, never trusted, never fatal;
//   - corruption before the tail stops replay at the last trustworthy
//     record rather than guessing.
//
// See DESIGN.md "Durability" for the full contract.
package journal

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"

	"repro/internal/iofault"
	"repro/internal/obs"
)

// SyncPolicy says when Append pushes bytes to stable storage.
type SyncPolicy uint8

// The sync policies. SyncAlways is the durability contract the service
// smoke tests assert; SyncNever exists for throwaway runs and tests
// that want to observe data loss.
const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives any later crash.
	SyncAlways SyncPolicy = iota
	// SyncNever never fsyncs; the OS flushes when it pleases. Records
	// acknowledged under SyncNever may vanish in a crash.
	SyncNever
)

// String renders the policy for flags and banners.
func (p SyncPolicy) String() string {
	if p == SyncNever {
		return "off"
	}
	return "always"
}

// magic opens every segment file; a segment without it is not replayed.
var magic = []byte("p8wal1\x00\n")

// Options configures Open.
type Options struct {
	// FS is the filesystem seam; nil means the real OS.
	FS iofault.FS
	// Sync is the append durability policy (default SyncAlways).
	Sync SyncPolicy
	// SegmentBytes rotates the active segment when it grows past this
	// size; <= 0 means 4 MiB.
	SegmentBytes int64
	// Stats, when non-nil, receives counters under a "journal" child
	// scope: appends, fsyncs, rotations, compactions, replay tallies
	// and error counts.
	Stats *obs.Registry
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use; appends are serialized (that serialization is what
// makes the crash-point sweeps exact).
type Journal struct {
	fsys   iofault.FS
	dir    string
	sync   SyncPolicy
	segMax int64
	scope  *obs.Registry

	mu       sync.Mutex
	seg      iofault.File
	segSeq   uint64
	segBytes int64
	// broken marks an active segment that took a failed or partial
	// write; the next append rotates away from it first, so one bad
	// write cannot shadow later records behind a corrupt frame.
	broken bool
	closed bool
}

// RecoveryInfo summarizes what Open found on disk.
type RecoveryInfo struct {
	// Records is every intact record, in log order.
	Records []Record
	// TornTail is true when the final segment ended in a partial
	// frame — the signature of a crash mid-append.
	TornTail bool
	// CorruptStop is true when replay stopped before the tail because
	// a frame failed its CRC or decode; Records holds everything up to
	// that point.
	CorruptStop bool
	// Segments is how many segment files were scanned.
	Segments int
}

// Open opens (creating if needed) the journal in dir, replays every
// intact record, and starts a fresh active segment. The returned
// RecoveryInfo carries the replayed records; the caller (the service)
// reduces them into its job table and then normally calls Compact with
// the state it kept, which collapses history into one segment.
func Open(dir string, opts Options) (*Journal, RecoveryInfo, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = iofault.OS{}
	}
	segMax := opts.SegmentBytes
	if segMax <= 0 {
		segMax = 4 << 20
	}
	j := &Journal{
		fsys:   fsys,
		dir:    dir,
		sync:   opts.Sync,
		segMax: segMax,
		scope:  opts.Stats.Child("journal"),
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("journal: create dir: %w", err)
	}
	info, lastSeq, err := j.replay()
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	j.segSeq = lastSeq
	if err := j.rotateLocked(); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("journal: open active segment: %w", err)
	}
	j.scope.Counter("replayed_records").Add(uint64(len(info.Records)))
	if info.TornTail {
		j.scope.Counter("torn_tails").Inc()
	}
	if info.CorruptStop {
		j.scope.Counter("corrupt_stops").Inc()
	}
	return j, info, nil
}

// segName renders a segment file name; the fixed-width decimal keeps
// lexical order equal to numeric order.
func segName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%016d.log", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// replay scans every segment in order and decodes records until the
// log ends or trust does.
func (j *Journal) replay() (RecoveryInfo, uint64, error) {
	names, err := j.fsys.ReadDir(j.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return RecoveryInfo{}, 0, nil
		}
		return RecoveryInfo{}, 0, fmt.Errorf("journal: scan dir: %w", err)
	}
	var segs []uint64
	for _, name := range names {
		if seq, ok := parseSegName(name); ok {
			segs = append(segs, seq)
		}
	}
	info := RecoveryInfo{Segments: len(segs)}
	var lastSeq uint64
	for _, seq := range segs {
		if seq > lastSeq {
			lastSeq = seq
		}
		data, err := j.fsys.ReadFile(filepath.Join(j.dir, segName(seq)))
		if err != nil {
			return info, 0, fmt.Errorf("journal: read segment %d: %w", seq, err)
		}
		if len(data) < len(magic) {
			// A header-less segment is a crash during segment
			// creation; nothing was ever appended to it. Skip it.
			info.TornTail = true
			continue
		}
		if string(data[:len(magic)]) != string(magic) {
			info.CorruptStop = true
			break
		}
		data = data[len(magic):]
		corrupt := false
		for len(data) > 0 {
			rec, n, err := DecodeRecord(data)
			if err != nil {
				if errors.Is(err, ErrTruncated) {
					// A torn tail ends this segment, not the log:
					// Append never writes after a partial frame in the
					// same segment (it rotates away), so every later
					// record lives in a later segment.
					info.TornTail = true
				} else {
					info.CorruptStop = true
					corrupt = true
				}
				break
			}
			info.Records = append(info.Records, rec)
			data = data[n:]
		}
		if corrupt {
			break
		}
	}
	return info, lastSeq, nil
}

// rotateLocked closes the active segment (if any) and opens the next
// one. Callers hold j.mu (or are inside Open, before the journal is
// shared).
func (j *Journal) rotateLocked() error {
	if j.seg != nil {
		if err := j.closeSegLocked(); err != nil {
			// The old segment's close failed; its synced prefix is
			// still valid, and we are abandoning it either way.
			j.scope.Counter("close_errors").Inc()
		}
	}
	j.segSeq++
	path := filepath.Join(j.dir, segName(j.segSeq))
	f, err := j.fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(magic); err != nil {
		if cerr := f.Close(); cerr != nil {
			j.scope.Counter("close_errors").Inc()
		}
		return err
	}
	if j.sync == SyncAlways {
		if err := f.Sync(); err != nil {
			if cerr := f.Close(); cerr != nil {
				j.scope.Counter("close_errors").Inc()
			}
			return err
		}
		if err := j.fsys.SyncDir(j.dir); err != nil {
			if cerr := f.Close(); cerr != nil {
				j.scope.Counter("close_errors").Inc()
			}
			return err
		}
	}
	j.seg = f
	j.segBytes = int64(len(magic))
	j.broken = false
	j.scope.Counter("rotations").Inc()
	j.scope.Gauge("segment_seq").Set(int64(j.segSeq))
	j.scope.Gauge("segment_bytes").Set(j.segBytes)
	return nil
}

// closeSegLocked syncs (per policy) and closes the active segment.
func (j *Journal) closeSegLocked() error {
	seg := j.seg
	j.seg = nil
	if seg == nil {
		return nil
	}
	var serr error
	if j.sync == SyncAlways {
		serr = seg.Sync()
	}
	cerr := seg.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Append encodes r, writes it to the active segment and — under
// SyncAlways — fsyncs before returning. A nil return is the durability
// acknowledgement the service relies on: the record will be replayed by
// every future Open, whatever happens next. On error the record may or
// may not have reached the disk; the active segment is marked broken
// and the next Append rotates away from it first.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if j.broken {
		if err := j.rotateLocked(); err != nil {
			j.scope.Counter("append_errors").Inc()
			return fmt.Errorf("journal: rotate away from broken segment: %w", err)
		}
	}
	if j.segBytes > j.segMax {
		if err := j.rotateLocked(); err != nil {
			// Rotation failing is not fatal to the append: the old
			// segment is intact, keep writing to it.
			j.scope.Counter("rotate_errors").Inc()
			if j.seg == nil {
				j.scope.Counter("append_errors").Inc()
				return fmt.Errorf("journal: no active segment: %w", err)
			}
		}
	}
	frame := AppendRecord(nil, r)
	n, err := j.seg.Write(frame)
	if err != nil {
		if n > 0 {
			// A partial frame is now on disk; never append after it.
			j.broken = true
		}
		j.scope.Counter("append_errors").Inc()
		return fmt.Errorf("journal: append: %w", err)
	}
	j.segBytes += int64(len(frame))
	if j.sync == SyncAlways {
		if err := j.seg.Sync(); err != nil {
			// The write may be volatile; treat the segment as broken so
			// the next append re-establishes a synced frontier.
			j.broken = true
			j.scope.Counter("fsync_errors").Inc()
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.scope.Counter("fsyncs").Inc()
	}
	j.scope.Counter("appends").Inc()
	j.scope.Gauge("segment_bytes").Set(j.segBytes)
	return nil
}

// Compact rewrites records — the caller's reduction of the live state —
// into a fresh segment and deletes every older segment. The old
// segments are only removed after the fresh one is fully durable, so a
// crash at any point leaves a log that replays to either the old or the
// new history, never neither.
func (j *Journal) Compact(records []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	oldest, newest := j.onDiskRangeLocked()
	if err := j.rotateLocked(); err != nil {
		return fmt.Errorf("journal: compact rotate: %w", err)
	}
	var frame []byte
	for _, r := range records {
		frame = AppendRecord(frame[:0], r)
		n, err := j.seg.Write(frame)
		if err != nil {
			if n > 0 {
				j.broken = true
			}
			j.scope.Counter("append_errors").Inc()
			return fmt.Errorf("journal: compact append: %w", err)
		}
		j.segBytes += int64(len(frame))
	}
	if err := j.seg.Sync(); err != nil {
		j.broken = true
		j.scope.Counter("fsync_errors").Inc()
		return fmt.Errorf("journal: compact fsync: %w", err)
	}
	if err := j.fsys.SyncDir(j.dir); err != nil {
		j.scope.Counter("fsync_errors").Inc()
		return fmt.Errorf("journal: compact dir sync: %w", err)
	}
	// The new segment is durable; history before it is now redundant.
	for seq := oldest; seq <= newest && oldest != 0; seq++ {
		path := filepath.Join(j.dir, segName(seq))
		if err := j.fsys.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			// Leaving a stale segment behind is safe (replay reads it
			// first and the compacted segment after); count and move on.
			j.scope.Counter("compact_remove_errors").Inc()
		} else {
			j.scope.Counter("segments_deleted").Inc()
		}
	}
	j.scope.Counter("compactions").Inc()
	j.scope.Gauge("segment_bytes").Set(j.segBytes)
	return nil
}

// onDiskRangeLocked returns the [oldest, newest] segment sequence range
// currently on disk, 0,0 when none.
func (j *Journal) onDiskRangeLocked() (uint64, uint64) {
	names, err := j.fsys.ReadDir(j.dir)
	if err != nil {
		return 0, 0
	}
	var oldest, newest uint64
	for _, name := range names {
		if seq, ok := parseSegName(name); ok {
			if oldest == 0 || seq < oldest {
				oldest = seq
			}
			if seq > newest {
				newest = seq
			}
		}
	}
	return oldest, newest
}

// Healthy reports whether the active segment has taken no unrecovered
// write or fsync failure. p8d surfaces it in /v1/healthz.
func (j *Journal) Healthy() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.broken && !j.closed && j.seg != nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close syncs (per policy) and closes the active segment. The journal
// rejects appends afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.closeSegLocked()
}
