package parallel

import (
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// countersOf flattens a registry into path->value, dropping the root
// name prefix for terser assertions.
func countersOf(reg *obs.Registry) map[string]uint64 {
	full := reg.Snapshot().CounterMap()
	out := make(map[string]uint64, len(full))
	for k, v := range full {
		out[k[len(reg.Name())+1:]] = v
	}
	return out
}

// distOf finds a distribution summary by walking child scopes.
func distOf(t *testing.T, reg *obs.Registry, path ...string) obs.DistSummary {
	t.Helper()
	s := reg.Snapshot()
	for _, p := range path[:len(path)-1] {
		var ok bool
		s, ok = s.Find(p)
		if !ok {
			t.Fatalf("scope %q not found", p)
		}
	}
	for _, d := range s.Distributions {
		if d.Name == path[len(path)-1] {
			return d
		}
	}
	t.Fatalf("distribution %q not found", path[len(path)-1])
	return obs.DistSummary{}
}

func TestTeamInstrumentDynamic(t *testing.T) {
	reg := obs.NewRegistry("t")
	team := NewTeam(4)
	defer team.Close()
	team.Instrument(reg)

	var visited atomic.Int64
	team.ParallelFor(1000, 10, func(lo, hi int) {
		visited.Add(int64(hi - lo))
	})
	if visited.Load() != 1000 {
		t.Fatalf("visited %d indices, want 1000", visited.Load())
	}

	c := countersOf(reg)
	if got := c["team_w4/dispatches"]; got != 1 {
		t.Errorf("dispatches = %d, want 1", got)
	}
	var chunks, items uint64
	for w := 0; w < 4; w++ {
		chunks += c["team_w4/worker"+string(rune('0'+w))+"/chunks"]
		items += c["team_w4/worker"+string(rune('0'+w))+"/items"]
	}
	if chunks != 100 {
		t.Errorf("total chunks = %d, want 100 (1000/grain 10)", chunks)
	}
	if items != 1000 {
		t.Errorf("total items = %d, want 1000", items)
	}
	if d := distOf(t, reg, "team_w4", "imbalance_permille"); d.Count != 1 || d.Min < 1000 {
		t.Errorf("imbalance dist = %+v, want one sample >= 1000", d)
	}
	if d := distOf(t, reg, "team_w4", "first_chunk_ns"); d.Count != 1 || d.Min < 0 {
		t.Errorf("first_chunk dist = %+v, want one non-negative sample", d)
	}
}

func TestTeamInstrumentStaticAndInline(t *testing.T) {
	reg := obs.NewRegistry("t")
	team := NewTeam(4)
	defer team.Close()
	team.Instrument(reg)

	team.StaticFor(100, func(_, _, _ int) {})
	// Inline path: the whole range fits one chunk, no handoff.
	team.ParallelFor(8, 100, func(_, _ int) {})

	c := countersOf(reg)
	if got := c["team_w4/dispatches"]; got != 2 {
		t.Errorf("dispatches = %d, want 2", got)
	}
	var items uint64
	for w := 0; w < 4; w++ {
		items += c["team_w4/worker"+string(rune('0'+w))+"/items"]
	}
	if items != 108 {
		t.Errorf("total items = %d, want 108", items)
	}
	// Static splits and inline runs record no imbalance sample.
	if d := distOf(t, reg, "team_w4", "imbalance_permille"); d.Count != 0 {
		t.Errorf("imbalance samples = %d, want 0", d.Count)
	}
}

func TestTeamInstrumentNilIsInert(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	team.Instrument(nil)
	if team.stats != nil {
		t.Fatal("nil registry must leave the team uninstrumented")
	}
	var visited atomic.Int64
	team.ParallelFor(100, 5, func(lo, hi int) { visited.Add(int64(hi - lo)) })
	if visited.Load() != 100 {
		t.Fatalf("visited %d, want 100", visited.Load())
	}
}

func TestInstrumentShared(t *testing.T) {
	reg := obs.NewRegistry("proc")
	InstrumentShared(reg)
	defer func() {
		// Detach so later tests and packages see uninstrumented teams.
		sharedMu.Lock()
		sharedObs = nil
		for _, st := range sharedTeams {
			st.t.stats = nil
			st.t.job.chunks = nil
			st.t.job.items = nil
		}
		sharedMu.Unlock()
	}()

	For(3, 300, 10, func(_, _ int) {})
	c := countersOf(reg)
	if got := c["parallel/team_w3/dispatches"]; got != 1 {
		t.Errorf("shared team dispatches = %d, want 1", got)
	}
	var items uint64
	for w := 0; w < 3; w++ {
		items += c["parallel/team_w3/worker"+string(rune('0'+w))+"/items"]
	}
	if items != 300 {
		t.Errorf("shared team items = %d, want 300", items)
	}
}
