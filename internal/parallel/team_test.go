package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestTeamParallelForCoversRange: every index in [0, n) is visited
// exactly once, for assorted team sizes, range lengths and grains.
func TestTeamParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		team := NewTeam(workers)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 1000} {
				visits := make([]int32, n)
				team.ParallelFor(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times",
							workers, n, grain, i, v)
					}
				}
			}
		}
		team.Close()
	}
}

// TestTeamReuseAcrossCalls: the same team runs many loops back to back
// with correct results — the steady-state pattern of the kernels.
func TestTeamReuseAcrossCalls(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	var total atomic.Int64
	const calls, n = 200, 512
	for c := 0; c < calls; c++ {
		team.ParallelFor(n, 7, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	}
	if got := total.Load(); got != calls*n {
		t.Fatalf("covered %d indices over %d calls, want %d", got, calls, calls*n)
	}
}

// TestTeamWorkerIndexBounds: the worker index handed to the body is
// always within [0, Workers()), and two chunks with the same index
// never run concurrently.
func TestTeamWorkerIndexBounds(t *testing.T) {
	const workers = 4
	team := NewTeam(workers)
	defer team.Close()
	var active [workers]atomic.Int32
	team.ParallelForWorker(1000, 1, func(w, lo, hi int) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
			return
		}
		if active[w].Add(1) != 1 {
			t.Errorf("worker %d ran two chunks concurrently", w)
		}
		active[w].Add(-1)
	})
}

// TestTeamStaticForDeterministicPartition: static ranges depend only on
// (n, workers) and cover the range disjointly.
func TestTeamStaticForDeterministicPartition(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	const n = 100
	first := make(map[int][2]int)
	for rep := 0; rep < 5; rep++ {
		var mu sync.Mutex
		got := make(map[int][2]int)
		covered := make([]int, n)
		team.StaticFor(n, func(w, lo, hi int) {
			mu.Lock()
			got[w] = [2]int{lo, hi}
			mu.Unlock()
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("rep %d: index %d covered %d times", rep, i, c)
			}
		}
		if rep == 0 {
			first = got
			continue
		}
		for w, r := range got {
			if first[w] != r {
				t.Fatalf("rep %d: worker %d range %v, first run had %v", rep, w, r, first[w])
			}
		}
	}
}

// TestTeamStaticRanges: caller-supplied bounds run part p on worker p.
func TestTeamStaticRanges(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	bounds := []int{0, 10, 10, 35, 50} // part 1 is empty
	var mu sync.Mutex
	got := map[int][2]int{}
	team.StaticRanges(bounds, func(p, lo, hi int) {
		mu.Lock()
		got[p] = [2]int{lo, hi}
		mu.Unlock()
	})
	want := map[int][2]int{0: {0, 10}, 2: {10, 35}, 3: {35, 50}}
	if len(got) != len(want) {
		t.Fatalf("ran parts %v, want %v", got, want)
	}
	for p, r := range want {
		if got[p] != r {
			t.Errorf("part %d ran %v, want %v", p, got[p], r)
		}
	}
}

// TestTeamStaticRangesTooManyParts: more parts than workers is a
// programming error.
func TestTeamStaticRangesTooManyParts(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	defer func() {
		if recover() == nil {
			t.Error("3 parts on a 2-worker team did not panic")
		}
	}()
	team.StaticRanges([]int{0, 1, 2, 3}, func(_, _, _ int) {})
}

// TestTeamConcurrentMisusePanics: a Team runs one loop at a time;
// overlapping ParallelFor calls panic rather than corrupt the shared
// job state.
func TestTeamConcurrentMisusePanics(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	inBody := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		team.ParallelFor(2, 1, func(lo, hi int) {
			once.Do(func() { close(inBody) })
			<-release
		})
	}()
	<-inBody
	func() {
		defer func() {
			if recover() == nil {
				t.Error("concurrent ParallelFor did not panic")
			}
			close(release)
		}()
		team.ParallelFor(2, 1, func(lo, hi int) {})
	}()
	<-done
}

// TestTeamUseAfterClosePanics: a closed team rejects new loops.
func TestTeamUseAfterClosePanics(t *testing.T) {
	team := NewTeam(2)
	team.Close()
	team.Close() // double close is a no-op
	defer func() {
		if recover() == nil {
			t.Error("loop on a closed team did not panic")
		}
	}()
	team.ParallelFor(10, 1, func(lo, hi int) {})
}

// TestTeamZeroSpawnSteadyState: after the first call, further loops on
// a team start no goroutines.
func TestTeamZeroSpawnSteadyState(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	var sink atomic.Int64
	body := func(lo, hi int) { sink.Add(int64(hi - lo)) }
	team.ParallelFor(1024, 16, body) // warmup: workers already exist
	before := runtime.NumGoroutine()
	for c := 0; c < 100; c++ {
		team.ParallelFor(1024, 16, body)
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Errorf("goroutine count grew from %d to %d across steady-state loops", before, after)
	}
}

// TestTeamSteadyStateAllocs: a dispatch reuses the team's job
// descriptor; only the tiny body-wrapper closure allocates.
func TestTeamSteadyStateAllocs(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	var sink atomic.Int64
	body := func(_, lo, hi int) { sink.Add(int64(hi - lo)) }
	team.ParallelForWorker(1024, 16, body)
	allocs := testing.AllocsPerRun(50, func() {
		team.ParallelForWorker(1024, 16, body)
	})
	if allocs > 2 {
		t.Errorf("steady-state ParallelForWorker allocates %.1f objects per call, want <= 2", allocs)
	}
}

// TestSharedForConcurrentCallers: the package-level helpers serialize
// overlapping loops on the shared team instead of panicking — the
// pattern the parallel experiment harness produces. Run with -race.
func TestSharedForConcurrentCallers(t *testing.T) {
	const callers = 8
	var wg sync.WaitGroup
	var total atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				For(4, 256, 8, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != callers*20*256 {
		t.Fatalf("covered %d indices, want %d", got, callers*20*256)
	}
}

// TestWorkersResolution: positive threads pass through; the default is
// GOMAXPROCS unless overridden.
func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := Workers(0); got != 3 {
		t.Errorf("Workers(0) = %d after SetDefaultWorkers(3)", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d with default override", got)
	}
	SetDefaultWorkers(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d after reset", got)
	}
}

// TestScheduleString covers the Stringer.
func TestScheduleString(t *testing.T) {
	if Dynamic.String() != "dynamic" || Static.String() != "static" {
		t.Errorf("Schedule strings: %v %v", Dynamic, Static)
	}
}

// TestNewTeamPanics rejects non-positive sizes.
func TestNewTeamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTeam(0) did not panic")
		}
	}()
	NewTeam(0)
}

// TestAutoGrainBounds: the automatic grain is always positive and never
// larger than needed to give each worker several chunks.
func TestAutoGrainBounds(t *testing.T) {
	SetGrainFactor(0) // default
	for _, n := range []int{1, 10, 1000, 1 << 20} {
		for _, w := range []int{1, 4, 64} {
			g := autoGrain(n, w)
			if g < 1 {
				t.Fatalf("autoGrain(%d, %d) = %d", n, w, g)
			}
		}
	}
	SetGrainFactor(2)
	if g := autoGrain(1000, 5); g != 100 {
		t.Errorf("autoGrain with factor 2 = %d, want 100", g)
	}
	SetGrainFactor(0)
}
