package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the kernel runtime: a persistent worker team whose
// goroutines are created once and reused across calls, plus a
// parallel-for primitive with two schedules. The host kernels (SpMV,
// Jaccard, Hartree-Fock, stencil, FFT, STREAM) iterate thousands of
// times — PageRank calls SpMV once per power iteration, SCF rebuilds
// the Fock matrix once per cycle — so respawning a full goroutine set
// per call puts the spawn/park cost on every iteration. A Team pays it
// once.
//
// Two schedules are offered because the paper's workloads need both:
//
//   - Dynamic: workers pull fixed-size index chunks from an atomic
//     cursor. Hub-heavy rows of a scale-free matrix (the Figure 12
//     imbalance) land in some chunks and not others; pulling rebalances
//     them automatically, like OpenMP's schedule(dynamic).
//   - Static: a fixed contiguous pre-split, one range per worker. The
//     assignment depends only on (n, workers), so per-worker partial
//     reductions merge in a deterministic order and results are
//     bit-reproducible run to run.

// Schedule selects how a parallel-for maps index ranges to workers.
type Schedule int

const (
	// Dynamic hands out fixed-size chunks from an atomic cursor;
	// load-imbalanced ranges rebalance automatically.
	Dynamic Schedule = iota
	// Static pre-splits the range into one contiguous chunk per worker;
	// the assignment is deterministic, so ordered reductions are too.
	Static
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	if s == Static {
		return "static"
	}
	return "dynamic"
}

var (
	// defaultWorkers overrides the GOMAXPROCS default when positive
	// (the -kernelworkers knob).
	defaultWorkers atomic.Int64
	// grainChunks is the auto-grain target of chunks per worker
	// (the -grainfactor knob); 0 means the default of 8.
	grainChunks atomic.Int64
)

// Workers resolves a kernel's threads argument: positive values pass
// through; otherwise the process-wide default applies (SetDefaultWorkers
// if set, else one worker per available CPU).
func Workers(threads int) int {
	if threads > 0 {
		return threads
	}
	if v := defaultWorkers.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers fixes the worker count kernels use when called with
// threads <= 0. n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// GrainFactor returns the process-wide auto-grain override set by
// SetGrainFactor (0 when the default applies). The harness folds it
// into cached-report keys: host-measured kernels schedule differently
// under a different grain.
func GrainFactor() int { return int(grainChunks.Load()) }

// SetGrainFactor sets the auto-grain target of dynamic chunks per
// worker (default 8). More chunks balance better; fewer chunks cost
// less scheduling. c <= 0 restores the default.
func SetGrainFactor(c int) {
	if c < 0 {
		c = 0
	}
	grainChunks.Store(int64(c))
}

// autoGrain picks a dynamic chunk size giving each worker about
// grainChunks chunks to pull.
func autoGrain(n, workers int) int {
	f := int(grainChunks.Load())
	if f <= 0 {
		f = 8
	}
	g := n / (workers * f)
	if g < 1 {
		g = 1
	}
	return g
}

// Team is a persistent set of worker goroutines that execute
// parallel-for loops. The goroutines are created by NewTeam and live
// until Close; running a loop spawns nothing. A Team executes one loop
// at a time — a concurrent call from another goroutine is a programming
// error and panics (use the package-level For/StaticFor helpers, which
// serialize on a shared team, when callers may overlap).
//
// Loop bodies must not invoke the same Team (or, for the shared
// helpers, any package-level parallel-for): the outer loop holds the
// team until its body returns, so a nested call deadlocks.
type Team struct {
	workers int
	chans   []chan *teamJob
	job     teamJob // reused across calls: steady state allocates nothing
	busy    atomic.Bool
	closed  atomic.Bool
	stats   *teamStats // nil when uninstrumented (see Instrument)
}

// teamJob describes one parallel-for. With bounds == nil the loop is
// dynamic: workers pull [next, next+grain) ranges from the atomic
// cursor. With bounds set the loop is static: worker w runs
// [bounds[w], bounds[w+1]).
type teamJob struct {
	n      int
	grain  int
	next   atomic.Int64
	bounds []int
	body   func(worker, lo, hi int)
	wg     sync.WaitGroup
	// Per-worker tallies for the current job, allocated once by
	// Instrument and reset per dispatch; nil when uninstrumented, which
	// reduces the whole instrumentation to one branch per chunk pull.
	// Each worker writes only its own slot; wg.Wait orders the flush.
	chunks  []uint64
	items   []uint64
	startNs int64
	firstNs atomic.Int64 // dispatch-to-first-chunk; -1 until a worker pulls
}

// NewTeam starts a team of `workers` goroutines (workers must be
// positive). A one-worker team spawns no goroutines at all and runs
// loops inline.
func NewTeam(workers int) *Team {
	if workers <= 0 {
		panic(fmt.Sprintf("parallel: team needs a positive worker count, got %d", workers))
	}
	t := &Team{workers: workers}
	if workers == 1 {
		return t
	}
	t.chans = make([]chan *teamJob, workers)
	for w := range t.chans {
		t.chans[w] = make(chan *teamJob, 1)
		go t.workerLoop(w)
	}
	return t
}

// Workers returns the team size.
func (t *Team) Workers() int { return t.workers }

// Close terminates the worker goroutines. The team must be idle; using
// it afterwards panics. Close must not race with a running loop.
func (t *Team) Close() {
	if t.closed.Swap(true) {
		return
	}
	for _, c := range t.chans {
		close(c)
	}
}

func (t *Team) workerLoop(w int) {
	for j := range t.chans[w] {
		j.run(w)
		j.wg.Done()
	}
}

// run is the per-worker pull loop: static jobs execute their one
// bounded range, dynamic jobs pull grain-sized chunks off the shared
// cursor until the range is exhausted. Its handoff cost is pinned by
// BenchmarkParallelForTeam and BenchmarkStaticForTeam in
// team_bench_test.go.
//
//p8:hotpath
func (j *teamJob) run(w int) {
	instrumented := j.chunks != nil
	if j.bounds != nil {
		if w < len(j.bounds)-1 {
			if lo, hi := j.bounds[w], j.bounds[w+1]; lo < hi {
				if instrumented {
					j.noteChunk(w, hi-lo)
				}
				j.body(w, lo, hi) //p8:allow hotpathdeep: the body IS the team's payload — dispatch is necessarily indirect; hot kernels annotate their own bodies
			}
		}
		return
	}
	g := int64(j.grain)
	n := int64(j.n)
	for {
		start := j.next.Add(g) - g //p8:allow hotpath: the shared chunk cursor is the one designed-in atomic — one fetch-add per grain-sized chunk, amortized across the whole chunk
		if start >= n {
			return
		}
		end := int(start) + j.grain
		if end > j.n {
			end = j.n
		}
		if instrumented {
			j.noteChunk(w, end-int(start))
		}
		j.body(w, int(start), end) //p8:allow hotpathdeep: the body IS the team's payload — dispatch is necessarily indirect; hot kernels annotate their own bodies
	}
}

// noteChunk tallies one pulled chunk. The first pull across all workers
// also stamps the dispatch-to-first-chunk latency (the handoff cost a
// kernel pays before any useful work starts).
func (j *teamJob) noteChunk(w, items int) {
	if j.firstNs.Load() < 0 {
		//p8:allow determinism: the dispatch-to-first-chunk stamp is obs-only timing provenance — it lands in counter snapshots, never in simulated state or report fingerprints
		j.firstNs.CompareAndSwap(-1, time.Now().UnixNano()-j.startNs) //p8:allow hotpath: instrumented dispatches only — one CAS+stamp on the first chunk pull, then the branch above short-circuits
	}
	j.chunks[w]++
	j.items[w] += uint64(items)
}

// ParallelFor runs body over [0, n) with dynamic chunking: workers pull
// `grain`-sized index ranges until the range is exhausted. grain <= 0
// selects an automatic grain (~8 chunks per worker). Chunks are
// processed in ascending order when the team has one worker, so the
// sequential case is deterministic.
func (t *Team) ParallelFor(n, grain int, body func(lo, hi int)) {
	t.ParallelForWorker(n, grain, func(_, lo, hi int) { body(lo, hi) })
}

// ParallelForWorker is ParallelFor with the worker index (0-based,
// < Workers()) passed to the body, so callers can keep contention-free
// per-worker accumulators. Chunk-to-worker assignment is first-come,
// so the partition of work across accumulators is not deterministic —
// use StaticFor where merged reduction order must be reproducible.
func (t *Team) ParallelForWorker(n, grain int, body func(worker, lo, hi int)) {
	if grain <= 0 {
		grain = autoGrain(n, t.workers)
	}
	t.dispatch(n, grain, nil, body)
}

// StaticFor runs body over [0, n) split into one contiguous near-equal
// range per worker. Worker w always receives the same range for a given
// (n, workers), so per-worker partials merge deterministically. Workers
// with an empty range do not run.
func (t *Team) StaticFor(n int, body func(worker, lo, hi int)) {
	t.dispatch(n, 0, evenBounds(n, t.workers), body)
}

// StaticRanges runs body over caller-supplied partition bounds: part p
// covers [bounds[p], bounds[p+1]) and runs on worker p. It supports
// load-aware pre-splits such as nnz-balanced row partitions. The number
// of parts (len(bounds)-1) must not exceed the team size.
func (t *Team) StaticRanges(bounds []int, body func(part, lo, hi int)) {
	if len(bounds) < 2 {
		return
	}
	if len(bounds)-1 > t.workers {
		panic(fmt.Sprintf("parallel: %d static parts exceed %d workers", len(bounds)-1, t.workers))
	}
	t.dispatch(bounds[len(bounds)-1], 0, bounds, body)
}

// dispatch publishes one job to the team and waits for it to drain. It
// runs once per parallel loop — not per item — so the runtime checks
// and instrumentation stamps below are amortized over the whole loop;
// each carries its own //p8:allow. Dispatch latency is pinned by
// BenchmarkParallelForTeam and the dispatch_to_first_chunk_ns counter.
//
//p8:hotpath
func (t *Team) dispatch(n, grain int, bounds []int, body func(worker, lo, hi int)) {
	if t.closed.Load() { //p8:allow hotpath: use-after-Close check, once per loop
		panic("parallel: use of a closed Team")
	}
	if !t.busy.CompareAndSwap(false, true) { //p8:allow hotpath: concurrent-dispatch check, once per loop
		panic("parallel: concurrent parallel-for calls on one Team (a Team runs one loop at a time; use the package-level helpers for overlapping callers)")
	}
	defer t.busy.Store(false) //p8:allow hotpath: releases the dispatch slot, once per loop
	st := t.stats
	if st != nil {
		st.dispatches.Inc()
	}
	if bounds == nil {
		if n <= 0 {
			return
		}
		// Inline when one worker (or one chunk) covers the whole range:
		// no cross-goroutine handoff, deterministic ascending order.
		if t.workers == 1 || n <= grain {
			body(0, 0, n) //p8:allow hotpathdeep: inline single-worker dispatch of the caller-supplied body — necessarily indirect; hot kernels annotate their own bodies
			if st != nil {
				st.recordInline(1, uint64(n))
			}
			return
		}
	} else if t.workers == 1 {
		var parts, items uint64
		for p := 0; p+1 < len(bounds); p++ {
			if bounds[p] < bounds[p+1] {
				body(p, bounds[p], bounds[p+1]) //p8:allow hotpathdeep: inline single-worker dispatch of the caller-supplied body — necessarily indirect; hot kernels annotate their own bodies
				parts++
				items += uint64(bounds[p+1] - bounds[p])
			}
		}
		if st != nil {
			st.recordInline(parts, items)
		}
		return
	}
	// Wake only as many workers as there are chunks (or static parts):
	// a worker with nothing to pull would only add handoff latency.
	wake := t.workers
	if bounds == nil {
		if need := (n + grain - 1) / grain; need < wake {
			wake = need
		}
	} else if parts := len(bounds) - 1; parts < wake {
		wake = parts
	}
	j := &t.job
	j.n, j.grain, j.bounds, j.body = n, grain, bounds, body
	j.next.Store(0) //p8:allow hotpath: resets the chunk cursor the workers will fetch-add, once per loop
	if st != nil {
		for w := range j.chunks {
			j.chunks[w], j.items[w] = 0, 0
		}
		j.firstNs.Store(-1) //p8:allow hotpath: instrumented dispatches only, once per loop
		//p8:allow determinism: wall time here only seeds the obs handoff-latency stamp; it never reaches simulated state or report fingerprints
		j.startNs = time.Now().UnixNano() //p8:allow hotpath: instrumented dispatches only — the dispatch-to-first-chunk stamp needs wall time
	}
	j.wg.Add(wake)
	for w := 0; w < wake; w++ {
		t.chans[w] <- j
	}
	j.wg.Wait()
	if st != nil {
		st.flush(j, wake)
	}
	j.body = nil
	j.bounds = nil
}

// evenBounds splits [0, n) into parts near-equal contiguous ranges.
func evenBounds(n, parts int) []int {
	b := make([]int, parts+1)
	chunk := (n + parts - 1) / parts
	for p := 1; p < parts; p++ {
		v := p * chunk
		if v > n {
			v = n
		}
		b[p] = v
	}
	b[parts] = n
	return b
}

// sharedTeam is one process-wide team plus the mutex that serializes
// submissions from overlapping callers (the experiment harness runs
// whole experiments concurrently; their kernels take turns on the team
// instead of oversubscribing the machine with spawned goroutine sets).
type sharedTeam struct {
	mu sync.Mutex
	t  *Team
}

var (
	sharedMu    sync.Mutex
	sharedTeams = map[int]*sharedTeam{}
)

// sharedFor returns the process-wide team for a worker count, creating
// it on first use. Teams persist for the life of the process (the set of
// distinct worker counts is small).
func sharedFor(workers int) *sharedTeam {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	st := sharedTeams[workers]
	if st == nil {
		st = &sharedTeam{t: NewTeam(workers)}
		st.t.Instrument(sharedObs) // no-op unless InstrumentShared ran
		sharedTeams[workers] = st
	}
	return st
}

// For runs body over [0, n) with dynamic chunking on the process-wide
// team for the resolved worker count (see Workers). Safe for concurrent
// use: overlapping loops on the same worker count serialize. Bodies
// must not call back into the package-level parallel-for helpers.
func For(workers, n, grain int, body func(lo, hi int)) {
	ForWorker(workers, n, grain, func(_, lo, hi int) { body(lo, hi) })
}

// ForWorker is For with the worker index passed to the body.
func ForWorker(workers, n, grain int, body func(worker, lo, hi int)) {
	workers = Workers(workers)
	if workers == 1 {
		if n > 0 {
			body(0, 0, n)
		}
		return
	}
	st := sharedFor(workers)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.t.ParallelForWorker(n, grain, body)
}

// StaticFor runs body over [0, n) with a deterministic even pre-split
// on the process-wide team (see Team.StaticFor).
func StaticFor(workers, n int, body func(worker, lo, hi int)) {
	workers = Workers(workers)
	if workers == 1 {
		if n > 0 {
			body(0, 0, n)
		}
		return
	}
	st := sharedFor(workers)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.t.StaticFor(n, body)
}

// StaticRanges runs body over caller-supplied partition bounds on the
// process-wide team (see Team.StaticRanges). workers must be at least
// len(bounds)-1 after resolution.
func StaticRanges(workers int, bounds []int, body func(part, lo, hi int)) {
	workers = Workers(workers)
	if workers == 1 {
		for p := 0; p+1 < len(bounds); p++ {
			if bounds[p] < bounds[p+1] {
				body(p, bounds[p], bounds[p+1])
			}
		}
		return
	}
	st := sharedFor(workers)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.t.StaticRanges(bounds, body)
}
