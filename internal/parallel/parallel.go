// Package parallel provides the concurrency substrate the reproduction
// runs on, at two levels. For the experiment harness: a bounded worker
// pool and an ordered fan-out helper — the experiments of the paper are
// independent of each other, so the suite can exploit a many-core host
// the same way the paper's benchmarks exploit the 512-thread E870 (run
// everything at once, report in the paper's order). For the host
// kernels: a persistent worker Team with dynamic- and static-schedule
// parallel-for primitives (see team.go), so iterative kernels spawn no
// goroutines in steady state and skewed scale-free work rebalances.
package parallel

import (
	"fmt"
	"sync"
)

// Pool is a bounded worker pool: at most `workers` submitted functions
// run concurrently; further Go calls park until a slot frees. The zero
// value is not usable; construct with NewPool.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewPool returns a pool running at most workers tasks at once.
// workers must be positive.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		panic(fmt.Sprintf("parallel: pool needs a positive worker count, got %d", workers))
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Go submits fn; it blocks while the pool is at capacity. A panic inside
// fn propagates on the spawned goroutine (it is a programming error, not
// a recoverable condition).
func (p *Pool) Go(fn func()) {
	p.sem <- struct{}{}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every submitted task has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Map applies fn to every item on at most `workers` goroutines and
// returns the results in input order, regardless of completion order.
// With workers == 1 it degenerates to a plain sequential loop (no
// goroutines), so a single code path serves both modes deterministically.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	if workers == 1 || len(items) <= 1 {
		for i := range items {
			out[i] = fn(i, items[i])
		}
		return out
	}
	if workers > len(items) {
		workers = len(items)
	}
	p := NewPool(workers)
	for i := range items {
		i := i
		p.Go(func() { out[i] = fn(i, items[i]) })
	}
	p.Wait()
	return out
}
