package parallel

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// The team-vs-spawn comparison: the same trivial loop body run through a
// persistent team (goroutines created once) and through the
// spawn-per-call pattern every kernel used before the team existed.
// teamJob.run and Team.dispatch carry //p8:hotpath directives keyed to
// these benchmarks; their deliberate atomics are itemized in //p8:allow
// comments in team.go.

const benchN = 1 << 16

func benchBody(sink *atomic.Int64) func(lo, hi int) {
	return func(lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		sink.Add(s)
	}
}

func BenchmarkParallelForTeam(b *testing.B) {
	team := NewTeam(4)
	defer team.Close()
	var sink atomic.Int64
	body := benchBody(&sink)
	team.ParallelFor(benchN, 0, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.ParallelFor(benchN, 0, body)
	}
}

// BenchmarkParallelForTeamObserved is BenchmarkParallelForTeam with the
// team's scheduling counters live (the enabled-overhead contract: one
// branch plus two plain adds per chunk, one flush per dispatch).
func BenchmarkParallelForTeamObserved(b *testing.B) {
	team := NewTeam(4)
	defer team.Close()
	team.Instrument(obs.NewRegistry("bench"))
	var sink atomic.Int64
	body := benchBody(&sink)
	team.ParallelFor(benchN, 0, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.ParallelFor(benchN, 0, body)
	}
}

// BenchmarkParallelForSpawn is the pre-team baseline: a WaitGroup and a
// fresh goroutine set per call.
func BenchmarkParallelForSpawn(b *testing.B) {
	const workers = 4
	var sink atomic.Int64
	body := benchBody(&sink)
	spawn := func() {
		var wg sync.WaitGroup
		chunk := (benchN + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > benchN {
				hi = benchN
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				body(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spawn()
	}
}

// BenchmarkParallelForSpawnChannel is the other pre-team pattern: an
// unbuffered work channel feeding freshly spawned workers.
func BenchmarkParallelForSpawnChannel(b *testing.B) {
	const workers = 4
	const grain = benchN / 32
	var sink atomic.Int64
	body := benchBody(&sink)
	spawn := func() {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for lo := range work {
					hi := lo + grain
					if hi > benchN {
						hi = benchN
					}
					body(lo, hi)
				}
			}()
		}
		for lo := 0; lo < benchN; lo += grain {
			work <- lo
		}
		close(work)
		wg.Wait()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spawn()
	}
}

// Small-body variants: when the per-call work is modest (a PageRank
// iteration on a mid-size graph, one STREAM pass on a cache-resident
// array), the per-call dispatch cost is the kernel's overhead floor —
// this is where the persistent team pays off most.

const benchSmallN = 1 << 10

func BenchmarkParallelForSmallTeam(b *testing.B) {
	team := NewTeam(4)
	defer team.Close()
	var sink atomic.Int64
	body := benchBody(&sink)
	team.ParallelFor(benchSmallN, 0, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.ParallelFor(benchSmallN, 0, body)
	}
}

func BenchmarkParallelForSmallSpawn(b *testing.B) {
	const workers = 4
	var sink atomic.Int64
	body := benchBody(&sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		chunk := (benchSmallN + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > benchSmallN {
				hi = benchSmallN
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				body(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
}

func BenchmarkParallelForSmallSpawnChannel(b *testing.B) {
	const workers = 4
	const grain = benchSmallN / 8
	var sink atomic.Int64
	body := benchBody(&sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for lo := range work {
					hi := lo + grain
					if hi > benchSmallN {
						hi = benchSmallN
					}
					body(lo, hi)
				}
			}()
		}
		for lo := 0; lo < benchSmallN; lo += grain {
			work <- lo
		}
		close(work)
		wg.Wait()
	}
}

func BenchmarkStaticForTeam(b *testing.B) {
	team := NewTeam(4)
	defer team.Close()
	var sink atomic.Int64
	body := func(_, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		sink.Add(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.StaticFor(benchN, body)
	}
}
