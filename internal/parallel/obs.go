package parallel

import (
	"fmt"

	"repro/internal/obs"
)

// This file publishes the kernel runtime's counters. A team accumulates
// per-worker tallies in plain slots while a job runs (each worker owns
// its slot) and flushes them into the registry once per dispatch, after
// the job's WaitGroup settles — so the pull loop pays one extra branch
// per chunk and zero atomics beyond the cursor it already had.
//
// Counter taxonomy under the scope given to Instrument (see DESIGN.md
// "Observability"):
//
//	team_w<N>/dispatches            parallel-for calls on the N-worker team
//	team_w<N>/worker<i>/chunks      chunks worker i pulled (or ran, static)
//	team_w<N>/worker<i>/items       loop indices worker i covered
//	team_w<N>/imbalance_permille    distribution of max/mean items per
//	                                dispatch (1000 = perfectly balanced);
//	                                dynamic fan-out dispatches only
//	team_w<N>/first_chunk_ns        distribution of dispatch-to-first-chunk
//	                                handoff latency; fan-out dispatches only

// teamStats holds one team's registry handles, resolved once at
// Instrument time so the flush path does no map lookups.
type teamStats struct {
	dispatches   *obs.Counter
	imbalance    *obs.Distribution
	firstChunk   *obs.Distribution
	workerChunks []*obs.Counter
	workerItems  []*obs.Counter
}

// Instrument publishes the team's scheduling counters into a
// "team_w<N>" child of reg (N = the worker count). Call it while the
// team is idle — typically right after NewTeam; instrumenting a team
// with a loop in flight is a race. A nil reg leaves the team
// uninstrumented (the default): the hot path then costs a single
// predicted branch per chunk.
func (t *Team) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	scope := reg.Child(fmt.Sprintf("team_w%d", t.workers))
	st := &teamStats{
		dispatches: scope.Counter("dispatches"),
		imbalance:  scope.Distribution("imbalance_permille"),
		firstChunk: scope.Distribution("first_chunk_ns"),
	}
	for w := 0; w < t.workers; w++ {
		ws := scope.Child(fmt.Sprintf("worker%d", w))
		st.workerChunks = append(st.workerChunks, ws.Counter("chunks"))
		st.workerItems = append(st.workerItems, ws.Counter("items"))
	}
	t.job.chunks = make([]uint64, t.workers)
	t.job.items = make([]uint64, t.workers)
	t.stats = st
}

// recordInline tallies a dispatch the team ran on the calling goroutine
// (one worker, or a range small enough for a single chunk). There is no
// handoff and no sharing, so only worker 0's chunk/item counters move.
func (st *teamStats) recordInline(chunks, items uint64) {
	st.workerChunks[0].Add(chunks)
	st.workerItems[0].Add(items)
}

// flush moves one finished job's tallies into the registry. It runs on
// the dispatching goroutine after wg.Wait, so the workers' slot writes
// are visible and nothing races.
func (st *teamStats) flush(j *teamJob, wake int) {
	var total, max uint64
	for w := range j.chunks {
		if j.chunks[w] == 0 {
			continue
		}
		st.workerChunks[w].Add(j.chunks[w])
		st.workerItems[w].Add(j.items[w])
		total += j.items[w]
		if j.items[w] > max {
			max = j.items[w]
		}
	}
	if first := j.firstNs.Load(); first >= 0 {
		st.firstChunk.Observe(first)
	}
	// Imbalance is only meaningful for the dynamic schedule: static
	// splits are fixed by construction, so their skew is the caller's
	// choice, not the scheduler's.
	if j.bounds == nil && total > 0 && wake > 0 {
		mean := float64(total) / float64(wake)
		st.imbalance.Observe(int64(1000 * float64(max) / mean))
	}
}

// sharedObs, when set, instruments every process-wide team — existing
// and future (sharedFor applies it at creation). Guarded by sharedMu.
var sharedObs *obs.Registry

// InstrumentShared publishes the scheduling counters of every
// process-wide team (the ones behind For/StaticFor/StaticRanges) into a
// "parallel" child of reg, covering teams that already exist and teams
// created later. The shared teams outlive any one experiment, so these
// counters are process-global; per-experiment registries only isolate
// the walker and DES counters. A nil reg is a no-op.
func InstrumentShared(reg *obs.Registry) {
	if reg == nil {
		return
	}
	scope := reg.Child("parallel")
	sharedMu.Lock()
	defer sharedMu.Unlock()
	sharedObs = scope
	for _, st := range sharedTeams {
		st.mu.Lock()
		st.t.Instrument(scope)
		st.mu.Unlock()
	}
}
