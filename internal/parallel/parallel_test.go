package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 100, 1000} {
		got := Map(workers, items, func(_ int, v int) int { return v * v })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(4, nil, func(_ int, v int) int { return v })
	if len(got) != 0 {
		t.Fatalf("Map over nil returned %v", got)
	}
}

func TestMapIndexMatchesItem(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	Map(3, items, func(i int, v string) struct{} {
		if items[i] != v {
			t.Errorf("index %d delivered item %q, want %q", i, v, items[i])
		}
		return struct{}{}
	})
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		p.Go(func() {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			cur.Add(-1)
		})
	}
	p.Wait()
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent tasks, pool bound is %d", got, workers)
	}
}

func TestPoolWaitRuns(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		p.Go(func() { n.Add(1) })
	}
	p.Wait()
	if n.Load() != 20 {
		t.Errorf("ran %d tasks, want 20", n.Load())
	}
}

func TestNewPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}
