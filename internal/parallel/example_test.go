package parallel_test

import (
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
)

// ExampleNewTeam shows the kernel-runtime idiom: create a persistent
// team once, run many loops on it, close it when done. The goroutines
// are created by NewTeam and reused — steady-state loops spawn nothing.
func ExampleNewTeam() {
	team := parallel.NewTeam(4)
	defer team.Close()

	var sum atomic.Int64
	for iter := 0; iter < 3; iter++ {
		team.ParallelFor(1000, 0, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
	}
	fmt.Println(sum.Load())
	// Output: 1498500
}

// ExampleTeam_ParallelFor contrasts the two schedules: dynamic chunking
// rebalances skewed work, the static pre-split keeps per-worker partial
// reductions in a deterministic merge order.
func ExampleTeam_ParallelFor() {
	team := parallel.NewTeam(2)
	defer team.Close()

	// Dynamic: workers pull chunks of 16 indices from a shared cursor.
	var touched atomic.Int64
	team.ParallelFor(100, 16, func(lo, hi int) {
		touched.Add(int64(hi - lo))
	})

	// Static: worker w always owns the same contiguous range, so the
	// partials slice is filled identically run to run.
	partials := make([]int64, team.Workers())
	team.StaticFor(100, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			partials[worker] += int64(i)
		}
	})
	var total int64
	for _, p := range partials {
		total += p
	}
	fmt.Println(touched.Load(), total)
	// Output: 100 4950
}

// ExampleFor shows the package-level helper: a shared process-wide team
// per worker count, safe for overlapping callers.
func ExampleFor() {
	var sum atomic.Int64
	parallel.For(2, 10, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	fmt.Println(sum.Load())
	// Output: 45
}
