package obs_test

import (
	"os"

	"repro/internal/obs"
)

// A registry is a tree of scopes; hot code resolves its metrics once and
// updates them lock-free. A nil *Registry turns every operation into a
// no-op, so instrumented code needs no "if enabled" plumbing.
func ExampleRegistry() {
	reg := obs.NewRegistry("run")

	// Setup: resolve metrics once.
	des := reg.Child("des")
	events := des.Counter("events")
	depth := des.Gauge("queue_depth_hwm")

	// Hot path: atomic updates through the held pointers.
	for i := 0; i < 1000; i++ {
		events.Inc()
		depth.SetMax(int64(i % 17))
	}

	// Disabled path: a nil registry yields nil metrics; all methods no-op.
	var off *obs.Registry
	off.Counter("ignored").Inc()

	obs.WriteMarkdown(os.Stdout, reg.Snapshot())
	// Output:
	// | counter | value |
	// |---|---:|
	// | `des/events` | 1000 |
	// | `des/queue_depth_hwm` (gauge) | 16 |
}
