// Package obs is the reproduction's observability layer: a low-overhead
// metrics subsystem mirroring the hardware counters the paper reads off
// the real E870. The model's experiments are only as debuggable as their
// internals are visible — when a paper-vs-measured check drifts, the
// per-level hit counts, prefetch confirmations and queue depths say
// *why* — so the three hot layers (the DES engine, the trace-driven
// walker, and the parallel kernel runtime) publish into registries from
// this package, and the harness snapshots one registry per experiment.
//
// The design has one hard contract: **a nil registry costs nothing**.
// Every constructor and accessor is nil-safe — a nil *Registry returns
// nil metrics, and every metric method on a nil receiver is a
// predictable single-branch no-op — so instrumented code carries no
// build tags and no wrapper layers, and uninstrumented runs (the default
// for every benchmark and test) execute the same machine code as before
// the instrumentation existed, minus one well-predicted branch. Hot
// loops additionally follow the flush-at-the-end idiom: they accumulate
// into their existing plain fields and publish deltas into the registry
// at run boundaries, so even *enabled* instrumentation stays off the
// per-access path.
//
// Metric kinds:
//
//   - Counter: a monotonically increasing atomic uint64 (events, hits,
//     misses). Safe for concurrent increment from many workers.
//   - Gauge: an atomic int64 last-value-or-high-water cell (queue depth
//     HWM, configured sizes).
//   - Distribution: a fixed-size log2-bucketed sketch (count, sum,
//     min, max, 65 power-of-two buckets) recording int64 samples with
//     zero allocation; snapshots report mean and interpolated
//     P50/P90/P99.
//   - Timer: a Distribution of elapsed nanoseconds with a
//     Start/Stop stopwatch.
//
// Registries are hierarchical: Child scopes nest ("figure4/des/events"),
// and Snapshot walks the tree in deterministic sorted order, so two
// identical sequential runs render byte-identical exports.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter ignores all updates, which is how
// disabled instrumentation compiles down to a branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 on a nil Counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value cell with an atomic high-water helper. A nil
// *Gauge ignores all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger (an atomic high-water
// mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on a nil Gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// distBuckets is the bucket count of a Distribution: bucket i holds
// samples whose value needs i significant bits (bucket 0 is v <= 0,
// bucket i covers [2^(i-1), 2^i - 1]).
const distBuckets = 65

// Distribution is a log2-bucketed sketch of int64 samples: count, sum,
// min, max and a fixed histogram, all updated atomically and without
// allocation. It is the backing store for Timers and for derived
// per-dispatch statistics such as the Team's imbalance ratio. A nil
// *Distribution ignores all updates. Construct with NewDistribution (or
// through a Registry): min/max start at their sentinels, so concurrent
// first observations race-free converge on the true extrema.
type Distribution struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first sample
	max     atomic.Int64 // math.MinInt64 until the first sample
	buckets [distBuckets]atomic.Uint64
}

// NewDistribution returns an empty distribution ready for concurrent
// Observe calls.
func NewDistribution() *Distribution {
	d := &Distribution{}
	d.min.Store(math.MaxInt64)
	d.max.Store(math.MinInt64)
	return d
}

// Observe records one sample.
func (d *Distribution) Observe(v int64) {
	if d == nil {
		return
	}
	d.count.Add(1)
	d.sum.Add(v)
	for {
		cur := d.min.Load()
		if v >= cur || d.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := d.max.Load()
		if v <= cur || d.max.CompareAndSwap(cur, v) {
			break
		}
	}
	d.buckets[bucketOf(v)].Add(1)
}

// bucketOf maps a sample to its histogram bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Count returns the number of samples observed (0 on a nil
// Distribution).
func (d *Distribution) Count() uint64 {
	if d == nil {
		return 0
	}
	return d.count.Load()
}

// Timer records elapsed wall time into a Distribution of nanoseconds.
// A nil *Timer hands out no-op stopwatches.
type Timer struct {
	d *Distribution
}

// Stopwatch is one in-progress Timer measurement. It is a value type:
// starting and stopping a stopwatch allocates nothing.
type Stopwatch struct {
	d  *Distribution
	t0 time.Time
}

// Start begins a measurement.
func (t *Timer) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{d: t.d, t0: time.Now()}
}

// Stop records the elapsed time since Start. Stopping a zero Stopwatch
// is a no-op.
func (sw Stopwatch) Stop() {
	if sw.d != nil {
		sw.d.Observe(time.Since(sw.t0).Nanoseconds())
	}
}

// Registry is a named scope of metrics and child scopes. Metric lookup
// is create-on-first-use and guarded by a mutex — callers resolve their
// metrics once at setup and hold the returned pointers on hot paths.
// All methods are safe for concurrent use, and all methods on a nil
// *Registry return nil, so "instrumentation disabled" is spelled
// `var reg *obs.Registry` with no further conditionals at use sites.
type Registry struct {
	name string

	mu       sync.Mutex
	children map[string]*Registry
	counters map[string]*Counter
	gauges   map[string]*Gauge
	dists    map[string]*Distribution
}

// NewRegistry returns an empty root registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{name: name}
}

// Name returns the scope's own (unqualified) name.
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Child returns the named sub-scope, creating it on first use. On a nil
// Registry it returns nil.
func (r *Registry) Child(name string) *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.children[name]
	if c == nil {
		c = NewRegistry(name)
		if r.children == nil {
			r.children = make(map[string]*Registry)
		}
		r.children[name] = c
	}
	return c
}

// Counter returns the named counter in this scope, creating it on first
// use. On a nil Registry it returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		if r.counters == nil {
			r.counters = make(map[string]*Counter)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// Registry it returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		if r.gauges == nil {
			r.gauges = make(map[string]*Gauge)
		}
		r.gauges[name] = g
	}
	return g
}

// Distribution returns the named distribution, creating it on first
// use. On a nil Registry it returns nil.
func (r *Registry) Distribution(name string) *Distribution {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.dists[name]
	if d == nil {
		d = NewDistribution()
		if r.dists == nil {
			r.dists = make(map[string]*Distribution)
		}
		r.dists[name] = d
	}
	return d
}

// Timer returns a timer over the named distribution (unit:
// nanoseconds). On a nil Registry it returns nil.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{d: r.Distribution(name)}
}
