package obs

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot is a point-in-time copy of one registry scope and its
// children. Metric slices and the child list are sorted by name, so a
// snapshot of a deterministic run renders byte-identically run to run —
// the property the harness's snapshot-determinism test pins down.
type Snapshot struct {
	Name          string         `json:"name"`
	Counters      []CounterValue `json:"counters,omitempty"`
	Gauges        []GaugeValue   `json:"gauges,omitempty"`
	Distributions []DistSummary  `json:"distributions,omitempty"`
	Children      []Snapshot     `json:"children,omitempty"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// DistSummary is one distribution's snapshot: exact count/sum/min/max
// plus quantiles interpolated from the log2 buckets (accurate to the
// bucket's power-of-two width).
type DistSummary struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot copies the scope's current metric values. It is safe to call
// concurrently with metric updates (values are read atomically; the
// snapshot is a consistent-enough view for reporting, not a global
// barrier). A nil Registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	s := Snapshot{Name: r.name}
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	distNames := sortedKeys(r.dists)
	childNames := sortedKeys(r.children)
	counters := make([]*Counter, len(counterNames))
	for i, n := range counterNames {
		counters[i] = r.counters[n]
	}
	gauges := make([]*Gauge, len(gaugeNames))
	for i, n := range gaugeNames {
		gauges[i] = r.gauges[n]
	}
	dists := make([]*Distribution, len(distNames))
	for i, n := range distNames {
		dists[i] = r.dists[n]
	}
	children := make([]*Registry, len(childNames))
	for i, n := range childNames {
		children[i] = r.children[n]
	}
	r.mu.Unlock()

	// Read the metric values outside the lock: the pointers are stable
	// and the loads atomic, and children take their own locks.
	for i, n := range counterNames {
		s.Counters = append(s.Counters, CounterValue{Name: n, Value: counters[i].Load()})
	}
	for i, n := range gaugeNames {
		s.Gauges = append(s.Gauges, GaugeValue{Name: n, Value: gauges[i].Load()})
	}
	for i, n := range distNames {
		s.Distributions = append(s.Distributions, dists[i].summarize(n))
	}
	for _, c := range children {
		s.Children = append(s.Children, c.Snapshot())
	}
	return s
}

// sortedKeys returns the sorted key set of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// summarize renders the distribution's current state.
func (d *Distribution) summarize(name string) DistSummary {
	s := DistSummary{Name: name, Count: d.count.Load()}
	if s.Count == 0 {
		return s
	}
	s.Sum = d.sum.Load()
	s.Min = d.min.Load()
	s.Max = d.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	var buckets [distBuckets]uint64
	var total uint64
	for i := range d.buckets {
		buckets[i] = d.buckets[i].Load()
		total += buckets[i]
	}
	s.P50 = d.quantile(&buckets, total, 0.50, s.Min, s.Max)
	s.P90 = d.quantile(&buckets, total, 0.90, s.Min, s.Max)
	s.P99 = d.quantile(&buckets, total, 0.99, s.Min, s.Max)
	return s
}

// quantile estimates the q-quantile from the log2 histogram by linear
// interpolation inside the containing bucket, clamped to the exact
// observed [min, max].
func (d *Distribution) quantile(buckets *[distBuckets]uint64, total uint64, q float64, min, max int64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		if rank < seen+n {
			lo, hi := bucketBounds(i)
			frac := float64(rank-seen) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
		seen += n
	}
	return max
}

// bucketBounds returns the value range [lo, hi] bucket i covers.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	if i >= 63 {
		// The top buckets would overflow int64 shifts; clamp.
		return int64(1) << 62, math.MaxInt64
	}
	return int64(1) << (i - 1), int64(1)<<i - 1
}

// Empty reports whether the snapshot contains no metrics anywhere.
func (s Snapshot) Empty() bool {
	if len(s.Counters) > 0 || len(s.Gauges) > 0 || len(s.Distributions) > 0 {
		return false
	}
	for _, c := range s.Children {
		if !c.Empty() {
			return false
		}
	}
	return true
}

// CounterMap flattens every counter in the snapshot tree into a
// path->value map, with scope names joined by "/". Counters are the
// deterministic subset of a snapshot (gauges and distributions may carry
// wall time and allocation figures), so identity tests compare this map.
func (s Snapshot) CounterMap() map[string]uint64 {
	out := make(map[string]uint64)
	s.counterInto("", out)
	return out
}

func (s Snapshot) counterInto(prefix string, out map[string]uint64) {
	p := s.Name
	if prefix != "" {
		p = prefix + "/" + s.Name
	}
	for _, c := range s.Counters {
		out[p+"/"+c.Name] = c.Value
	}
	for _, child := range s.Children {
		child.counterInto(p, out)
	}
}

// Find returns the child snapshot with the given name; ok is false when
// absent.
func (s Snapshot) Find(name string) (Snapshot, bool) {
	for _, c := range s.Children {
		if c.Name == name {
			return c, true
		}
	}
	return Snapshot{}, false
}

// CounterValue returns the named counter's value in this scope (not
// descending into children); ok is false when absent.
func (s Snapshot) CounterValue(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// String renders the snapshot compactly for debugging.
func (s Snapshot) String() string {
	return fmt.Sprintf("obs.Snapshot(%s: %d counters, %d gauges, %d dists, %d children)",
		s.Name, len(s.Counters), len(s.Gauges), len(s.Distributions), len(s.Children))
}
