package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry("root")
	c := r.Counter("events")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("events") != c {
		t.Error("Counter lookup is not idempotent")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.SetMax(3)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge after SetMax(3) = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Load(); got != 11 {
		t.Errorf("gauge after SetMax(11) = %d, want 11", got)
	}
}

// TestNilRegistryIsInert: the disabled-instrumentation contract — every
// operation on a nil registry and its nil metrics is a no-op, and a nil
// snapshot is empty.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Child("x") != nil {
		t.Error("nil registry Child != nil")
	}
	c := r.Counter("c")
	if c != nil {
		t.Error("nil registry Counter != nil")
	}
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter loaded nonzero")
	}
	g := r.Gauge("g")
	g.Set(3)
	g.SetMax(9)
	if g.Load() != 0 {
		t.Error("nil gauge loaded nonzero")
	}
	d := r.Distribution("d")
	d.Observe(10)
	if d.Count() != 0 {
		t.Error("nil distribution counted")
	}
	tm := r.Timer("t")
	sw := tm.Start()
	sw.Stop()
	if !r.Snapshot().Empty() {
		t.Error("nil registry snapshot not empty")
	}
	// A nil registry stays mountable: its handler serves the empty
	// snapshot instead of dereferencing.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Errorf("nil registry handler returned %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("nil registry handler body is not JSON: %v", err)
	}
	if !snap.Empty() {
		t.Errorf("nil registry handler served a non-empty snapshot: %+v", snap)
	}
}

func TestDistributionSummary(t *testing.T) {
	d := NewDistribution()
	for v := int64(1); v <= 1000; v++ {
		d.Observe(v)
	}
	s := d.summarize("lat")
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d, want 1000/1/1000", s.Count, s.Min, s.Max)
	}
	if want := 500.5; s.Mean != want {
		t.Errorf("mean = %g, want %g", s.Mean, want)
	}
	// Log2 buckets bound quantile error by one bucket width: p50 of
	// 1..1000 is ~500, inside bucket [256,511] or [512,1023].
	if s.P50 < 256 || s.P50 > 1023 {
		t.Errorf("p50 = %d, want within [256,1023]", s.P50)
	}
	if s.P99 < 512 || s.P99 > 1000 {
		t.Errorf("p99 = %d, want within [512,1000]", s.P99)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: p50=%d p90=%d p99=%d", s.P50, s.P90, s.P99)
	}
}

func TestDistributionNegativeAndZero(t *testing.T) {
	d := NewDistribution()
	d.Observe(-5)
	d.Observe(0)
	d.Observe(3)
	s := d.summarize("x")
	if s.Min != -5 || s.Max != 3 || s.Sum != -2 {
		t.Errorf("min/max/sum = %d/%d/%d, want -5/3/-2", s.Min, s.Max, s.Sum)
	}
}

func TestBucketBounds(t *testing.T) {
	for _, v := range []int64{1, 2, 3, 4, 255, 256, 1 << 40, math.MaxInt64} {
		i := bucketOf(v)
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Errorf("value %d landed in bucket %d covering [%d,%d]", v, i, lo, hi)
		}
	}
	if bucketOf(0) != 0 || bucketOf(-1) != 0 {
		t.Error("non-positive values must land in bucket 0")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// the many-teams-incrementing-concurrently scenario — and checks nothing
// is lost. Run under -race this is the registry's data-race test.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry("root")
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// All workers share one counter, one gauge, one distribution,
			// and contend on child/metric creation too.
			scope := r.Child("team")
			c := scope.Counter("chunks")
			g := scope.Gauge("hwm")
			d := scope.Distribution("items")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				d.Observe(int64(i))
				if i%64 == 0 {
					_ = r.Snapshot() // snapshots race with updates safely
				}
			}
		}(w)
	}
	wg.Wait()
	scope := r.Child("team")
	if got := scope.Counter("chunks").Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := scope.Gauge("hwm").Load(); got != workers*perWorker-1 {
		t.Errorf("gauge hwm = %d, want %d", got, workers*perWorker-1)
	}
	d := scope.Distribution("items").summarize("items")
	if d.Count != workers*perWorker || d.Min != 0 || d.Max != perWorker-1 {
		t.Errorf("dist count/min/max = %d/%d/%d", d.Count, d.Min, d.Max)
	}
}

// TestSnapshotDeterminism: two registries fed identical updates in
// different orders snapshot identically, and JSON output is
// byte-identical — the contract the harness's per-experiment appendix
// relies on.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry("run")
		for _, name := range order {
			r.Child("exp").Counter(name).Add(uint64(len(name)))
		}
		r.Child("a").Gauge("g").Set(1)
		r.Child("b").Distribution("d").Observe(5)
		return r.Snapshot()
	}
	s1 := build([]string{"x", "y", "z"})
	s2 := build([]string{"z", "x", "y"})
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%v\n%v", s1, s2)
	}
	var b1, b2 bytes.Buffer
	if err := WriteJSON(&b1, s1); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b2, s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("JSON exports differ for identical metric state")
	}
}

func TestCounterMapAndLookups(t *testing.T) {
	r := NewRegistry("run")
	r.Child("exp1").Child("walker").Counter("accesses").Add(10)
	r.Child("exp1").Counter("top").Add(1)
	s := r.Snapshot()
	m := s.CounterMap()
	if m["run/exp1/walker/accesses"] != 10 || m["run/exp1/top"] != 1 {
		t.Errorf("CounterMap = %v", m)
	}
	exp, ok := s.Find("exp1")
	if !ok {
		t.Fatal("Find(exp1) failed")
	}
	if v, ok := exp.CounterValue("top"); !ok || v != 1 {
		t.Errorf("CounterValue(top) = %d, %v", v, ok)
	}
}

func TestWriteMarkdown(t *testing.T) {
	r := NewRegistry("run")
	r.Child("des").Counter("events").Add(12)
	r.Child("des").Gauge("queue_depth_hwm").Set(4)
	r.Timer("wall_ns") // created but unused: renders with count 0
	r.Distribution("lat").Observe(100)
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"`des/events` | 12", "`des/queue_depth_hwm` (gauge) | 4", "`lat` | 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q in:\n%s", want, out)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry("live")
	r.Counter("hits").Add(3)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if v, ok := snap.CounterValue("hits"); !ok || v != 3 {
		t.Errorf("served hits = %d, %v", v, ok)
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/?format=markdown", nil))
	if !strings.Contains(rec.Body.String(), "`hits` | 3") {
		t.Errorf("markdown body = %q", rec.Body.String())
	}
}

func TestTimerRecords(t *testing.T) {
	r := NewRegistry("t")
	tm := r.Timer("op_ns")
	sw := tm.Start()
	sw.Stop()
	if got := r.Distribution("op_ns").Count(); got != 1 {
		t.Errorf("timer recorded %d samples, want 1", got)
	}
}
