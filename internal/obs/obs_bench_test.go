package obs

import "testing"

// These benchmarks pin the two halves of the overhead contract: an
// enabled counter update is one uncontended atomic add, and a disabled
// (nil) update is one predicted branch. The BENCH_*.json baselines
// record both next to the instrumented hot-layer benchmarks.

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry("bench")
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDistributionObserve(b *testing.B) {
	d := NewDistribution()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(int64(i & 0xffff))
	}
}

func BenchmarkDistributionObserveNil(b *testing.B) {
	var d *Distribution
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(int64(i))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry("bench")
	for _, scope := range []string{"a", "b", "c"} {
		s := r.Child(scope)
		for _, n := range []string{"x", "y", "z"} {
			s.Counter(n).Add(7)
			s.Distribution(n + "_d").Observe(42)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
