package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// This file renders snapshots for humans and machines: indented JSON
// (the -statsaddr HTTP endpoint and machine-readable dumps) and Markdown
// tables (the per-experiment counter appendix in EXPERIMENTS.md and the
// -stats output of the command-line tools).

// WriteJSON writes the snapshot as indented JSON. Slices inside a
// Snapshot are sorted, so the bytes are deterministic for a
// deterministic run.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteMarkdown renders the snapshot as Markdown tables: one counter
// table and one distribution table per snapshot tree, with scope paths
// flattened into the metric names ("des/events"). Empty scopes render
// nothing.
func WriteMarkdown(w io.Writer, s Snapshot) error {
	var counters []CounterValue
	var gauges []GaugeValue
	var dists []DistSummary
	flatten(s, "", &counters, &gauges, &dists)

	if len(counters)+len(gauges) > 0 {
		fmt.Fprintf(w, "| counter | value |\n|---|---:|\n")
		for _, c := range counters {
			fmt.Fprintf(w, "| `%s` | %d |\n", c.Name, c.Value)
		}
		for _, g := range gauges {
			fmt.Fprintf(w, "| `%s` (gauge) | %d |\n", g.Name, g.Value)
		}
	}
	if len(dists) > 0 {
		if len(counters)+len(gauges) > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "| distribution | count | mean | p50 | p90 | p99 | max |\n|---|---:|---:|---:|---:|---:|---:|\n")
		for _, d := range dists {
			fmt.Fprintf(w, "| `%s` | %d | %.0f | %d | %d | %d | %d |\n",
				d.Name, d.Count, d.Mean, d.P50, d.P90, d.P99, d.Max)
		}
	}
	return nil
}

// flatten walks the snapshot tree accumulating path-qualified metric
// rows. The root scope's own name is omitted from the paths — the
// caller's heading already names it.
func flatten(s Snapshot, prefix string, counters *[]CounterValue, gauges *[]GaugeValue, dists *[]DistSummary) {
	join := func(name string) string {
		if prefix == "" {
			return name
		}
		return prefix + "/" + name
	}
	for _, c := range s.Counters {
		*counters = append(*counters, CounterValue{Name: join(c.Name), Value: c.Value})
	}
	for _, g := range s.Gauges {
		*gauges = append(*gauges, GaugeValue{Name: join(g.Name), Value: g.Value})
	}
	for _, d := range s.Distributions {
		d.Name = join(d.Name)
		*dists = append(*dists, d)
	}
	for _, child := range s.Children {
		flatten(child, join(child.Name), counters, gauges, dists)
	}
}

// ServeHTTP makes a Registry an expvar-style live stats endpoint: GET
// returns the current snapshot as JSON (the default) or as Markdown with
// ?format=markdown. Mount it on any mux, or hand the registry straight
// to http.ListenAndServe — that is what the -statsaddr flags do for
// long-running reproductions.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		// A nil registry stays mountable: it serves its empty snapshot,
		// so handlers need no guards when observability is disabled.
		serveSnapshot(w, req, Snapshot{})
		return
	}
	serveSnapshot(w, req, r.Snapshot())
}

// ServeSnapshot writes one already-taken snapshot as an HTTP response
// with the Registry handler's format negotiation: JSON by default,
// Markdown with ?format=markdown. Use it to serve a stored snapshot —
// a finished job's counter appendix, a report's Stats — where
// Registry.ServeHTTP would re-snapshot live (and possibly since
// mutated) state.
func ServeSnapshot(w http.ResponseWriter, req *http.Request, snap Snapshot) {
	serveSnapshot(w, req, snap)
}

// serveSnapshot renders one snapshot as JSON (the default) or as
// Markdown with ?format=markdown.
func serveSnapshot(w http.ResponseWriter, req *http.Request, snap Snapshot) {
	if req.URL.Query().Get("format") == "markdown" {
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		_ = WriteMarkdown(w, snap)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = WriteJSON(w, snap)
}
