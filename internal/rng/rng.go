// Package rng provides small, fast, deterministic pseudo-random number
// generators for workload synthesis (R-MAT graphs, random pointer-chase
// lists, synthetic matrices). Determinism matters: every experiment in the
// reproduction must produce identical workloads across runs and platforms,
// so we avoid math/rand's historical Source behaviour differences and seed
// handling and implement xoshiro256** with a splitmix64 seeder.
package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, per the xoshiro
// authors' recommendation, guaranteeing a non-zero state.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	return r
}

// splitmix64 advances the splitmix state and returns (newState, output).
func splitmix64(x uint64) (uint64, uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return x, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Classic modulo rejection; threshold keeps the result unbiased.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, as in math/rand.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
