package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws of 100", same)
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4242)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31337)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleUniformish(t *testing.T) {
	// Each position should receive each value with roughly equal
	// frequency over many shuffles.
	const n, trials = 4, 40000
	counts := [n][n]int{}
	r := New(5)
	for trial := 0; trial < trials; trial++ {
		vals := [n]int{0, 1, 2, 3}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for pos, v := range vals {
			counts[pos][v]++
		}
	}
	want := float64(trials) / n
	for pos := 0; pos < n; pos++ {
		for v := 0; v < n; v++ {
			got := float64(counts[pos][v])
			if math.Abs(got-want)/want > 0.05 {
				t.Errorf("position %d value %d: count %v, want ~%v", pos, v, got, want)
			}
		}
	}
}
