// Command doccheck enforces the repo's documentation contract in CI:
//
//   - every exported identifier in the public packages (the root power8
//     facade, internal/parallel, internal/obs) carries a doc comment, so
//     godoc never shows a bare name;
//   - every relative link in the top-level markdown documents resolves
//     to a file in the repository, so README/DESIGN/EXPERIMENTS don't
//     rot as files move.
//
// Usage (from the repo root, as the CI docs job runs it):
//
//	go run ./internal/tools/doccheck -pkgs .,internal/parallel,internal/obs \
//	    -md README.md,DESIGN.md,EXPERIMENTS.md,ROADMAP.md
//
// Exit status is non-zero when any check fails; each failure prints as
// "file:line: message" so editors can jump to it.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	pkgs := flag.String("pkgs", ".", "comma-separated package directories to lint for missing doc comments")
	md := flag.String("md", "", "comma-separated markdown files to check for broken relative links")
	flag.Parse()

	failures := 0
	for _, dir := range split(*pkgs) {
		failures += lintPackage(dir)
	}
	for _, file := range split(*md) {
		failures += checkLinks(file)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", failures)
		os.Exit(1)
	}
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// lintPackage reports every exported top-level identifier (and exported
// method) in dir's non-test files that lacks a doc comment.
func lintPackage(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 1
	}
	failures := 0
	complain := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s %s has no doc comment\n", p.Filename, p.Line, what, name)
		failures++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						complain(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, complain)
				}
			}
		}
	}
	return failures
}

// lintGenDecl checks a var/const/type declaration. A doc comment on the
// enclosing block covers its specs (the grouped-const idiom); otherwise
// each exported spec needs its own. Failures are counted by complain.
func lintGenDecl(d *ast.GenDecl, complain func(token.Pos, string, string)) {
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				complain(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					complain(n.Pos(), kindOf(d.Tok), n.Name)
				}
			}
		}
	}
}

func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// checkLinks verifies every relative link target in one markdown file
// exists on disk (anchors and external URLs are skipped).
func checkLinks(file string) int {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 1
	}
	failures := 0
	dir := filepath.Dir(file)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: broken relative link %q\n", file, i+1, m[1])
				failures++
			}
		}
	}
	return failures
}
