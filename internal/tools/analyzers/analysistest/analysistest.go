// Package analysistest runs an analyzer over golden packages and
// checks its findings against expectations written in the source, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the
// dependency-free module cannot import).
//
// Golden packages live in a GOPATH-style tree, conventionally
// testdata/src/<pkg>/ next to the analyzer. Expectations are comments
// of the form
//
//	x := bad() // want `regexp`
//
// where each back- or double-quoted string after "want" is a regular
// expression that must match the message of a finding reported on that
// line. Every expectation must be matched and every finding must be
// expected; anything else fails the test. The //p8:allow suppression
// protocol is active, so golden files can also pin down suppression
// behaviour itself.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/tools/analyzers/analysis"
)

// wantRx extracts the quoted regexps of one want comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one "// want" pattern at a file:line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads each golden package from testdata/src, applies the
// analyzer, and reports any divergence between findings and want
// comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader(filepath.Join(testdata, "src"))
	pkgs, err := loader.Load(pkgPaths...)
	if err != nil {
		t.Fatalf("loading golden packages: %v", err)
	}
	diags, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		w, err := parseWants(loader.Fset, pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, w...)
	}

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %v", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// parseWants scans a package's comments for want expectations.
func parseWants(fset *token.FileSet, pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out, nil
}
