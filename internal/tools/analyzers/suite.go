// Package analyzers collects the p8lint analyzer suite: the six
// machine-checked contracts the simulator's correctness and
// reproducibility arguments rest on. cmd/p8lint runs the suite from
// the command line and CI; the per-analyzer packages carry the rules
// and their golden tests.
package analyzers

import (
	"repro/internal/tools/analyzers/analysis"
	"repro/internal/tools/analyzers/determinism"
	"repro/internal/tools/analyzers/frozenmachine"
	"repro/internal/tools/analyzers/hotpath"
	"repro/internal/tools/analyzers/isolation"
	"repro/internal/tools/analyzers/nilsafe"
	"repro/internal/tools/analyzers/teamuse"
)

// All returns the full p8lint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		frozenmachine.Analyzer,
		hotpath.Analyzer,
		isolation.Analyzer,
		nilsafe.Analyzer,
		teamuse.Analyzer,
	}
}
