// Package analyzers collects the p8lint analyzer suite: the
// machine-checked contracts the simulator's correctness and
// reproducibility arguments rest on. The intraprocedural passes check
// each function against its package's rules; the deep passes
// (hotpathdeep, determdeep, frozendeep) chase the same contracts
// through the whole-program call graph; the servicecheck family guards
// the long-running service layer. cmd/p8lint runs the suite from the
// command line and CI; the per-analyzer packages carry the rules and
// their golden tests.
package analyzers

import (
	"repro/internal/tools/analyzers/analysis"
	"repro/internal/tools/analyzers/determdeep"
	"repro/internal/tools/analyzers/determinism"
	"repro/internal/tools/analyzers/frozendeep"
	"repro/internal/tools/analyzers/frozenmachine"
	"repro/internal/tools/analyzers/fsyncsafe"
	"repro/internal/tools/analyzers/hotpath"
	"repro/internal/tools/analyzers/hotpathdeep"
	"repro/internal/tools/analyzers/isolation"
	"repro/internal/tools/analyzers/nilsafe"
	"repro/internal/tools/analyzers/servicecheck"
	"repro/internal/tools/analyzers/teamuse"
)

// All returns the full p8lint suite in stable order: the
// intraprocedural passes first, then the interprocedural deep passes,
// then the service-layer family.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		frozenmachine.Analyzer,
		fsyncsafe.Analyzer,
		hotpath.Analyzer,
		isolation.Analyzer,
		nilsafe.Analyzer,
		teamuse.Analyzer,
		determdeep.Analyzer,
		frozendeep.Analyzer,
		hotpathdeep.Analyzer,
		servicecheck.HTTPStatus,
		servicecheck.MutexHeld,
		servicecheck.GoLeak,
	}
}
