// Package engine is a stand-in for the deterministic simulation
// packages; its calls into helpers are what determdeep checks.
package engine

import "helpers"

// Simulate reaches the wall clock two frames down.
func Simulate() int64 {
	return helpers.Chain() // want `nondeterminism reaches engine through this call: helpers\.Stamp reads the wall clock \(time\.Now\).*engine\.Simulate → helpers\.Chain → helpers\.Stamp`
}

// Jitter reaches math/rand one frame down.
func Jitter() int {
	return helpers.Roll() // want `helpers\.Roll uses math/rand`
}

// Arbitrary leaks map order through the helper.
func Arbitrary(m map[string]int) int {
	return helpers.Pick(m) // want `helpers\.Pick lets map iteration order escape`
}

// Clean calls only order-safe helpers; nothing fires.
func Clean(m map[string]int) int {
	_ = helpers.Sorted(m)
	return helpers.Sum(m)
}

// Waived calls a helper whose offense line carries a determinism
// allow; the leaf justification is honored.
func Waived() int64 {
	return helpers.StampWaived()
}

// SiteWaived suppresses the chain finding at the call site instead.
func SiteWaived() int64 {
	return helpers.Chain() //p8:allow determdeep: boot-time provenance stamp, taken before any event is scheduled
}
