// Package other is outside the deterministic set: its calls to
// tainted helpers are legal and must not fire.
package other

import "helpers"

// Free may use whatever it likes.
func Free() int64 { return helpers.Chain() + int64(helpers.Roll()) }
