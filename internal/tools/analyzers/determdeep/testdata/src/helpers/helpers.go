// Package helpers holds out-of-scope utilities the deterministic
// golden package calls: some tainted, some clean, one waived.
package helpers

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// Chain reaches Stamp through one more hop.
func Chain() int64 { return Stamp() }

// Roll uses math/rand.
func Roll() int { return rand.Intn(6) }

// Pick leaks map iteration order: the last element ranged wins.
func Pick(m map[string]int) int {
	out := 0
	for _, v := range m {
		out = v
	}
	return out
}

// Sum accumulates commutatively — clean.
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Sorted collects keys then sorts — the sanctioned idiom, clean.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// StampWaived reads the wall clock on a line the determinism contract
// has already waived; the deep pass honors the leaf justification.
func StampWaived() int64 {
	return time.Now().UnixNano() //p8:allow determinism: I/O timing provenance, never part of a report body
}
