package determdeep_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/determdeep"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", determdeep.Analyzer, "engine", "helpers", "other")
}
