// Package determdeep extends the determinism contract across the call
// graph: wall-clock, math/rand and map-iteration-order taint is
// propagated interprocedurally, so a deterministic package that calls
// an innocent-looking helper which reads time.Now three frames down is
// flagged at the call — the intraprocedural determinism pass only sees
// uses written directly inside the deterministic packages.
//
// Model:
//
//   - Scope: calls made from the simulation packages (machine, engine,
//     experiments, fault, canon, memo — the same set the determinism
//     pass guards) into module functions outside both that set and
//     obs.
//   - A helper is tainted when its static call closure — traversed
//     through module functions outside the deterministic packages and
//     obs, with interface dispatch expanded conservatively — reaches a
//     wall-clock read (time.Now, time.Since, ...), any use of
//     math/rand, or a map range whose body leaks iteration order
//     (classified by the same rules as the intraprocedural pass).
//   - The diagnostic anchors at the call site inside the deterministic
//     package and prints the chain down to the offense.
//
// Boundaries and conservatism: callees inside the deterministic
// packages are not traversed (their own bodies are already checked
// intraprocedurally, so the taint would be reported at its source);
// callees in obs are not traversed either — obs carries its own
// ordered-output contract, and its wall-clock surface (Timers) is
// harness provenance by design, never simulated state. Calls through
// function values are not traversed (statically unbounded); the
// intraprocedural pass still covers the bodies of whatever they
// invoke, wherever those are declared. A leaf already waived with
// `//p8:allow determinism` (or `//p8:allow determdeep`) is honored
// here, so one justified deviation is not reported twice.
//
// Deviations are suppressed per call site with
// `//p8:allow determdeep: <why>`.
package determdeep

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/analyzers/analysis"
	"repro/internal/tools/analyzers/determinism"
)

// simPackages are the deterministic packages whose outgoing calls are
// checked — the same set the intraprocedural determinism pass guards.
var simPackages = map[string]bool{
	"machine": true, "engine": true, "experiments": true, "fault": true,
	"canon": true, "memo": true,
}

// boundaryPackages are not traversed during taint propagation:
// simPackages (checked intraprocedurally at the source) plus obs (its
// own ordered-output contract; Timers are harness provenance).
var boundaryPackages = map[string]bool{
	"machine": true, "engine": true, "experiments": true, "fault": true,
	"canon": true, "memo": true, "obs": true,
}

// wallClock is the banned wall-clock surface of package time.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Analyzer is the determdeep pass.
var Analyzer = &analysis.Analyzer{
	Name:       "determdeep",
	Doc:        "wall-clock, math/rand and map-order taint must not reach the deterministic packages through helper calls; diagnostics carry the call chain",
	RunProgram: run,
}

// A taint describes why a helper is nondeterministic: the offense, its
// position, and the chain of module functions from the helper down to
// it.
type taint struct {
	desc  string
	pos   token.Pos
	chain []*analysis.FuncNode
}

// checker memoizes taint per node while walking the graph.
type checker struct {
	pass *analysis.ProgramPass
	g    *analysis.CallGraph
	memo map[*analysis.FuncNode]*taint
	done map[*analysis.FuncNode]bool
}

func run(pass *analysis.ProgramPass) error {
	c := &checker{
		pass: pass,
		g:    pass.Prog.Graph(),
		memo: map[*analysis.FuncNode]*taint{},
		done: map[*analysis.FuncNode]bool{},
	}
	for _, node := range c.g.Sorted {
		if !simPackages[node.Pkg.Types.Name()] {
			continue
		}
		for _, site := range node.Calls {
			c.checkSite(node, site)
		}
	}
	return nil
}

// checkSite flags a call from a deterministic package to a tainted
// out-of-scope helper.
func (c *checker) checkSite(from *analysis.FuncNode, site *analysis.CallSite) {
	for _, callee := range site.Callees {
		if boundaryPackages[callee.Pkg.Types.Name()] {
			continue // checked intraprocedurally at the source
		}
		t := c.taintOf(callee)
		if t == nil {
			continue
		}
		p := c.pass.Prog.Fset.Position(t.pos)
		c.pass.Reportf(site.Pos(),
			"nondeterminism reaches %s through this call: %s %s at %s:%d (call chain %s)",
			from.Pkg.Types.Name(), t.chain[len(t.chain)-1].String(), t.desc, p.Filename, p.Line,
			renderChain(from, t.chain))
		return // one finding per call site
	}
}

// taintOf computes (and memoizes) whether a helper's closure reaches a
// nondeterminism source. Cycles resolve to clean unless a source is
// found elsewhere on the walk.
func (c *checker) taintOf(node *analysis.FuncNode) *taint {
	if c.done[node] {
		return c.memo[node]
	}
	c.done[node] = true // pre-mark: cycles read clean while in progress

	if t := c.direct(node); t != nil {
		c.memo[node] = t
		return t
	}
	for _, site := range node.Calls {
		for _, callee := range site.Callees {
			if boundaryPackages[callee.Pkg.Types.Name()] {
				continue
			}
			if sub := c.taintOf(callee); sub != nil {
				t := &taint{desc: sub.desc, pos: sub.pos,
					chain: append([]*analysis.FuncNode{node}, sub.chain...)}
				c.memo[node] = t
				return t
			}
		}
	}
	return nil
}

// direct finds a nondeterminism source written in the node's own body:
// a banned extern call, any math/rand reference, or an order-leaking
// map range. Leaves waived with //p8:allow determinism or determdeep
// are skipped.
func (c *checker) direct(node *analysis.FuncNode) *taint {
	var found *taint
	record := func(pos token.Pos, desc string) {
		if found != nil || c.allowedLeaf(pos) {
			return
		}
		found = &taint{desc: desc, pos: pos, chain: []*analysis.FuncNode{node}}
	}
	for _, site := range node.Calls {
		if site.ExternName == "" {
			continue
		}
		switch site.ExternPath {
		case "time":
			if wallClock[site.ExternName] {
				record(site.Pos(), "reads the wall clock (time."+site.ExternName+")")
			}
		case "math/rand", "math/rand/v2":
			record(site.Pos(), "uses math/rand."+site.ExternName)
		}
	}
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// Non-call uses of math/rand (rand.Source values, method
			// receivers) taint too, as in the intraprocedural pass.
			if obj := info.Uses[n]; obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					record(n.Pos(), "uses math/rand")
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					for _, leak := range determinism.RangeLeaks(info, node.File, n) {
						record(leak.Pos, "lets map iteration order escape ("+leak.Msg+")")
					}
				}
			}
		}
		return true
	})
	return found
}

// allowedLeaf reports whether the determinism contract has been waived
// on the offending line.
func (c *checker) allowedLeaf(pos token.Pos) bool {
	return c.pass.Prog.Allowed("determinism", pos) || c.pass.Prog.Allowed("determdeep", pos)
}

// renderChain renders from → helper → ... → offender.
func renderChain(from *analysis.FuncNode, chain []*analysis.FuncNode) string {
	names := make([]string, 0, len(chain)+1)
	names = append(names, from.String())
	for _, n := range chain {
		names = append(names, n.String())
	}
	return strings.Join(names, " → ")
}
