// Package other is a golden non-harness package: neither the directive
// nor recover() is allowed here.
package other

// wrapped tries to declare its own recovery point outside the harness.
//
//p8:isolation
func wrapped(run func()) { // want `//p8:isolation outside the harness package power8`
	defer func() {
		recover() // want `recover\(\) outside a //p8:isolation harness wrapper`
	}()
	run()
}

// bare recovers with no annotation at all.
func bare(run func()) {
	defer func() {
		recover() // want `recover\(\) outside a //p8:isolation harness wrapper`
	}()
	run()
}
