// Package power8 is a golden stand-in for the harness package.
package power8

// Report stands in for the experiment report.
type Report struct{ Err string }

// safeRun is the sanctioned recovery point.
//
//p8:isolation
func safeRun(run func() *Report) (rep *Report) {
	defer func() {
		if cause := recover(); cause != nil { // ok: inside the wrapper
			rep = &Report{Err: "panic"}
		}
	}()
	return run()
}

// sneaky swallows panics outside the wrapper.
func sneaky(run func()) {
	defer func() {
		recover() // want `recover\(\) outside a //p8:isolation harness wrapper`
	}()
	run()
}

// tolerated shows the suppression protocol.
func tolerated(run func()) {
	defer func() {
		recover() //p8:allow isolation: golden test pins suppression behaviour
	}()
	run()
}
