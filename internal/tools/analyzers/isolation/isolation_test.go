package isolation_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/isolation"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", isolation.Analyzer, "power8", "other")
}
