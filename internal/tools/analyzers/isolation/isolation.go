// Package isolation enforces the harness's panic-isolation contract:
// the repository's experiments and model code fail loudly (panic on
// contract violations), and exactly one layer — the hardened harness
// wrapper in package power8, annotated //p8:isolation — is allowed to
// recover and convert a panic into a failed report. Anywhere else a
// recover() would silently swallow a bug that the harness is designed
// to surface as a FAILED report with a stack.
//
// Two rules:
//
//  1. recover() may be called only inside a function whose doc comment
//     carries the //p8:isolation directive (deferred closures inside
//     such a function count as inside it).
//  2. The //p8:isolation directive itself is only valid in package
//     power8, the harness; annotating functions elsewhere would spread
//     recovery points back into the layers the contract keeps honest.
//
// Test files are outside the lint surface (the loader parses non-test
// sources only), so tests remain free to recover around intentionally
// panicking calls.
//
// Deviations are suppressed per line with
// `//p8:allow isolation: <why>`.
package isolation

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/tools/analyzers/analysis"
)

// Directive marks the functions allowed to recover.
const Directive = "//p8:isolation"

// harnessPackage is the only package that may carry the directive.
const harnessPackage = "power8"

// Analyzer is the isolation pass.
var Analyzer = &analysis.Analyzer{
	Name: "isolation",
	Doc:  "recover() is allowed only inside //p8:isolation-annotated harness wrappers, and the directive only in package power8",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Collect the source ranges of annotated functions first; any
		// recover() outside all of them is a finding.
		var wrappers []*ast.FuncDecl
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !annotated(fd) {
				continue
			}
			if pass.Pkg.Name() != harnessPackage {
				pass.Reportf(fd.Pos(), "//p8:isolation outside the harness package %s; recovery points belong to the harness wrapper only", harnessPackage)
				continue
			}
			wrappers = append(wrappers, fd)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "recover" {
				return true
			}
			for _, fd := range wrappers {
				if call.Pos() >= fd.Pos() && call.Pos() < fd.End() {
					return true
				}
			}
			pass.Reportf(call.Pos(), "recover() outside a //p8:isolation harness wrapper swallows panics the harness turns into failed reports; let it propagate")
			return true
		})
	}
	return nil
}

// annotated reports whether the function's doc comment carries the
// directive on a line of its own.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}
