// Package deep exercises the interprocedural hot-path closure rules:
// offenses in transitive callees, chain diagnostics, leaf-allow
// respect, dynamic call sites and conservative interface dispatch.
package deep

import (
	"fmt"
	"time"
)

// helperClean is fine everywhere.
func helperClean(x int) int { return x * 2 }

// helperFmt allocates through fmt.
func helperFmt(x int) string { return fmt.Sprintf("%d", x) }

// helperMid hops once more, so the chain has three links.
func helperMid(x int) string { return helperFmt(x) }

// helperClockAllowed reads the wall clock, but the line carries a
// hotpath allow, which the deep pass honors at the leaf.
func helperClockAllowed() int64 {
	return time.Now().UnixNano() //p8:allow hotpath: stamped once per dispatch, off the per-item path
}

// helperMap ranges over a map.
func helperMap(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// helperCapture builds a closure over its local.
func helperCapture() func() int {
	n := 0
	return func() int { n++; return n }
}

//p8:hotpath
func hotChain(x int) string {
	_ = helperClean(x)
	return helperMid(x) // want `hot call chain deep\.hotChain → deep\.helperMid → deep\.helperFmt: deep\.helperFmt calls fmt\.Sprintf`
}

//p8:hotpath
func hotAllowedLeaf() int64 {
	return helperClockAllowed() // clean: the leaf line is waived with //p8:allow hotpath
}

//p8:hotpath
func hotMap(m map[int]int) int {
	return helperMap(m) // want `deep\.helperMap ranges over a map`
}

//p8:hotpath
func hotCapture() {
	_ = helperCapture() // want `deep\.helperCapture builds a closure capturing "n"`
}

//p8:hotpath
func hotDynamic(f func() int) int {
	return f() // want `calls through a function value`
}

//p8:hotpath
func hotWaived(x int) string {
	return helperMid(x) //p8:allow hotpathdeep: formatting here is once per run, measured harmless
}

// Sink dispatches Emit through an interface; the closure must cover
// every satisfying method in the load set.
type Sink interface{ Emit(int) }

// loudSink allocates on Emit.
type loudSink struct{}

// Emit prints, which a hot closure may not.
func (loudSink) Emit(x int) { fmt.Println(x) }

// quietSink accumulates without allocating.
type quietSink struct{ total int }

// Emit adds.
func (q *quietSink) Emit(x int) { q.total += x }

//p8:hotpath
func hotIface(s Sink, x int) {
	s.Emit(x) // want `deep\.loudSink\.Emit calls fmt\.Println`
}

// notHot calls the same helpers with no directive; nothing fires.
func notHot(x int, m map[int]int) string {
	_ = helperMap(m)
	return helperMid(x)
}
