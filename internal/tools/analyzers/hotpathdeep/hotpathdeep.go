// Package hotpathdeep extends the hotpath discipline across the call
// graph: the full static call closure of every function annotated
// //p8:hotpath must satisfy the same rules the intraprocedural hotpath
// pass enforces on the annotated body itself. A hot function that
// calls a helper which allocates through fmt, reads a wall clock,
// takes a lock, ranges over a map or builds a capturing closure passes
// the per-function pass clean today — this pass walks the helper
// chain and reports the offense together with the call chain that
// reaches it.
//
// Rules, per function in the closure of an annotated root:
//
//   - calls into fmt, sync (locks block and their slow path
//     allocates), math/rand, and the wall-clock surface of time are
//     banned. sync/atomic — which the intraprocedural pass bans inside
//     annotated bodies — is allowed in callees: the "accumulate in
//     plain fields, flush at the end" idiom that rule enforces flushes
//     into atomic obs counters and the cross-shard event Budget, and
//     those helpers are atomic by design;
//   - ranging over a map and closures that capture enclosing
//     variables are banned;
//   - a call through a function value anywhere in the closure
//     (including the annotated root) is reported at the call site:
//     the callee is statically unbounded, so the closure guarantee
//     cannot be proven past it — keep hot dispatch direct or justify
//     the site.
//
// Interface dispatch is expanded conservatively to every satisfying
// method in the load set (see the analysis package's call-graph
// rules), so a violation behind an interface still surfaces.
//
// Offenses inside the annotated body itself are left to the
// intraprocedural hotpath pass; this pass reports only what that one
// cannot see. A leaf already waived with `//p8:allow hotpath` (or
// `//p8:allow hotpathdeep`) on the offending line is honored here too
// — a justified deviation must not resurface as a chain finding.
// Chain findings anchor at the call site inside the annotated
// function, so a deliberate exception is suppressed where the hot
// code commits to it: `//p8:allow hotpathdeep: <why>`.
package hotpathdeep

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/analyzers/analysis"
	"repro/internal/tools/analyzers/hotpath"
)

// Analyzer is the hotpathdeep pass.
var Analyzer = &analysis.Analyzer{
	Name:       "hotpathdeep",
	Doc:        "the full static call closure of every //p8:hotpath function must obey the hot-path rules; diagnostics carry the offending call chain",
	RunProgram: run,
}

// wallClock is the banned wall-clock surface of package time.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedExtern classifies a call leaf outside the load set; it returns
// a short description of the offense, or "".
func bannedExtern(path, name string) string {
	switch path {
	case "fmt":
		return "calls fmt." + name + " (allocates)"
	case "time":
		if wallClock[name] {
			return "reads the wall clock (time." + name + ")"
		}
	case "sync":
		return "uses sync." + name + " (blocking; the slow path allocates)"
	// sync/atomic is deliberately NOT banned in callees: the
	// intraprocedural hotpath pass already keeps atomics out of
	// annotated bodies ("accumulate in plain fields, flush at the
	// end"), and the flush targets those bodies call — obs counters,
	// the cross-shard event Budget — are atomic by design and by
	// benchmark. Banning the leaf would outlaw the sanctioned idiom.
	case "math/rand", "math/rand/v2":
		return "uses math/rand." + name
	}
	return ""
}

// A step is one BFS discovery: the node plus the edge that found it.
type step struct {
	node   *analysis.FuncNode
	parent *step
	site   *analysis.CallSite // edge from parent.node into node
}

// chain renders root → ... → leaf for diagnostics.
func (s *step) chain() string {
	var names []string
	for at := s; at != nil; at = at.parent {
		names = append(names, at.node.String())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// anchor returns the depth-1 call site: the call inside the annotated
// root that starts this chain. For the root itself it returns nil.
func (s *step) anchor() *analysis.CallSite {
	var last *step
	for at := s; at.parent != nil; at = at.parent {
		last = at
	}
	if last == nil {
		return nil
	}
	return last.site
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Prog.Graph()
	dynReported := map[token.Pos]bool{}
	for _, root := range g.Sorted {
		if !annotated(root.Decl) {
			continue
		}
		check(pass, g, root, dynReported)
	}
	return nil
}

// annotated reports whether the declaration's doc comment carries the
// //p8:hotpath directive on a line of its own.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpath.Directive || strings.HasPrefix(c.Text, hotpath.Directive+" ") {
			return true
		}
	}
	return false
}

// check walks the closure of one annotated root breadth-first and
// reports offenses with their chains.
func check(pass *analysis.ProgramPass, g *analysis.CallGraph, root *analysis.FuncNode, dynReported map[token.Pos]bool) {
	visited := map[*analysis.FuncNode]bool{root: true}
	queue := []*step{{node: root}}
	// One finding per (anchor site, offending function): the first
	// offense is representative; a fixed helper clears its siblings.
	reported := map[[2]token.Pos]bool{}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		if at.parent != nil { // the root's own body belongs to hotpath
			reportOffenses(pass, at, reported)
		}
		for _, site := range at.node.Calls {
			if site.Dynamic {
				if !dynReported[site.Pos()] && !allowedLeaf(pass.Prog, site.Pos()) {
					dynReported[site.Pos()] = true
					pass.Reportf(site.Pos(),
						"hot closure of %s calls through a function value; the callee is statically unbounded, so the hot-path guarantee stops here — dispatch directly or justify the site",
						root.String())
				}
				continue
			}
			for _, callee := range site.Callees {
				if visited[callee] {
					continue
				}
				visited[callee] = true
				queue = append(queue, &step{node: callee, parent: at, site: site})
			}
		}
	}
}

// allowedLeaf reports whether either the hotpath or the hotpathdeep
// analyzer has been waived on the offending line.
func allowedLeaf(prog *analysis.Program, pos token.Pos) bool {
	return prog.Allowed("hotpath", pos) || prog.Allowed("hotpathdeep", pos)
}

// reportOffenses scans one closure member for hot-path violations and
// reports each at the chain's anchor call inside the annotated root.
func reportOffenses(pass *analysis.ProgramPass, at *step, reported map[[2]token.Pos]bool) {
	anchor := at.anchor()
	report := func(pos token.Pos, what string) {
		if allowedLeaf(pass.Prog, pos) {
			return
		}
		key := [2]token.Pos{anchor.Pos(), at.node.Decl.Pos()}
		if reported[key] {
			return
		}
		reported[key] = true
		p := pass.Prog.Fset.Position(pos)
		pass.Reportf(anchor.Pos(), "hot call chain %s: %s %s at %s:%d",
			at.chain(), at.node.String(), what, p.Filename, p.Line)
	}

	for _, site := range at.node.Calls {
		if site.ExternName == "" {
			continue
		}
		if what := bannedExtern(site.ExternPath, site.ExternName); what != "" {
			report(site.Pos(), what)
		}
	}
	node := at.node
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					report(n.Pos(), "ranges over a map (iteration order is randomized)")
				}
			}
		case *ast.FuncLit:
			if name, ok := captures(info, node.Decl, n); ok {
				report(n.Pos(), "builds a closure capturing \""+name+"\" (may escape to the heap)")
			}
		}
		return true
	})
}

// captures reports whether the closure references a variable declared
// in the enclosing function but outside the closure itself (the same
// rule as the intraprocedural hotpath pass).
func captures(info *types.Info, fd *ast.FuncDecl, fl *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= fd.Pos() && pos < fd.End() && !(pos >= fl.Pos() && pos < fl.End()) {
			name = id.Name
		}
		return true
	})
	return name, name != ""
}
