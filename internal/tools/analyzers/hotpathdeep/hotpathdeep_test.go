package hotpathdeep_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/hotpathdeep"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathdeep.Analyzer, "deep")
}
