// Package parallel is a golden stand-in for repro/internal/parallel:
// the analyzer keys on the package name and the Team type.
package parallel

// Team is a persistent worker team.
type Team struct{ workers int }

// NewTeam builds a team with the given worker count.
func NewTeam(workers int) *Team { return &Team{workers: workers} }

// Workers reports the worker count.
func (t *Team) Workers() int { return t.workers }

// Close shuts the team down.
func (t *Team) Close() {}

// ParallelFor runs body over [0, n) with dynamic chunking.
func (t *Team) ParallelFor(n, grain int, body func(lo, hi int)) { body(0, n) }

// ParallelForWorker is ParallelFor with the worker id exposed.
func (t *Team) ParallelForWorker(n, grain int, body func(w, lo, hi int)) { body(0, 0, n) }

// StaticFor runs body over a static partition of [0, n).
func (t *Team) StaticFor(n int, body func(w, lo, hi int)) { body(0, 0, n) }

// StaticRanges runs body over explicit partition bounds.
func (t *Team) StaticRanges(bounds []int, body func(p, lo, hi int)) {}

// For runs body on a transient team.
func For(workers, n, grain int, body func(lo, hi int)) { body(0, n) }

// ForWorker is For with the worker id exposed.
func ForWorker(workers, n, grain int, body func(w, lo, hi int)) { body(0, 0, n) }

// StaticFor runs body over a static partition on a transient team.
func StaticFor(workers, n int, body func(w, lo, hi int)) { body(0, 0, n) }

// StaticRanges runs body over explicit bounds on a transient team.
func StaticRanges(workers int, bounds []int, body func(p, lo, hi int)) {}
