// Package use exercises the Team-misuse checks.
package use

import "parallel"

// Nested dispatch deadlocks: the outer loop holds the team until its
// body returns.
func Nested(t *parallel.Team, n int) {
	t.ParallelFor(n, 0, func(lo, hi int) {
		parallel.For(2, hi-lo, 0, func(a, b int) { _ = a + b }) // want `nested parallel-for`
	})
	parallel.StaticFor(2, n, func(w, lo, hi int) {
		t.StaticFor(hi-lo, func(w2, a, b int) {}) // want `nested parallel-for`
	})
}

// Sequential dispatches on one team are the intended reuse pattern.
func Sequential(t *parallel.Team, n int) {
	t.ParallelFor(n, 0, func(lo, hi int) {})
	t.StaticFor(n, func(w, lo, hi int) {})
}

// CrossGoroutine races two dispatches on one team.
func CrossGoroutine(t *parallel.Team, n int) {
	done := make(chan struct{})
	go func() {
		t.ParallelFor(n, 0, func(lo, hi int) {})
		close(done)
	}()
	t.ParallelFor(n, 0, func(lo, hi int) {}) // want `dispatched from more than one goroutine`
	<-done
}

// Leak builds a team and forgets to close it.
func Leak(n int) {
	t := parallel.NewTeam(4) // want `never Closed`
	t.ParallelFor(n, 0, func(lo, hi int) {})
}

// Closed is the intended lifecycle.
func Closed(n int) {
	t := parallel.NewTeam(4)
	defer t.Close()
	t.ParallelFor(n, 0, func(lo, hi int) {})
}

// Escapes hands the team to the caller, which owns closing it.
func Escapes() *parallel.Team {
	t := parallel.NewTeam(2)
	return t
}

type holder struct{ t *parallel.Team }

// EscapesField stores the team; the holder owns closing it.
func EscapesField(h *holder) {
	t := parallel.NewTeam(2)
	h.t = t
}
