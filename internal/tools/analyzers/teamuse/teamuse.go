// Package teamuse flags misuse of the parallel kernel runtime that the
// Team's own runtime checks can only catch when the bad schedule
// actually interleaves — or cannot catch at all:
//
//   - nested dispatch: calling any parallel-for (a Team method or a
//     package-level helper) from inside the body closure of another
//     parallel-for. The outer loop holds the team until its body
//     returns, so the inner call deadlocks.
//   - cross-goroutine dispatch: dispatching on the same Team variable
//     from more than one goroutine in a function. A Team runs one loop
//     at a time; the racing call panics only when the timing is
//     unlucky, so the static check catches it before the flake does.
//   - leaked teams: a Team created with NewTeam in a function that
//     neither closes it nor hands it off leaks its worker goroutines.
//
// Deviations are suppressed per line with `//p8:allow teamuse: <why>`.
package teamuse

import (
	"go/ast"
	"go/types"

	"repro/internal/tools/analyzers/analysis"
)

// dispatchMethods are the Team methods that run a loop.
var dispatchMethods = map[string]bool{
	"ParallelFor": true, "ParallelForWorker": true,
	"StaticFor": true, "StaticRanges": true,
}

// dispatchFuncs are the package-level helpers that run a loop on a
// shared team.
var dispatchFuncs = map[string]bool{
	"For": true, "ForWorker": true,
	"StaticFor": true, "StaticRanges": true,
}

// Analyzer is the teamuse pass.
var Analyzer = &analysis.Analyzer{
	Name: "teamuse",
	Doc:  "parallel.Team misuse: nested dispatch (deadlock), dispatch from several goroutines, teams never closed",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkNested(pass, fd)
			checkCrossGoroutine(pass, fd)
			checkLeaks(pass, fd)
		}
	}
	return nil
}

// isDispatch reports whether the call runs a parallel-for, either as a
// Team method or as a package-level helper of the parallel package.
func isDispatch(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn := pass.PkgNameOf(id); pn != nil {
			return pn.Imported().Name() == "parallel" && dispatchFuncs[sel.Sel.Name]
		}
	}
	return dispatchMethods[sel.Sel.Name] && analysis.IsNamed(pass.TypeOf(sel.X), "parallel", "Team")
}

// dispatchReceiver returns the variable a Team-method dispatch runs
// on, or nil for package-level dispatches and complex receivers.
func dispatchReceiver(pass *analysis.Pass, call *ast.CallExpr) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !dispatchMethods[sel.Sel.Name] {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !analysis.IsNamed(pass.TypeOf(sel.X), "parallel", "Team") {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(id).(*types.Var)
	return v
}

// checkNested reports dispatch calls inside the body closure of
// another dispatch call.
func checkNested(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok || !isDispatch(pass, outer) || len(outer.Args) == 0 {
			return true
		}
		body, ok := outer.Args[len(outer.Args)-1].(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(body.Body, func(m ast.Node) bool {
			inner, ok := m.(*ast.CallExpr)
			if ok && isDispatch(pass, inner) {
				pass.Reportf(inner.Pos(), "nested parallel-for: the enclosing loop holds its team until the body returns, so this call deadlocks; restructure into sequential loops")
			}
			return true
		})
		return true
	})
}

// checkCrossGoroutine reports a Team variable dispatched from more
// than one goroutine context (the function body counts as one context;
// every go statement opens another).
func checkCrossGoroutine(pass *analysis.Pass, fd *ast.FuncDecl) {
	type site struct {
		ctx ast.Node // nil = the function's own goroutine
		pos ast.Node
	}
	sites := map[*types.Var][]site{}
	var walk func(n ast.Node, ctx ast.Node)
	walk = func(n ast.Node, ctx ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				walk(m.Call, m)
				return false
			case *ast.CallExpr:
				if v := dispatchReceiver(pass, m); v != nil {
					sites[v] = append(sites[v], site{ctx: ctx, pos: m})
				}
			}
			return true
		})
	}
	walk(fd.Body, nil)
	for v, ss := range sites {
		for _, s := range ss {
			if s.ctx != ss[0].ctx {
				pass.Reportf(s.pos.Pos(), "Team %q is dispatched from more than one goroutine in this function; a Team runs one loop at a time — serialize the calls or use the package-level parallel.For helpers", v.Name())
			}
		}
	}
}

// checkLeaks reports NewTeam results that are neither closed nor
// handed off.
func checkLeaks(pass *analysis.Pass, fd *ast.FuncDecl) {
	parents := parentMap(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isNewTeam(pass, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		v, _ := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if v == nil {
			return true
		}
		closed, escapes := teamFate(pass, fd, parents, v, id)
		if !closed && !escapes {
			pass.Reportf(call.Pos(), "Team %q is never Closed in this function and does not escape; its worker goroutines leak (add defer %s.Close())", v.Name(), v.Name())
		}
		return true
	})
}

// isNewTeam matches calls to parallel.NewTeam (qualified or, inside
// the parallel package itself, unqualified).
func isNewTeam(pass *analysis.Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == "NewTeam" && fn.Pkg() != nil && fn.Pkg().Name() == "parallel"
}

// teamFate scans the function for what happens to the team variable:
// a Close call (direct or deferred), or any use that hands the value
// beyond this function (argument, return, field, composite literal,
// channel, other assignment).
func teamFate(pass *analysis.Pass, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, v *types.Var, def *ast.Ident) (closed, escapes bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || pass.TypesInfo.ObjectOf(id) != v {
			return true
		}
		parent := parents[id]
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
			if sel.Sel.Name == "Close" {
				closed = true
			}
			// Method calls and field reads on the team keep it local.
			return true
		}
		escapes = true
		return true
	})
	return closed, escapes
}

// parentMap records each node's parent within the function.
func parentMap(fd *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
