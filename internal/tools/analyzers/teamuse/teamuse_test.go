package teamuse_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/teamuse"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", teamuse.Analyzer, "parallel", "use")
}
