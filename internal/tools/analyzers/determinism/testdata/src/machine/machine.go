// Package machine is a golden stand-in for repro/internal/machine:
// the analyzer applies both rule groups to packages with this name.
package machine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// wallClock exercises rule 1: no wall clocks, no math/rand.
func wallClock() float64 {
	t0 := time.Now()                // want `time\.Now in a deterministic package`
	_ = rand.Intn(4)                // want `math/rand in a deterministic package`
	return time.Since(t0).Seconds() // want `time\.Since in a deterministic package`
}

// typeUse shows that non-call references to package time are fine.
func typeUse() time.Duration {
	var d time.Duration = 5
	return d
}

// cleanRanges holds the sanctioned map-range shapes.
func cleanRanges(m map[string]int) ([]string, int) {
	// Collect keys, then sort: the obs.sortedKeys idiom.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Commutative accumulation, keyed map writes, loop-local state.
	sum := 0
	inv := map[int]string{}
	cnt := 0
	for k, v := range m {
		sum += v
		inv[v] = k
		cnt++
		double := v * 2
		_ = double
		if v == 0 {
			delete(inv, v)
			continue
		}
	}
	return keys, sum + cnt
}

// dirtyRanges holds the order-leaking shapes.
func dirtyRanges(m map[string]int) []string {
	// Last-writer-wins pick of an arbitrary element.
	best := ""
	for k := range m {
		if k > best {
			best = k // want `map iteration order can reach "best"`
		}
	}

	// Emitting inside the loop prints in randomized order.
	for k := range m {
		fmt.Println(k) // want `a call inside a map range runs in randomized order`
	}

	// Collected but never sorted: the slice keeps iteration order.
	var order []string
	for k := range m {
		order = append(order, k) // want `map iteration order can reach "order"`
	}

	// Positional slice writes capture iteration order too.
	out := make([]string, len(m))
	i := 0
	for k := range m {
		out[i] = k // want `writing a slice slot from a map range captures iteration order`
		i++
	}

	// Returning mid-loop selects an arbitrary element.
	for k := range m {
		if k != "" {
			return []string{k} // want `returning from inside a map range selects an arbitrary element`
		}
	}
	return append(order, out...)
}

// allowed shows per-line suppression with a justification.
func allowed(m map[string]struct{}) string {
	last := ""
	for k := range m {
		//p8:allow determinism: golden test — all keys are equal by construction
		last = k
	}
	return last
}
