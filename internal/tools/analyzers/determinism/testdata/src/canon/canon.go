// Package canon is a golden stand-in for repro/internal/canon: a
// canonical encoding must be a pure function of its input, so wall
// clocks, math/rand and map iteration order are all banned from the
// fingerprint path.
package canon

import (
	"math/rand"
	"sort"
	"time"
)

// Hasher stands in for the canonical hasher.
type Hasher struct{ sum uint64 }

// U64 folds a value.
func (h *Hasher) U64(v uint64) { h.sum = h.sum*31 + v }

func stamped(h *Hasher) {
	h.U64(uint64(time.Now().UnixNano())) // want `time\.Now in a deterministic package`
}

func salted(h *Hasher) {
	h.U64(rand.Uint64()) // want `math/rand in a deterministic package`
}

// hashMap feeds map entries into the hash in iteration order — the
// exact bug the canonical-encoding rule exists to stop: equal maps
// would fingerprint apart run to run.
func hashMap(h *Hasher, m map[string]uint64) {
	for _, v := range m {
		h.U64(v) // want `a call inside a map range runs in randomized order`
	}
}

// hashSorted collects keys then sorts — the sanctioned idiom.
func hashSorted(h *Hasher, m map[string]uint64) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.U64(m[k])
	}
}
