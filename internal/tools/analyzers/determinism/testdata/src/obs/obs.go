// Package obs gets rule 2 only: exporters may read wall clocks, but
// map iteration order must still not reach output.
package obs

import "time"

// Stamp may read the wall clock: obs is not a simulation package.
func Stamp() int64 { return time.Now().UnixNano() }

// Render leaks iteration order and is flagged.
func Render(m map[string]int) string {
	out := ""
	for k := range m {
		out = k // want `map iteration order can reach "out"`
	}
	return out
}
