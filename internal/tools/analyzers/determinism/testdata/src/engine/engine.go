// Package engine is a golden stand-in for repro/internal/engine: the
// analyzer's select rule guards the shard-merge idiom here. Cross-shard
// event streams must merge through the canonical (time, shard, seq)
// sorted order; draining them through a multi-way select would let the
// runtime's randomized case choice reach simulated results.
package engine

import "sort"

type mail struct {
	at  uint64
	seq uint64
}

// sortedMerge is the sanctioned idiom: collect every shard's outbox,
// then order by the canonical (time, seq) key. No select involved.
func sortedMerge(boxes [][]mail) []mail {
	var all []mail
	for _, box := range boxes {
		all = append(all, box...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].seq < all[j].seq
	})
	return all
}

// selectMerge is the banned shape: with both channels ready the runtime
// picks a case uniformly at random, so arrival order — and therefore
// the simulation's event order — depends on goroutine scheduling.
func selectMerge(a, b chan mail) mail {
	select { // want `a select over 2 channels resolves ready cases in randomized order`
	case m := <-a:
		return m
	case m := <-b:
		return m
	}
}

// nonBlocking shows that a single-case select (the try-receive idiom)
// is just a non-blocking operation and stays legal.
func nonBlocking(c chan mail) (mail, bool) {
	select {
	case m := <-c:
		return m, true
	default:
		return mail{}, false
	}
}

// allowedSelect pins the suppression protocol for the select rule.
func allowedSelect(a, b chan struct{}) {
	//p8:allow determinism: golden test — both cases are equivalent signals
	select {
	case <-a:
	case <-b:
	}
}
