// Package other is outside the determinism scope: neither rule fires.
package other

import (
	"math/rand"
	"time"
)

// Wall clocks, math/rand and order-dependent map ranges are all fine
// in harness-side packages.
func Free(m map[string]int) string {
	_ = time.Now()
	_ = rand.Intn(4)
	last := ""
	for k := range m {
		last = k
	}
	return last
}
