// Package fault is a golden stand-in for repro/internal/fault: fault
// plans must be reproducible from their seed alone, so the simulation
// rules apply.
package fault

import (
	"math/rand"
	"time"
)

// Plan stands in for a fault plan.
type Plan struct {
	Seed   uint64
	Events []int
}

func stamped() int64 {
	return time.Now().UnixNano() // want `time\.Now in a deterministic package`
}

func jittered(p *Plan) {
	p.Events = append(p.Events, rand.Intn(4)) // want `math/rand in a deterministic package`
}

func seeded(p *Plan) int {
	// Deriving everything from the stored seed is the sanctioned path.
	return int(p.Seed % 4)
}
