// Package memo is a golden stand-in for repro/internal/memo: cache
// policy must not depend on wall clocks (TTLs would make warm runs
// nondeterministic) or map iteration order (eviction choice would vary
// run to run). The real package's disk-timing instrumentation carries
// explicit //p8:allow suppressions, mirrored here.
package memo

import "time"

// Cache stands in for the LRU.
type Cache struct {
	entries map[string]int
	stamp   int64
}

func expired(c *Cache) bool {
	return time.Since(time.Unix(0, c.stamp)) > time.Minute // want `time\.Since in a deterministic package`
}

// evictArbitrary picks a victim by map order — flagged: the resident
// set after eviction would differ run to run.
func evictArbitrary(c *Cache) string {
	for k := range c.entries {
		return k // want `returning from inside a map range selects an arbitrary element`
	}
	return ""
}

// instrumented mirrors the real disk store's timing lines: wall time
// is harness instrumentation there, never cached state, and each use
// carries a justified allow.
func instrumented(c *Cache) {
	start := time.Now() //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	_ = start
}

// evictByKey deletes through a key — order-independent, clean.
func evictByKey(c *Cache, k string) {
	delete(c.entries, k)
}
