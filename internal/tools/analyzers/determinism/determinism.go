// Package determinism enforces the bit-reproducibility contract of the
// simulation core. The paper's figures are regenerated from scratch on
// every run, and EXPERIMENTS.md is committed generated output, so two
// runs of the same binary must render byte-identical reports.
//
// Three rule groups, keyed by package name:
//
//  1. In the simulation packages (machine, engine, experiments, fault,
//     canon, memo): no wall-clock reads (time.Now, time.Since, ...) and
//     no math/rand — simulated time and the seeded repro/internal/rng
//     only. Package fault is in the set because a fault plan must be
//     reproducible from its seed alone: the same plan string or seed
//     has to derive bit-identical degraded machines on every run.
//     Packages canon and memo are in the set because they carry the
//     result-cache contract: a fingerprint or cached result that
//     embedded a timestamp or random value would never hit again (the
//     disk store's I/O timing instrumentation carries explicit allows).
//
//  2. In the simulation packages plus obs (whose exporters render the
//     reports): ranging over a map must not let Go's randomized
//     iteration order reach output. For canon this is the map-free
//     canonical-encoding rule: iteration order reaching a hash would
//     make equal inputs fingerprint apart. A map range is clean when its body
//     only accumulates commutatively: writes into other maps, compound
//     ops (+=, |=, ...), increments, deletes, writes to variables
//     declared inside the loop, and the collect-keys-then-sort idiom
//     (append into a slice that a sort.* / slices.Sort* call covers
//     later in the file). Everything else — plain assignments to outer
//     variables, calls, returns, sends — is flagged, because each one
//     can leak iteration order into reports (last-writer-wins picks,
//     arbitrary-element returns, emit calls).
//
//  3. In the simulation packages: a select over two or more channels is
//     flagged, because Go resolves multiple ready cases by uniform
//     random choice — merging shard streams through a select leaks
//     scheduling order into simulated results. Cross-shard events must
//     flow through the engine's canonical (time, shard, seq) sorted
//     merge (engine.ShardedSim); single-case selects, with or without a
//     default, stay legal as plain non-blocking operations.
//
// Deviations are suppressed per line with
// `//p8:allow determinism: <why>`.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/tools/analyzers/analysis"
)

// simPackages need rule 1 (and rule 2).
var simPackages = map[string]bool{
	"machine": true, "engine": true, "experiments": true, "fault": true,
	"canon": true, "memo": true,
}

// orderedPackages need rule 2: simPackages plus the exporters.
var orderedPackages = map[string]bool{
	"machine": true, "engine": true, "experiments": true, "fault": true,
	"canon": true, "memo": true, "obs": true,
}

// wallClock is the banned wall-clock surface of package time.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "simulation and reporting packages must not read wall clocks, use math/rand, or let map iteration order reach output",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	name := pass.Pkg.Name()
	sim, ordered := simPackages[name], orderedPackages[name]
	if !sim && !ordered {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if sim {
					checkIdent(pass, n)
				}
			case *ast.RangeStmt:
				if ordered && pass.IsMap(n.X) {
					checkMapRange(pass, f, n)
				}
			case *ast.SelectStmt:
				if sim {
					checkSelect(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkIdent flags wall-clock and math/rand references.
func checkIdent(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if _, ok := obj.(*types.Func); ok && wallClock[obj.Name()] {
			pass.Reportf(id.Pos(), "time.%s in a deterministic package; use simulated time (wall time belongs in the harness)", id.Name)
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(id.Pos(), "math/rand in a deterministic package; use the seeded repro/internal/rng")
	}
}

// checkSelect flags multi-way selects in simulation packages. When more
// than one communication case is ready, the runtime picks one uniformly
// at random, so merging event or message streams through a select lets
// goroutine scheduling reach simulated results. The sanctioned idiom is
// the engine's canonical (time, shard, seq) sorted merge; a select with
// a single communication case (with or without a default) is just a
// non-blocking operation and stays legal.
func checkSelect(pass *analysis.Pass, s *ast.SelectStmt) {
	comm := 0
	for _, cc := range s.Body.List {
		if c, ok := cc.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(s.Pos(), "a select over %d channels resolves ready cases in randomized order; merge shard streams with the canonical (time, shard, seq) sorted merge instead", comm)
	}
}

// A RangeLeak is one statement of a map-range body that can observe
// iteration order. The intraprocedural pass reports each directly;
// determdeep uses the same classification to decide whether a helper
// outside the deterministic packages taints its callers.
type RangeLeak struct {
	Pos token.Pos
	Msg string
}

// RangeLeaks classifies every statement of one map-range body and
// returns the ones that can observe iteration order.
func RangeLeaks(info *types.Info, file *ast.File, rs *ast.RangeStmt) []RangeLeak {
	c := &rangeChecker{info: info, file: file, rs: rs}
	c.stmts(rs.Body.List)
	return c.leaks
}

// checkMapRange classifies every statement of a map-range body and
// reports the ones that can observe iteration order.
func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	for _, leak := range RangeLeaks(pass.TypesInfo, file, rs) {
		pass.Reportf(leak.Pos, "%s", leak.Msg)
	}
}

type rangeChecker struct {
	info  *types.Info
	file  *ast.File
	rs    *ast.RangeStmt
	leaks []RangeLeak
}

const fixHint = "iterate sorted keys instead"

// report records one leak at pos.
func (c *rangeChecker) report(pos token.Pos, format string, args ...interface{}) {
	c.leaks = append(c.leaks, RangeLeak{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *rangeChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *rangeChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		// Counting is commutative.
	case *ast.DeclStmt:
		// Declares loop-local state.
	case *ast.BranchStmt:
		// continue/break carry no order information by themselves.
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := c.info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				return
			}
		}
		c.report(s.Pos(), "a call inside a map range runs in randomized order; "+fixHint)
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmts(s.Body.List)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.ForStmt:
		c.stmts(s.Body.List)
	case *ast.RangeStmt:
		// The nested range is classified on its own visit; its body is
		// still part of this loop's body.
		c.stmts(s.Body.List)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			c.stmts(cc.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.stmts(cc.(*ast.CaseClause).Body)
		}
	case *ast.ReturnStmt:
		c.report(s.Pos(), "returning from inside a map range selects an arbitrary element; "+fixHint)
	default:
		// go, defer, select, sends, labels: all can observe order.
		c.report(s.Pos(), "this statement depends on map iteration order; "+fixHint)
	}
}

// assign allows commutative accumulation and loop-local writes, plus
// the collect-then-sort idiom; anything else is order-dependent.
func (c *rangeChecker) assign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound ops (+=, -=, *=, |=, ^=, &=, ...) accumulate
		// commutatively enough for reporting purposes.
		return
	}
	for i, lhs := range s.Lhs {
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" || c.localTo(l, c.rs) {
				continue
			}
			if i == 0 && len(s.Lhs) == 1 && len(s.Rhs) == 1 && c.appendSorted(l, s.Rhs[0]) {
				continue
			}
			c.report(lhs.Pos(), "map iteration order can reach %q through this assignment (last writer wins); "+fixHint, l.Name)
		case *ast.IndexExpr:
			if isMapType(c.info, l.X) {
				continue // keyed map writes are order-independent
			}
			c.report(lhs.Pos(), "writing a slice slot from a map range captures iteration order; "+fixHint)
		default:
			c.report(lhs.Pos(), "map iteration order can reach this assignment target; "+fixHint)
		}
	}
}

// localTo reports whether the identifier's object is declared within
// the node (the loop, including its key/value variables).
func (c *rangeChecker) localTo(id *ast.Ident, n ast.Node) bool {
	obj := c.info.ObjectOf(id)
	return obj != nil && obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// appendSorted recognizes `x = append(x, ...)` where x is sorted by a
// sort.* or slices.Sort* call after the loop — the sanctioned
// collect-keys-then-sort idiom (obs.sortedKeys).
func (c *rangeChecker) appendSorted(lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := c.info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return false
	}
	obj := c.info.ObjectOf(lhs)
	if obj == nil {
		return false
	}
	// Look for a later sort call covering the same object.
	sorted := false
	ast.Inspect(c.file, func(n ast.Node) bool {
		if sorted {
			return false
		}
		sc, ok := n.(*ast.CallExpr)
		if !ok || sc.Pos() < c.rs.End() || len(sc.Args) == 0 {
			return true
		}
		if _, ok := callTo(c.info, sc, "sort"); !ok {
			if name, ok := callTo(c.info, sc, "slices"); !ok || len(name) < 4 || name[:4] != "Sort" {
				return true
			}
		}
		arg, ok := sc.Args[0].(*ast.Ident)
		if ok && c.info.ObjectOf(arg) == obj {
			sorted = true
		}
		return true
	})
	return sorted
}

// isMapType reports whether the expression's type is (or aliases) a
// map — the info-level twin of Pass.IsMap, for use outside a Pass.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// callTo reports whether call invokes a function of the package with
// import path pkgPath, returning the function name — the info-level
// twin of Pass.CallTo.
func callTo(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if _, ok := info.Uses[sel.Sel].(*types.Func); !ok {
		return "", false
	}
	return sel.Sel.Name, true
}
