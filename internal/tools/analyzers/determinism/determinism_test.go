package determinism_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/determinism"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "machine", "engine", "obs", "other", "fault", "canon", "memo")
}
