package frozendeep_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/frozendeep"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", frozendeep.Analyzer, "machine")
}
