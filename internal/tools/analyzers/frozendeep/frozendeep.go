// Package frozendeep extends the frozenmachine contract into the
// machine package itself. frozenmachine forbids writes through a
// Machine from other packages syntactically; frozendeep asks the
// stronger interprocedural question: which writes inside package
// machine are reachable from an entry point that may run *after*
// construction? A write is legitimate only while a constructor
// (machine.New, machine.NewWithCalibration, ...) still owns the value;
// once New returns, the Machine is shared by every concurrently
// running experiment and any reachable write is a data race waiting
// for the scheduler.
//
// The pass walks the call graph backwards from each write: starting at
// the function containing the write, it visits callers transitively,
// stopping at constructors (a path through New is construction-time
// and excused). If the walk reaches an exported function or method
// that is not a constructor, the write is post-construction-reachable
// and reported at the write itself with the offending entry chain.
// Unexported helpers reachable only from constructors stay clean.
//
// Deviations are suppressed at the write line with
// `//p8:allow frozendeep: <why>`; a line already waived for the
// intraprocedural pass (`//p8:allow frozenmachine: ...`) is honored
// too.
package frozendeep

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/tools/analyzers/analysis"
	"repro/internal/tools/analyzers/frozenmachine"
)

// Analyzer is the frozendeep pass.
var Analyzer = &analysis.Analyzer{
	Name:       "frozendeep",
	Doc:        "no write to machine.Machine is reachable from a post-construction entry point",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Prog.Graph()

	// Reverse edges: rev[callee] lists the callers, in the graph's
	// deterministic node/site order.
	rev := make(map[*analysis.FuncNode][]*analysis.FuncNode)
	for _, n := range g.Sorted {
		for _, site := range n.Calls {
			for _, callee := range site.Callees {
				rev[callee] = append(rev[callee], n)
			}
		}
	}

	for _, n := range g.Sorted {
		if n.Pkg.Types.Name() != "machine" || isConstructor(n) {
			continue
		}
		for _, w := range machineWrites(pass.Prog, n) {
			if entry, chain := postConstructionEntry(rev, n); entry != nil {
				pass.Reportf(w,
					"write to machine.Machine reachable after construction: %s assigns through the Machine and is reached by exported %s (entry chain %s); the Machine is frozen once New returns — build a new one instead",
					n, entry, strings.Join(chain, " → "))
			}
		}
	}
	return nil
}

// isConstructor reports whether the node is construction-time code:
// the New* constructors and package init, where writes into the
// not-yet-published Machine are the whole point.
func isConstructor(n *analysis.FuncNode) bool {
	name := n.Func.Name()
	return strings.HasPrefix(name, "New") || name == "init"
}

// machineWrites returns the positions of assignments through a Machine
// in the node's body, skipping lines already waived for either the
// deep or the intraprocedural analyzer.
func machineWrites(prog *analysis.Program, n *analysis.FuncNode) []token.Pos {
	if n.Decl == nil || n.Decl.Body == nil {
		return nil
	}
	info := n.Pkg.Info
	var writes []token.Pos
	record := func(lhs ast.Expr) {
		if frozenmachine.MachineRoot(info, lhs) == nil {
			return
		}
		if prog.Allowed("frozendeep", lhs.Pos()) || prog.Allowed("frozenmachine", lhs.Pos()) {
			return
		}
		writes = append(writes, lhs.Pos())
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(node.X)
		}
		return true
	})
	return writes
}

// postConstructionEntry walks callers backwards from the writing
// function. It returns the first exported non-constructor function the
// walk reaches, with the call chain from that entry down to the
// writer, or nil if every path into the writer passes through a
// constructor.
func postConstructionEntry(rev map[*analysis.FuncNode][]*analysis.FuncNode, w *analysis.FuncNode) (*analysis.FuncNode, []string) {
	// parent[n] records how the BFS reached n (i.e. n's callee on the
	// discovered path toward w).
	parent := map[*analysis.FuncNode]*analysis.FuncNode{w: nil}
	queue := []*analysis.FuncNode{w}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if ast.IsExported(n.Func.Name()) {
			return n, chainFrom(parent, n)
		}
		for _, caller := range rev[n] {
			if _, seen := parent[caller]; seen || isConstructor(caller) {
				continue
			}
			parent[caller] = n
			queue = append(queue, caller)
		}
	}
	return nil, nil
}

// chainFrom renders the entry→writer path recorded by the BFS parent
// map.
func chainFrom(parent map[*analysis.FuncNode]*analysis.FuncNode, entry *analysis.FuncNode) []string {
	var chain []string
	for n := entry; n != nil; n = parent[n] {
		chain = append(chain, fmt.Sprintf("%s", n))
	}
	return chain
}
