// Package machine is a golden stand-in for the real machine package:
// constructors may write, everything else must not.
package machine

// Machine mirrors the frozen-after-construction value.
type Machine struct {
	Sockets int
	ncores  int
}

// New is a constructor: its writes, direct and through helpers, are
// construction-time and clean.
func New(sockets int) *Machine {
	m := &Machine{}
	m.Sockets = sockets
	fill(m)
	return m
}

// NewTuned reaches calibrate, which is *only* reachable from
// constructors and therefore clean.
func NewTuned() *Machine {
	m := New(2)
	calibrate(m)
	return m
}

// fill is shared by New (fine) and Retune (not fine); the write is
// reachable post-construction through the latter.
func fill(m *Machine) {
	m.ncores = m.Sockets * 10 // want `write to machine\.Machine reachable after construction: machine\.fill assigns through the Machine and is reached by exported machine\.Retune \(entry chain machine\.Retune → machine\.fill\)`
}

// calibrate is constructor-only; no finding.
func calibrate(m *Machine) {
	m.ncores = 0
}

// Retune is the post-construction entry point that makes fill's write
// illegal.
func Retune(m *Machine) {
	fill(m)
}

// Grow writes directly from an exported method: the entry chain is the
// method itself.
func (m *Machine) Grow() {
	m.Sockets++ // want `write to machine\.Machine reachable after construction: \*machine\.Machine\.Grow assigns through the Machine and is reached by exported \*machine\.Machine\.Grow`
}

// Reseed carries an itemized waiver on the write line; the deep pass
// honors it.
func (m *Machine) Reseed() {
	m.Sockets = 0 //p8:allow frozendeep: test-only reset helper, documented as not concurrency-safe
}
