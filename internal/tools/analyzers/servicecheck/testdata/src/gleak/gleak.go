// Package service (golden) exercises the goleak analyzer: every
// goroutine has a visible shutdown or drain path.
package service

import "sync"

type pool struct {
	jobs chan int
	stop chan struct{}
	wg   sync.WaitGroup
}

// Leak loops forever with nothing to stop it.
func (p *pool) Leak() {
	go func() { // want `goroutine loops with no visible shutdown signal`
		for {
			work()
		}
	}()
}

// StartWorker spawns a named method; the analyzer resolves it one
// level and finds the canonical drain shape: range over a closable
// channel plus the WaitGroup handshake.
func (p *pool) StartWorker() {
	p.wg.Add(1)
	go p.worker()
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		_ = j
	}
}

// Watch loops but selects on a stop channel — clean.
func (p *pool) Watch() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			case j := <-p.jobs:
				_ = j
			}
		}
	}()
}

// Fire is a bounded straight-line goroutine — clean.
func (p *pool) Fire() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// Run spawns a function value: nothing to judge, which is itself the
// finding.
func (p *pool) Run(f func()) {
	go f() // want `goroutine body is a function value`
}

// LeakWaived acknowledges its process-lifetime goroutine.
func (p *pool) LeakWaived() {
	go func() { //p8:allow goleak: metronome goroutine, process-lifetime by design
		for {
			work()
		}
	}()
}

func work() {}
