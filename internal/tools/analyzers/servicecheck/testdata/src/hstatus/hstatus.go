// Package service (golden) exercises the httpstatus analyzer: every
// handler path answers exactly once.
package service

import "http"

// writeJSON is the summarized helper: it answers on the handler's
// behalf, so calling it counts as writing the response.
func writeJSON(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write([]byte(body))
}

// writeErr answers through one more hop; the summary is transitive.
func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, msg)
}

// HandleBranchy is the sanctioned shape: exactly one answer per path.
func HandleBranchy(w http.ResponseWriter, r *http.Request) {
	if r.PathValue("id") == "" {
		writeErr(w, 400, "missing id")
		return
	}
	writeJSON(w, 200, "ok")
}

// HandleSilent forgets to answer on the error path.
func HandleSilent(w http.ResponseWriter, r *http.Request) {
	if r.PathValue("id") == "" {
		return // want `returns without writing a response`
	}
	writeJSON(w, 200, "ok")
}

// HandleFallOff never touches the writer at all.
func HandleFallOff(w http.ResponseWriter, r *http.Request) {
	_ = r.PathValue("id")
} // want `fall off the end without writing a response`

// HandleDouble answers twice in sequence; the second status is caught
// through the helper summary, not just a literal WriteHeader.
func HandleDouble(w http.ResponseWriter, r *http.Request) {
	writeErr(w, 404, "no such job")
	writeJSON(w, 200, "ok") // want `writes a second status`
}

// HandleLoop hoists nothing: the status write repeats per iteration.
func HandleLoop(w http.ResponseWriter, r *http.Request) {
	for i := 0; i < 3; i++ {
		w.WriteHeader(200) // want `writes the response status inside a loop`
	}
}

// HandleStreamish is the streaming idiom: one status up front, then
// body writes in the loop — clean, because body writes are legal
// continuations of an answered response.
func HandleStreamish(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(200)
	for i := 0; i < 3; i++ {
		_, _ = w.Write([]byte("line\n"))
	}
}

// HandleWaived acknowledges its double write with an itemized allow.
func HandleWaived(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, 200, "body")
	writeJSON(w, 200, "trailer") //p8:allow httpstatus: trailer line after the body is this endpoint's framing
}
