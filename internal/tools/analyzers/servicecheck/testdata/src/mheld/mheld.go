// Package service (golden) exercises the mutexheld analyzer: nothing
// blocking happens while a mutex is held.
package service

import (
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	queue chan int
	wg    sync.WaitGroup
}

// SendHeld parks on a full channel with the lock held.
func (s *store) SendHeld(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue <- v // want `channel send while holding s\.mu`
}

// TrySend is the sanctioned admission idiom: select-with-default never
// blocks.
func (s *store) TrySend(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.queue <- v:
		return true
	default:
		return false
	}
}

// ParkHeld parks in a bare select with the lock held.
func (s *store) ParkHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default while holding s\.mu`
	case v := <-s.queue:
		return v
	}
}

// WaitHeld waits for goroutines that may need the mutex to finish.
func (s *store) WaitHeld() {
	s.mu.Lock()
	s.wg.Wait() // want `WaitGroup\.Wait while holding s\.mu`
	s.mu.Unlock()
}

// SleepHeld stalls every other taker for the duration.
func (s *store) SleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

// RecvFree blocks only after the unlock — clean.
func (s *store) RecvFree() int {
	s.mu.Lock()
	s.mu.Unlock()
	return <-s.queue
}

// CloseHeld is clean: close never blocks, and the one-mutex
// close-the-queue-under-the-lock shutdown idiom depends on that.
func (s *store) CloseHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	close(s.queue)
}

// drain blocks; DrainHeld inherits that through the summary.
func (s *store) drain() int { return <-s.queue }

// DrainHeld blocks two frames down.
func (s *store) DrainHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drain() // want `call to \*service\.store\.drain while holding s\.mu`
}

// SendWaived acknowledges its send with an itemized allow.
func (s *store) SendWaived(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue <- v //p8:allow mutexheld: the queue is sized to the worst case at construction; a blocked send is unreachable
}
