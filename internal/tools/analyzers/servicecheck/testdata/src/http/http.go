// Package http is a miniature stand-in for net/http: just enough
// surface for the servicecheck goldens to type-check without
// source-importing the real package and half the standard library
// behind it. The analyzers match handler signatures by package *name*
// ("http") and type name, so this stub exercises exactly the same
// code paths as the real thing.
package http

// Header is the response header map.
type Header map[string][]string

// Set sets a header.
func (h Header) Set(key, value string) { h[key] = []string{value} }

// ResponseWriter mirrors net/http.ResponseWriter.
type ResponseWriter interface {
	Header() Header
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

// Request mirrors the fields of net/http.Request the goldens touch.
type Request struct{}

// PathValue mirrors the 1.22 mux path-variable accessor.
func (r *Request) PathValue(name string) string { return "" }
