package servicecheck

import (
	"go/ast"
	"go/token"

	"repro/internal/tools/analyzers/analysis"
)

// MutexHeld is the lock-hygiene pass: while a sync.Mutex/RWMutex is
// held, nothing on the path may block — no channel send or receive, no
// select without a default, no WaitGroup.Wait, no time.Sleep, and no
// call to a helper that does any of those. A blocked holder of s.mu is
// a blocked service: every handler and every worker queues behind it.
var MutexHeld = &analysis.Analyzer{
	Name:       "mutexheld",
	Doc:        "no blocking operation while a mutex is held",
	RunProgram: runMutexHeld,
}

func runMutexHeld(pass *analysis.ProgramPass) error {
	c := &mutexChecker{
		pass:   pass,
		graph:  pass.Prog.Graph(),
		blocks: map[*analysis.FuncNode]bool{},
	}
	for _, n := range c.graph.Sorted {
		if !inScope(n.Pkg) || n.Decl.Body == nil {
			continue
		}
		c.checkFunc(n)
	}
	return nil
}

type mutexChecker struct {
	pass  *analysis.ProgramPass
	graph *analysis.CallGraph
	// blocks memoizes "this function's body may block" (channel ops,
	// bare selects, Wait, Sleep — transitively through static calls).
	// Cycles read as non-blocking.
	blocks map[*analysis.FuncNode]bool
}

// held is the set of mutexes locked on the current path, keyed by the
// rendered selector chain ("s.mu", "job.mu").
type held map[string]token.Pos

func (h held) clone() held {
	out := make(held, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// any returns a deterministic representative held mutex for the
// diagnostic (the lexically smallest name).
func (h held) any() string {
	name := ""
	for k := range h {
		if name == "" || k < name {
			name = k
		}
	}
	return name
}

func (c *mutexChecker) checkFunc(n *analysis.FuncNode) {
	c.simBlock(n, n.Decl.Body.List, held{})
}

// simBlock walks a statement list tracking the held set. Branch bodies
// are simulated with a copy: a Lock/Unlock inside one branch does not
// alter the state after the join (the repo's lock regions are
// straight-line; an unbalanced branch is its own smell the region
// tracking deliberately does not chase).
func (c *mutexChecker) simBlock(n *analysis.FuncNode, stmts []ast.Stmt, h held) held {
	for _, s := range stmts {
		h = c.simStmt(n, s, h)
	}
	return h
}

func (c *mutexChecker) simStmt(n *analysis.FuncNode, s ast.Stmt, h held) held {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if name, locked := c.lockEvent(n, s.X); name != "" {
			if locked {
				h = h.clone()
				h[name] = s.Pos()
			} else {
				h = h.clone()
				delete(h, name)
			}
			return h
		}
		c.scanBlocking(n, s, h)
		return h
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held to the end of the
		// function, which is exactly what the held set already says, so
		// there is nothing to do; any other deferred call runs after the
		// region and is not scanned.
		return h
	case *ast.BlockStmt:
		return c.simBlock(n, s.List, h)
	case *ast.IfStmt:
		if s.Init != nil {
			c.scanBlocking(n, s.Init, h)
		}
		c.scanBlockingExpr(n, s.Cond, h)
		c.simBlock(n, s.Body.List, h.clone())
		if s.Else != nil {
			c.simStmt(n, s.Else, h.clone())
		}
		return h
	case *ast.ForStmt:
		return c.simLoop(n, s.Init, s.Cond, s.Body, h)
	case *ast.RangeStmt:
		c.scanBlockingExpr(n, s.X, h)
		c.simBlock(n, s.Body.List, h.clone())
		return h
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.scanBlocking(n, s.Init, h)
		}
		c.scanBlockingExpr(n, s.Tag, h)
		c.simClauses(n, s.Body, h)
		return h
	case *ast.TypeSwitchStmt:
		c.simClauses(n, s.Body, h)
		return h
	case *ast.SelectStmt:
		c.selectStmt(n, s, h)
		return h
	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's lock;
		// goleak owns its body.
		return h
	default:
		c.scanBlocking(n, s, h)
		return h
	}
}

// simClauses simulates switch clause bodies under the current held
// set.
func (c *mutexChecker) simClauses(n *analysis.FuncNode, body *ast.BlockStmt, h held) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			c.simBlock(n, cc.Body, h.clone())
		}
	}
}

// simLoop simulates a for statement's body under the current held set.
func (c *mutexChecker) simLoop(n *analysis.FuncNode, init ast.Stmt, cond ast.Expr, body *ast.BlockStmt, h held) held {
	if init != nil {
		c.scanBlocking(n, init, h)
	}
	if cond != nil {
		c.scanBlockingExpr(n, cond, h)
	}
	// The body may Lock/Unlock wholly inside one iteration
	// (handleStream's poll loop does); simulate it with its own copy.
	c.simBlock(n, body.List, h.clone())
	return h
}

// selectStmt handles the one select shape that is legal under a lock:
// select with a default clause (the non-blocking try-send/try-receive
// idiom the admission queue uses). A select without default parks the
// goroutine with the lock held.
func (c *mutexChecker) selectStmt(n *analysis.FuncNode, s *ast.SelectStmt, h held) {
	if len(h) > 0 && !selectHasDefault(s) {
		c.pass.Reportf(s.Pos(),
			"select with no default while holding %s: the goroutine parks with the mutex held and every other taker queues behind it; move the select after Unlock or add a default", h.any())
		// The clause bodies run with the lock still held; keep scanning
		// them so a second offense inside is not masked.
	}
	for _, clause := range s.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		// The comm op itself is sanctioned by the default clause (or
		// already reported above); the clause body still runs under the
		// lock.
		c.simBlock(n, comm.Body, h.clone())
	}
}

// lockEvent classifies an expression statement as mu.Lock (true) or
// mu.Unlock (false) on a sync mutex, returning the rendered mutex name
// ("" when it is neither).
func (c *mutexChecker) lockEvent(n *analysis.FuncNode, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := n.Pkg.Info.TypeOf(sel.X)
	if t == nil || (!isSyncNamed(t, "Mutex") && !isSyncNamed(t, "RWMutex")) {
		return "", false
	}
	name := renderChain(sel.X)
	if name == "" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return name, true
	case "Unlock", "RUnlock":
		return name, false
	}
	return "", false
}

// scanBlocking reports blocking operations inside a statement while
// the held set is non-empty.
func (c *mutexChecker) scanBlocking(n *analysis.FuncNode, s ast.Stmt, h held) {
	if len(h) == 0 {
		return
	}
	ast.Inspect(s, func(node ast.Node) bool {
		return c.blockingNode(n, node, h)
	})
}

// scanBlockingExpr is scanBlocking over an expression.
func (c *mutexChecker) scanBlockingExpr(n *analysis.FuncNode, e ast.Expr, h held) {
	if len(h) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(node ast.Node) bool {
		return c.blockingNode(n, node, h)
	})
}

// blockingNode inspects one node under a held lock; it returns false
// to stop descending (closures run later, not under this lock).
func (c *mutexChecker) blockingNode(n *analysis.FuncNode, node ast.Node, h held) bool {
	switch node := node.(type) {
	case *ast.FuncLit:
		return false
	case *ast.SelectStmt:
		c.selectStmt(n, node, h)
		return false
	case *ast.SendStmt:
		c.pass.Reportf(node.Pos(),
			"channel send while holding %s: a full (or unbuffered) channel parks the goroutine with the mutex held; use select-with-default or send after Unlock", h.any())
	case *ast.UnaryExpr:
		if node.Op == token.ARROW {
			c.pass.Reportf(node.Pos(),
				"channel receive while holding %s: the goroutine parks with the mutex held until someone sends; receive after Unlock", h.any())
		}
	case *ast.CallExpr:
		c.blockingCall(n, node, h)
	}
	return true
}

// blockingCall reports calls that block: WaitGroup.Wait, time.Sleep,
// and in-graph helpers whose bodies block.
func (c *mutexChecker) blockingCall(n *analysis.FuncNode, call *ast.CallExpr, h held) {
	info := n.Pkg.Info
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
		if t := info.TypeOf(sel.X); t != nil && isSyncNamed(t, "WaitGroup") {
			c.pass.Reportf(call.Pos(),
				"WaitGroup.Wait while holding %s: the waited-for goroutines may need the mutex to finish — classic deadlock; Wait after Unlock", h.any())
			return
		}
	}
	site := c.graph.Site(call)
	if site == nil {
		return
	}
	if site.ExternPath == "time" && site.ExternName == "Sleep" {
		c.pass.Reportf(call.Pos(),
			"time.Sleep while holding %s: every other taker queues for the duration; sleep after Unlock", h.any())
		return
	}
	for _, callee := range site.Callees {
		if c.bodyBlocks(callee) {
			c.pass.Reportf(call.Pos(),
				"call to %s while holding %s: its body blocks (channel op, bare select, Wait or Sleep); restructure so the blocking happens after Unlock", callee, h.any())
			return
		}
	}
}

// bodyBlocks reports whether a function's body may block, looking
// through static calls. Cycles read as non-blocking; sends and
// receives sanctioned by select-with-default do not count.
func (c *mutexChecker) bodyBlocks(fn *analysis.FuncNode) bool {
	if v, ok := c.blocks[fn]; ok {
		return v
	}
	c.blocks[fn] = false // pre-mark: recursion reads clean
	if fn.Decl == nil || fn.Decl.Body == nil {
		return false
	}
	blocked := false
	var visit func(node ast.Node) bool
	visit = func(node ast.Node) bool {
		if blocked {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				blocked = true
				return false
			}
			// Comm ops under a default are non-blocking; still look at
			// the clause bodies.
			for _, clause := range node.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok {
					for _, s := range comm.Body {
						ast.Inspect(s, visit)
					}
				}
			}
			return false
		case *ast.SendStmt:
			blocked = true
			return false
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				blocked = true
				return false
			}
		case *ast.CallExpr:
			info := fn.Pkg.Info
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if t := info.TypeOf(sel.X); t != nil && isSyncNamed(t, "WaitGroup") {
					blocked = true
					return false
				}
			}
			if site := c.graph.Site(node); site != nil {
				if site.ExternPath == "time" && site.ExternName == "Sleep" {
					blocked = true
					return false
				}
				for _, callee := range site.Callees {
					if c.bodyBlocks(callee) {
						blocked = true
						return false
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Decl.Body, visit)
	c.blocks[fn] = blocked
	return blocked
}
