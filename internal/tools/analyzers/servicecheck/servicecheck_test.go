package servicecheck_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/servicecheck"
)

func TestHTTPStatusGolden(t *testing.T) {
	analysistest.Run(t, "testdata", servicecheck.HTTPStatus, "hstatus")
}

func TestMutexHeldGolden(t *testing.T) {
	analysistest.Run(t, "testdata", servicecheck.MutexHeld, "mheld")
}

func TestGoLeakGolden(t *testing.T) {
	analysistest.Run(t, "testdata", servicecheck.GoLeak, "gleak")
}
