// Package servicecheck holds the service-layer concurrency analyzers:
// the checks that keep internal/service and cmd/p8d honest about the
// three ways a long-running HTTP daemon quietly rots.
//
//   - httpstatus: every handler path answers exactly once. A handler
//     that returns without writing a response hangs the client; a
//     handler that writes two statuses corrupts the wire (net/http
//     logs "superfluous WriteHeader" and sends the first one).
//   - mutexheld: nothing blocking happens while a mutex is held. A
//     channel send, a bare select or a WaitGroup.Wait under s.mu turns
//     every other request into a queue behind one stuck goroutine.
//   - goleak: every `go` statement has a visible way to stop. A
//     goroutine that loops without a channel receive, select or
//     WaitGroup handshake outlives every shutdown path.
//
// The analyzers run only over service-shaped packages — packages named
// "service" and the p8d command — because their rules are contracts of
// that layer, not of the simulator (which has its own hotpath and
// determinism passes). All three use the whole-program call graph:
// httpstatus summarizes helpers that answer on a handler's behalf
// (writeJSON and friends), mutexheld propagates "this callee blocks"
// through static calls, and goleak resolves `go s.worker()` one level
// to judge the worker's body.
//
// Deviations are suppressed per line with
// `//p8:allow <httpstatus|mutexheld|goleak>: <why>`.
package servicecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/tools/analyzers/analysis"
)

// inScope reports whether a package belongs to the service layer: the
// service package itself or the p8d command.
func inScope(pkg *analysis.Package) bool {
	return pkg.Types.Name() == "service" || strings.HasSuffix(pkg.Path, "p8d")
}

// isHTTPNamed reports whether t is (a pointer to) the named type
// http.<name>. Matching on the package *name* rather than the full
// path keeps the golden tests hermetic: they use a small stub package
// named http instead of source-importing all of net/http.
func isHTTPNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "http" && obj.Name() == name
}

// isSyncNamed reports whether t is (a pointer to) sync.<name>.
func isSyncNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// handlerWriter returns the http.ResponseWriter parameter object when
// the node is an HTTP handler — func(w http.ResponseWriter, r
// *http.Request) — and nil otherwise.
func handlerWriter(n *analysis.FuncNode) *types.Var {
	sig := n.Func.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() != 2 {
		return nil
	}
	w, r := params.At(0), params.At(1)
	if !isHTTPNamed(w.Type(), "ResponseWriter") {
		return nil
	}
	if _, ok := r.Type().(*types.Pointer); !ok || !isHTTPNamed(r.Type(), "Request") {
		return nil
	}
	return w
}

// usesVar reports whether e is an identifier resolving to v.
func usesVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == v
}

// renderChain renders a selector chain (s.mu, job.mu, wg) as the
// stable text used to match Lock against Unlock and to name the mutex
// in diagnostics. Unrenderable shapes return "".
func renderChain(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderChain(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderChain(e.X)
	case *ast.StarExpr:
		return renderChain(e.X)
	}
	return ""
}

// selectHasDefault reports whether the select statement has a default
// clause (the non-blocking idiom).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}
