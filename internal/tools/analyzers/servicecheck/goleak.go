package servicecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/tools/analyzers/analysis"
)

// GoLeak is the goroutine-shape pass: every `go` statement in the
// service layer must have a visible way to stop. A goroutine whose
// body loops must be woken or terminated by something the analyzer can
// see — a channel receive (including range-over-channel and select)
// or a WaitGroup handshake — or it outlives Shutdown and leaks.
// Straight-line goroutines are bounded and always pass. The spawned
// callee is resolved one level through the call graph, so both
// `go func() {...}()` and `go s.worker()` are judged by their bodies;
// a `go` on a function value cannot be judged at all and is reported.
var GoLeak = &analysis.Analyzer{
	Name:       "goleak",
	Doc:        "every goroutine in the service layer has a visible shutdown or drain path",
	RunProgram: runGoLeak,
}

func runGoLeak(pass *analysis.ProgramPass) error {
	g := pass.Prog.Graph()
	for _, n := range g.Sorted {
		if !inScope(n.Pkg) || n.Decl.Body == nil {
			continue
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if gs, ok := node.(*ast.GoStmt); ok {
				checkGo(pass, g, n, gs)
			}
			return true
		})
	}
	return nil
}

// checkGo judges one go statement.
func checkGo(pass *analysis.ProgramPass, g *analysis.CallGraph, n *analysis.FuncNode, gs *ast.GoStmt) {
	body, info := goBody(g, n, gs)
	if body == nil {
		pass.Reportf(gs.Pos(),
			"goroutine body is a function value: no shutdown path is visible statically; spawn a named function or a literal so the drain path can be checked")
		return
	}
	shape := classify(info, body)
	if shape.loops && !shape.signaled {
		pass.Reportf(gs.Pos(),
			"goroutine loops with no visible shutdown signal (no channel receive, select, or WaitGroup handshake): it outlives Shutdown and leaks; range over a closable channel or watch a done channel")
	}
}

// goBody resolves the spawned body: a literal's own block, or the
// single static callee's declaration (one level — the callee's own
// calls are not chased; a drain path should be visible at the top of
// the goroutine, not three frames down).
func goBody(g *analysis.CallGraph, n *analysis.FuncNode, gs *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, n.Pkg.Info
	}
	site := g.Site(gs.Call)
	if site == nil || site.Dynamic || len(site.Callees) != 1 {
		return nil, nil
	}
	callee := site.Callees[0]
	if callee.Decl == nil || callee.Decl.Body == nil {
		return nil, nil
	}
	return callee.Decl.Body, callee.Pkg.Info
}

// goShape is what the classifier found in a goroutine body.
type goShape struct {
	// loops: the body contains a for or range statement — it may run
	// forever.
	loops bool
	// signaled: the body contains something that can stop or pace it —
	// a channel receive, a range over a channel, a select, or a
	// WaitGroup Done/Wait handshake.
	signaled bool
}

// classify scans a goroutine body for loop and signal shapes. Nested
// literals are skipped: a closure the goroutine merely builds does not
// drain it.
func classify(info *types.Info, body *ast.BlockStmt) goShape {
	var shape goShape
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			shape.loops = true
		case *ast.RangeStmt:
			shape.loops = true
			if t := info.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					// range over a channel terminates when the channel
					// closes: the canonical worker drain.
					shape.signaled = true
				}
			}
		case *ast.SelectStmt:
			shape.signaled = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				shape.signaled = true
			}
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Wait" {
					if t := info.TypeOf(sel.X); t != nil && isSyncNamed(t, "WaitGroup") {
						shape.signaled = true
					}
				}
			}
		}
		return true
	})
	return shape
}
