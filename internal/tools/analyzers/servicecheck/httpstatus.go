package servicecheck

import (
	"go/ast"
	"go/types"

	"repro/internal/tools/analyzers/analysis"
)

// HTTPStatus is the handler status-discipline pass: every path through
// an HTTP handler answers the request exactly once.
var HTTPStatus = &analysis.Analyzer{
	Name:       "httpstatus",
	Doc:        "every HTTP handler path writes exactly one response",
	RunProgram: runHTTPStatus,
}

func runHTTPStatus(pass *analysis.ProgramPass) error {
	c := &statusChecker{
		pass:    pass,
		graph:   pass.Prog.Graph(),
		answers: map[*analysis.FuncNode][]pstat{},
	}
	for _, n := range c.graph.Sorted {
		if !inScope(n.Pkg) || n.Decl.Body == nil {
			continue
		}
		if w := handlerWriter(n); w != nil {
			c.checkHandler(n, w)
		}
	}
	return nil
}

type statusChecker struct {
	pass  *analysis.ProgramPass
	graph *analysis.CallGraph
	// answers memoizes, per function and parameter index, what the
	// function definitely does through that parameter — directly
	// (param.WriteHeader / param.Write) or by handing it to another
	// summarized answerer. This is how writeJSON/writeErr count as "the
	// handler answered". The status/answers split matters: a helper
	// that sets a status must not run twice, a body-only writer may
	// (that is what streaming is).
	answers map[*analysis.FuncNode][]pstat
}

// pstat is the per-parameter answer summary.
type pstat struct {
	// answers: the response has definitely started (status or body).
	answers bool
	// status: an explicit WriteHeader definitely runs (directly or
	// transitively), so a second invocation is a duplicate status line.
	status bool
}

// hstate is the per-path response state of the straight-line handler
// walk.
type hstate struct {
	// answered: on every path to here, a response has definitely been
	// written (drives the double-answer check).
	answered bool
	// may: on some path to here, the writer has been touched in a way
	// that could have answered — including handing it to an external
	// function we cannot summarize (drives the silent-return check; the
	// optimism keeps both checks free of false positives).
	may bool
	// terminated: every path through the simulated statements returned.
	terminated bool
}

// checkHandler walks one handler body.
func (c *statusChecker) checkHandler(n *analysis.FuncNode, w *types.Var) {
	st := c.simBlock(n, w, n.Decl.Body.List, hstate{}, 0)
	if !st.terminated && !st.may {
		c.pass.Reportf(n.Decl.Body.Rbrace,
			"handler %s can fall off the end without writing a response: the client hangs until it times out; write a status on every path", n)
	}
}

// simBlock simulates a statement list. loop counts enclosing
// for/range statements: a definite answer inside one runs once per
// iteration.
func (c *statusChecker) simBlock(n *analysis.FuncNode, w *types.Var, stmts []ast.Stmt, st hstate, loop int) hstate {
	for _, s := range stmts {
		if st.terminated {
			return st
		}
		st = c.simStmt(n, w, s, st, loop)
	}
	return st
}

func (c *statusChecker) simStmt(n *analysis.FuncNode, w *types.Var, s ast.Stmt, st hstate, loop int) hstate {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		st = c.scan(n, w, s, st, loop)
		if !st.may {
			c.pass.Reportf(s.Pos(),
				"handler %s returns without writing a response on this path: the client hangs until it times out; write a status (writeErr, writeJSON, WriteHeader) before returning", n)
		}
		st.terminated = true
		return st
	case *ast.BlockStmt:
		return c.simBlock(n, w, s.List, st, loop)
	case *ast.IfStmt:
		if s.Init != nil {
			st = c.scan(n, w, s.Init, st, loop)
		}
		st = c.scanExpr(n, w, s.Cond, st, loop)
		then := c.simBlock(n, w, s.Body.List, st, loop)
		els := st // no else: fallthrough keeps the entry state
		if s.Else != nil {
			els = c.simStmt(n, w, s.Else, st, loop)
		}
		return merge(then, els)
	case *ast.ForStmt, *ast.RangeStmt:
		var body *ast.BlockStmt
		if f, ok := s.(*ast.ForStmt); ok {
			body = f.Body
		} else {
			body = s.(*ast.RangeStmt).Body
		}
		after := c.simBlock(n, w, body.List, st, loop+1)
		// The loop may run zero times: definite answers inside it do not
		// carry out, possible ones do.
		st.may = st.may || after.may
		return st
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.simClauses(n, w, s, st, loop)
	case *ast.DeferStmt:
		// A deferred call runs at return; it can answer (may) but never
		// counts as already-answered at any particular point.
		tmp := c.scanExpr(n, w, s.Call, hstate{}, loop)
		st.may = st.may || tmp.may || tmp.answered
		return st
	case *ast.GoStmt:
		// A goroutine answering the request is its own problem; it does
		// not change this path's state.
		return st
	default:
		return c.scan(n, w, s, st, loop)
	}
}

// simClauses simulates switch/type-switch/select: each clause from the
// entry state, merged.
func (c *statusChecker) simClauses(n *analysis.FuncNode, w *types.Var, s ast.Stmt, st hstate, loop int) hstate {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.scan(n, w, s.Init, st, loop)
		}
		if s.Tag != nil {
			st = c.scanExpr(n, w, s.Tag, st, loop)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	if len(clauses) == 0 {
		return st
	}
	covered := false
	var out hstate
	first := true
	for _, clause := range clauses {
		var body []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			body = cl.Body
			if cl.List == nil {
				covered = true
			}
		case *ast.CommClause:
			body = cl.Body
			covered = true // a select runs exactly one of its clauses
		}
		cst := c.simBlock(n, w, body, st, loop)
		if first {
			out, first = cst, false
		} else {
			out = merge(out, cst)
		}
	}
	if !covered {
		// A switch without default may skip every clause: the entry
		// state is one more way out.
		out = merge(out, st)
	}
	return out
}

// merge joins two branch exits. A terminated branch already answered
// for itself (its returns were checked as they were simulated), so the
// join point carries only the surviving branch's state — leaking a
// terminated error-path's "answered" into the fallthrough would hide a
// silent path after it.
func merge(a, b hstate) hstate {
	switch {
	case a.terminated && b.terminated:
		return hstate{answered: true, may: true, terminated: true}
	case a.terminated:
		return b
	case b.terminated:
		return a
	default:
		return hstate{answered: a.answered && b.answered, may: a.may || b.may}
	}
}

// scan applies every response event inside an arbitrary statement, in
// source order.
func (c *statusChecker) scan(n *analysis.FuncNode, w *types.Var, s ast.Stmt, st hstate, loop int) hstate {
	ast.Inspect(s, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false // runs later (or never); not this path
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if node != s {
				return false // structured statements are simulated, not scanned
			}
		case *ast.CallExpr:
			st = c.event(n, w, node, st, loop)
		}
		return true
	})
	return st
}

// scanExpr applies response events inside one expression.
func (c *statusChecker) scanExpr(n *analysis.FuncNode, w *types.Var, e ast.Expr, st hstate, loop int) hstate {
	ast.Inspect(e, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			st = c.event(n, w, call, st, loop)
		}
		return true
	})
	return st
}

// event classifies one call against the writer and updates the state.
// Status events (WriteHeader, or a helper that definitely calls it)
// must happen exactly once; body events (Write, body-only helpers)
// start the response but may repeat — that is what streaming is.
func (c *statusChecker) event(n *analysis.FuncNode, w *types.Var, call *ast.CallExpr, st hstate, loop int) hstate {
	info := n.Pkg.Info
	var ev pstat
	touched := false

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && usesVar(info, sel.X, w) {
		switch sel.Sel.Name {
		case "WriteHeader":
			ev = pstat{answers: true, status: true}
		case "Write":
			ev = pstat{answers: true}
		case "Header":
			// w.Header().Set(...) prepares the response, never sends it.
		default:
			touched = true
		}
	}
	if !ev.answers {
		for i, arg := range call.Args {
			if !usesVar(info, arg, w) {
				continue
			}
			touched = true
			if callee := c.staticCallee(call); callee != nil {
				s := c.summaryAt(callee, c.argParam(callee, call, i))
				ev.answers = ev.answers || s.answers
				ev.status = ev.status || s.status
			}
		}
	}

	switch {
	case ev.status:
		if st.answered {
			c.pass.Reportf(call.Pos(),
				"handler %s writes a second status here: the response already started (net/http drops this status and logs); make the paths exclusive", n)
		} else if loop > 0 {
			c.pass.Reportf(call.Pos(),
				"handler %s writes the response status inside a loop: the second iteration is a duplicate WriteHeader; hoist it out", n)
		}
		st.answered = true
		st.may = true
	case ev.answers:
		// A body write implies the status on first use and is a legal
		// continuation afterwards.
		st.answered = true
		st.may = true
	case touched:
		st.may = true
	}
	return st
}

// staticCallee returns the single in-graph static callee of a call,
// or nil (extern, dynamic, interface dispatch).
func (c *statusChecker) staticCallee(call *ast.CallExpr) *analysis.FuncNode {
	site := c.graph.Site(call)
	if site == nil || site.Dynamic || site.Interface != nil || len(site.Callees) != 1 {
		return nil
	}
	return site.Callees[0]
}

// argParam maps an argument index onto the callee's parameter index
// (identical for plain functions and for methods, whose receiver is
// not among call.Args).
func (c *statusChecker) argParam(callee *analysis.FuncNode, call *ast.CallExpr, argIdx int) int {
	sig := callee.Func.Type().(*types.Signature)
	if argIdx >= sig.Params().Len() {
		return sig.Params().Len() - 1 // variadic tail
	}
	return argIdx
}

// summaryAt returns fn's answer summary for its idx-th parameter.
// Cycles read as "does not answer".
func (c *statusChecker) summaryAt(fn *analysis.FuncNode, idx int) pstat {
	if idx < 0 {
		return pstat{}
	}
	summary, ok := c.answers[fn]
	if !ok {
		summary = c.summarize(fn)
		c.answers[fn] = summary
	}
	if idx >= len(summary) {
		return pstat{}
	}
	return summary[idx]
}

// summarize computes the answer summary for one function.
func (c *statusChecker) summarize(fn *analysis.FuncNode) []pstat {
	sig := fn.Func.Type().(*types.Signature)
	summary := make([]pstat, sig.Params().Len())
	c.answers[fn] = summary // pre-mark: recursion reads all-false
	if fn.Decl == nil || fn.Decl.Body == nil {
		return summary
	}
	info := fn.Pkg.Info
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !isHTTPNamed(p.Type(), "ResponseWriter") {
			continue
		}
		ast.Inspect(fn.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && usesVar(info, sel.X, p) {
				switch sel.Sel.Name {
				case "WriteHeader":
					summary[i].answers, summary[i].status = true, true
				case "Write":
					summary[i].answers = true
				}
			}
			for j, arg := range call.Args {
				if usesVar(info, arg, p) {
					if callee := c.staticCallee(call); callee != nil {
						s := c.summaryAt(callee, c.argParam(callee, call, j))
						summary[i].answers = summary[i].answers || s.answers
						summary[i].status = summary[i].status || s.status
					}
				}
			}
			return true
		})
	}
	return summary
}
