// Package fsyncsafe enforces the durability layer's error-handling
// contract: in the packages that implement the write-ahead journal and
// the on-disk result cache ("journal" and "memo"), the error returned
// by a Close or Sync call must not be discarded. Both calls are
// durability acknowledgements there — Sync is the only point the
// kernel admits data reached stable storage, and Close is the last
// chance to learn that buffered writes were lost — so a dropped error
// silently converts "this record is durable" into "this record is
// probably durable", which is exactly the bug class the journal
// exists to rule out.
//
// Flagged shapes:
//
//	f.Close()          // bare statement: error vanishes
//	defer f.Sync()     // deferred: error vanishes at function exit
//	go f.Close()       // goroutine: error vanishes on another stack
//	_ = f.Close()      // blank-assigned: explicit but still a discard
//
// Only calls whose callee actually returns an error are flagged, so
// helper methods that happen to be named Close or Sync but return
// nothing are exempt. A genuinely-unwanted error (for example closing
// a read-only handle after replay, where no written byte is at stake)
// takes a //p8:allow fsyncsafe directive with a justification, which
// is counted by the .p8lint-budget accounting like every other
// suppression.
package fsyncsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/tools/analyzers/analysis"
)

// Analyzer is the fsyncsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncsafe",
	Doc:  "Close/Sync error returns must be handled in the durability packages (journal, memo)",
	Run:  run,
}

// guardedPkgs names the packages under the contract, by package name
// so golden testdata can stand in for the real repro/internal paths.
var guardedPkgs = map[string]bool{"journal": true, "memo": true}

func run(pass *analysis.Pass) error {
	if !guardedPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					report(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				report(pass, st.Call, "deferred with its error discarded")
			case *ast.GoStmt:
				report(pass, st.Call, "spawned with its error discarded")
			case *ast.AssignStmt:
				// `_ = f.Close()`: every left-hand side is blank.
				if !allBlank(st.Lhs) {
					return true
				}
				for _, rhs := range st.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok {
						report(pass, call, "blank-assigned")
					}
				}
			}
			return true
		})
	}
	return nil
}

// report flags call when it is a Close or Sync method call that
// returns an error.
func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Close" && name != "Sync" {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s error %s: in the durability packages a dropped %s error turns an acknowledged write into a hope (handle it, or //p8:allow with a reason)",
		name, how, name)
}

// returnsError reports whether the signature's last result is the
// builtin error type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
