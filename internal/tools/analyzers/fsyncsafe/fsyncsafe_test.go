package fsyncsafe_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/fsyncsafe"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", fsyncsafe.Analyzer, "journal", "notdurable")
}
