// Package journal is a golden stand-in for repro/internal/journal:
// the analyzer keys on the package name. The same rules cover the
// memo package.
package journal

// File mirrors the iofault.File durability surface.
type File struct{}

// Write is here so the good examples have something to flush.
func (f *File) Write(p []byte) (int, error) { return len(p), nil }

// Sync returns the durability acknowledgement.
func (f *File) Sync() error { return nil }

// Close returns the last-chance write-back error.
func (f *File) Close() error { return nil }

// quietCloser's Close returns nothing; the contract is about error
// returns, so it is exempt.
type quietCloser struct{}

func (quietCloser) Close() {}

// sink swallows errors so the good examples compile.
func sink(err error) {}

// good handles every acknowledgement: the canonical shapes.
func good(f *File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if cerr := f.Close(); cerr != nil {
		return cerr
	}
	return nil
}

// goodCaptured keeps the error in scope for joining.
func goodCaptured(f *File) {
	serr := f.Sync()
	cerr := f.Close()
	sink(serr)
	sink(cerr)
}

// bareStatements drop both acknowledgements on the floor.
func bareStatements(f *File) {
	f.Sync()  // want `Sync error discarded`
	f.Close() // want `Close error discarded`
}

// deferred loses the error at function exit — the classic shape that
// loses the final buffered write of a temp file.
func deferred(f *File) {
	defer f.Close() // want `Close error deferred`
	_, _ = f.Write([]byte("x"))
}

// spawned loses the error on another goroutine's stack.
func spawned(f *File) {
	go f.Close() // want `Close error spawned`
}

// blankAssigned is explicit, but still a discard: in a durability
// package the explicitness must come with a justification.
func blankAssigned(f *File) {
	_ = f.Sync() // want `Sync error blank-assigned`
}

// voidClose is exempt: no error to lose.
func voidClose(q quietCloser) {
	q.Close()
}

// allowed pins the suppression protocol: a //p8:allow with a
// justification silences the finding.
func allowed(f *File) {
	_ = f.Close() //p8:allow fsyncsafe: read-only handle after replay; no written byte at stake
}

// localFunc is exempt: Close here is a plain function, not a method,
// so it is not a handle acknowledgement.
func localFunc() {
	Close := func() error { return nil }
	Close()
	_ = Close()
}
