// Package notdurable shows the contract scoping: identical discards
// outside the journal and memo packages are not fsyncsafe's business
// (the general-purpose errcheck-style rules, where wanted, are other
// analyzers' jobs).
package notdurable

// File mirrors the durability surface of the journal golden package.
type File struct{}

// Sync returns an error that this package may drop.
func (f *File) Sync() error { return nil }

// Close returns an error that this package may drop.
func (f *File) Close() error { return nil }

// drops discards freely: no findings here.
func drops(f *File) {
	f.Sync()
	defer f.Close()
	_ = f.Close()
}
