package hotpath_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/hotpath"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hot")
}
