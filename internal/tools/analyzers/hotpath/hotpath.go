// Package hotpath enforces the repo's hot-path discipline on functions
// annotated with a //p8:hotpath directive in their doc comment: the
// walker access path, the Team dispatch/pull loop and the DES event
// loop, whose per-operation cost budgets are pinned by the allocation
// benchmarks (BenchmarkWalker*, BenchmarkParallelForTeam,
// BenchmarkSchedule).
//
// Inside an annotated function the analyzer rejects:
//
//   - any call into fmt (formatting allocates and takes interfaces),
//   - wall-clock calls (time.Now, time.Since, ...): hot loops carry
//     simulated or pre-resolved time only,
//   - any use of math/rand (nondeterministic seeding; internal/rng is
//     the seeded generator),
//   - any use of sync/atomic, including methods on atomic.* types —
//     the access paths are single-goroutine or flush-at-the-end by
//     design (the one designed-in exception, the dynamic chunk cursor,
//     carries a //p8:allow with its justification),
//   - ranging over a map (iteration order is random at run time),
//   - closures that capture enclosing variables (the capture may force
//     a heap allocation per call; hoist the state or pass it as an
//     argument).
//
// Deviations are suppressed per line with
// `//p8:allow hotpath: <why>`.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/tools/analyzers/analysis"
)

// Directive is the doc-comment marker that opts a function into the
// hot-path rules.
const Directive = "//p8:hotpath"

// wallClock is the banned wall-clock surface of package time.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //p8:hotpath may not call fmt or wall clocks, use sync/atomic or math/rand, range over maps, or capture closures",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// annotated reports whether the function's doc comment carries the
// directive on a line of its own.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			checkIdent(pass, n)
		case *ast.RangeStmt:
			if pass.IsMap(n.X) {
				pass.Reportf(n.Pos(), "hot path ranges over a map (iteration order is randomized); use a slice or fixed array")
			}
		case *ast.FuncLit:
			if name, ok := captures(pass, fd, n); ok {
				pass.Reportf(n.Pos(), "hot-path closure captures %q and may escape to the heap; hoist the state or pass it as an argument", name)
			}
		}
		return true
	})
}

// checkIdent flags uses of banned packages' functions and objects.
func checkIdent(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	switch path {
	case "fmt":
		if _, ok := obj.(*types.Func); ok {
			pass.Reportf(id.Pos(), "hot path calls fmt.%s (allocates); format outside the loop", id.Name)
		}
	case "time":
		if _, ok := obj.(*types.Func); ok && wallClock[obj.Name()] {
			pass.Reportf(id.Pos(), "hot path reads the wall clock (time.%s); use simulated time or stamp outside the loop", id.Name)
		}
	case "sync/atomic":
		if _, ok := obj.(*types.Func); ok {
			pass.Reportf(id.Pos(), "hot path uses sync/atomic (%s); accumulate in plain fields and flush at the end", id.Name)
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(id.Pos(), "hot path uses math/rand; use the seeded repro/internal/rng")
	}
}

// captures reports whether the closure references a variable declared
// in the enclosing function but outside the closure itself.
func captures(pass *analysis.Pass, fd *ast.FuncDecl, fl *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= fd.Pos() && pos < fd.End() && !(pos >= fl.Pos() && pos < fl.End()) {
			name = id.Name
		}
		return true
	})
	return name, name != ""
}
