// Package hot exercises the //p8:hotpath directive checks.
package hot

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

//p8:hotpath
func annotatedBad(m map[int]int) int {
	fmt.Println("tick") // want `hot path calls fmt\.Println`
	t := time.Now()     // want `reads the wall clock \(time\.Now\)`
	_ = time.Since(t)   // want `reads the wall clock \(time\.Since\)`
	_ = rand.Intn(4)    // want `uses math/rand`
	var c atomic.Int64
	c.Add(1) // want `uses sync/atomic`
	var raw int64
	atomic.AddInt64(&raw, 1) // want `uses sync/atomic`
	sum := 0
	for _, v := range m { // want `ranges over a map`
		sum += v
	}
	return sum
}

//p8:hotpath
func annotatedCapture() func() {
	n := 0
	f := func() { // want `hot-path closure captures "n"`
		n++
	}
	// A closure over nothing (or only its own locals) is free.
	g := func() int {
		local := 2
		return local * local
	}
	_ = g()
	return f
}

//p8:hotpath
func annotatedClean(xs []int) int {
	sum := 0
	for _, v := range xs { // slices are fine; only maps randomize
		sum += v
	}
	return sum
}

//p8:hotpath
func annotatedAllowed() int64 {
	// The allow comment must name the analyzer and justify itself.
	return time.Now().UnixNano() //p8:allow hotpath: one stamp per dispatch, off the per-item path
}

// unannotated is identical to annotatedBad but carries no directive,
// so nothing fires.
func unannotated(m map[int]int) int {
	fmt.Println("tick")
	_ = time.Now()
	_ = rand.Intn(4)
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
