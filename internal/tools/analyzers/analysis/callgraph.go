package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the typed call graph behind the interprocedural
// analyzers (hotpathdeep, determdeep, frozendeep, servicecheck). The
// construction rules, in order of decreasing precision:
//
//   - Direct calls and concrete method calls resolve to their one
//     static callee via go/types.
//   - A call through an interface method is expanded conservatively to
//     every method of that name on every named type in the load set
//     whose method set satisfies the interface — the analyzers assume
//     any of them may run.
//   - A call through a function value (a func-typed variable, field,
//     parameter or map/slice element) cannot be bounded statically; the
//     site is recorded as Dynamic and each analyzer decides what that
//     means for its contract (hotpathdeep, for instance, reports it).
//   - A func literal is not a node of its own: its body is attributed
//     to the enclosing declaration, which over-approximates (the
//     literal may never run) but never misses behavior the encloser
//     can reach.
//
// Calls to functions outside the load set (the standard library) are
// leaves: the site records the callee's import path and name so passes
// can match them against ban lists (time.Now, fmt.*, ...) without
// traversing stdlib bodies.

// A FuncNode is one declared function or method of the load set.
type FuncNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	File *ast.File
	Pkg  *Package
	// Calls are the node's call sites in source order, including sites
	// inside func literals declared in the body.
	Calls []*CallSite
}

// String renders the node as pkg.Func or pkg.(Recv).Method for chain
// diagnostics.
func (n *FuncNode) String() string {
	qual := func(p *types.Package) string { return p.Name() }
	sig := n.Func.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return types.TypeString(recv.Type(), qual) + "." + n.Func.Name()
	}
	return qual(n.Func.Pkg()) + "." + n.Func.Name()
}

// A CallSite is one call expression and its possible callees.
type CallSite struct {
	Call *ast.CallExpr
	// Callees are the possible in-program targets: one for a static
	// call, every satisfying method for an interface dispatch, none for
	// dynamic or extern calls. Sorted by position.
	Callees []*FuncNode
	// Interface is the interface method being dispatched when the
	// Callees were found by method-set expansion; nil for static calls.
	Interface *types.Func
	// Dynamic marks a call through a function value — statically
	// unbounded.
	Dynamic bool
	// ExternPath/ExternName identify a static callee outside the load
	// set (stdlib), for ban-list matching. Empty when in-program.
	ExternPath, ExternName string
}

// Pos returns the call's position.
func (s *CallSite) Pos() token.Pos { return s.Call.Pos() }

// A CallGraph is the whole-program graph over the load set.
type CallGraph struct {
	prog *Program
	// Nodes maps each declared function to its node.
	Nodes map[*types.Func]*FuncNode
	// Sorted holds the nodes in deterministic (file, position) order;
	// passes iterate it so their findings are stable run to run.
	Sorted []*FuncNode

	sites map[*ast.CallExpr]*CallSite
	named []*types.Named // package-scope named types, for expansion
}

// NodeOf returns the node of a declared function, or nil.
func (g *CallGraph) NodeOf(f *types.Func) *FuncNode {
	if f == nil {
		return nil
	}
	return g.Nodes[f.Origin()]
}

// Site returns the call site record of a call expression, or nil when
// the call has no graph meaning (a conversion, a builtin, a call of a
// func literal whose body is already attributed to the encloser).
func (g *CallGraph) Site(call *ast.CallExpr) *CallSite { return g.sites[call] }

func buildGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		prog:  prog,
		Nodes: map[*types.Func]*FuncNode{},
		sites: map[*ast.CallExpr]*CallSite{},
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Func: obj, Decl: fd, File: f, Pkg: pkg}
				g.Nodes[obj] = node
				g.Sorted = append(g.Sorted, node)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok && !types.IsInterface(n) {
				g.named = append(g.named, n)
			}
		}
	}
	sort.Slice(g.Sorted, func(i, j int) bool {
		a, b := prog.Fset.Position(g.Sorted[i].Decl.Pos()), prog.Fset.Position(g.Sorted[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, node := range g.Sorted {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				g.resolve(node, call)
			}
			return true
		})
	}
	return g
}

// resolve classifies one call expression and appends its site to the
// caller node (or drops it: conversions, builtins, immediate literal
// calls).
func (g *CallGraph) resolve(node *FuncNode, call *ast.CallExpr) {
	site := &CallSite{Call: call}
	info := node.Pkg.Info
	fun := unwrap(call.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Func:
			g.static(site, obj)
		case *types.Var:
			site.Dynamic = true // local or package-level func variable
		default:
			return // conversion, builtin
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fn]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				f := sel.Obj().(*types.Func)
				recv := f.Type().(*types.Signature).Recv()
				if recv != nil && types.IsInterface(recv.Type()) {
					site.Interface = f
					g.expandInterface(site, f)
				} else {
					g.static(site, f)
				}
			case types.FieldVal:
				site.Dynamic = true // calling a func-typed field
			default:
				return // method expression: a value, not a call
			}
		} else {
			switch obj := info.Uses[fn.Sel].(type) {
			case *types.Func:
				g.static(site, obj) // qualified pkg.Func
			case *types.Var:
				site.Dynamic = true // qualified package-level func var
			default:
				return // qualified type conversion
			}
		}
	case *ast.FuncLit:
		return // body already attributed to the encloser
	default:
		site.Dynamic = true // funcs[i](...), (<-ch)(...), ...
	}
	node.Calls = append(node.Calls, site)
	g.sites[call] = site
}

// unwrap strips parens and generic instantiation indexes off a call's
// Fun expression.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// static records a single-callee site: an in-program node when the
// callee is declared in the load set, an extern leaf otherwise.
func (g *CallGraph) static(site *CallSite, f *types.Func) {
	f = f.Origin()
	if n := g.Nodes[f]; n != nil {
		site.Callees = append(site.Callees, n)
		return
	}
	if f.Pkg() != nil {
		site.ExternPath = f.Pkg().Path()
	}
	site.ExternName = f.Name()
}

// expandInterface adds every in-program method that could satisfy the
// interface dispatch: for each named type whose method set (value or
// pointer) implements the receiver interface, the concrete method of
// the dispatched name.
func (g *CallGraph) expandInterface(site *CallSite, f *types.Func) {
	iface, ok := f.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	seen := map[*types.Func]bool{}
	for _, named := range g.named {
		var recv types.Type = named
		if !types.Implements(named, iface) {
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			recv = types.NewPointer(named)
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, f.Pkg(), f.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		m = m.Origin()
		if node := g.Nodes[m]; node != nil && !seen[m] {
			seen[m] = true
			site.Callees = append(site.Callees, node)
		}
	}
	sort.Slice(site.Callees, func(i, j int) bool {
		a, b := g.prog.Fset.Position(site.Callees[i].Decl.Pos()), g.prog.Fset.Position(site.Callees[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
}
