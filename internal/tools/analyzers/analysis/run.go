package analysis

import (
	"go/token"
	"strings"
)

// SuppressorName is the pseudo-analyzer that owns findings about the
// suppression protocol itself (malformed //p8:allow comments).
const SuppressorName = "p8lint"

// An Allow is one //p8:allow directive found in the tree — the unit of
// suppression debt. The -suppressions report lists them; the budget
// check counts them.
type Allow struct {
	// File and Line locate the directive itself.
	File string
	Line int
	// Analyzer is the pass being waived; Justification the mandatory
	// why-text.
	Analyzer      string
	Justification string
}

// A Result is the full outcome of one lint run: the surviving
// findings, the findings a //p8:allow covered (kept for the -json
// report, each carrying its directive's justification), and every
// directive in the tree whether or not it fired.
type Result struct {
	// Findings are the unsuppressed diagnostics, sorted by position.
	Findings []Diagnostic
	// Suppressed are the diagnostics covered by an allow, sorted by
	// position, with Suppressed set and Justification filled.
	Suppressed []Diagnostic
	// Allows are every //p8:allow directive scanned, sorted by
	// position.
	Allows []Allow
}

// Run executes every analyzer over every package and returns the
// surviving findings, sorted by position.
//
// Suppression protocol: a finding from analyzer A at file:line L is
// suppressed by a comment
//
//	//p8:allow A: <justification>
//
// placed either at the end of line L or alone on line L-1. The
// justification is mandatory — an allow without one is itself reported
// (analyzer "p8lint") — so every suppression in the tree documents why
// the contract is waived at that point.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunDetailed(fset, pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunDetailed is Run with the full Result: suppressed findings and the
// allow inventory included. Per-package analyzers (Run) see one
// package at a time; whole-program analyzers (RunProgram) run once
// over the entire load set with the call graph available.
func RunDetailed(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	var diags []Diagnostic
	var allows []allowDirective
	for _, pkg := range pkgs {
		a, bad := scanAllows(fset, pkg)
		allows = append(allows, a...)
		diags = append(diags, bad...)
	}
	prog := NewProgram(fset, pkgs)
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			if an.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  an,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := an.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	for _, an := range analyzers {
		if an.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Analyzer: an, Prog: prog, diags: &diags}
		if err := an.RunProgram(pass); err != nil {
			return nil, err
		}
	}
	res := suppress(diags, allows)
	sortDiagnostics(res.Findings)
	sortDiagnostics(res.Suppressed)
	return res, nil
}

// An allowDirective is one parsed //p8:allow comment.
type allowDirective struct {
	analyzer      string
	justification string
	file          string
	line          int
}

// scanAllows collects the //p8:allow directives of one package and
// reports malformed ones.
func scanAllows(fset *token.FileSet, pkg *Package) ([]allowDirective, []Diagnostic) {
	var allows []allowDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//p8:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				name, just, found := strings.Cut(strings.TrimSpace(rest), ":")
				name = strings.TrimSpace(name)
				just = strings.TrimSpace(just)
				if name == "" || !found || just == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: SuppressorName,
						Message:  "p8:allow needs an analyzer and a justification: //p8:allow <analyzer>: <why>",
					})
					continue
				}
				allows = append(allows, allowDirective{
					analyzer:      name,
					justification: just,
					file:          pos.Filename,
					line:          pos.Line,
				})
			}
		}
	}
	return allows, bad
}

// suppress splits findings into surviving and allow-covered (same line
// as the directive or the line below it) and builds the allow
// inventory.
func suppress(diags []Diagnostic, allows []allowDirective) *Result {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := map[key]*allowDirective{}
	for i := range allows {
		a := &allows[i]
		covered[key{a.file, a.line, a.analyzer}] = a
		covered[key{a.file, a.line + 1, a.analyzer}] = a
	}
	res := &Result{}
	for _, d := range diags {
		if a := covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; a != nil {
			d.Suppressed = true
			d.Justification = a.justification
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Findings = append(res.Findings, d)
	}
	for _, a := range allows {
		res.Allows = append(res.Allows, Allow{
			File: a.file, Line: a.line,
			Analyzer: a.analyzer, Justification: a.justification,
		})
	}
	sortAllows(res.Allows)
	return res
}
