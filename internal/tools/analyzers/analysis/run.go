package analysis

import (
	"go/token"
	"strings"
)

// SuppressorName is the pseudo-analyzer that owns findings about the
// suppression protocol itself (malformed //p8:allow comments).
const SuppressorName = "p8lint"

// An allowDirective is one parsed //p8:allow comment.
type allowDirective struct {
	analyzer      string
	justification string
	file          string
	line          int
}

// Run executes every analyzer over every package and returns the
// surviving findings, sorted by position.
//
// Suppression protocol: a finding from analyzer A at file:line L is
// suppressed by a comment
//
//	//p8:allow A: <justification>
//
// placed either at the end of line L or alone on line L-1. The
// justification is mandatory — an allow without one is itself reported
// (analyzer "p8lint") — so every suppression in the tree documents why
// the contract is waived at that point.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var allows []allowDirective
	for _, pkg := range pkgs {
		a, bad := scanAllows(fset, pkg)
		allows = append(allows, a...)
		diags = append(diags, bad...)
		for _, an := range analyzers {
			pass := &Pass{
				Analyzer:  an,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := an.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	diags = suppress(diags, allows)
	sortDiagnostics(diags)
	return diags, nil
}

// scanAllows collects the //p8:allow directives of one package and
// reports malformed ones.
func scanAllows(fset *token.FileSet, pkg *Package) ([]allowDirective, []Diagnostic) {
	var allows []allowDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//p8:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				name, just, found := strings.Cut(strings.TrimSpace(rest), ":")
				name = strings.TrimSpace(name)
				just = strings.TrimSpace(just)
				if name == "" || !found || just == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: SuppressorName,
						Message:  "p8:allow needs an analyzer and a justification: //p8:allow <analyzer>: <why>",
					})
					continue
				}
				allows = append(allows, allowDirective{
					analyzer:      name,
					justification: just,
					file:          pos.Filename,
					line:          pos.Line,
				})
			}
		}
	}
	return allows, bad
}

// suppress drops findings covered by an allow directive on the same
// line or the line above.
func suppress(diags []Diagnostic, allows []allowDirective) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := map[key]bool{}
	for _, a := range allows {
		covered[key{a.file, a.line, a.analyzer}] = true
		covered[key{a.file, a.line + 1, a.analyzer}] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
