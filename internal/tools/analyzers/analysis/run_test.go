package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/tools/analyzers/analysis"
)

// TestMalformedAllow checks that a //p8:allow comment without an
// analyzer name or justification is itself reported, under the
// suppressor's own name, even when no analyzer fires.
func TestMalformedAllow(t *testing.T) {
	l := analysis.NewLoader("testdata/src")
	pkgs, err := l.Load("allowcheck")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(l.Fset, pkgs, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (the two malformed comments): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != analysis.SuppressorName {
			t.Errorf("diagnostic attributed to %q, want %q", d.Analyzer, analysis.SuppressorName)
		}
		if !strings.Contains(d.Message, "p8:allow") {
			t.Errorf("message %q does not mention p8:allow", d.Message)
		}
	}
}

// TestSuppression checks that a well-formed allow on the same line or
// the line above silences exactly its named analyzer.
func TestSuppression(t *testing.T) {
	l := analysis.NewLoader("testdata/src")
	pkgs, err := l.Load("allowcheck")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}

	// fire reports one finding per function declaration line.
	fire := func(name string) *analysis.Analyzer {
		return &analysis.Analyzer{
			Name: name,
			Doc:  "test analyzer",
			Run: func(p *analysis.Pass) error {
				for _, f := range p.Files {
					for _, d := range f.Decls {
						p.Reportf(d.Pos(), "finding from %s", name)
					}
				}
				return nil
			},
		}
	}

	diags, err := analysis.Run(l.Fset, pkgs, []*analysis.Analyzer{fire("hotpath"), fire("other")})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var hotpathLines, otherLines []int
	for _, d := range diags {
		switch d.Analyzer {
		case "hotpath":
			hotpathLines = append(hotpathLines, d.Pos.Line)
		case "other":
			otherLines = append(otherLines, d.Pos.Line)
		}
	}
	// Three decl lines fire per analyzer (ok, missingWhy, missingAll —
	// the var lines share one GenDecl each). The allow above ok() names
	// hotpath only, so hotpath loses exactly the ok() line and "other"
	// keeps all of its findings.
	if len(hotpathLines) != len(otherLines)-1 {
		t.Errorf("hotpath reported %d lines %v, want one fewer than other's %d %v",
			len(hotpathLines), hotpathLines, len(otherLines), otherLines)
	}
}
