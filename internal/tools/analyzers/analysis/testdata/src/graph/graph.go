// Package graph exercises call-graph construction: static calls,
// concrete and interface method dispatch, function values and func
// literals.
package graph

import "sort"

// Shape is implemented by Circle (value receiver) and *Square
// (pointer receiver); dispatch through it must expand to both.
type Shape interface {
	Area() float64
}

// Circle implements Shape with a value receiver.
type Circle struct{ R float64 }

// Area returns the area.
func (c Circle) Area() float64 { return 3 * c.R * c.R }

// Square implements Shape with a pointer receiver.
type Square struct{ S float64 }

// Area returns the area.
func (s *Square) Area() float64 { return s.S * s.S }

// Decoy has an Area method but a different signature, so it does not
// satisfy Shape and must not appear in the expansion.
type Decoy struct{}

// Area takes an argument, unlike Shape.Area.
func (Decoy) Area(scale float64) float64 { return scale }

// helper is a plain static callee.
func helper() int { return 1 }

// Static calls helper directly and a stdlib function as an extern
// leaf.
func Static(xs []int) int {
	sort.Ints(xs)
	return helper()
}

// Dispatch calls through the interface.
func Dispatch(s Shape) float64 { return s.Area() }

// Dynamic calls through a function value.
func Dynamic(f func() int) int { return f() }

// Literal declares and invokes a func literal; its body (the helper
// call) is attributed to Literal itself.
func Literal() int {
	g := func() int { return helper() }
	return g()
}
