// Package allowcheck carries one well-formed and two malformed
// p8:allow comments for the runner's suppression test.
package allowcheck

// Fine: analyzer name and justification.
//
//p8:allow hotpath: justified in the runner test
func ok() {}

// Missing the justification after the analyzer name.
//
//p8:allow hotpath
func missingWhy() {}

// Missing the colon separator entirely.
//
//p8:allow
func missingAll() {}

var _ = ok
var _ = missingWhy
var _ = missingAll
