package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the package's import path ("repro/internal/obs", or a
	// bare testdata path like "obs").
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves, parses and type-checks packages from three roots,
// tried in order: the enclosing Go module (ModuleDir/ModulePath), any
// number of GOPATH-style source roots (testdata/src trees), and the
// standard library via go/importer's source importer. cgo is disabled
// throughout, so the pure-Go fallbacks of net and friends type-check
// without a C toolchain.
type Loader struct {
	// ModuleDir is the module root (the directory holding go.mod);
	// empty disables module resolution.
	ModuleDir string
	// ModulePath is the module's declared path; derived from go.mod by
	// NewModuleLoader.
	ModulePath string
	// SrcDirs are GOPATH-style roots: import path "p" resolves to
	// SrcDirs[i]/p.
	SrcDirs []string

	Fset *token.FileSet

	ctxt    build.Context
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader over the given GOPATH-style source roots
// (module resolution disabled).
func NewLoader(srcDirs ...string) *Loader {
	l := &Loader{SrcDirs: srcDirs}
	l.init()
	return l
}

// NewModuleLoader returns a loader rooted at the module containing
// dir, reading the module path from its go.mod.
func NewModuleLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{ModuleDir: root, ModulePath: path}
	l.init()
	return l, nil
}

func (l *Loader) init() {
	l.Fset = token.NewFileSet()
	l.ctxt = build.Default
	l.ctxt.CgoEnabled = false
	// The source importer shares our FileSet so stdlib positions stay
	// meaningful in the rare case they leak into a message.
	build.Default.CgoEnabled = false
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	l.pkgs = map[string]*Package{}
	l.loading = map[string]bool{}
}

// findModule walks up from dir to the first go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load resolves patterns to packages and loads each. Patterns may be
// import paths ("repro/internal/obs", or "obs" against SrcDirs),
// module-relative directories ("./internal/obs"), or recursive
// patterns ("./...", "./internal/...").
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "..."):
			base := strings.TrimSuffix(pat, "...")
			base = strings.TrimSuffix(base, "/")
			expanded, err := l.expand(base)
			if err != nil {
				return nil, err
			}
			paths = append(paths, expanded...)
		case pat == "." || strings.HasPrefix(pat, "./"):
			if l.ModuleDir == "" {
				return nil, fmt.Errorf("analysis: relative pattern %q needs a module root", pat)
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(pat, "."), "/")
			paths = append(paths, joinImport(l.ModulePath, rel))
		default:
			paths = append(paths, pat)
		}
	}
	var out []*Package
	seen := map[string]bool{}
	for _, p := range paths {
		if seen[p] {
			continue
		}
		seen[p] = true
		pkg, err := l.loadPath(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// expand walks the module tree under the (module-relative) base
// directory and returns the import path of every buildable package.
func (l *Loader) expand(base string) ([]string, error) {
	if l.ModuleDir == "" {
		return nil, fmt.Errorf("analysis: pattern expansion needs a module root")
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(base, "."), "/")
	root := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.ctxt.ImportDir(path, 0); err != nil {
			return nil // not a buildable package; keep walking
		}
		sub, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		out = append(out, joinImport(l.ModulePath, filepath.ToSlash(sub)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func joinImport(mod, rel string) string {
	if rel == "" || rel == "." {
		return mod
	}
	return mod + "/" + rel
}

// dirFor maps an import path to a source directory, trying the module
// first and then the GOPATH-style roots.
func (l *Loader) dirFor(path string) (string, bool) {
	if l.ModuleDir != "" {
		if path == l.ModulePath {
			return l.ModuleDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
		}
	}
	for _, src := range l.SrcDirs {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// loadPath loads one package (and, recursively, its in-tree imports),
// memoizing by import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: cannot resolve package %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", path, typeErrs[0])
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFor satisfies go/types imports: in-tree packages load through
// the loader; everything else falls back to the stdlib source importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
