package analysis

import (
	"go/types"
	"testing"
)

// loadGraph loads the golden graph package and builds its call graph.
func loadGraph(t *testing.T) (*CallGraph, *Package) {
	t.Helper()
	loader := NewLoader("testdata/src")
	pkgs, err := loader.Load("graph")
	if err != nil {
		t.Fatalf("loading golden package: %v", err)
	}
	prog := NewProgram(loader.Fset, pkgs)
	return prog.Graph(), pkgs[0]
}

// nodeByName finds a declared function node by its rendered name.
func nodeByName(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Sorted {
		if n.String() == name {
			return n
		}
	}
	t.Fatalf("no node %q in graph (have %d nodes)", name, len(g.Sorted))
	return nil
}

func TestGraphStaticAndExtern(t *testing.T) {
	g, _ := loadGraph(t)
	n := nodeByName(t, g, "graph.Static")
	var gotHelper, gotSort bool
	for _, site := range n.Calls {
		switch {
		case len(site.Callees) == 1 && site.Callees[0].String() == "graph.helper":
			gotHelper = true
		case site.ExternPath == "sort" && site.ExternName == "Ints":
			gotSort = true
		}
	}
	if !gotHelper {
		t.Errorf("Static: missing static edge to graph.helper: %+v", n.Calls)
	}
	if !gotSort {
		t.Errorf("Static: missing extern leaf sort.Ints: %+v", n.Calls)
	}
}

func TestGraphInterfaceExpansion(t *testing.T) {
	g, _ := loadGraph(t)
	n := nodeByName(t, g, "graph.Dispatch")
	if len(n.Calls) != 1 {
		t.Fatalf("Dispatch: want 1 call site, got %d", len(n.Calls))
	}
	site := n.Calls[0]
	if site.Interface == nil || site.Interface.Name() != "Area" {
		t.Fatalf("Dispatch: site not marked as interface dispatch: %+v", site)
	}
	var names []string
	for _, c := range site.Callees {
		names = append(names, c.String())
	}
	want := []string{"graph.Circle.Area", "*graph.Square.Area"}
	if len(names) != 2 {
		t.Fatalf("Dispatch: want callees %v, got %v (Decoy must be excluded)", want, names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("Dispatch: missing conservative callee %s in %v", w, names)
		}
	}
}

func TestGraphDynamicAndLiteral(t *testing.T) {
	g, _ := loadGraph(t)

	dyn := nodeByName(t, g, "graph.Dynamic")
	if len(dyn.Calls) != 1 || !dyn.Calls[0].Dynamic {
		t.Errorf("Dynamic: want one dynamic site, got %+v", dyn.Calls)
	}

	// The literal's helper call is attributed to Literal; the g() call
	// of the literal itself is a dynamic site (g is a func variable).
	lit := nodeByName(t, g, "graph.Literal")
	var static, dynamic int
	for _, site := range lit.Calls {
		if site.Dynamic {
			dynamic++
			continue
		}
		if len(site.Callees) == 1 && site.Callees[0].String() == "graph.helper" {
			static++
		}
	}
	if static != 1 || dynamic != 1 {
		t.Errorf("Literal: want helper edge (attributed from the literal body) and one dynamic site, got static=%d dynamic=%d", static, dynamic)
	}
}

func TestGraphNodeOfOrigin(t *testing.T) {
	g, pkg := loadGraph(t)
	obj := pkg.Types.Scope().Lookup("Static")
	f, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("Static is %T, want *types.Func", obj)
	}
	if n := g.NodeOf(f); n == nil || n.String() != "graph.Static" {
		t.Errorf("NodeOf(Static) = %v", n)
	}
	if g.NodeOf(nil) != nil {
		t.Errorf("NodeOf(nil) should be nil")
	}
}
