package analysis

import (
	"fmt"
	"go/token"
)

// A Program is the whole-program view handed to RunProgram analyzers:
// every package of the load set at once, plus the call graph over them
// (built lazily, shared by every interprocedural pass).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	allowed map[allowKey]bool
	graph   *CallGraph
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// NewProgram assembles a program over the load set. The runner calls
// it once per RunDetailed; tests may build one directly.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	p := &Program{Fset: fset, Pkgs: pkgs, allowed: map[allowKey]bool{}}
	for _, pkg := range pkgs {
		allows, _ := scanAllows(fset, pkg)
		for _, a := range allows {
			p.allowed[allowKey{a.file, a.line, a.analyzer}] = true
		}
	}
	return p
}

// Allowed reports whether a //p8:allow directive for the named
// analyzer covers the line at pos (directive on the same line or the
// line above — the standard placement). Interprocedural analyzers use
// it to honor a justification written at the offending *leaf* line:
// a deviation the intraprocedural pass already waived there must not
// resurface as a call-chain finding anchored somewhere else.
func (p *Program) Allowed(analyzer string, pos token.Pos) bool {
	ppos := p.Fset.Position(pos)
	return p.allowed[allowKey{ppos.Filename, ppos.Line, analyzer}] ||
		p.allowed[allowKey{ppos.Filename, ppos.Line - 1, analyzer}]
}

// Graph returns the typed call graph, building it on first use.
func (p *Program) Graph() *CallGraph {
	if p.graph == nil {
		p.graph = buildGraph(p)
	}
	return p.graph
}

// A ProgramPass is the view handed to an Analyzer's RunProgram.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
