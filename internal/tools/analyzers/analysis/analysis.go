// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis, built on the standard library only
// (the module is dependency-free by policy). It provides what the
// p8lint analyzers need and nothing more:
//
//   - Analyzer: a named check with a Run function over one package.
//   - Pass: the per-package view handed to Run — parsed files, the
//     type-checked *types.Package and a fully populated *types.Info.
//   - A source loader that resolves this module's packages, GOPATH-style
//     testdata trees (for golden tests), and the standard library (via
//     go/importer's source importer, cgo disabled).
//   - A runner that applies the //p8:allow suppression protocol shared
//     by every analyzer (see DESIGN.md "Static analysis").
//
// The deliberate omissions relative to x/tools — facts, result passing
// between analyzers, suggested fixes — keep the framework small; each
// p8lint analyzer is a single self-contained pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named static check. Exactly one of Run and
// RunProgram is set: Run is a per-package pass, RunProgram a
// whole-program pass over every loaded package at once (the
// interprocedural analyzers, which need the call graph).
type Analyzer struct {
	// Name identifies the analyzer in findings and in //p8:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary, the
	// rest documents the rules precisely.
	Doc string
	// Run executes the check over one package, reporting findings
	// through the pass. A returned error aborts the whole lint run
	// (reserved for internal failures, not findings).
	Run func(*Pass) error
	// RunProgram executes the check once over the whole load set; set
	// instead of Run for interprocedural analyzers.
	RunProgram func(*ProgramPass) error
}

// A Pass is the view of one package given to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding covered by a //p8:allow directive;
	// Justification carries the directive's mandatory why-text.
	// RunDetailed returns suppressed findings (for the -json report);
	// Run drops them.
	Suppressed    bool
	Justification string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// PkgNameOf resolves an identifier to the imported package it names
// ("fmt" in fmt.Println), or nil when id is not a package name.
func (p *Pass) PkgNameOf(id *ast.Ident) *types.PkgName {
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn
	}
	return nil
}

// CallTo reports whether call invokes a function of the package with
// import path pkgPath, returning the function name. It matches direct
// pkg.Func selector calls only (not method values or locals).
func (p *Pass) CallTo(call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn := p.PkgNameOf(id)
	if pn == nil || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if _, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func); !ok {
		return "", false
	}
	return sel.Sel.Name, true
}

// IsNamed reports whether t (after stripping pointers and aliases) is
// the named type typeName declared in a package whose *name* is
// pkgName. Matching by package name rather than import path lets golden
// testdata stand in for the real repro/internal packages.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			obj := tt.Obj()
			return obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Name() == pkgName && obj.Name() == typeName
		default:
			return false
		}
	}
}

// IsMap reports whether the expression's type is (or aliases) a map.
func (p *Pass) IsMap(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sortAllows orders directives by file, line, analyzer.
func sortAllows(allows []Allow) {
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i], allows[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
