package frozenmachine_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/frozenmachine"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", frozenmachine.Analyzer, "machine", "client", "memocache")
}
