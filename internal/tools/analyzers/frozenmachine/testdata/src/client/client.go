// Package client mutates machine.Machine from outside its package:
// every write path is flagged.
package client

import "machine"

// Mutate covers direct, nested, indexed and inc/dec writes.
func Mutate(m *machine.Machine, s *machine.Spec) {
	m.Spec = s                       // want `read-only after construction`
	m.Spec.Latency.LocalDRAMNs = 2.0 // want `read-only after construction`
	m.Seq++                          // want `read-only after construction`
	ms := []*machine.Machine{m}
	ms[0].Seq = 7 // want `read-only after construction`

	// Reads are always fine.
	l := m.Spec.Latency.LocalDRAMNs
	_ = l

	// Suppression needs the analyzer name and a justification.
	//p8:allow frozenmachine: golden test — calibration fixture rewrites latencies
	m.Seq = 9
}

// Construct covers literal construction outside the package.
func Construct(s *machine.Spec) *machine.Machine {
	v := machine.Machine{Spec: s} // want `construct Machine with machine\.New`
	_ = v
	return &machine.Machine{} // want `construct Machine with machine\.New`
}
