// Package machine is a golden stand-in defining the frozen Machine
// type. Inside the defining package writes are legal: the constructor
// owns initialization.
package machine

// Latency holds per-level latencies.
type Latency struct{ LocalDRAMNs float64 }

// Spec describes a machine configuration.
type Spec struct{ Latency Latency }

// Machine is read-only after construction.
type Machine struct {
	Spec *Spec
	Seq  int
}

// New builds a Machine; in-package writes are not flagged.
func New(s *Spec) *Machine {
	m := &Machine{}
	m.Spec = s
	m.Seq++
	m.Spec.Latency.LocalDRAMNs = 1
	return m
}
