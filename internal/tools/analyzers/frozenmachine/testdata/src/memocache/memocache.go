// Package memocache is a golden stand-in for a result cache handing
// out shared machine.Machine values (the internal/fault Deriver): a
// cached machine is served to many concurrent experiments at once, so
// the read-only contract is what makes sharing race-free. Writes
// through a machine pulled out of a cache are flagged exactly like
// writes through a freshly built one.
package memocache

import "machine"

// Cache stands in for a memoizing store of derived machines.
type Cache struct {
	entries map[string]any
}

// Get returns the cached machine for key, if any.
func (c *Cache) Get(key string) (*machine.Machine, bool) {
	v, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return v.(*machine.Machine), true
}

// RehomeCached mutates a machine it does not own — every path flagged.
func RehomeCached(c *Cache, s *machine.Spec) {
	m, ok := c.Get("e870")
	if !ok {
		return
	}
	m.Spec = s // want `read-only after construction`
	m.Seq++    // want `read-only after construction`

	// Writing through the type assertion directly is still a write
	// through a Machine.
	c.entries["e870"].(*machine.Machine).Seq = 1 // want `read-only after construction`
}

// DeriveFresh is the sanctioned path: don't patch a cached machine,
// build a new one and cache that.
func DeriveFresh(c *Cache, s *machine.Spec) *machine.Machine {
	m := machine.New(s)
	c.entries["derived"] = m
	return m
}
