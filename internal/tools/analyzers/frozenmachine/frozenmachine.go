// Package frozenmachine enforces the read-only-after-construction
// contract of machine.Machine: outside the machine package itself, no
// code may assign through a Machine — neither to its own fields
// (m.Spec = ...) nor deeper into the spec/fabric/memory objects it
// points at (m.Spec.Latency.LocalDRAMNs = ...) — and no code may
// construct a Machine literal instead of calling machine.New. This is
// the invariant that makes RunAllParallel race-free: one Machine is
// shared by every concurrently running experiment.
//
// Deviations are suppressed per line with
// `//p8:allow frozenmachine: <why>`.
package frozenmachine

import (
	"go/ast"
	"go/types"

	"repro/internal/tools/analyzers/analysis"
)

// Analyzer is the frozenmachine pass.
var Analyzer = &analysis.Analyzer{
	Name: "frozenmachine",
	Doc:  "machine.Machine is read-only outside its constructor package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, n.X)
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWrite reports when an assignment target is reached through a
// Machine owned by another package.
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	root := MachineRoot(pass.TypesInfo, lhs)
	if root == nil || samePackage(pass, root) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"write through machine.Machine: the machine is read-only after construction (shared by concurrent experiments); build a new Machine instead")
}

// MachineRoot walks the selector/index chain of an expression and
// returns the Machine type it passes through, or nil. Exported for
// frozendeep, which applies the same write detection inside the
// machine package itself.
func MachineRoot(info *types.Info, e ast.Expr) *types.Named {
	for {
		var inner ast.Expr
		switch x := e.(type) {
		case *ast.SelectorExpr:
			inner = x.X
		case *ast.IndexExpr:
			inner = x.X
		case *ast.StarExpr:
			inner = x.X
		case *ast.ParenExpr:
			inner = x.X
		default:
			return nil
		}
		if named := AsMachine(info.TypeOf(inner)); named != nil {
			return named
		}
		e = inner
	}
}

// AsMachine returns the named machine.Machine type behind t, or nil.
func AsMachine(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			obj := tt.Obj()
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "machine" && obj.Name() == "Machine" {
				return tt
			}
			return nil
		default:
			return nil
		}
	}
}

// samePackage reports whether the Machine type is declared in the
// package under analysis (the constructor package, where writes are
// legitimate).
func samePackage(pass *analysis.Pass, named *types.Named) bool {
	return named.Obj().Pkg() == pass.Pkg
}

// checkLiteral reports Machine composite literals outside the
// constructor package.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	if lit.Type == nil {
		return
	}
	named := AsMachine(pass.TypeOf(lit.Type))
	if named == nil || samePackage(pass, named) {
		return
	}
	pass.Reportf(lit.Pos(), "construct Machine with machine.New/NewWithCalibration, not a literal (calibrations and invariants live in the constructor)")
}
