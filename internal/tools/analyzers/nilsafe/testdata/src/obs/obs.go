// Package obs is a golden stand-in for repro/internal/obs: the
// analyzer keys on the package name.
package obs

// Counter mirrors the real metric shape.
type Counter struct{ v uint64 }

// Inc wraps the whole body: accepted guard shape one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add starts with an early return: accepted guard shape two.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Load has no guard at all.
func (c *Counter) Load() uint64 { // want `\(\*Counter\)\.Load must begin with a nil-receiver guard`
	return c.v
}

// reset is unexported; the contract covers the exported API only.
func (c *Counter) reset() { c.v = 0 }

// Gauge mirrors the real metric shape.
type Gauge struct{ v int64 }

// Set guards too late: the first statement already dereferences.
func (g *Gauge) Set(v int64) { // want `nil-receiver guard`
	x := v + 1
	if g == nil {
		return
	}
	g.v = x
}

// SetMax wraps only part of the body in the != guard.
func (g *Gauge) SetMax(v int64) { // want `nil-receiver guard`
	if g != nil {
		if v > g.v {
			g.v = v
		}
	}
	v++
}

// Reversed guards with the nil on the left, which is fine.
func (g *Gauge) Reversed() int64 {
	if nil == g {
		return 0
	}
	return g.v
}

// Snapshot has value receivers: nil cannot reach them.
type Snapshot struct{ N int }

// Empty needs no guard on a value receiver.
func (s Snapshot) Empty() bool { return s.N == 0 }

// registry is unexported, so its methods are exempt.
type registry struct{ name string }

// Name is exported but the type is not.
func (r *registry) Name() string { return r.name }
