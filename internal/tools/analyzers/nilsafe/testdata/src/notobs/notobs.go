// Package notobs shows the analyzer is scoped to packages named obs:
// unguarded pointer methods elsewhere are fine.
package notobs

// Thing is not an obs metric.
type Thing struct{ v int }

// Bump has no nil guard and needs none.
func (t *Thing) Bump() { t.v++ }
