// Package nilsafe enforces the obs package's nil-is-no-op contract:
// every exported method with a pointer receiver declared in a package
// named "obs" must begin with a nil-receiver guard, so a disabled
// registry (`var reg *obs.Registry`) costs exactly one predicted
// branch at every instrumentation site.
//
// Accepted guard shapes, which are the two idioms the package uses:
//
//	func (c *Counter) Inc() { if c != nil { ... } }   // whole body wrapped
//	func (r *Registry) Child(...) ... {
//		if r == nil { return ... }                     // early return
//		...
//	}
package nilsafe

import (
	"go/ast"
	"go/token"

	"repro/internal/tools/analyzers/analysis"
)

// Analyzer is the nilsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "nilsafe",
	Doc:  "exported pointer-receiver methods in package obs must begin with a nil-receiver guard",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "obs" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0]
			star, ok := recv.Type.(*ast.StarExpr)
			if !ok {
				continue // value receiver: nil does not apply
			}
			tname, ok := receiverTypeName(star.X)
			if !ok || !ast.IsExported(tname) {
				continue
			}
			if len(recv.Names) == 1 && recv.Names[0].Name != "_" &&
				guardsNil(fd.Body, recv.Names[0].Name) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"exported method (*%s).%s must begin with a nil-receiver guard (the obs nil-is-no-op contract)",
				tname, fd.Name.Name)
		}
	}
	return nil
}

// receiverTypeName unwraps a receiver base type expression to its
// type name, tolerating generic receivers.
func receiverTypeName(e ast.Expr) (string, bool) {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name, true
	case *ast.IndexExpr:
		return receiverTypeName(t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(t.X)
	}
	return "", false
}

// guardsNil reports whether the body starts with an accepted
// nil-receiver guard on recv.
func guardsNil(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || !isRecvNilComparison(cmp, recv) {
		return false
	}
	switch cmp.Op {
	case token.EQL:
		// `if recv == nil { ... return }`: the guard body must leave the
		// method so the rest of the body never sees a nil receiver.
		n := len(ifs.Body.List)
		if n == 0 {
			return false
		}
		_, isReturn := ifs.Body.List[n-1].(*ast.ReturnStmt)
		return isReturn
	case token.NEQ:
		// `if recv != nil { ... }` must be the whole method body.
		return ifs.Else == nil && len(body.List) == 1
	}
	return false
}

// isRecvNilComparison matches `recv == nil`, `nil == recv` and the !=
// forms.
func isRecvNilComparison(cmp *ast.BinaryExpr, recv string) bool {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(cmp.X) && isNil(cmp.Y)) || (isNil(cmp.X) && isRecv(cmp.Y))
}
