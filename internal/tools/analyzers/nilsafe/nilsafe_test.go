package nilsafe_test

import (
	"testing"

	"repro/internal/tools/analyzers/analysistest"
	"repro/internal/tools/analyzers/nilsafe"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", nilsafe.Analyzer, "obs", "notobs")
}
