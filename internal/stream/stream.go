// Package stream implements the modified STREAM benchmark of Section
// III-A as real, host-executable kernels: the four classic STREAM
// operations plus the ratio kernel the paper uses to sweep read:write
// mixes (Table III). On the paper's hardware these kernels measured the
// E870's Centaur links; here they both exercise the host and validate the
// kernel structure the analytic model assumes.
//
// Kernels keep the paper's static 1D partition (one contiguous chunk
// per worker, mirroring its one-thread-per-hardware-thread OpenMP
// setup) but run on the persistent worker team of internal/parallel, so
// the measurement loops (RatioKernel.Measure, repeated Triads) spawn no
// goroutines in steady state.
package stream

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/parallel"
	"repro/internal/units"
)

// Parallelism returns the worker count used when threads <= 0: the
// process default of internal/parallel (one per available CPU unless
// overridden via parallel.SetDefaultWorkers).
func Parallelism(threads int) int {
	return parallel.Workers(threads)
}

// parallelRange splits [0, n) into one contiguous chunk per worker and
// runs body(lo, hi) on the worker team (static schedule: STREAM traffic
// is uniform, and fixed chunks keep each worker touching the same
// memory every pass).
func parallelRange(n, workers int, body func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	parallel.StaticFor(workers, n, func(_, lo, hi int) {
		body(lo, hi)
	})
}

// Copy performs c[i] = a[i].
func Copy(c, a []float64, threads int) {
	checkLen(len(c), len(a))
	parallelRange(len(a), Parallelism(threads), func(lo, hi int) {
		copy(c[lo:hi], a[lo:hi])
	})
}

// Scale performs b[i] = s * c[i].
func Scale(b, c []float64, s float64, threads int) {
	checkLen(len(b), len(c))
	parallelRange(len(c), Parallelism(threads), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b[i] = s * c[i]
		}
	})
}

// Add performs c[i] = a[i] + b[i].
func Add(c, a, b []float64, threads int) {
	checkLen(len(c), len(a))
	checkLen(len(c), len(b))
	parallelRange(len(a), Parallelism(threads), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c[i] = a[i] + b[i]
		}
	})
}

// Triad performs a[i] = b[i] + s*c[i].
func Triad(a, b, c []float64, s float64, threads int) {
	checkLen(len(a), len(b))
	checkLen(len(a), len(c))
	parallelRange(len(a), Parallelism(threads), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = b[i] + s*c[i]
		}
	})
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("stream: mismatched lengths %d and %d", a, b))
	}
}

// RatioKernel is the paper's modified STREAM: each element step reads
// from Reads source arrays and writes to Writes destination arrays,
// giving a reads:writes byte ratio of Reads:Writes. Reads+Writes must be
// positive; Reads == 0 degenerates to a fill.
type RatioKernel struct {
	Reads  int
	Writes int
	N      int // elements per array

	src [][]float64
	dst [][]float64

	// sink absorbs read-only results so the work cannot be elided.
	sinkMu sync.Mutex
	sink   float64
}

// NewRatioKernel allocates the arrays for an r:w kernel of n elements.
func NewRatioKernel(reads, writes, n int) *RatioKernel {
	if reads < 0 || writes < 0 || reads+writes == 0 || n <= 0 {
		panic(fmt.Sprintf("stream: invalid ratio kernel %d:%d n=%d", reads, writes, n))
	}
	k := &RatioKernel{Reads: reads, Writes: writes, N: n}
	for i := 0; i < reads; i++ {
		a := make([]float64, n)
		for j := range a {
			a[j] = float64(i + j%7)
		}
		k.src = append(k.src, a)
	}
	for i := 0; i < writes; i++ {
		k.dst = append(k.dst, make([]float64, n))
	}
	return k
}

// Step runs one pass: every destination receives the sum of all sources
// (or the loop index when there are no sources); a pure-read kernel folds
// its sums into an internal sink so the loads cannot be elided.
func (k *RatioKernel) Step(threads int) {
	parallelRange(k.N, Parallelism(threads), func(lo, hi int) {
		var local float64
		for i := lo; i < hi; i++ {
			var s float64
			for _, a := range k.src {
				s += a[i]
			}
			if len(k.src) == 0 {
				s = float64(i)
			}
			if len(k.dst) == 0 {
				local += s
				continue
			}
			for _, d := range k.dst {
				d[i] = s
			}
		}
		if len(k.dst) == 0 {
			k.sinkMu.Lock()
			k.sink += local
			k.sinkMu.Unlock()
		}
	})
}

// BytesPerStep returns the bytes moved per pass: 8 per element per array
// touched.
func (k *RatioKernel) BytesPerStep() units.Bytes {
	return units.Bytes((k.Reads + k.Writes) * k.N * 8)
}

// ReadShare returns the fraction of traffic that is reads.
func (k *RatioKernel) ReadShare() float64 {
	return float64(k.Reads) / float64(k.Reads+k.Writes)
}

// Checksum returns the sum of the first destination (or source) array,
// letting tests confirm the kernel actually computed.
func (k *RatioKernel) Checksum() float64 {
	var arr []float64
	if len(k.dst) > 0 {
		arr = k.dst[0]
	} else {
		arr = k.src[0]
	}
	var s float64
	for _, v := range arr {
		s += v
	}
	return s
}

// Measure runs the kernel for iters timed passes after one warmup pass
// and returns the sustained bandwidth.
func (k *RatioKernel) Measure(threads, iters int) units.Bandwidth {
	if iters <= 0 {
		panic("stream: iters must be positive")
	}
	k.Step(threads) // warmup
	start := time.Now()
	for i := 0; i < iters; i++ {
		k.Step(threads)
	}
	elapsed := time.Since(start).Seconds()
	total := float64(k.BytesPerStep()) * float64(iters)
	return units.Bandwidth(total / elapsed)
}
