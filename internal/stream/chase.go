package stream

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// HostChase measures the host machine's own dependent-load latency — the
// real lmbench lat_mem_rd equivalent the paper runs on the E870. It
// builds a random single-cycle pointer chain over `bytes` of memory with
// one pointer per 128-byte line (Sattolo's algorithm, so the chain
// visits every line exactly once per lap) and times `accesses` dependent
// loads after one warm lap.
//
// This measures the HOST, not the modelled POWER8: it exists so the
// repository carries a genuine executable microbenchmark of the paper's
// methodology, and so tests can confirm the cache-vs-DRAM latency
// ordering on whatever machine runs them.
func HostChase(bytes int64, accesses int, seed uint64) (nsPerAccess float64) {
	const stride = 16 // int64 words per 128-byte line
	lines := int(bytes / 128)
	if lines < 2 {
		panic(fmt.Sprintf("stream: working set %d too small", bytes))
	}
	if accesses <= 0 {
		panic("stream: accesses must be positive")
	}
	arr := make([]int64, lines*stride)
	perm := make([]int32, lines)
	for i := range perm {
		perm[i] = int32(i)
	}
	r := rng.New(seed)
	for i := lines - 1; i > 0; i-- {
		j := r.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < lines; i++ {
		arr[i*stride] = int64(perm[i]) * stride
	}

	// Warm lap.
	p := int64(0)
	for i := 0; i < lines; i++ {
		p = arr[p]
	}
	sink := p

	p = 0
	start := time.Now()
	for i := 0; i < accesses; i++ {
		p = arr[p]
	}
	elapsed := time.Since(start)
	sink += p
	if sink == -1 {
		// Impossible (indices are non-negative); defeats dead-code
		// elimination of the chase.
		panic("unreachable")
	}
	return float64(elapsed.Nanoseconds()) / float64(accesses)
}
