package stream

import (
	"testing"
)

func seq(n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	return a
}

func TestCopy(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		a := seq(1000)
		c := make([]float64, 1000)
		Copy(c, a, threads)
		for i := range c {
			if c[i] != a[i] {
				t.Fatalf("threads=%d: c[%d] = %v", threads, i, c[i])
			}
		}
	}
}

func TestScale(t *testing.T) {
	c := seq(100)
	b := make([]float64, 100)
	Scale(b, c, 3, 4)
	for i := range b {
		if b[i] != 3*float64(i) {
			t.Fatalf("b[%d] = %v", i, b[i])
		}
	}
}

func TestAdd(t *testing.T) {
	a, b := seq(100), seq(100)
	c := make([]float64, 100)
	Add(c, a, b, 4)
	for i := range c {
		if c[i] != 2*float64(i) {
			t.Fatalf("c[%d] = %v", i, c[i])
		}
	}
}

func TestTriad(t *testing.T) {
	b, c := seq(100), seq(100)
	a := make([]float64, 100)
	Triad(a, b, c, 2, 4)
	for i := range a {
		if a[i] != 3*float64(i) {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	Copy(make([]float64, 5), make([]float64, 6), 1)
}

func TestParallelRangeSmallN(t *testing.T) {
	// More workers than elements must not lose or duplicate work.
	hit := make([]int, 3)
	parallelRange(3, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Errorf("element %d visited %d times", i, h)
		}
	}
}

func TestRatioKernelCorrectness(t *testing.T) {
	k := NewRatioKernel(2, 1, 64)
	k.Step(4)
	// dst[0][i] must equal src[0][i] + src[1][i].
	for i := 0; i < 64; i++ {
		want := k.src[0][i] + k.src[1][i]
		if k.dst[0][i] != want {
			t.Fatalf("dst[%d] = %v, want %v", i, k.dst[0][i], want)
		}
	}
	if k.Checksum() == 0 {
		t.Error("checksum zero")
	}
}

func TestRatioKernelWriteOnly(t *testing.T) {
	k := NewRatioKernel(0, 2, 32)
	k.Step(2)
	for i := 0; i < 32; i++ {
		if k.dst[1][i] != float64(i) {
			t.Fatalf("write-only dst[%d] = %v", i, k.dst[1][i])
		}
	}
	if k.ReadShare() != 0 {
		t.Error("read share of write-only kernel not 0")
	}
}

func TestRatioKernelReadOnly(t *testing.T) {
	k := NewRatioKernel(3, 0, 32)
	k.Step(2)
	if k.sink == 0 {
		t.Error("read-only kernel left sink untouched; loads may be elided")
	}
	if k.ReadShare() != 1 {
		t.Error("read share of read-only kernel not 1")
	}
}

func TestRatioKernelAccounting(t *testing.T) {
	k := NewRatioKernel(2, 1, 1000)
	if got := int64(k.BytesPerStep()); got != 3*1000*8 {
		t.Errorf("BytesPerStep = %d", got)
	}
	if k.ReadShare() != 2.0/3 {
		t.Errorf("ReadShare = %v", k.ReadShare())
	}
}

func TestRatioKernelMeasure(t *testing.T) {
	k := NewRatioKernel(2, 1, 1<<16)
	bw := k.Measure(0, 3)
	if bw.GBps() <= 0 {
		t.Errorf("measured bandwidth %v", bw)
	}
}

func TestRatioKernelPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRatioKernel(0, 0, 10) },
		func() { NewRatioKernel(-1, 1, 10) },
		func() { NewRatioKernel(1, -1, 10) },
		func() { NewRatioKernel(1, 1, 0) },
		func() { NewRatioKernel(1, 1, 8).Measure(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestHostChaseOrdering: on any real machine, a cache-resident chase is
// much faster than a DRAM-resident one.
func TestHostChaseOrdering(t *testing.T) {
	small := HostChase(16*1024, 200000, 1) // L1-resident
	large := HostChase(128<<20, 200000, 1) // beyond any host LLC here
	if small <= 0 || large <= 0 {
		t.Fatalf("non-positive latencies: %v, %v", small, large)
	}
	if large < 2*small {
		t.Errorf("DRAM chase (%.1f ns) not clearly slower than L1 chase (%.1f ns)", large, small)
	}
}

func TestHostChasePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { HostChase(128, 10, 1) },
		func() { HostChase(1<<20, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestParallelism(t *testing.T) {
	if Parallelism(4) != 4 {
		t.Error("explicit threads not respected")
	}
	if Parallelism(0) < 1 {
		t.Error("default parallelism < 1")
	}
}
