package memsys

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/stats"
)

func e870Model() *Model { return New(arch.E870(), E870Calibration()) }

// TestTableIII reproduces every row of Table III: observed memory
// bandwidth for nine read:write mixes, within 1%.
func TestTableIII(t *testing.T) {
	m := e870Model()
	rows := []struct {
		name          string
		reads, writes float64
		wantGBs       float64
	}{
		{"read-only", 1, 0, 1141},
		{"16:1", 16, 1, 1208},
		{"8:1", 8, 1, 1267},
		{"4:1", 4, 1, 1375},
		{"2:1", 2, 1, 1472},
		{"1:1", 1, 1, 894},
		{"1:2", 1, 2, 748},
		{"1:4", 1, 4, 658},
		{"write-only", 0, 1, 589},
	}
	for _, r := range rows {
		f := ReadShare(r.reads, r.writes)
		got := m.SystemStream(f).GBps()
		if !stats.Within(got, r.wantGBs, 0.01) {
			t.Errorf("%s: %.1f GB/s, want %v (±1%%)", r.name, got, r.wantGBs)
		}
	}
}

// TestTwoToOneIsOptimal checks the headline claim: the 2:1 read:write mix
// maximizes bandwidth, and write-heavy mixes are worst.
func TestTwoToOneIsOptimal(t *testing.T) {
	m := e870Model()
	best := m.SystemStream(2.0 / 3).GBps()
	for _, f := range []float64{0, 0.2, 1.0 / 3, 0.5, 0.8, 8.0 / 9, 16.0 / 17, 1} {
		if got := m.SystemStream(f).GBps(); got > best {
			t.Errorf("read share %v gives %v > 2:1's %v", f, got, best)
		}
	}
	if wo := m.SystemStream(0).GBps(); wo >= m.SystemStream(1).GBps() {
		t.Error("write-only should be below read-only")
	}
}

// TestPeakFraction checks the paper's 80%-of-spec observation at 2:1.
func TestPeakFraction(t *testing.T) {
	m := e870Model()
	spec := arch.E870()
	frac := m.SystemStream(2.0/3).GBps() / spec.PeakMemoryBW().GBps()
	if frac < 0.78 || frac > 0.82 {
		t.Errorf("2:1 achieves %.0f%% of spec peak, paper reports 80%%", frac*100)
	}
}

// TestCoreStreamSaturation reproduces Figure 3a: single-core bandwidth
// grows with threads and saturates around 26 GB/s.
func TestCoreStreamSaturation(t *testing.T) {
	m := e870Model()
	prev := 0.0
	for threads := 1; threads <= 8; threads++ {
		got := m.CoreStream(threads).GBps()
		if got < prev {
			t.Errorf("core bandwidth decreased at %d threads", threads)
		}
		prev = got
	}
	if !stats.Within(prev, 26, 0.05) {
		t.Errorf("saturated core bandwidth = %.1f, want ~26", prev)
	}
	if one := m.CoreStream(1).GBps(); one >= prev {
		t.Error("one thread should not already saturate the core")
	}
}

// TestChipStreamSaturation reproduces Figure 3b: full chip reaches the
// chip's link-bound ~184-189 GB/s at 2:1.
func TestChipStreamSaturation(t *testing.T) {
	m := e870Model()
	full := m.ChipStream(8, 8, 2.0/3).GBps()
	if !stats.Within(full, 189, 0.04) {
		t.Errorf("full chip = %.1f GB/s, want ~189 (±4%%)", full)
	}
	// Scaling must be monotone in cores and threads.
	for cores := 1; cores <= 8; cores++ {
		for threads := 1; threads <= 8; threads++ {
			got := m.ChipStream(cores, threads, 2.0/3).GBps()
			if got > full+1e-9 {
				t.Errorf("%d cores x %d threads exceeds full-chip bandwidth", cores, threads)
			}
		}
	}
	if m.ChipStream(1, 8, 2.0/3).GBps() >= full/2 {
		t.Error("single core should be well below half the chip limit")
	}
}

// TestRandomAccess reproduces Figure 4's saturation at ~500 GB/s = 41% of
// peak read bandwidth.
func TestRandomAccess(t *testing.T) {
	m := e870Model()
	sat := m.RandomAccess(64 * 32).GBps()
	if !stats.Within(sat, 500, 0.05) {
		t.Errorf("saturated random bandwidth = %.1f, want ~500 (41%% of peak read)", sat)
	}
	prev := 0.0
	for _, n := range []int{64, 128, 256, 512, 1024, 2048} {
		got := m.RandomAccess(n).GBps()
		if got < prev {
			t.Errorf("random bandwidth decreased at %d outstanding", n)
		}
		prev = got
	}
	// Low concurrency must be far from saturation.
	if m.RandomAccess(64).GBps() > 0.25*sat {
		t.Error("single outstanding line per core should be far from peak")
	}
}

func TestLoadedRandomLatencyGrows(t *testing.T) {
	m := e870Model()
	if m.LoadedRandomLatencyNs(2048) <= m.LoadedRandomLatencyNs(64) {
		t.Error("loaded latency must grow with concurrency")
	}
}

func TestReadShare(t *testing.T) {
	if ReadShare(2, 1) != 2.0/3 || ReadShare(1, 0) != 1 || ReadShare(0, 1) != 0 {
		t.Error("ReadShare wrong")
	}
}

func TestPanics(t *testing.T) {
	m := e870Model()
	for _, fn := range []func(){
		func() { ReadShare(0, 0) },
		func() { ReadShare(-1, 1) },
		func() { m.StreamBandwidth(-0.1, 8) },
		func() { m.StreamBandwidth(0.5, 0) },
		func() { m.StreamBandwidth(0.5, 9) },
		func() { m.CoreStream(0) },
		func() { m.CoreStream(9) },
		func() { m.ChipStream(0, 4, 0.5) },
		func() { m.ChipStream(9, 4, 0.5) },
		func() { m.RandomAccess(0) },
		func() { New(arch.E870(), Calibration{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestEfficiencyCurveShape checks the documented V shape: minimum near
// f=0.5, high at the pure ends.
func TestEfficiencyCurveShape(t *testing.T) {
	c := E870RWEfficiency()
	if c.At(0.5) >= c.At(0) || c.At(0.5) >= c.At(1) {
		t.Error("efficiency should dip at balanced mixes")
	}
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := c.At(f)
		if v <= 0.5 || v > 1 {
			t.Errorf("efficiency at %v = %v out of plausible range", f, v)
		}
	}
}
