// Package memsys models the POWER8 memory subsystem at steady state: the
// Centaur read/write links with their asymmetric capacities, the
// read:write-mix efficiency behaviour measured in Table III, the
// per-thread/per-core sequential-stream limits behind Figure 3, and the
// loaded-latency model behind the random-access results of Figure 4.
//
// The mechanistic part is bottleneck analysis: a traffic mix with read
// share f is bounded by min(readCap/f, writeCap/(1-f)). The measured
// system does not reach that bound uniformly — efficiency dips when both
// link directions are active (DRAM turnaround, store-in L2 castout
// scheduling) — so the model multiplies the bound by a calibrated
// piecewise-linear efficiency curve anchored at the Table III
// measurements. See efficiency.go for the anchors.
package memsys

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/stats"
	"repro/internal/units"
)

// Calibration collects the fitted constants of the memory model.
type Calibration struct {
	// RWEfficiency maps read share f = reads/(reads+writes) in [0,1] to
	// the fraction of the link-bound bandwidth the system sustains.
	RWEfficiency *stats.Curve

	// PerThreadStreamGBs is the sequential bandwidth one hardware thread
	// sustains at the optimal 2:1 mix, set by the prefetch depth and the
	// memory latency (12 lines ahead x 128 B / ~95 ns ~= 12 GB/s).
	PerThreadStreamGBs float64

	// CoreStreamCapGBs is the per-core ceiling on sequential bandwidth
	// (load-store unit and prefetch-machine limits); Figure 3(a) measures
	// ~26 GB/s for a fully threaded core.
	CoreStreamCapGBs float64

	// RandomBaseLatencyNs is the unloaded latency of an isolated random
	// read (DRAM access plus the TLB miss that almost every random access
	// to a large footprint incurs).
	RandomBaseLatencyNs float64

	// RandomQueueNsPerLine is the added queueing delay per outstanding
	// line system-wide; it sets the random-access bandwidth asymptote.
	RandomQueueNsPerLine float64

	// RandomPeakFraction caps random-access bandwidth as a fraction of
	// peak read bandwidth (the paper measures 41%: banks conflict and
	// every access moves a full line of which the benchmark uses 8 bytes
	// of address information).
	RandomPeakFraction float64
}

// E870Calibration returns the memory-model constants fitted to the
// paper's Table III, Figure 3 and Figure 4.
func E870Calibration() Calibration {
	return Calibration{
		RWEfficiency:         E870RWEfficiency(),
		PerThreadStreamGBs:   12.0,
		CoreStreamCapGBs:     26.5,
		RandomBaseLatencyNs:  130,
		RandomQueueNsPerLine: 0.2,
		RandomPeakFraction:   0.41,
	}
}

// Model is the steady-state memory-bandwidth model for a system.
type Model struct {
	sys   *arch.SystemSpec
	calib Calibration
	deg   *Degradation
}

// New assembles the healthy model.
func New(sys *arch.SystemSpec, calib Calibration) *Model {
	return NewDegraded(sys, calib, nil)
}

// NewDegraded assembles a model whose channels and links carry the RAS
// overlay deg (nil for a healthy subsystem).
func NewDegraded(sys *arch.SystemSpec, calib Calibration, deg *Degradation) *Model {
	if calib.RWEfficiency == nil {
		panic("memsys: calibration requires an RWEfficiency curve")
	}
	if err := deg.Validate(sys); err != nil {
		panic(err)
	}
	return &Model{sys: sys, calib: calib, deg: deg}
}

// Calibration returns the model's constants.
func (m *Model) Calibration() Calibration { return m.calib }

// Degradation returns the memory RAS overlay (nil when healthy).
func (m *Model) Degradation() *Degradation { return m.deg }

// ReadShare converts a read:write ratio to a read share f. Write-only is
// expressed as reads=0.
func ReadShare(reads, writes float64) float64 {
	if reads < 0 || writes < 0 || reads+writes == 0 {
		panic(fmt.Sprintf("memsys: invalid read:write ratio %g:%g", reads, writes))
	}
	return reads / (reads + writes)
}

// StreamBandwidth returns the sustained bandwidth for sequential traffic
// with read share f spread evenly over the memory behind `chips` chips.
func (m *Model) StreamBandwidth(f float64, chips int) units.Bandwidth {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("memsys: read share %g out of [0,1]", f))
	}
	if chips <= 0 || chips > m.sys.Topology.Chips {
		panic(fmt.Sprintf("memsys: chip count %d out of range", chips))
	}
	ch := m.deg.MeanChannelFactor(chips, m.sys.Memory.CentaursPerChip)
	readCap := float64(m.sys.Memory.ReadPeak()) * float64(chips) * m.deg.ReadDerate() * ch
	writeCap := float64(m.sys.Memory.WritePeak()) * float64(chips) * m.deg.WriteDerate() * ch
	bound := linkBound(readCap, writeCap, f)
	return units.Bandwidth(bound * m.calib.RWEfficiency.At(f))
}

// linkBound is the mechanistic bottleneck: total traffic T with read share
// f must satisfy T*f <= readCap and T*(1-f) <= writeCap.
func linkBound(readCap, writeCap, f float64) float64 {
	switch f {
	case 0:
		return writeCap
	case 1:
		return readCap
	default:
		r := readCap / f
		w := writeCap / (1 - f)
		if w < r {
			return w
		}
		return r
	}
}

// CoreStream returns the sequential bandwidth of a single core running
// `threads` threads at the optimal 2:1 mix (Figure 3a): threads scale
// linearly until the core's stream ceiling.
func (m *Model) CoreStream(threads int) units.Bandwidth {
	if threads <= 0 || threads > m.sys.Chip.ThreadsPerCore {
		panic(fmt.Sprintf("memsys: thread count %d out of range", threads))
	}
	bw := float64(threads) * m.calib.PerThreadStreamGBs
	if bw > m.calib.CoreStreamCapGBs {
		bw = m.calib.CoreStreamCapGBs
	}
	return units.GBps(bw)
}

// ChipStream returns the sequential bandwidth of one chip running `cores`
// cores x `threads` threads at read share f (Figure 3b): the sum of the
// core limits, capped by the chip's link-bound bandwidth.
func (m *Model) ChipStream(cores, threads int, f float64) units.Bandwidth {
	if cores <= 0 || cores > m.sys.Chip.Cores {
		panic(fmt.Sprintf("memsys: core count %d out of range", cores))
	}
	perCore := float64(m.CoreStream(threads))
	total := perCore * float64(cores)
	cap := float64(m.StreamBandwidth(f, 1))
	if total > cap {
		total = cap
	}
	return units.Bandwidth(total)
}

// SystemStream returns the sequential bandwidth of the whole system with
// every core and thread active at read share f (the Table III setup).
func (m *Model) SystemStream(f float64) units.Bandwidth {
	chips := m.sys.Topology.Chips
	perChip := float64(m.ChipStream(m.sys.Chip.Cores, m.sys.Chip.ThreadsPerCore, f))
	total := perChip * float64(chips)
	cap := float64(m.StreamBandwidth(f, chips))
	if total > cap {
		total = cap
	}
	return units.Bandwidth(total)
}

// RandomAccess returns the system bandwidth for dependent random reads
// with `outstanding` lines in flight system-wide (Figure 4): Little's law
// with a load-dependent latency, capped at the calibrated fraction of
// peak read bandwidth.
func (m *Model) RandomAccess(outstanding int) units.Bandwidth {
	if outstanding <= 0 {
		panic("memsys: outstanding must be positive")
	}
	n := float64(outstanding)
	lat := m.LoadedRandomLatencyNs(outstanding)
	bw := n * float64(arch.LineSize) / (lat * 1e-9)
	cap := float64(m.RandomPeakBandwidth())
	if bw > cap {
		bw = cap
	}
	return units.Bandwidth(bw)
}

// RandomPeakBandwidth returns the random-access bandwidth ceiling: the
// calibrated fraction of peak read bandwidth, reduced by channel loss
// and read-link derates on a degraded subsystem. The DES bank model
// derives its service capacity from the same figure so the analytic and
// simulated random-access results degrade together.
func (m *Model) RandomPeakBandwidth() units.Bandwidth {
	ch := m.deg.MeanChannelFactor(m.sys.Topology.Chips, m.sys.Memory.CentaursPerChip)
	cap := float64(m.sys.PeakReadBW()) * m.calib.RandomPeakFraction * m.deg.ReadDerate() * ch
	return units.Bandwidth(cap)
}

// LoadedRandomLatencyNs returns the effective per-access latency implied
// by the loaded random-access model at the given concurrency, including
// any RAS replay adder.
func (m *Model) LoadedRandomLatencyNs(outstanding int) float64 {
	n := float64(outstanding)
	return m.calib.RandomBaseLatencyNs + m.deg.ReplayNs() + n*m.calib.RandomQueueNsPerLine
}
