package memsys

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/units"
)

func TestPlacementLocalAndPinned(t *testing.T) {
	local := Local(3).HomeFunc()
	for _, addr := range []uint64{0, 4096, 1 << 30} {
		if local(addr) != 3 {
			t.Fatalf("local placement moved address %d", addr)
		}
	}
	pinned := OnChip(6).HomeFunc()
	if pinned(123456) != 6 {
		t.Error("pinned placement wrong")
	}
}

func TestPlacementInterleaved(t *testing.T) {
	home := Interleaved(8).HomeFunc()
	const page = 64 * 1024
	counts := map[arch.ChipID]int{}
	for p := 0; p < 64; p++ {
		// All addresses within one granule share a home.
		base := uint64(p) * page
		h := home(base)
		if home(base+page-1) != h {
			t.Fatalf("granule %d split across chips", p)
		}
		counts[h]++
	}
	if len(counts) != 8 {
		t.Fatalf("interleaving reached %d chips, want 8", len(counts))
	}
	for chip, n := range counts {
		if n != 8 {
			t.Errorf("chip %d received %d granules, want 8", chip, n)
		}
	}
}

func TestPlacementCustomGranule(t *testing.T) {
	p := Interleaved(4)
	p.Granule = 16 * units.MiB
	home := p.HomeFunc()
	if home(0) == home(uint64(16*units.MiB)) {
		t.Error("adjacent huge granules on same chip")
	}
	if home(0) != home(uint64(16*units.MiB)-1) {
		t.Error("granule split")
	}
}

func TestPlacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-chip interleave did not panic")
		}
	}()
	Interleaved(0).HomeFunc()
}

func TestPlacementKindString(t *testing.T) {
	if PlaceLocal.String() != "local" || PlaceInterleaved.String() != "interleaved" || PlaceOnChip.String() != "on-chip" {
		t.Error("strings wrong")
	}
}

// TestInterleavedWalkerLatency validates the analytic interleaved-latency
// row of Table IV against the trace-driven walker using the placement
// policy: both paths must agree.
func TestInterleavedWalkerLatency(t *testing.T) {
	// Imported here to avoid a dependency cycle: machine imports memsys.
	// The check lives in internal/machine's tests instead; this test
	// pins the granularity contract the walker relies on.
	home := Interleaved(8).HomeFunc()
	if home(0) != 0 || home(64*1024) != 1 {
		t.Error("round-robin order unexpected")
	}
}
