package memsys

import "repro/internal/stats"

// E870RWEfficiency is the calibrated read:write-mix efficiency curve.
//
// Derivation: Table III reports the measured STREAM bandwidth at nine
// read:write mixes. Dividing each measurement by the mechanistic link
// bound min(readCap/f, writeCap/(1-f)) — with readCap = 1228.8 GB/s and
// writeCap = 614.4 GB/s for the 8-socket E870 — yields the efficiency
// anchors below. The curve has a characteristic V shape: near-pure mixes
// run each link direction at 92-96% of raw, while balanced mixes lose
// bandwidth to DRAM bus turnarounds and store-in L2 castout scheduling,
// bottoming out at 73% for 1:1.
//
//	ratio   f      measured  bound    efficiency
//	read    1.000  1141      1228.8   0.929
//	16:1    0.941  1208      1305.6   0.925
//	 8:1    0.889  1267      1382.4   0.917
//	 4:1    0.800  1375      1536.0   0.895
//	 2:1    0.667  1472      1843.2   0.799
//	 1:1    0.500   894      1228.8   0.728
//	 1:2    0.333   748       921.6   0.812
//	 1:4    0.200   658       768.0   0.857
//	write   0.000   589       614.4   0.959
func E870RWEfficiency() *stats.Curve {
	return stats.NewCurve(
		[]float64{0, 0.200, 1.0 / 3, 0.500, 2.0 / 3, 0.800, 8.0 / 9, 16.0 / 17, 1},
		[]float64{0.959, 0.857, 0.812, 0.728, 0.799, 0.895, 0.917, 0.925, 0.929},
	)
}
