package memsys

import (
	"fmt"
	"sort"

	"repro/internal/arch"
)

// Degradation is an overlay of memory-subsystem RAS events on a healthy
// spec: lost memory channels (a failed Centaur or DIMM group takes its
// channel out of the interleave), a read/write link derate (the Centaur
// DMI link retrains at reduced speed after persistent CRC errors), and a
// replay latency adder (ECC correction and link replay retries on every
// access through a marginal lane). Like fabric.Degradation it is
// read-only once handed to a Model, and a nil *Degradation means a
// healthy subsystem.
type Degradation struct {
	lostChannels map[arch.ChipID]int
	readDerate   float64
	writeDerate  float64
	replayNs     float64
}

// NewDegradation returns an empty overlay (all channels up, links at
// full speed, no replay latency).
func NewDegradation() *Degradation {
	return &Degradation{
		lostChannels: map[arch.ChipID]int{},
		readDerate:   1,
		writeDerate:  1,
	}
}

// LoseChannels records n additional memory channels lost on chip c. It
// returns the overlay for chaining.
func (d *Degradation) LoseChannels(c arch.ChipID, n int) *Degradation {
	if n < 0 {
		panic(fmt.Sprintf("memsys: cannot lose %d channels", n))
	}
	d.lostChannels[c] += n
	return d
}

// DerateLinks scales the Centaur read and write link speeds by the
// given factors (0 < factor <= 1); repeated calls compose
// multiplicatively. It returns the overlay for chaining.
func (d *Degradation) DerateLinks(read, write float64) *Degradation {
	if read <= 0 || read > 1 || write <= 0 || write > 1 {
		panic(fmt.Sprintf("memsys: link derate (%g,%g) out of (0,1]", read, write))
	}
	d.readDerate *= read
	d.writeDerate *= write
	return d
}

// AddReplayNs adds a per-access replay latency (nanoseconds) paid by
// every memory access through the degraded links. It returns the
// overlay for chaining.
func (d *Degradation) AddReplayNs(ns float64) *Degradation {
	if ns < 0 {
		panic(fmt.Sprintf("memsys: negative replay latency %g", ns))
	}
	d.replayNs += ns
	return d
}

// LostChannels returns the number of channels lost on chip c; zero on a
// nil overlay.
func (d *Degradation) LostChannels(c arch.ChipID) int {
	if d == nil {
		return 0
	}
	return d.lostChannels[c]
}

// ReadDerate returns the Centaur read-link speed factor (1 when healthy).
func (d *Degradation) ReadDerate() float64 {
	if d == nil {
		return 1
	}
	return d.readDerate
}

// WriteDerate returns the Centaur write-link speed factor (1 when healthy).
func (d *Degradation) WriteDerate() float64 {
	if d == nil {
		return 1
	}
	return d.writeDerate
}

// ReplayNs returns the per-access replay latency adder (0 when healthy).
func (d *Degradation) ReplayNs() float64 {
	if d == nil {
		return 0
	}
	return d.replayNs
}

// Degraded reports whether the overlay changes anything.
func (d *Degradation) Degraded() bool {
	if d == nil {
		return false
	}
	return len(d.lostChannels) > 0 || d.readDerate < 1 || d.writeDerate < 1 || d.replayNs > 0
}

// ChannelFactor returns the fraction of chip c's memory channels still
// in service (1 on a nil overlay).
func (d *Degradation) ChannelFactor(c arch.ChipID, channelsPerChip int) float64 {
	lost := d.LostChannels(c)
	if lost == 0 {
		return 1
	}
	return float64(channelsPerChip-lost) / float64(channelsPerChip)
}

// MeanChannelFactor returns the average remaining-channel fraction over
// chips [0, chips).
func (d *Degradation) MeanChannelFactor(chips, channelsPerChip int) float64 {
	if d == nil || len(d.lostChannels) == 0 {
		return 1
	}
	total := 0.0
	for c := 0; c < chips; c++ {
		total += d.ChannelFactor(arch.ChipID(c), channelsPerChip)
	}
	return total / float64(chips)
}

// InterleaveWeights returns per-chip interleave weights proportional to
// each chip's surviving channel count, for rebalancing interleaved
// placements away from chips that lost channels. The slice has one
// entry per chip in [0, chips).
func (d *Degradation) InterleaveWeights(chips, channelsPerChip int) []int {
	weights := make([]int, chips)
	for c := range weights {
		w := channelsPerChip - d.LostChannels(arch.ChipID(c))
		if w < 0 {
			w = 0
		}
		weights[c] = w
	}
	return weights
}

// Validate checks the overlay against a spec's memory geometry: lost
// channels must name chips in range and leave at least one channel per
// chip in service.
func (d *Degradation) Validate(sys *arch.SystemSpec) error {
	if d == nil {
		return nil
	}
	perChip := sys.Memory.CentaursPerChip
	// Chips are checked in ascending order so that when several are
	// invalid the error — which reaches API clients verbatim — always
	// names the same one.
	chips := make([]arch.ChipID, 0, len(d.lostChannels))
	for c := range d.lostChannels {
		chips = append(chips, c)
	}
	sort.Slice(chips, func(i, j int) bool { return chips[i] < chips[j] })
	for _, c := range chips {
		n := d.lostChannels[c]
		if int(c) < 0 || int(c) >= sys.Topology.Chips {
			return fmt.Errorf("memsys: lost channels name chip %d outside [0,%d)", c, sys.Topology.Chips)
		}
		if n >= perChip {
			return fmt.Errorf("memsys: losing %d of %d channels on chip %d leaves none", n, perChip, c)
		}
	}
	return nil
}
