package memsys

import (
	"testing"

	"repro/internal/arch"
)

func TestMemDegradationNilSafe(t *testing.T) {
	var d *Degradation
	if d.LostChannels(0) != 0 || d.ReadDerate() != 1 || d.WriteDerate() != 1 || d.ReplayNs() != 0 {
		t.Error("nil overlay is not a healthy subsystem")
	}
	if d.Degraded() || d.ChannelFactor(0, 8) != 1 || d.MeanChannelFactor(8, 8) != 1 {
		t.Error("nil overlay reports degradation")
	}
	if err := d.Validate(arch.E870()); err != nil {
		t.Errorf("nil Validate: %v", err)
	}
}

func TestMemDegradationAccumulates(t *testing.T) {
	d := NewDegradation().
		LoseChannels(0, 2).
		LoseChannels(0, 1).
		DerateLinks(0.9, 1).
		DerateLinks(0.9, 0.8).
		AddReplayNs(15).
		AddReplayNs(15)
	if got := d.LostChannels(0); got != 3 {
		t.Errorf("lost channels = %d, want 3", got)
	}
	if got := d.ReadDerate(); got != 0.81 {
		t.Errorf("read derate = %g, want 0.81 (multiplicative)", got)
	}
	if got := d.WriteDerate(); got != 0.8 {
		t.Errorf("write derate = %g, want 0.8", got)
	}
	if got := d.ReplayNs(); got != 30 {
		t.Errorf("replay = %g, want 30 (additive)", got)
	}
	if !d.Degraded() {
		t.Error("overlay with events reports healthy")
	}
}

func TestMemDegradationChannelFactors(t *testing.T) {
	d := NewDegradation().LoseChannels(0, 4)
	if got := d.ChannelFactor(0, 8); got != 0.5 {
		t.Errorf("chip 0 factor = %g, want 0.5", got)
	}
	if got := d.ChannelFactor(1, 8); got != 1 {
		t.Errorf("chip 1 factor = %g, want 1", got)
	}
	if got, want := d.MeanChannelFactor(8, 8), (0.5+7)/8; got != want {
		t.Errorf("mean factor = %g, want %g", got, want)
	}
	weights := d.InterleaveWeights(8, 8)
	if weights[0] != 4 || weights[1] != 8 || len(weights) != 8 {
		t.Errorf("interleave weights = %v, want [4 8 8 ...]", weights)
	}
}

func TestMemDegradationValidate(t *testing.T) {
	spec := arch.E870()
	per := spec.Memory.CentaursPerChip
	if err := NewDegradation().LoseChannels(0, per-1).Validate(spec); err != nil {
		t.Errorf("losing all but one channel should validate: %v", err)
	}
	if err := NewDegradation().LoseChannels(0, per).Validate(spec); err == nil {
		t.Error("losing every channel validated")
	}
	if err := NewDegradation().LoseChannels(arch.ChipID(spec.Topology.Chips), 1).Validate(spec); err == nil {
		t.Error("losing channels on an out-of-range chip validated")
	}
}

func TestDegradedModelBandwidth(t *testing.T) {
	spec := arch.E870()
	calib := E870Calibration()
	healthy := New(spec, calib)

	derated := NewDegraded(spec, calib, NewDegradation().DerateLinks(0.8, 0.8))
	if got, want := derated.SystemStream(2.0/3).GBps(), healthy.SystemStream(2.0/3).GBps(); got >= want {
		t.Errorf("derated stream %g not below healthy %g", got, want)
	}
	if got, want := derated.RandomPeakBandwidth().GBps(), healthy.RandomPeakBandwidth().GBps(); got >= want {
		t.Errorf("derated random peak %g not below healthy %g", got, want)
	}

	replay := NewDegraded(spec, calib, NewDegradation().AddReplayNs(30))
	if got, want := replay.LoadedRandomLatencyNs(1), healthy.LoadedRandomLatencyNs(1); got != want+30 {
		t.Errorf("replay latency = %g, want %g + 30", got, want)
	}

	lost := NewDegraded(spec, calib, NewDegradation().LoseChannels(0, 4))
	if got, want := lost.SystemStream(2.0/3).GBps(), healthy.SystemStream(2.0/3).GBps(); got >= want {
		t.Errorf("channel-lossy stream %g not below healthy %g", got, want)
	}
}
