package memsys

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/stats"
)

// perturbedCurve scales every anchor of the efficiency curve by factor,
// clamping at 1 (efficiency cannot exceed the link bound).
func perturbedCurve(factor float64) *stats.Curve {
	base := E870RWEfficiency()
	xs := []float64{0, 0.200, 1.0 / 3, 0.500, 2.0 / 3, 0.800, 8.0 / 9, 16.0 / 17, 1}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		v := base.At(x) * factor
		if v > 1 {
			v = 1
		}
		ys[i] = v
	}
	return stats.NewCurve(xs, ys)
}

// TestCalibrationSensitivity: the paper's qualitative conclusions must
// not hinge on the exact calibration anchors. With every efficiency
// anchor perturbed by ±10%, the 2:1 mix must still win, write-only must
// still lose, and the mechanistic link bound must still cap everything.
func TestCalibrationSensitivity(t *testing.T) {
	spec := arch.E870()
	for _, factor := range []float64{0.9, 1.0, 1.1} {
		calib := E870Calibration()
		calib.RWEfficiency = perturbedCurve(factor)
		m := New(spec, calib)

		best := m.SystemStream(2.0 / 3).GBps()
		for _, f := range []float64{0, 0.2, 1.0 / 3, 0.5, 0.8, 8.0 / 9, 1} {
			got := m.SystemStream(f).GBps()
			if got > best+1e-9 {
				t.Errorf("factor %v: read share %v (%.0f GB/s) beats 2:1 (%.0f)", factor, f, got, best)
			}
			// The mechanistic bound is inviolable.
			bound := linkBound(spec.PeakReadBW().GBps(), spec.PeakWriteBW().GBps(), f)
			if got > bound+1e-9 {
				t.Errorf("factor %v: share %v exceeds the link bound", factor, f)
			}
		}
		if wo := m.SystemStream(0).GBps(); wo >= m.SystemStream(1).GBps() {
			t.Errorf("factor %v: write-only not below read-only", factor)
		}
	}
}

// TestRandomCalibrationSensitivity: Figure 4's qualitative content
// (rising then saturating, SMT8 x 4 lists at the ceiling) survives ±20%
// perturbation of the loaded-latency slope.
func TestRandomCalibrationSensitivity(t *testing.T) {
	spec := arch.E870()
	for _, factor := range []float64{0.8, 1.2} {
		calib := E870Calibration()
		calib.RandomQueueNsPerLine *= factor
		m := New(spec, calib)
		prev := 0.0
		for _, n := range []int{64, 256, 1024, 2048, 4096} {
			got := m.RandomAccess(n).GBps()
			if got+1e-9 < prev {
				t.Errorf("factor %v: bandwidth fell at %d outstanding", factor, n)
			}
			prev = got
		}
		cap := spec.PeakReadBW().GBps() * calib.RandomPeakFraction
		if got := m.RandomAccess(1 << 16).GBps(); !stats.Within(got, cap, 0.001) {
			t.Errorf("factor %v: extreme concurrency %.0f not at the %.0f ceiling", factor, got, cap)
		}
	}
}
