package memsys

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/units"
)

// PlacementKind selects a NUMA allocation policy — the "low-level
// operating system facilities" the paper uses to allocate memory on
// specific sockets for the Table IV measurements, and the policies the
// SpMV implementation exploits (partition-local matrices, per-socket
// replicated vectors).
type PlacementKind int

// Placement policies.
const (
	// PlaceLocal homes every page on the requesting chip.
	PlaceLocal PlacementKind = iota
	// PlaceOnChip homes every page on one fixed chip.
	PlaceOnChip
	// PlaceInterleaved round-robins pages across all chips.
	PlaceInterleaved
	// PlaceWeighted interleaves pages across chips proportionally to
	// per-chip weights — the rebalanced policy a degraded machine uses
	// so chips that lost memory channels receive fewer pages.
	PlaceWeighted
)

// String implements fmt.Stringer.
func (k PlacementKind) String() string {
	switch k {
	case PlaceLocal:
		return "local"
	case PlaceOnChip:
		return "on-chip"
	case PlaceInterleaved:
		return "interleaved"
	case PlaceWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("PlacementKind(%d)", int(k))
	}
}

// Placement is a concrete allocation policy.
type Placement struct {
	Kind PlacementKind
	// Chip is the target for PlaceOnChip and the requester for
	// PlaceLocal.
	Chip arch.ChipID
	// Granule is the interleave granule (page size); zero defaults to
	// 64 KiB, the system's base page.
	Granule units.Bytes
	// Chips is the socket count for interleaving.
	Chips int
	// Weights gives each chip's share of granules for PlaceWeighted;
	// Weights[i] granules in every round go to chip i. A zero weight
	// takes the chip out of the interleave entirely.
	Weights []int
}

// Local returns the default local policy for a requester.
func Local(chip arch.ChipID) Placement {
	return Placement{Kind: PlaceLocal, Chip: chip}
}

// OnChip pins memory to one chip.
func OnChip(chip arch.ChipID) Placement {
	return Placement{Kind: PlaceOnChip, Chip: chip}
}

// Interleaved spreads pages round-robin over chips.
func Interleaved(chips int) Placement {
	return Placement{Kind: PlaceInterleaved, Chips: chips}
}

// WeightedInterleaved spreads pages over chips proportionally to
// weights (one entry per chip); at least one weight must be positive.
func WeightedInterleaved(weights []int) Placement {
	return Placement{Kind: PlaceWeighted, Chips: len(weights), Weights: weights}
}

// HomeFunc returns the address-to-home-chip mapping the machine walker
// consumes.
func (p Placement) HomeFunc() func(addr uint64) arch.ChipID {
	switch p.Kind {
	case PlaceLocal, PlaceOnChip:
		chip := p.Chip
		return func(uint64) arch.ChipID { return chip }
	case PlaceInterleaved:
		if p.Chips <= 0 {
			panic("memsys: interleaved placement needs a chip count")
		}
		granule := p.Granule
		if granule == 0 {
			granule = 64 * units.KiB
		}
		g := uint64(granule)
		n := uint64(p.Chips)
		return func(addr uint64) arch.ChipID {
			return arch.ChipID((addr / g) % n)
		}
	case PlaceWeighted:
		pattern := weightedPattern(p.Weights)
		granule := p.Granule
		if granule == 0 {
			granule = 64 * units.KiB
		}
		g := uint64(granule)
		n := uint64(len(pattern))
		return func(addr uint64) arch.ChipID {
			return pattern[(addr/g)%n]
		}
	default:
		panic(fmt.Sprintf("memsys: unknown placement %v", p.Kind))
	}
}

// weightedPattern expands per-chip weights into the repeating granule
// pattern weighted interleaving walks: weights {3,1} become the chip
// sequence [0 0 0 1]. It panics when no weight is positive.
func weightedPattern(weights []int) []arch.ChipID {
	var pattern []arch.ChipID
	for chip, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("memsys: negative interleave weight %d for chip %d", w, chip))
		}
		for i := 0; i < w; i++ {
			pattern = append(pattern, arch.ChipID(chip))
		}
	}
	if len(pattern) == 0 {
		panic("memsys: weighted placement needs at least one positive weight")
	}
	return pattern
}
