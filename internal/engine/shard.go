package engine

// This file is the sharded discrete-event driver: the same simulation,
// split over per-lane event queues (one lane per chip/socket) that a
// persistent parallel.Team executes in conservative-lookahead rounds.
//
// The contract is bit-identity with the sequential engine. It rests on
// three invariants:
//
//   - Canonical merge order. Every event carries a (time, lane,
//     sequence) key: the lane ID lives in the top bits of the lane's
//     sequence counter (laneShift), so the existing scheduled.before
//     comparison — time first, sequence second — already realizes the
//     canonical (timestamp, shard ID, sequence number) order without a
//     third field. Within one lane, sequence numbers grow in schedule
//     order exactly as in the sequential engine.
//
//   - Lane confinement. An event executes on the lane it was scheduled
//     on and touches only that lane's state. Cross-lane effects travel
//     exclusively through Send, which stamps the message with the
//     sender's clock and sequence counter. Each lane therefore performs
//     the same sequence of event executions and RNG draws no matter
//     which driver (RunMerged, RunSharded at any worker count) runs it.
//
//   - Conservative lookahead. A cross-shard message sent at time t
//     arrives no earlier than t + lookahead. A round executes only
//     events strictly below cut = minNextEventTime + lookahead, so any
//     message generated during the round is stamped at or after cut and
//     cannot land inside the window being executed. Messages exchange
//     at the barrier between rounds, always ahead of the receiver's
//     execution front.
//
// Mailboxes are single-producer single-consumer by construction: box
// [w][dst] is appended to only by worker w (the one running the sending
// lane) and drained only by the coordinator between rounds, so the hot
// path takes no locks. The Team's dispatch/wait pair provides the
// happens-before edges for the round state and the tallies.

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// laneShift positions the lane ID in the top bits of a lane's sequence
// counter, realizing the canonical (time, lane, sequence) merge order
// through the existing (at, seq) heap comparison. 2^56 events per lane
// is beyond any budgeted run.
const laneShift = 56

// maxLanes bounds the lane count so lane IDs fit above laneShift.
const maxLanes = 1 << (64 - laneShift)

// mail is one cross-lane message: an event stamped with the sender's
// delivery time and sequence key.
type mail struct {
	at   Time
	seq  uint64
	call Event
}

// mailbox is one SPSC lane-to-lane message buffer. The backing array is
// reused across rounds.
type mailbox []mail

// shardTally is one shard's per-round report, written by its worker
// inside the round and read by the coordinator after the barrier. The
// padding keeps neighbouring shards' tallies off one cache line.
type shardTally struct {
	events uint64
	_      [56]byte
}

// ShardedSim is a discrete-event simulation partitioned into lanes
// (one per chip/socket in the machine model). Events are scheduled on
// a lane with At, exchange between lanes with Send, and the whole
// system runs under one of two drivers:
//
//   - RunMerged: one goroutine popping the globally minimal event
//     across all lanes — the sequential reference.
//   - RunSharded: lanes grouped into contiguous shards, one worker per
//     shard, synchronized at conservative-lookahead barriers.
//
// Both drivers produce bit-identical simulations; RunSharded at any
// worker count that divides the lane count matches RunMerged exactly.
type ShardedSim struct {
	lanes    []*Sim
	minDelay Time // the conservative lookahead (cross-shard latency floor)
	budget   *Budget

	// Round state: written by the coordinator between barriers, read by
	// the shard workers during a round. workerOf is nil outside
	// RunSharded, which routes every Send straight into the target lane.
	workerOf     []int
	perWorker    int
	roundCut     Time
	roundHorizon Time
	roundCap     uint64
	boxes        [][]mailbox // [sending worker][destination lane]
	tallies      []shardTally

	// Accumulated barrier statistics (coordinator-only writes).
	rounds         uint64
	barrierStalls  uint64
	mailboxMsgs    uint64
	criticalEvents uint64
	shardEvents    []uint64
	shardStalls    []uint64
	shardSent      []uint64
}

// NewShardedSim builds a simulation of `lanes` lanes with the given
// conservative lookahead: the guaranteed minimum delay of any
// cross-shard Send (the fabric's cheapest cross-chip hop in the machine
// model). The lookahead must be positive for RunSharded with more than
// one worker; RunMerged ignores it.
func NewShardedSim(lanes int, lookahead Time) *ShardedSim {
	if lanes <= 0 || lanes > maxLanes {
		panic(fmt.Sprintf("engine: lane count %d outside [1,%d]", lanes, maxLanes))
	}
	if lookahead < 0 {
		panic(fmt.Sprintf("engine: negative lookahead %v", lookahead))
	}
	ss := &ShardedSim{lanes: make([]*Sim, lanes), minDelay: lookahead}
	for i := range ss.lanes {
		// Seeding the lane's sequence counter with its ID in the top bits
		// makes (at, seq) the canonical (time, lane, sequence) order.
		ss.lanes[i] = &Sim{seq: uint64(i) << laneShift}
	}
	return ss
}

// SetBudget attaches a watchdog budget. RunMerged charges it per event
// exactly like Sim.Run; RunSharded counts per shard and books the sum
// at each barrier (the single trip point), so only the coordinator
// goroutine ever touches the budget.
func (ss *ShardedSim) SetBudget(b *Budget) { ss.budget = b }

// Lanes returns the lane count.
func (ss *ShardedSim) Lanes() int { return len(ss.lanes) }

// Lookahead returns the conservative lookahead the simulation was
// built with.
func (ss *ShardedSim) Lookahead() Time { return ss.minDelay }

// Events returns the total number of events executed across all lanes.
func (ss *ShardedSim) Events() uint64 {
	var n uint64
	for _, l := range ss.lanes {
		n += l.events
	}
	return n
}

// LaneEvents returns one lane's executed-event count.
func (ss *ShardedSim) LaneEvents(lane int) uint64 { return ss.lanes[lane].events }

// LaneNow returns one lane's clock.
func (ss *ShardedSim) LaneNow(lane int) Time { return ss.lanes[lane].now }

// At schedules ev on a lane at absolute time t (not in the lane's
// past). Use it for initial conditions; events already running on the
// lane reach their own *Sim through the callback argument.
func (ss *ShardedSim) At(lane int, t Time, ev Event) { ss.lanes[lane].At(t, ev) }

// inject pushes an already-stamped message into the lane's queue,
// bypassing the At past-check: the drivers guarantee delivery never
// precedes the receiving lane's clock (see the lookahead invariant in
// the file comment).
//
//p8:hotpath
func (s *Sim) inject(m mail) {
	s.queue.push(scheduled{at: m.at, seq: m.seq, call: m.call})
	if n := len(s.queue); n > s.maxQueue {
		s.maxQueue = n
	}
}

// Send schedules ev on lane `to`, delay nanoseconds after lane
// `from`'s clock. The message carries the sender's (time, lane,
// sequence) key, so delivery order is canonical regardless of driver.
// During a sharded run a send that crosses shards must respect the
// lookahead; a shorter delay is a model bug and panics.
//
//p8:hotpath
func (ss *ShardedSim) Send(from, to int, delay Time, ev Event) {
	if delay < 0 {
		panic("engine: negative cross-lane delay")
	}
	src := ss.lanes[from]
	src.seq++
	m := mail{at: src.now + delay, seq: src.seq, call: ev}
	if ss.workerOf == nil {
		ss.lanes[to].inject(m)
		return
	}
	sw, dw := ss.workerOf[from], ss.workerOf[to]
	if sw == dw {
		// Same worker owns both lanes: direct injection is race-free and
		// the round's rescan picks the event up if it lands in-window.
		ss.lanes[to].inject(m)
		return
	}
	if delay < ss.minDelay {
		panic("engine: cross-shard send below the lookahead bound")
	}
	ss.shardSent[sw]++
	box := &ss.boxes[sw][to]
	*box = append(*box, m)
}

// minLane returns the lane in [lo, hi) holding the globally minimal
// (time, lane, sequence) head, or -1 when all are empty. A linear scan:
// lane counts are single digits (chips per system), so scanning beats
// maintaining a second heap.
//
//p8:hotpath
func (ss *ShardedSim) minLane(lo, hi int) int {
	best := -1
	for i := lo; i < hi; i++ {
		q := ss.lanes[i].queue
		if len(q) == 0 {
			continue
		}
		if best < 0 || q[0].before(ss.lanes[best].queue[0]) {
			best = i
		}
	}
	return best
}

// RunMerged executes the whole simulation on the calling goroutine by
// repeatedly popping the canonically minimal event across all lanes —
// the sequential reference the sharded driver is bit-compared against.
// Run semantics match Sim.Run: events at exactly `horizon` execute,
// 0 means no horizon; the return value is the number of events
// executed by this call.
//
//p8:hotpath
func (ss *ShardedSim) RunMerged(horizon Time) uint64 {
	var n uint64
	for {
		best := ss.minLane(0, len(ss.lanes))
		if best < 0 {
			break
		}
		l := ss.lanes[best]
		if horizon > 0 && l.queue[0].at > horizon {
			break
		}
		next := l.queue.pop()
		l.now = next.at
		l.events++
		ss.budget.Charge(1)
		l.dispatch(next)
		n++
	}
	return n
}

// RunSharded executes the simulation on `workers` long-lived Team
// goroutines, each owning a contiguous group of lanes, in
// conservative-lookahead rounds:
//
//  1. The coordinator drains every mailbox into its destination lane.
//  2. The round horizon is cut = minNextEventTime + lookahead.
//  3. Each worker merge-executes its own lanes' events with time < cut
//     (and <= horizon) in canonical order.
//  4. At the barrier the coordinator books the round's events against
//     the budget and loops.
//
// The lane owning the minimal event always progresses, so rounds
// advance until the queues drain or pass the horizon. The worker count
// must divide the lane count; workers == 1 degenerates to a sequential
// round loop (no goroutines). The result is bit-identical to RunMerged.
func (ss *ShardedSim) RunSharded(workers int, horizon Time) uint64 {
	if workers <= 0 || len(ss.lanes)%workers != 0 {
		panic(fmt.Sprintf("engine: %d shard workers do not divide %d lanes", workers, len(ss.lanes)))
	}
	if workers > 1 && ss.minDelay <= 0 {
		panic("engine: sharded run needs a positive lookahead")
	}
	ss.perWorker = len(ss.lanes) / workers
	ss.workerOf = make([]int, len(ss.lanes))
	for i := range ss.workerOf {
		ss.workerOf[i] = i / ss.perWorker
	}
	ss.boxes = make([][]mailbox, workers)
	for w := range ss.boxes {
		ss.boxes[w] = make([]mailbox, len(ss.lanes))
	}
	ss.tallies = make([]shardTally, workers)
	ss.shardEvents = make([]uint64, workers)
	ss.shardStalls = make([]uint64, workers)
	ss.shardSent = make([]uint64, workers)
	defer func() {
		// Outside a sharded run Send routes directly again, and the
		// mailboxes (all drained here: ChargeBatch is the only panic
		// source and it fires before new sends) can be collected.
		ss.workerOf = nil
		ss.boxes = nil
	}()

	team := parallel.NewTeam(workers)
	defer team.Close()
	body := ss.runShardBody // one method-value conversion for the whole run

	var total uint64
	for {
		ss.mailboxMsgs += ss.drainMailboxes()
		head, ok := ss.minNext()
		if !ok || (horizon > 0 && head > horizon) {
			break
		}
		ss.roundCut = head + ss.minDelay
		ss.roundHorizon = horizon
		ss.roundCap = ss.budget.RoundCap()
		team.StaticFor(workers, body)
		ss.rounds++
		var sum, max uint64
		for w := range ss.tallies {
			ev := ss.tallies[w].events
			sum += ev
			ss.shardEvents[w] += ev
			if ev == 0 {
				ss.barrierStalls++
				ss.shardStalls[w]++
			}
			if ev > max {
				max = ev
			}
		}
		ss.criticalEvents += max
		total += sum
		// The single trip point: workers only count, the coordinator
		// books. A trip panics here, on the experiment's goroutine, where
		// the harness's isolation wrapper can catch it.
		ss.budget.ChargeBatch(sum)
	}
	return total
}

// minNext returns the minimal head time across all lanes; ok is false
// when every queue is empty.
func (ss *ShardedSim) minNext() (Time, bool) {
	best := ss.minLane(0, len(ss.lanes))
	if best < 0 {
		return 0, false
	}
	return ss.lanes[best].queue[0].at, true
}

// drainMailboxes moves every pending cross-shard message into its
// destination lane's queue. Coordinator-only, between rounds.
func (ss *ShardedSim) drainMailboxes() uint64 {
	var moved uint64
	for w := range ss.boxes {
		for dst, box := range ss.boxes[w] {
			if len(box) == 0 {
				continue
			}
			for i, m := range box {
				ss.lanes[dst].inject(m)
				box[i] = mail{} // release the Event closure
			}
			moved += uint64(len(box))
			ss.boxes[w][dst] = box[:0]
		}
	}
	return moved
}

// runShardBody is the Team body: with one shard per worker it runs
// exactly one shard, but the signature covers any static split.
//
//p8:hotpath
func (ss *ShardedSim) runShardBody(_, lo, hi int) {
	for shard := lo; shard < hi; shard++ {
		ss.runShard(shard)
	}
}

// runShard merge-executes one shard's lanes in canonical order up to
// the round cut. It never panics: budget exhaustion is bounded by the
// round cap and cancellation by an amortized poll, both of which stop
// the loop early and leave the trip to the coordinator's barrier —
// a worker-goroutine panic would escape the harness's isolation.
//
//p8:hotpath
func (ss *ShardedSim) runShard(shard int) {
	lo := shard * ss.perWorker
	hi := lo + ss.perWorker
	cut, horizon, limit := ss.roundCut, ss.roundHorizon, ss.roundCap
	budget := ss.budget
	var n uint64
	for {
		best := ss.minLane(lo, hi)
		if best < 0 {
			break
		}
		l := ss.lanes[best]
		at := l.queue[0].at
		// Strictly below the cut: an event at exactly cut may have to
		// merge after a message delivered at the next barrier with the
		// same timestamp but a smaller (lane, sequence) key.
		if at >= cut || (horizon > 0 && at > horizon) {
			break
		}
		if limit > 0 && n >= limit {
			break // budget exhausted; the barrier charge trips
		}
		if n&cancelCheckMask == cancelCheckMask && budget.Cancelled() {
			break // cancelled; the barrier charge trips
		}
		next := l.queue.pop()
		l.now = next.at
		l.events++
		n++
		l.dispatch(next)
	}
	ss.tallies[shard].events = n
}

// PublishStats flushes the simulation's counters into a registry
// scope: the aggregate "events"/"scheduled"/"queue_depth_hwm" triple
// every Sim publishes, the barrier machinery's counters (rounds,
// barrier stalls, mailbox traffic, the critical path of per-round
// maxima), a lookahead-efficiency gauge (events as a permille of
// shards x critical path — 1000 means perfectly balanced rounds), and
// one child scope per shard of the last sharded run with its events,
// stalls and sent messages. A nil registry is a no-op.
func (ss *ShardedSim) PublishStats(reg *obs.Registry) {
	if reg == nil {
		return
	}
	var events, scheduled uint64
	maxq := 0
	for i, l := range ss.lanes {
		events += l.events
		scheduled += l.seq - uint64(i)<<laneShift
		if l.maxQueue > maxq {
			maxq = l.maxQueue
		}
	}
	reg.Counter("events").Add(events)
	reg.Counter("scheduled").Add(scheduled)
	reg.Gauge("queue_depth_hwm").SetMax(int64(maxq))
	reg.Gauge("lanes").Set(int64(len(ss.lanes)))
	reg.Gauge("lookahead_ns").Set(int64(ss.minDelay))
	if ss.shardEvents == nil {
		return // merged run: no barrier machinery to report
	}
	reg.Counter("rounds").Add(ss.rounds)
	reg.Counter("barrier_stalls").Add(ss.barrierStalls)
	reg.Counter("mailbox_msgs").Add(ss.mailboxMsgs)
	reg.Counter("critical_path_events").Add(ss.criticalEvents)
	reg.Gauge("shards").Set(int64(len(ss.shardEvents)))
	if ss.criticalEvents > 0 {
		eff := events * 1000 / (ss.criticalEvents * uint64(len(ss.shardEvents)))
		reg.Gauge("lookahead_efficiency_permille").Set(int64(eff))
	}
	for w := range ss.shardEvents {
		sh := reg.Child(fmt.Sprintf("shard%d", w))
		sh.Counter("events").Add(ss.shardEvents[w])
		sh.Counter("barrier_stalls").Add(ss.shardStalls[w])
		sh.Counter("mailbox_sent").Add(ss.shardSent[w])
	}
}
