package engine

import (
	"container/heap"
	"math/rand"
	"testing"
)

// BenchmarkSchedule measures raw push+pop throughput of the event queue
// under a randomized arrival pattern (the DES hot path). The event loop
// it pins (eventQueue.push/pop, Sim.Run/dispatch, the Resource service
// protocol) carries //p8:hotpath directives, so p8lint holds its
// zero-allocation budget statically.
func BenchmarkSchedule(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	times := make([]Time, 4096)
	for i := range times {
		times[i] = Time(r.Float64() * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q eventQueue
		for _, t := range times {
			q.push(scheduled{at: t})
		}
		for len(q) > 0 {
			q.pop()
		}
	}
}

// BenchmarkScheduleContainerHeap is the pre-optimization baseline: the
// same workload through container/heap with interface{} boxing.
func BenchmarkScheduleContainerHeap(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	times := make([]Time, 4096)
	for i := range times {
		times[i] = Time(r.Float64() * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q refQueue
		for _, t := range times {
			heap.Push(&q, scheduled{at: t})
		}
		for q.Len() > 0 {
			heap.Pop(&q)
		}
	}
}

// BenchmarkSimPointerChase runs a closed-loop pointer-chaser workload —
// the structure of machine.SimulateRandomAccess — through the full Sim +
// Resource stack.
func BenchmarkSimPointerChase(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Sim
		banks := make([]*Resource, 64)
		for j := range banks {
			banks[j] = NewResource("bank", 1)
		}
		r := rand.New(rand.NewSource(2))
		var issue, complete Event
		issue = func(sim *Sim) {
			banks[r.Intn(len(banks))].Acquire(sim, 50, complete)
		}
		complete = func(sim *Sim) { sim.After(45, issue) }
		for c := 0; c < 256; c++ {
			s.At(Time(c), issue)
		}
		s.Run(100_000)
	}
}
