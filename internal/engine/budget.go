package engine

import (
	"fmt"
	"sync/atomic"
)

// cancelCheckMask sets how often a Budget consults its cross-goroutine
// cancellation flag: every (mask+1) charged events. The flag is an
// atomic and the charge path is reached from //p8:hotpath code, so the
// load is amortized instead of paid per event.
const cancelCheckMask = 1023

// Budget is the cooperative watchdog attached to one experiment's
// simulations. Every DES event and every walker access charges one
// unit; when a configured limit is exhausted — or the budget is
// cancelled from another goroutine — the charging simulation panics
// with a Trip, which the harness's isolation wrapper converts into a
// failed report. This is how a runaway simulation (an event loop that
// never drains, a trace that never ends) fails cleanly instead of
// hanging an entire sweep.
//
// A nil *Budget is unlimited and never trips: simulations constructed
// outside the harness (benchmarks, unit tests, library use) pay only a
// nil check. A Budget belongs to a single experiment; the charge path
// is not safe for concurrent use, but Cancel may be called from any
// goroutine. A sharded simulation therefore never charges from its
// worker goroutines: each shard loop counts events in a plain local,
// bounded by RoundCap, and the coordinator books the round's sum with
// ChargeBatch at the barrier — the single trip point, on the one
// goroutine whose panics the harness's isolation wrapper catches.
type Budget struct {
	// spent and limit are plain fields: charges come from the one
	// goroutine running the experiment's simulations.
	spent uint64
	limit uint64
	// cancelled is the only cross-goroutine field; Cancel sets it and
	// the charge path polls it every cancelCheckMask+1 events.
	cancelled atomic.Bool
}

// NewBudget returns a budget allowing `events` charges; 0 means no
// event limit (the budget then only trips on Cancel).
func NewBudget(events uint64) *Budget {
	return &Budget{limit: events}
}

// Trip is the panic value raised when a Budget is exhausted or
// cancelled. The harness recovers it and renders a watchdog or
// cancellation failure; everything else treats it as any other panic.
type Trip struct {
	// Events is how many charges had been spent when the trip fired.
	Events uint64
	// Limit is the configured event limit (0 when the trip came from
	// cancellation rather than exhaustion).
	Limit uint64
	// Cancelled is true when the trip came from Cancel rather than
	// from exhausting the event limit.
	Cancelled bool
}

// Error renders the trip; Trip implements error so recovered values
// print cleanly.
func (t Trip) Error() string {
	if t.Cancelled {
		return fmt.Sprintf("engine: run cancelled after %d events", t.Events)
	}
	return fmt.Sprintf("engine: event budget exhausted (%d of %d events)", t.Events, t.Limit)
}

// Charge books n events against the budget and panics with a Trip when
// the limit is exhausted or the budget has been cancelled. A nil
// receiver is unlimited. Called from //p8:hotpath loops, so the
// cancellation atomic is polled only every cancelCheckMask+1 charges.
func (b *Budget) Charge(n uint64) {
	if b == nil {
		return
	}
	b.spent += n
	if b.limit > 0 && b.spent > b.limit {
		// The overflowing charge was refused, not executed: clamp so the
		// diagnostic reads "limit of limit events".
		b.spent = b.limit
		panic(Trip{Events: b.spent, Limit: b.limit})
	}
	if b.spent&cancelCheckMask < n && b.cancelled.Load() {
		panic(Trip{Events: b.spent, Cancelled: true})
	}
}

// ChargeBatch books one barrier round's worth of shard-loop events.
// It is Charge with an unconditional cancellation check: barriers are
// rare (one per lookahead window, not one per event), so the poll is
// not amortized away, and a cancelled sharded run trips at the next
// barrier no matter how the round total lands against the mask. The
// trip arithmetic is identical to Charge's, so a sharded run renders
// the exact same Trip as the sequential engine. A nil receiver is
// unlimited.
func (b *Budget) ChargeBatch(n uint64) {
	if b == nil {
		return
	}
	b.spent += n
	if b.limit > 0 && b.spent > b.limit {
		b.spent = b.limit
		panic(Trip{Events: b.spent, Limit: b.limit})
	}
	if b.cancelled.Load() {
		panic(Trip{Events: b.spent, Cancelled: true})
	}
}

// RoundCap returns how many events one shard loop may execute between
// barriers before it must stop and let the coordinator's ChargeBatch
// trip: the remaining allowance plus the one overflowing event (so the
// barrier charge exceeds the limit exactly as a sequential overrun
// would). 0 means unlimited (nil or no event limit).
func (b *Budget) RoundCap() uint64 {
	if b == nil || b.limit == 0 {
		return 0
	}
	// spent never exceeds limit (Charge/ChargeBatch clamp on trip).
	return b.limit - b.spent + 1
}

// Cancel trips the budget from any goroutine: the next polled charge
// panics with a cancellation Trip. Idempotent.
func (b *Budget) Cancel() {
	if b != nil {
		b.cancelled.Store(true)
	}
}

// Cancelled reports whether Cancel has been called.
func (b *Budget) Cancelled() bool {
	return b != nil && b.cancelled.Load()
}

// Spent returns the number of events charged so far.
func (b *Budget) Spent() uint64 {
	if b == nil {
		return 0
	}
	return b.spent
}

// Limit returns the configured event limit (0 = unlimited).
func (b *Budget) Limit() uint64 {
	if b == nil {
		return 0
	}
	return b.limit
}
