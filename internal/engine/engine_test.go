package engine

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.At(30, func(*Sim) { order = append(order, 3) })
	s.At(10, func(*Sim) { order = append(order, 1) })
	s.At(20, func(*Sim) { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("final time = %v, want 30", s.Now())
	}
	if s.Events() != 3 {
		t.Errorf("events = %d", s.Events())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func(*Sim) { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", order)
		}
	}
}

func TestAfterChains(t *testing.T) {
	var s Sim
	var times []Time
	var step func(*Sim)
	n := 0
	step = func(sim *Sim) {
		times = append(times, sim.Now())
		n++
		if n < 3 {
			sim.After(7, step)
		}
	}
	s.After(7, step)
	s.Run(0)
	want := []Time{7, 14, 21}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times = %v, want %v", times, want)
			break
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var s Sim
	s.At(10, func(sim *Sim) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		sim.At(5, func(*Sim) {})
	})
	s.Run(0)
}

func TestRunHorizon(t *testing.T) {
	var s Sim
	ran := 0
	s.At(10, func(*Sim) { ran++ })
	s.At(100, func(*Sim) { ran++ })
	n := s.Run(50)
	if n != 1 || ran != 1 {
		t.Errorf("horizon run executed %d events", ran)
	}
	if s.Now() != 10 {
		t.Errorf("now = %v", s.Now())
	}
	s.Run(0)
	if ran != 2 {
		t.Errorf("remaining event did not run")
	}
}

func TestResourceSerializes(t *testing.T) {
	var s Sim
	r := NewResource("chan", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		r.Acquire(&s, 10, func(sim *Sim) { done = append(done, sim.Now()) })
	}
	if r.Busy() != 1 || r.QueueLen() != 2 {
		t.Fatalf("busy=%d queue=%d", r.Busy(), r.QueueLen())
	}
	s.Run(0)
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("completions = %v, want %v", done, want)
			break
		}
	}
}

func TestResourceParallelServers(t *testing.T) {
	var s Sim
	r := NewResource("link", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		r.Acquire(&s, 10, func(sim *Sim) { done = append(done, sim.Now()) })
	}
	s.Run(0)
	// Two at a time: completions at 10,10,20,20.
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("completions = %v, want %v", done, want)
			break
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	var s Sim
	r := NewResource("mem", 1)
	r.Acquire(&s, 10, nil)
	s.Run(0)
	// One server busy 10ns over 10ns of simulated time.
	if u := r.Utilization(&s); math.Abs(u-1.0) > 1e-12 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestResourceUtilizationAtTimeZero(t *testing.T) {
	var s Sim
	r := NewResource("m", 1)
	if r.Utilization(&s) != 0 {
		t.Error("utilization at t=0 should be 0")
	}
}

func TestResourcePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-server resource did not panic")
			}
		}()
		NewResource("x", 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative hold did not panic")
			}
		}()
		var s Sim
		NewResource("x", 1).Acquire(&s, -1, nil)
	}()
}

func TestStepEmptyQueue(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}
