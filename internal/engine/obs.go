package engine

import "repro/internal/obs"

// PublishStats flushes the simulation's accumulated counters into a
// registry scope: counters "events" and "scheduled", and gauge
// "queue_depth_hwm" (kept as a maximum, so several Sims publishing into
// one scope report the deepest queue any of them saw). Call it once per
// Sim, after the run; a nil registry is a no-op. See internal/obs for
// the counter taxonomy.
func (s *Sim) PublishStats(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("events").Add(s.events)
	reg.Counter("scheduled").Add(s.seq)
	reg.Gauge("queue_depth_hwm").SetMax(int64(s.maxQueue))
}
