package engine

import (
	"strings"
	"testing"
)

// trips runs f and returns the Trip it panicked with, or nil.
func trips(f func()) *Trip {
	var tripped *Trip
	func() {
		defer func() {
			if cause := recover(); cause != nil {
				t := cause.(Trip)
				tripped = &t
			}
		}()
		f()
	}()
	return tripped
}

func TestBudgetNilIsUnlimited(t *testing.T) {
	var b *Budget
	if tr := trips(func() { b.Charge(1 << 40) }); tr != nil {
		t.Fatalf("nil budget tripped: %v", tr)
	}
	if b.Spent() != 0 || b.Limit() != 0 || b.Cancelled() {
		t.Error("nil budget accessors not zero")
	}
	b.Cancel() // must not panic
}

func TestBudgetExhaustion(t *testing.T) {
	b := NewBudget(100)
	for i := 0; i < 100; i++ {
		b.Charge(1)
	}
	if b.Spent() != 100 {
		t.Fatalf("spent = %d, want 100", b.Spent())
	}
	tr := trips(func() { b.Charge(1) })
	if tr == nil {
		t.Fatal("charge past the limit did not trip")
	}
	if tr.Cancelled || tr.Events != 100 || tr.Limit != 100 {
		t.Errorf("trip = %+v, want exhaustion at 100 of 100", tr)
	}
	if !strings.Contains(tr.Error(), "event budget exhausted (100 of 100 events)") {
		t.Errorf("Error() = %q", tr.Error())
	}
}

func TestBudgetZeroLimitOnlyCancels(t *testing.T) {
	b := NewBudget(0)
	if tr := trips(func() { b.Charge(1 << 20) }); tr != nil {
		t.Fatalf("unlimited budget tripped: %v", tr)
	}
	b.Cancel()
	if !b.Cancelled() {
		t.Fatal("Cancel did not mark the budget")
	}
	tr := trips(func() {
		for i := 0; i < 2*cancelCheckMask; i++ {
			b.Charge(1)
		}
	})
	if tr == nil {
		t.Fatal("cancelled budget never tripped within two poll windows")
	}
	if !tr.Cancelled {
		t.Errorf("trip = %+v, want cancellation", tr)
	}
	if !strings.Contains(tr.Error(), "run cancelled after") {
		t.Errorf("Error() = %q", tr.Error())
	}
}

func TestBudgetLargeChargesPollCancellation(t *testing.T) {
	// Charges bigger than the poll mask must still observe the flag:
	// spent&mask < n holds on every charge with n > mask.
	b := NewBudget(0)
	b.Cancel()
	if tr := trips(func() { b.Charge(cancelCheckMask + 1) }); tr == nil || !tr.Cancelled {
		t.Fatalf("large charge missed the cancellation flag: %v", tr)
	}
}
