// Package engine is a small discrete-event simulation kernel: a simulated
// clock, a time-ordered event queue, and FIFO-queued resources with finite
// service capacity. The machine model uses it for experiments where
// concurrency and queueing matter — random-access bandwidth with limited
// load-miss queues (Figure 4) and link contention — while pure dependent-
// load latency walks (Figure 2) do not need it.
package engine

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time float64

// Event is a callback scheduled at a point in simulated time.
type Event func(s *Sim)

type scheduled struct {
	at   Time
	seq  uint64 // tie-break so same-time events run in schedule order
	call Event
}

type eventQueue []scheduled

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(scheduled)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// Sim is a discrete-event simulation instance. The zero value is ready to
// use.
type Sim struct {
	now    Time
	seq    uint64
	queue  eventQueue
	events uint64
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Events returns the number of events executed so far.
func (s *Sim) Events() uint64 { return s.events }

// At schedules ev at absolute time t, which must not be in the past.
func (s *Sim) At(t Time, ev Event) {
	if t < s.now {
		panic(fmt.Sprintf("engine: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, scheduled{at: t, seq: s.seq, call: ev})
}

// After schedules ev delay nanoseconds from now; negative delays panic.
func (s *Sim) After(delay Time, ev Event) { s.At(s.now+delay, ev) }

// Step executes the next event. It reports false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	next := heap.Pop(&s.queue).(scheduled)
	s.now = next.at
	s.events++
	next.call(s)
	return true
}

// Run executes events until the queue drains or until simulated time
// exceeds horizon (0 means no horizon). It returns the number of events
// executed by this call.
func (s *Sim) Run(horizon Time) uint64 {
	start := s.events
	for len(s.queue) > 0 {
		if horizon > 0 && s.queue[0].at > horizon {
			break
		}
		s.Step()
	}
	return s.events - start
}

// Resource is a service station with a fixed number of servers and an
// unbounded FIFO queue, e.g. a memory channel or an SMP link direction.
// Acquire requests service for a given holding time; done runs when the
// service completes.
type Resource struct {
	Name    string
	servers int
	busy    int
	waiting []pending
	// BusyTime accumulates server-occupancy (ns x servers) for utilization
	// accounting.
	BusyTime float64
}

type pending struct {
	hold Time
	done Event
}

// NewResource returns a resource with the given number of servers (> 0).
func NewResource(name string, servers int) *Resource {
	if servers <= 0 {
		panic("engine: resource needs at least one server")
	}
	return &Resource{Name: name, servers: servers}
}

// Acquire requests one server for hold nanoseconds; when service finishes,
// done is scheduled (it may be nil). Requests queue FIFO when all servers
// are busy.
func (r *Resource) Acquire(s *Sim, hold Time, done Event) {
	if hold < 0 {
		panic("engine: negative hold time")
	}
	if r.busy < r.servers {
		r.start(s, hold, done)
		return
	}
	r.waiting = append(r.waiting, pending{hold: hold, done: done})
}

func (r *Resource) start(s *Sim, hold Time, done Event) {
	r.busy++
	r.BusyTime += float64(hold)
	s.After(hold, func(s *Sim) {
		r.busy--
		if len(r.waiting) > 0 {
			next := r.waiting[0]
			r.waiting = r.waiting[1:]
			r.start(s, next.hold, next.done)
		}
		if done != nil {
			done(s)
		}
	})
}

// QueueLen returns the number of waiting requests.
func (r *Resource) QueueLen() int { return len(r.waiting) }

// Busy returns the number of occupied servers.
func (r *Resource) Busy() int { return r.busy }

// Utilization returns the mean server occupancy over [0, now] as a
// fraction of capacity; it returns 0 at time zero.
func (r *Resource) Utilization(s *Sim) float64 {
	if s.now == 0 {
		return 0
	}
	return r.BusyTime / (float64(s.now) * float64(r.servers))
}
