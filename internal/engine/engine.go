// Package engine is a small discrete-event simulation kernel: a simulated
// clock, a time-ordered event queue, and FIFO-queued resources with finite
// service capacity. The machine model uses it for experiments where
// concurrency and queueing matter — random-access bandwidth with limited
// load-miss queues (Figure 4) and link contention — while pure dependent-
// load latency walks (Figure 2) do not need it.
//
// The event queue is a typed 4-ary min-heap rather than container/heap:
// events are stored unboxed in one contiguous slice (no interface{}
// conversion, no allocation per push beyond amortized slice growth), and
// the wider fan-out halves the tree depth, which matters because the
// sift-down path dominates a DES pop-heavy workload.
package engine

import "fmt"

// Time is simulated time in nanoseconds.
type Time float64

// Event is a callback scheduled at a point in simulated time.
type Event func(s *Sim)

type scheduled struct {
	at   Time
	seq  uint64 // tie-break so same-time events run in schedule order
	call Event
	// release, when non-nil, is a resource whose server this event frees
	// before call runs. Keeping it a typed field instead of wrapping the
	// release in a closure saves one heap allocation per service — the
	// dominant allocation of a queueing-heavy simulation.
	release *Resource
}

// before orders the heap: earliest time first, schedule order on ties.
func (a scheduled) before(b scheduled) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a 4-ary min-heap of scheduled events in a flat slice:
// the children of node i are nodes 4i+1 .. 4i+4.
type eventQueue []scheduled

// push inserts one event, sifting it up to heap position.
//
//p8:hotpath
func (q *eventQueue) push(ev scheduled) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

// pop removes and returns the minimum. The queue must be non-empty.
//
//p8:hotpath
func (q *eventQueue) pop() scheduled {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = scheduled{} // release the Event closure for GC
	h = h[:last]
	*q = h

	// Sift the displaced tail element down to its place.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if h[c].before(h[min]) {
				min = c
			}
		}
		if !h[min].before(h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Sim is a discrete-event simulation instance. The zero value is ready to
// use.
//
// The simulator keeps its own observability counters as plain fields —
// it is single-goroutine by construction, so they cost one ALU op each —
// and PublishStats flushes them into an obs registry at run boundaries.
// This is the flush-at-the-end idiom documented in internal/obs: the
// event dispatch loop itself carries no instrumentation overhead.
type Sim struct {
	now      Time
	seq      uint64
	queue    eventQueue
	events   uint64
	maxQueue int
	// budget, when non-nil, is charged one unit per executed event and
	// panics with a Trip when exhausted or cancelled (the harness's
	// watchdog against runaway simulations). Nil costs one branch.
	budget *Budget
}

// SetBudget attaches a watchdog budget; every executed event charges
// one unit. A nil budget (the default) is unlimited.
func (s *Sim) SetBudget(b *Budget) { s.budget = b }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Events returns the number of events executed so far.
func (s *Sim) Events() uint64 { return s.events }

// Scheduled returns the number of events scheduled so far (including
// resource service completions).
func (s *Sim) Scheduled() uint64 { return s.seq }

// MaxQueueDepth returns the event queue's high-water mark: the largest
// number of pending events observed at once.
func (s *Sim) MaxQueueDepth() int { return s.maxQueue }

// At schedules ev at absolute time t, which must not be in the past.
func (s *Sim) At(t Time, ev Event) {
	if t < s.now {
		panic(fmt.Sprintf("engine: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	s.queue.push(scheduled{at: t, seq: s.seq, call: ev})
	if n := len(s.queue); n > s.maxQueue {
		s.maxQueue = n
	}
}

// After schedules ev delay nanoseconds from now; negative delays panic.
func (s *Sim) After(delay Time, ev Event) { s.At(s.now+delay, ev) }

// Step executes the next event. It reports false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	next := s.queue.pop()
	s.now = next.at
	s.events++
	s.budget.Charge(1)
	s.dispatch(next)
	return true
}

// dispatch runs one popped event: the resource release protocol first,
// then the scheduled callback.
//
//p8:hotpath
func (s *Sim) dispatch(ev scheduled) {
	if ev.release != nil {
		ev.release.release(s)
	}
	if ev.call != nil {
		ev.call(s) //p8:allow hotpathdeep: the scheduled callback is the DES's payload — event dispatch is necessarily indirect; hot callbacks carry their own annotations
	}
}

// Run executes events until the queue drains or until simulated time
// exceeds horizon (0 means no horizon). It returns the number of events
// executed by this call. The pop is inlined here rather than routed
// through Step so the head of the queue is examined once per event, not
// twice. Event-loop throughput and its allocation budget are pinned by
// BenchmarkSchedule and BenchmarkSimPointerChase in
// engine_bench_test.go.
//
//p8:hotpath
func (s *Sim) Run(horizon Time) uint64 {
	start := s.events
	for len(s.queue) > 0 {
		if horizon > 0 && s.queue[0].at > horizon {
			break
		}
		next := s.queue.pop()
		s.now = next.at
		s.events++
		s.budget.Charge(1)
		s.dispatch(next)
	}
	return s.events - start
}

// Resource is a service station with a fixed number of servers and an
// unbounded FIFO queue, e.g. a memory channel or an SMP link direction.
// Acquire requests service for a given holding time; done runs when the
// service completes.
type Resource struct {
	Name    string
	servers int
	busy    int
	// waiting[head:] are the queued requests. Dequeuing advances head
	// instead of reslicing so the backing array is reused across the
	// whole simulation; the slice rewinds to its start whenever the
	// queue drains.
	waiting []pending
	head    int
	// BusyTime accumulates server-occupancy (ns x servers) for utilization
	// accounting.
	BusyTime float64
}

type pending struct {
	hold Time
	done Event
}

// NewResource returns a resource with the given number of servers (> 0).
func NewResource(name string, servers int) *Resource {
	if servers <= 0 {
		panic("engine: resource needs at least one server")
	}
	return &Resource{Name: name, servers: servers}
}

// Acquire requests one server for hold nanoseconds; when service finishes,
// done is scheduled (it may be nil). Requests queue FIFO when all servers
// are busy.
//
//p8:hotpath
func (r *Resource) Acquire(s *Sim, hold Time, done Event) {
	if hold < 0 {
		panic("engine: negative hold time")
	}
	if r.busy < r.servers {
		r.start(s, hold, done)
		return
	}
	r.waiting = append(r.waiting, pending{hold: hold, done: done})
}

// dequeue removes and returns the oldest waiting request; ok is false
// when the queue is empty.
//
//p8:hotpath
func (r *Resource) dequeue() (pending, bool) {
	if r.head == len(r.waiting) {
		return pending{}, false
	}
	next := r.waiting[r.head]
	r.waiting[r.head] = pending{} // release the done closure
	r.head++
	if r.head == len(r.waiting) {
		r.waiting = r.waiting[:0]
		r.head = 0
	}
	return next, true
}

// start occupies one server and books its completion event.
//
//p8:hotpath
func (r *Resource) start(s *Sim, hold Time, done Event) {
	r.busy++
	r.BusyTime += float64(hold)
	s.seq++
	s.queue.push(scheduled{at: s.now + hold, seq: s.seq, call: done, release: r})
	if n := len(s.queue); n > s.maxQueue {
		s.maxQueue = n
	}
}

// release frees one server and starts the oldest waiting request, if any.
// It runs from the event dispatch loop when a service completes.
//
//p8:hotpath
func (r *Resource) release(s *Sim) {
	r.busy--
	if next, ok := r.dequeue(); ok {
		r.start(s, next.hold, next.done)
	}
}

// QueueLen returns the number of waiting requests.
func (r *Resource) QueueLen() int { return len(r.waiting) - r.head }

// Busy returns the number of occupied servers.
func (r *Resource) Busy() int { return r.busy }

// Utilization returns the mean server occupancy over [0, now] as a
// fraction of capacity; it returns 0 at time zero.
func (r *Resource) Utilization(s *Sim) float64 {
	if s.now == 0 {
		return 0
	}
	return r.BusyTime / (float64(s.now) * float64(r.servers))
}
