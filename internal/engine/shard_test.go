package engine

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

// shardModel is a synthetic multi-lane workload with every ingredient
// the bit-identity contract must survive: per-lane RNG streams, per-lane
// resources (the release protocol draws sequence numbers), short local
// reschedules below the lookahead, and cross-lane messages at or above
// it. Each lane folds its RNG draws into an order-sensitive hash, so
// any reordering of a lane's event sequence changes the result.
type shardModel struct {
	ss    *ShardedSim
	rngs  []*rng.Rand
	mem   []*Resource
	hash  []uint64
	count []uint64
	limit uint64
	look  Time
	step  []Event
	cont  []Event
}

const testLookahead = Time(10)

func newShardModel(lanes int, perLane uint64) *shardModel {
	m := &shardModel{
		ss:    NewShardedSim(lanes, testLookahead),
		rngs:  make([]*rng.Rand, lanes),
		mem:   make([]*Resource, lanes),
		hash:  make([]uint64, lanes),
		count: make([]uint64, lanes),
		limit: perLane,
		look:  testLookahead,
		step:  make([]Event, lanes),
		cont:  make([]Event, lanes),
	}
	for l := 0; l < lanes; l++ {
		l := l
		m.rngs[l] = rng.New(uint64(1000 + l))
		m.mem[l] = NewResource("bank", 1)
		m.step[l] = func(s *Sim) {
			if m.count[l] >= m.limit {
				return
			}
			m.count[l]++
			r := m.rngs[l].Uint64()
			m.hash[l] = m.hash[l]*1099511628211 + r
			m.mem[l].Acquire(s, Time(r%50), m.cont[l])
		}
		m.cont[l] = func(s *Sim) {
			r := m.rngs[l].Uint64()
			m.hash[l] = m.hash[l]*1099511628211 + r
			target := int(r % uint64(lanes))
			if target != l && r%4 == 0 {
				m.ss.Send(l, target, m.look+Time(r%20), m.step[target])
				return
			}
			s.After(Time(r%8), m.step[l])
		}
	}
	for l := 0; l < lanes; l++ {
		m.ss.At(l, Time(l), m.step[l])
	}
	return m
}

// signature captures everything the identity tests compare.
type shardSignature struct {
	hash, count, events []uint64
	now                 []Time
	total               uint64
}

func (m *shardModel) signature(total uint64) shardSignature {
	sig := shardSignature{total: total}
	for l := 0; l < m.ss.Lanes(); l++ {
		sig.hash = append(sig.hash, m.hash[l])
		sig.count = append(sig.count, m.count[l])
		sig.events = append(sig.events, m.ss.LaneEvents(l))
		sig.now = append(sig.now, m.ss.LaneNow(l))
	}
	return sig
}

func sameSignature(a, b shardSignature) bool {
	if a.total != b.total {
		return false
	}
	for i := range a.hash {
		if a.hash[i] != b.hash[i] || a.count[i] != b.count[i] ||
			a.events[i] != b.events[i] || a.now[i] != b.now[i] {
			return false
		}
	}
	return true
}

func TestShardedMatchesMergedBitForBit(t *testing.T) {
	for _, horizon := range []Time{0, 5000} {
		ref := newShardModel(4, 2000)
		want := ref.signature(ref.ss.RunMerged(horizon))
		if want.total == 0 {
			t.Fatalf("horizon %v: reference run executed no events", horizon)
		}
		for _, workers := range []int{1, 2, 4} {
			m := newShardModel(4, 2000)
			got := m.signature(m.ss.RunSharded(workers, horizon))
			if !sameSignature(got, want) {
				t.Errorf("horizon %v, %d workers: sharded run diverged from merged: got %+v want %+v",
					horizon, workers, got, want)
			}
		}
	}
}

func TestShardedBudgetSpentMatchesMerged(t *testing.T) {
	ref := newShardModel(4, 500)
	total := ref.ss.RunMerged(0)

	for _, workers := range []int{1, 2, 4} {
		b := NewBudget(total) // exactly enough: must not trip
		m := newShardModel(4, 500)
		m.ss.SetBudget(b)
		if got := m.ss.RunSharded(workers, 0); got != total {
			t.Fatalf("%d workers: executed %d events, want %d", workers, got, total)
		}
		if b.Spent() != total {
			t.Errorf("%d workers: budget spent %d, want %d", workers, b.Spent(), total)
		}
	}
}

// tripError runs f and returns the recovered Trip's rendering.
func tripError(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			cause := recover()
			if cause == nil {
				t.Fatal("expected a budget Trip, got none")
			}
			trip, ok := cause.(Trip)
			if !ok {
				t.Fatalf("expected a Trip, got %v", cause)
			}
			msg = trip.Error()
		}()
		f()
	}()
	return msg
}

func TestShardedTripIdenticalToSequential(t *testing.T) {
	ref := newShardModel(4, 500)
	total := ref.ss.RunMerged(0)
	limit := total / 2

	seq := newShardModel(4, 500)
	seq.ss.SetBudget(NewBudget(limit))
	want := tripError(t, func() { seq.ss.RunMerged(0) })

	for _, workers := range []int{1, 2, 4} {
		m := newShardModel(4, 500)
		m.ss.SetBudget(NewBudget(limit))
		got := tripError(t, func() { m.ss.RunSharded(workers, 0) })
		if got != want {
			t.Errorf("%d workers: trip %q, want %q", workers, got, want)
		}
	}
}

func TestShardedCancelTripsAtBarrier(t *testing.T) {
	b := NewBudget(0)
	b.Cancel()
	m := newShardModel(4, 500)
	m.ss.SetBudget(b)
	msg := tripError(t, func() { m.ss.RunSharded(2, 0) })
	if !strings.Contains(msg, "cancelled") {
		t.Errorf("cancelled run tripped with %q", msg)
	}
}

func TestChargeBatch(t *testing.T) {
	var nilBudget *Budget
	nilBudget.ChargeBatch(1 << 40) // nil fast path: must not panic
	if cap := nilBudget.RoundCap(); cap != 0 {
		t.Errorf("nil budget round cap %d, want 0 (unlimited)", cap)
	}

	b := NewBudget(100)
	b.ChargeBatch(60)
	if b.Spent() != 60 {
		t.Fatalf("spent %d, want 60", b.Spent())
	}
	if cap := b.RoundCap(); cap != 41 {
		t.Errorf("round cap %d, want remaining+1 = 41", cap)
	}
	msg := tripError(t, func() { b.ChargeBatch(41) })
	if msg != (Trip{Events: 100, Limit: 100}).Error() {
		t.Errorf("overrun rendered %q", msg)
	}
	if b.Spent() != 100 {
		t.Errorf("spent %d after trip, want clamped to 100", b.Spent())
	}
}

func TestSendBelowLookaheadPanics(t *testing.T) {
	ss := NewShardedSim(2, testLookahead)
	// White-box: pretend a 2-worker round is in flight so lane 0 -> 1
	// crosses shards.
	ss.workerOf = []int{0, 1}
	ss.perWorker = 1
	ss.boxes = [][]mailbox{make([]mailbox, 2), make([]mailbox, 2)}
	ss.shardSent = make([]uint64, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard send below the lookahead did not panic")
		}
	}()
	ss.Send(0, 1, testLookahead/2, func(*Sim) {})
}

func TestRunShardedValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("workers do not divide lanes", func() { NewShardedSim(4, 1).RunSharded(3, 0) })
	mustPanic("zero workers", func() { NewShardedSim(4, 1).RunSharded(0, 0) })
	mustPanic("zero lookahead with parallel workers", func() { NewShardedSim(4, 0).RunSharded(2, 0) })
	mustPanic("zero lanes", func() { NewShardedSim(0, 1) })
	mustPanic("negative lookahead", func() { NewShardedSim(2, -1) })
	mustPanic("negative send delay", func() {
		NewShardedSim(2, 1).Send(0, 1, -1, func(*Sim) {})
	})
}

func TestShardedPublishStats(t *testing.T) {
	m := newShardModel(4, 500)
	total := m.ss.RunSharded(2, 0)
	reg := obs.NewRegistry("test")
	m.ss.PublishStats(reg)
	snap := reg.Snapshot()
	get := func(name string) uint64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %q missing from %+v", name, snap.Counters)
		return 0
	}
	if got := get("events"); got != total {
		t.Errorf("events counter %d, want %d", got, total)
	}
	if get("rounds") == 0 {
		t.Error("no rounds recorded for a sharded run")
	}
	if get("mailbox_msgs") == 0 {
		t.Error("no mailbox traffic recorded; the model does send cross-shard")
	}
	if get("critical_path_events") == 0 || get("critical_path_events") > total {
		t.Errorf("critical path %d outside (0, %d]", get("critical_path_events"), total)
	}
	perShard := uint64(0)
	for _, child := range snap.Children {
		for _, c := range child.Counters {
			if c.Name == "events" {
				perShard += c.Value
			}
		}
	}
	if perShard != total {
		t.Errorf("per-shard events sum to %d, want %d", perShard, total)
	}
}

// TestMergedScheduledCountsExcludeLaneBase guards the seq encoding: the
// published "scheduled" counter must count events, not carry the
// lane-ID bits.
func TestMergedScheduledCountsExcludeLaneBase(t *testing.T) {
	m := newShardModel(4, 100)
	m.ss.RunMerged(0)
	reg := obs.NewRegistry("test")
	m.ss.PublishStats(reg)
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		if c.Name == "scheduled" && c.Value >= 1<<laneShift {
			t.Fatalf("scheduled counter %d leaks the lane base", c.Value)
		}
	}
}
