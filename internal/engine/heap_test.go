package engine

// Property tests for the typed 4-ary event heap: it must drain in
// exactly the order the binary container/heap implementation it replaced
// would have produced — (time, seq) lexicographic order, which gives
// same-timestamp events FIFO semantics via the seq tie-break.

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

// refQueue is the original container/heap implementation, kept here as
// the ordering oracle.
type refQueue []scheduled

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x interface{}) { *q = append(*q, x.(scheduled)) }
func (q *refQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

func TestHeapMatchesContainerHeap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var got eventQueue
		var want refQueue
		n := 1 + r.Intn(400)
		seq := uint64(0)
		// Interleave pushes and pops the way a simulation does: events
		// arrive while earlier ones drain.
		ops := 0
		for ops < 2*n {
			if len(got) == 0 || (r.Intn(3) != 0 && ops < n) {
				seq++
				// Coarse timestamps force plenty of same-time collisions.
				ev := scheduled{at: Time(r.Intn(20)), seq: seq}
				got.push(ev)
				heap.Push(&want, ev)
			} else {
				g := got.pop()
				w := heap.Pop(&want).(scheduled)
				if g.at != w.at || g.seq != w.seq {
					t.Fatalf("trial %d: pop mismatch: got (at=%v seq=%d), container/heap (at=%v seq=%d)",
						trial, g.at, g.seq, w.at, w.seq)
				}
			}
			ops++
		}
		for len(got) > 0 {
			g := got.pop()
			w := heap.Pop(&want).(scheduled)
			if g.at != w.at || g.seq != w.seq {
				t.Fatalf("trial %d: drain mismatch: got (at=%v seq=%d), want (at=%v seq=%d)",
					trial, g.at, g.seq, w.at, w.seq)
			}
		}
		if want.Len() != 0 {
			t.Fatalf("trial %d: reference retains %d events after ours drained", trial, want.Len())
		}
	}
}

func TestHeapSameTimestampFIFO(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var q eventQueue
	seq := uint64(0)
	for i := 0; i < 1000; i++ {
		seq++
		q.push(scheduled{at: Time(r.Intn(5)), seq: seq})
	}
	var drained []scheduled
	for len(q) > 0 {
		drained = append(drained, q.pop())
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i].before(drained[j]) }) {
		t.Fatal("heap did not drain in (time, seq) order")
	}
	// Within each timestamp, seq values must come out strictly
	// increasing: FIFO among same-time events.
	lastSeq := map[Time]uint64{}
	for _, ev := range drained {
		if prev, ok := lastSeq[ev.at]; ok && ev.seq <= prev {
			t.Fatalf("same-timestamp FIFO violated at t=%v: seq %d after %d", ev.at, ev.seq, prev)
		}
		lastSeq[ev.at] = ev.seq
	}
}

func TestSimMatchesReferenceSchedule(t *testing.T) {
	// Full-stack check: a randomized self-rescheduling workload through
	// Sim must execute callbacks in the exact order the oracle predicts.
	r := rand.New(rand.NewSource(99))
	type stamp struct {
		at Time
		id int
	}
	var ran []stamp
	var s Sim
	id := 0
	for i := 0; i < 200; i++ {
		id++
		myID := id
		at := Time(r.Intn(50))
		s.At(at, func(sim *Sim) { ran = append(ran, stamp{sim.Now(), myID}) })
	}
	s.Run(0)
	if len(ran) != 200 {
		t.Fatalf("ran %d events, want 200", len(ran))
	}
	for i := 1; i < len(ran); i++ {
		if ran[i].at < ran[i-1].at {
			t.Fatalf("time went backwards: %v after %v", ran[i].at, ran[i-1].at)
		}
		if ran[i].at == ran[i-1].at && ran[i].id < ran[i-1].id {
			t.Fatalf("same-time events out of schedule order: id %d after %d at t=%v",
				ran[i].id, ran[i-1].id, ran[i].at)
		}
	}
}
