package smt

import (
	"testing"

	"repro/internal/arch"
)

func TestRemapThreadsRoundRobin(t *testing.T) {
	chip := arch.E870().Chip
	cases := []struct {
		active, threads int
		want            []int
	}{
		{8, 32, []int{4, 4, 4, 4, 4, 4, 4, 4}},
		{6, 32, []int{6, 6, 5, 5, 5, 5}},
		{4, 32, []int{8, 8, 8, 8}},
		{3, 4, []int{2, 1, 1}},
		{8, 0, []int{0, 0, 0, 0, 0, 0, 0, 0}},
	}
	for _, c := range cases {
		got := RemapThreads(chip, c.active, c.threads)
		if len(got) != len(c.want) {
			t.Errorf("RemapThreads(%d cores, %d threads) = %v, want %v", c.active, c.threads, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("RemapThreads(%d cores, %d threads) = %v, want %v", c.active, c.threads, got, c.want)
				break
			}
		}
	}
}

func TestRemapThreadsPanics(t *testing.T) {
	chip := arch.E870().Chip
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("zero cores", func() { RemapThreads(chip, 0, 1) })
	expectPanic("negative threads", func() { RemapThreads(chip, 4, -1) })
	expectPanic("over SMT capacity", func() { RemapThreads(chip, 4, 4*chip.ThreadsPerCore+1) })
}

func TestRemappedThroughputDegrades(t *testing.T) {
	chip := arch.E870().Chip
	threads := chip.Cores * 4 // the chip fully loaded at SMT4
	healthy := RemappedThroughput(chip, chip.Cores, threads, 4)
	prev := healthy
	for active := chip.Cores - 1; active >= chip.Cores/2; active-- {
		cur := RemappedThroughput(chip, active, threads, 4)
		if cur > prev {
			t.Errorf("throughput rose from %.2f to %.2f when guarding down to %d cores", prev, cur, active)
		}
		prev = cur
	}
	if prev >= healthy {
		t.Errorf("guarding half the chip did not reduce throughput (%.2f vs %.2f)", prev, healthy)
	}
}
