// Package smt models the POWER8 core's multithreaded execution resources
// as exercised by the FMA microbenchmark of Section III-C (Figure 5):
// two symmetric VSX pipelines with 6-cycle FMA latency, the dynamic SMT
// modes that split threads into two thread-sets each owning half the
// core's resources, and the two-level VSX register file (128 architected
// registers backed by slower renames).
//
// The model reproduces all four qualitative behaviours the paper reports:
// peak requires threads x FMAs >= 12 in-flight chains; odd thread counts
// imbalance the thread-sets; exceeding 128 registers (2 per FMA per
// thread) degrades throughput; and large thread counts lose performance
// through resource sharing.
package smt

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/units"
)

// FMAKernel describes the microbenchmark loop: each thread executes a loop
// of FMAs independent instructions of the form R1 = R1*R2 + R1, so each
// instruction forms its own dependency chain across iterations and uses
// two VSX registers.
type FMAKernel struct {
	FMAs    int // independent FMA instructions per loop iteration
	Threads int // active threads on the core
}

// RegistersUsed returns the VSX registers the kernel needs on one core:
// two per FMA chain per thread (the paper's 12 x 2 x 6 = 144 example).
func (k FMAKernel) RegistersUsed() int { return 2 * k.FMAs * k.Threads }

// Validate checks the kernel against a chip's limits.
func (k FMAKernel) Validate(chip arch.ChipSpec) error {
	if k.FMAs <= 0 {
		return fmt.Errorf("smt: FMAs per loop must be positive, got %d", k.FMAs)
	}
	if k.Threads <= 0 || k.Threads > chip.ThreadsPerCore {
		return fmt.Errorf("smt: threads %d out of range [1,%d]", k.Threads, chip.ThreadsPerCore)
	}
	return nil
}

// Throughput returns the kernel's steady-state FMA issue rate on one core
// in FMAs per cycle.
//
// Mechanics: in ST mode the single thread may use both VSX pipes; in the
// SMT modes the threads split into two thread-sets, each restricted to
// half the core (one pipe). A thread-set holding n threads sustains
// min(pipes, n*FMAs/latency) FMAs per cycle — each of its n*FMAs chains
// can issue once per 6-cycle latency. When the kernel's register demand
// exceeds the 128 architected VSX registers, the excess lives in the
// slower rename level and throughput scales by 128/registers.
func Throughput(chip arch.ChipSpec, k FMAKernel) float64 {
	if err := k.Validate(chip); err != nil {
		panic(err)
	}
	lat := float64(chip.VSXLatencyCycles)
	var rate float64
	if arch.SMTModeFor(k.Threads) == arch.ST {
		rate = minf(float64(chip.VSXPipes), float64(k.FMAs)/lat)
	} else {
		pipesPerSet := float64(chip.VSXPipes) / 2
		for _, n := range arch.ThreadSets(k.Threads) {
			rate += minf(pipesPerSet, float64(n*k.FMAs)/lat)
		}
	}
	if regs := k.RegistersUsed(); regs > chip.ArchVSXRegs {
		rate *= float64(chip.ArchVSXRegs) / float64(regs)
	}
	return rate
}

// FractionOfPeak returns the kernel's throughput relative to the core's
// peak FMA issue rate (both pipes busy every cycle) — the y axis of
// Figure 5.
func FractionOfPeak(chip arch.ChipSpec, k FMAKernel) float64 {
	return Throughput(chip, k) / float64(chip.VSXPipes)
}

// CoreGFlops converts the kernel throughput to double-precision GFLOP/s
// for one core: each VSX FMA performs 2 ops per DP lane.
func CoreGFlops(chip arch.ChipSpec, k FMAKernel) units.Rate {
	flopsPerFMA := float64(chip.VSXWidthDP * 2)
	return units.Rate(Throughput(chip, k) * flopsPerFMA * chip.ClockGHz * 1e9)
}

// MinChainsForPeak returns the minimum threads x FMAs product that
// saturates both pipes: pipes x latency (12 on POWER8), the bound the
// paper derives in Section III-C.
func MinChainsForPeak(chip arch.ChipSpec) int {
	return chip.VSXPipes * chip.VSXLatencyCycles
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
