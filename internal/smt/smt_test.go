package smt

import (
	"math"
	"testing"

	"repro/internal/arch"
)

func chip() arch.ChipSpec { return arch.POWER8(8, 4.35) }

// TestPeakRequiresTwelveChains verifies the paper's Section III-C rule:
// peak FMA throughput requires threads x FMAs >= 12 (2 pipes x 6-cycle
// latency).
func TestPeakRequiresTwelveChains(t *testing.T) {
	c := chip()
	if got := MinChainsForPeak(c); got != 12 {
		t.Fatalf("MinChainsForPeak = %d, want 12", got)
	}
	// Below 12 chains: below peak.
	for _, k := range []FMAKernel{{FMAs: 6, Threads: 1}, {FMAs: 2, Threads: 4}, {FMAs: 1, Threads: 8}} {
		if frac := FractionOfPeak(c, k); frac >= 0.999 {
			t.Errorf("%+v reached peak with %d chains", k, k.FMAs*k.Threads)
		}
	}
	// At or above 12 chains with balanced sets and <=128 registers: peak.
	for _, k := range []FMAKernel{{FMAs: 12, Threads: 1}, {FMAs: 6, Threads: 2}, {FMAs: 3, Threads: 4}, {FMAs: 12, Threads: 2}} {
		if frac := FractionOfPeak(c, k); math.Abs(frac-1) > 1e-9 {
			t.Errorf("%+v: fraction %v, want 1.0", k, frac)
		}
	}
}

// TestOddThreadImbalance verifies that odd thread counts lose throughput
// to thread-set imbalance.
func TestOddThreadImbalance(t *testing.T) {
	c := chip()
	// 3 threads x 2 FMAs: set A has 2 threads (4 chains), set B has 1
	// thread (2 chains); B cannot keep its pipe full.
	odd := FractionOfPeak(c, FMAKernel{FMAs: 2, Threads: 3})
	even := FractionOfPeak(c, FMAKernel{FMAs: 2, Threads: 4})
	if odd >= even {
		t.Errorf("odd threads (%v) not below even (%v)", odd, even)
	}
}

// TestRegisterFileDegradation verifies the two-level register file
// behaviour: the 12-FMA kernel degrades once threads > 5 pushes the
// register demand past 128 (12 x 2 x 6 = 144), matching Figure 5.
func TestRegisterFileDegradation(t *testing.T) {
	c := chip()
	at4 := FractionOfPeak(c, FMAKernel{FMAs: 12, Threads: 4}) // 96 regs
	at6 := FractionOfPeak(c, FMAKernel{FMAs: 12, Threads: 6}) // 144 regs
	at8 := FractionOfPeak(c, FMAKernel{FMAs: 12, Threads: 8}) // 192 regs
	if math.Abs(at4-1) > 1e-9 {
		t.Errorf("12 FMAs x 4 threads = %v, want peak", at4)
	}
	if !(at6 < at4 && at8 < at6) {
		t.Errorf("register degradation not monotone: %v, %v, %v", at4, at6, at8)
	}
	if want := 128.0 / 144; math.Abs(at6-want) > 1e-9 {
		t.Errorf("12 FMAs x 6 threads = %v, want %v", at6, want)
	}
}

func TestRegistersUsed(t *testing.T) {
	k := FMAKernel{FMAs: 12, Threads: 6}
	if got := k.RegistersUsed(); got != 144 {
		t.Errorf("RegistersUsed = %d, want 144 (the paper's example)", got)
	}
}

// TestSTModeUsesBothPipes verifies the single-thread mode can saturate
// both VSX pipes given enough chains.
func TestSTModeUsesBothPipes(t *testing.T) {
	c := chip()
	if got := Throughput(c, FMAKernel{FMAs: 12, Threads: 1}); math.Abs(got-2) > 1e-9 {
		t.Errorf("ST throughput = %v FMA/cycle, want 2", got)
	}
	if got := Throughput(c, FMAKernel{FMAs: 6, Threads: 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("ST 6-FMA throughput = %v, want 1 (latency bound)", got)
	}
}

// TestSingleThreadFewFMAsScalesLinearly: with one chain, one FMA retires
// every 6 cycles.
func TestLatencyBoundScaling(t *testing.T) {
	c := chip()
	for f := 1; f <= 6; f++ {
		got := Throughput(c, FMAKernel{FMAs: f, Threads: 1})
		want := float64(f) / 6
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("FMAs=%d: throughput %v, want %v", f, got, want)
		}
	}
}

func TestCoreGFlops(t *testing.T) {
	c := chip()
	// At peak: 2 FMA/cycle x 4 flops x 4.35 GHz = 34.8 GFLOP/s per core.
	got := CoreGFlops(c, FMAKernel{FMAs: 12, Threads: 4}).GFs()
	if math.Abs(got-34.8) > 0.01 {
		t.Errorf("peak core GFLOP/s = %v, want 34.8", got)
	}
	// 64 cores at peak reproduce the system's 2227 GFLOP/s.
	if sys := got * 64; math.Abs(sys-2227.2) > 1 {
		t.Errorf("system peak = %v, want 2227.2", sys)
	}
}

// TestFigure5Grid spot-checks the full Figure 5 surface for sanity:
// fractions in (0,1], monotone in FMAs for fixed even threads below the
// register limit.
func TestFigure5Grid(t *testing.T) {
	c := chip()
	for threads := 1; threads <= 8; threads++ {
		prev := 0.0
		for fmas := 1; fmas <= 12; fmas++ {
			k := FMAKernel{FMAs: fmas, Threads: threads}
			frac := FractionOfPeak(c, k)
			if frac <= 0 || frac > 1+1e-9 {
				t.Fatalf("%+v: fraction %v out of range", k, frac)
			}
			if k.RegistersUsed() <= c.ArchVSXRegs && threads%2 == 0 && frac+1e-9 < prev {
				t.Errorf("%+v: fraction %v decreased from %v without register pressure", k, frac, prev)
			}
			prev = frac
		}
	}
}

func TestValidate(t *testing.T) {
	c := chip()
	if err := (FMAKernel{FMAs: 0, Threads: 1}).Validate(c); err == nil {
		t.Error("zero FMAs accepted")
	}
	if err := (FMAKernel{FMAs: 1, Threads: 9}).Validate(c); err == nil {
		t.Error("9 threads accepted")
	}
	if err := (FMAKernel{FMAs: 1, Threads: 0}).Validate(c); err == nil {
		t.Error("0 threads accepted")
	}
}

func TestThroughputPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid kernel did not panic")
		}
	}()
	Throughput(chip(), FMAKernel{FMAs: -1, Threads: 1})
}
