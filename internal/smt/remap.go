package smt

import (
	"fmt"

	"repro/internal/arch"
)

// RemapThreads distributes a workload's software threads over the
// active (non-guarded) cores of a degraded chip, the way the POWER
// hypervisor re-homes the threads of a guarded core: round-robin, so
// core loads differ by at most one thread. It returns the per-core
// thread counts (one entry per active core). It panics when no core is
// active or the per-core SMT capacity cannot hold the threads.
func RemapThreads(chip arch.ChipSpec, activeCores, threads int) []int {
	if activeCores <= 0 {
		panic(fmt.Sprintf("smt: cannot remap threads onto %d active cores", activeCores))
	}
	if threads < 0 {
		panic(fmt.Sprintf("smt: cannot remap %d threads", threads))
	}
	if threads > activeCores*chip.ThreadsPerCore {
		panic(fmt.Sprintf("smt: %d threads exceed %d cores x SMT%d",
			threads, activeCores, chip.ThreadsPerCore))
	}
	counts := make([]int, activeCores)
	base := threads / activeCores
	extra := threads % activeCores
	for i := range counts {
		counts[i] = base
		if i < extra {
			counts[i]++
		}
	}
	return counts
}

// RemappedThroughput returns the aggregate FMA issue rate (FMAs per
// cycle) of a chip running `threads` threads of a kernel with `fmas`
// independent FMA chains per thread, after re-homing the threads onto
// `activeCores` cores. Guarding cores concentrates threads onto the
// survivors, pushing them into higher SMT modes — which is exactly the
// resource-sharing degradation Figure 5 quantifies per core.
func RemappedThroughput(chip arch.ChipSpec, activeCores, threads, fmas int) float64 {
	var total float64
	for _, n := range RemapThreads(chip, activeCores, threads) {
		if n == 0 {
			continue
		}
		total += Throughput(chip, FMAKernel{FMAs: fmas, Threads: n})
	}
	return total
}
