package micro

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/units"
)

func e870() *machine.Machine { return machine.New(arch.E870()) }

// TestFigure2CurveShape checks the full Figure 2 sweep: monotone
// plateaus rising from L1 through DRAM, with the huge-page curve below
// the 64 KiB curve at the largest working sets.
func TestFigure2CurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full latency sweep is slow")
	}
	m := e870()
	sizes := []units.Bytes{
		32 * units.KiB, 256 * units.KiB, 2 * units.MiB,
		32 * units.MiB, 120 * units.MiB, 384 * units.MiB,
	}
	small := LatencyCurve(m, arch.Page64K, sizes, 300000, nil, nil)
	if len(small) != len(sizes) {
		t.Fatalf("points = %d", len(small))
	}
	for i := 1; i < len(small); i++ {
		if small[i].AvgNs <= small[i-1].AvgNs {
			t.Errorf("latency not increasing: %v -> %v at %v",
				small[i-1].AvgNs, small[i].AvgNs, small[i].WorkingSet)
		}
	}
	huge := LatencyCurve(m, arch.Page16M, sizes[len(sizes)-1:], 300000, nil, nil)
	if huge[0].AvgNs >= small[len(small)-1].AvgNs {
		t.Error("huge pages not faster at 384 MiB")
	}
}

// TestTableIIIRows checks all nine Table III rows against the paper.
func TestTableIIIRows(t *testing.T) {
	rows := TableIII(e870())
	want := map[string]float64{
		"Read Only": 1141, "16:1": 1208, "8:1": 1267, "4:1": 1375,
		"2:1": 1472, "1:1": 894, "1:2": 748, "1:4": 658, "Write Only": 589,
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !stats.Within(r.Bandwidth.GBps(), want[r.Label], 0.01) {
			t.Errorf("%s: %.1f GB/s, want %v", r.Label, r.Bandwidth.GBps(), want[r.Label])
		}
	}
}

// TestFigure3Shapes checks the scaling curves' qualitative shape.
func TestFigure3Shapes(t *testing.T) {
	m := e870()
	a := Figure3a(m)
	if len(a) != 8 {
		t.Fatalf("Figure 3a points = %d", len(a))
	}
	if !stats.Within(a[7].Bandwidth.GBps(), 26, 0.05) {
		t.Errorf("8-thread core = %.1f GB/s, want ~26", a[7].Bandwidth.GBps())
	}
	b := Figure3b(m)
	if len(b) != 64 {
		t.Fatalf("Figure 3b points = %d", len(b))
	}
	var max float64
	for _, p := range b {
		if v := p.Bandwidth.GBps(); v > max {
			max = v
		}
	}
	if !stats.Within(max, 189, 0.04) {
		t.Errorf("chip max = %.1f GB/s, want ~189", max)
	}
}

// TestTableIVRows checks the pair rows and aggregates against the paper.
func TestTableIVRows(t *testing.T) {
	rows, agg := TableIV(e870())
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantLat := []float64{123, 125, 133, 213, 235, 237, 243}
	wantOne := []float64{30, 30, 30, 45, 45, 45, 45}
	for i, r := range rows {
		if !stats.Within(r.DemandNs, wantLat[i], 0.01) {
			t.Errorf("chip%d demand = %.0f, want %v", r.Dst, r.DemandNs, wantLat[i])
		}
		if !stats.Within(r.OneDirection.GBps(), wantOne[i], 0.05) {
			t.Errorf("chip%d one-dir = %.1f, want %v", r.Dst, r.OneDirection.GBps(), wantOne[i])
		}
		if r.PrefetchedNs > r.DemandNs/8 {
			t.Errorf("chip%d prefetched latency %.1f not an order of magnitude below %v",
				r.Dst, r.PrefetchedNs, r.DemandNs)
		}
		if r.String() == "" {
			t.Error("empty row string")
		}
	}
	if !stats.Within(agg.XAggregate.GBps(), 632, 0.02) {
		t.Errorf("X aggregate = %.0f", agg.XAggregate.GBps())
	}
	if !stats.Within(agg.AAggregate.GBps(), 206, 0.02) {
		t.Errorf("A aggregate = %.0f", agg.AAggregate.GBps())
	}
	if !stats.Within(agg.AllToAll.GBps(), 380, 0.05) {
		t.Errorf("all-to-all = %.0f", agg.AllToAll.GBps())
	}
	if !stats.Within(agg.InterleavedLatNs, 168, 0.06) {
		t.Errorf("interleaved latency = %.0f", agg.InterleavedLatNs)
	}
	if agg.InterleavedBW.GBps() != 69 {
		t.Errorf("interleaved bandwidth = %v", agg.InterleavedBW)
	}
}

// TestFigure4Surface checks the random-access sweep.
func TestFigure4Surface(t *testing.T) {
	pts := Figure4(e870())
	if len(pts) != 64 {
		t.Fatalf("points = %d", len(pts))
	}
	var peak float64
	for _, p := range pts {
		if v := p.Bandwidth.GBps(); v > peak {
			peak = v
		}
	}
	if !stats.Within(peak, 500, 0.05) {
		t.Errorf("peak random = %.0f, want ~500", peak)
	}
}

// TestFigure5Surface checks the FMA sweep's key features.
func TestFigure5Surface(t *testing.T) {
	pts := Figure5(e870())
	at := func(f, th int) float64 {
		for _, p := range pts {
			if p.FMAs == f && p.Threads == th {
				return p.FractionOfPeak
			}
		}
		t.Fatalf("missing point %d,%d", f, th)
		return 0
	}
	if at(12, 1) != 1 || at(6, 2) != 1 {
		t.Error("threads x FMAs = 12 should reach peak")
	}
	if at(6, 1) >= 1 {
		t.Error("6 chains on one thread should not reach peak")
	}
	if at(12, 8) >= at(12, 4) {
		t.Error("register pressure should degrade 12 FMAs x 8 threads")
	}
	if at(2, 3) >= at(2, 4) {
		t.Error("odd thread count should lose to even")
	}
}

// TestFigure6DepthSweep: deepest prefetch gives the lowest latency and
// the highest bandwidth (the Figure 6 conclusion).
func TestFigure6DepthSweep(t *testing.T) {
	pts := Figure6(e870(), 1<<16, nil, nil)
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyNs > pts[i-1].LatencyNs+0.5 {
			t.Errorf("latency rose at DSCR=%d: %.1f -> %.1f",
				pts[i].DSCR, pts[i-1].LatencyNs, pts[i].LatencyNs)
		}
		if pts[i].Bandwidth < pts[i-1].Bandwidth {
			t.Errorf("bandwidth fell at DSCR=%d", pts[i].DSCR)
		}
	}
	if ratio := pts[0].LatencyNs / pts[6].LatencyNs; ratio < 3 {
		t.Errorf("deepest/none latency ratio %.1f, want > 3", ratio)
	}
}

// TestFigure7StrideN: ~50 ns with detection off, ~14 ns at the deepest
// depth with it on.
func TestFigure7StrideN(t *testing.T) {
	pts := Figure7(e870(), 40000, nil, nil)
	if len(pts) != 14 {
		t.Fatalf("points = %d", len(pts))
	}
	var offDeep, onDeep float64
	for _, p := range pts {
		if p.DSCR == 7 {
			if p.StrideN {
				onDeep = p.LatencyNs
			} else {
				offDeep = p.LatencyNs
			}
		}
	}
	if offDeep < 45 || offDeep > 62 {
		t.Errorf("stride-N off at depth 7: %.1f ns, want ~50", offDeep)
	}
	if onDeep > 20 {
		t.Errorf("stride-N on at depth 7: %.1f ns, want ~14", onDeep)
	}
}

// TestFigure8DCBT: >25% gain on small blocks, negligible on large ones.
func TestFigure8DCBT(t *testing.T) {
	m := e870()
	pts := Figure8(m, []units.Bytes{1 * units.KiB, 512 * units.KiB}, 1<<19, nil, nil)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	smallGain := pts[0].HintFrac / pts[0].PlainFrac
	largeGain := pts[1].HintFrac / pts[1].PlainFrac
	if smallGain < 1.25 {
		t.Errorf("DCBT gain on 1 KiB blocks = %.2fx, want > 1.25x", smallGain)
	}
	if largeGain > 1.05 {
		t.Errorf("DCBT gain on 512 KiB blocks = %.2fx, want negligible", largeGain)
	}
	for _, p := range pts {
		if p.PlainFrac <= 0 || p.HintFrac > 1 {
			t.Errorf("fractions out of range: %+v", p)
		}
	}
}
