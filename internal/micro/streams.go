package micro

import (
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/units"
)

// RatioRow is one row of Table III.
type RatioRow struct {
	Label         string
	Reads, Writes float64
	Bandwidth     units.Bandwidth
}

// TableIII returns the observed-bandwidth column for the paper's nine
// read:write mixes, using all cores and threads.
func TableIII(m *machine.Machine) []RatioRow {
	mixes := []struct {
		label string
		r, w  float64
	}{
		{"Read Only", 1, 0},
		{"16:1", 16, 1},
		{"8:1", 8, 1},
		{"4:1", 4, 1},
		{"2:1", 2, 1},
		{"1:1", 1, 1},
		{"1:2", 1, 2},
		{"1:4", 1, 4},
		{"Write Only", 0, 1},
	}
	out := make([]RatioRow, len(mixes))
	for i, mix := range mixes {
		f := memsys.ReadShare(mix.r, mix.w)
		out[i] = RatioRow{
			Label: mix.label, Reads: mix.r, Writes: mix.w,
			Bandwidth: m.Mem.SystemStream(f),
		}
	}
	return out
}

// ScalePoint is one sample of the Figure 3 scaling curves.
type ScalePoint struct {
	Cores, Threads int
	Bandwidth      units.Bandwidth
}

// Figure3a returns single-core bandwidth versus threads per core at the
// optimal 2:1 mix.
func Figure3a(m *machine.Machine) []ScalePoint {
	tpc := m.Spec.Chip.ThreadsPerCore
	out := make([]ScalePoint, 0, tpc)
	for t := 1; t <= tpc; t++ {
		out = append(out, ScalePoint{Cores: 1, Threads: t, Bandwidth: m.Mem.CoreStream(t)})
	}
	return out
}

// Figure3b returns single-chip bandwidth for every cores x threads
// combination at the 2:1 mix.
func Figure3b(m *machine.Machine) []ScalePoint {
	var out []ScalePoint
	for c := 1; c <= m.Spec.Chip.Cores; c++ {
		for t := 1; t <= m.Spec.Chip.ThreadsPerCore; t++ {
			out = append(out, ScalePoint{
				Cores: c, Threads: t,
				Bandwidth: m.Mem.ChipStream(c, t, 2.0/3),
			})
		}
	}
	return out
}
