package micro

import (
	"repro/internal/machine"
	"repro/internal/smt"
	"repro/internal/units"
)

// RandomPoint is one sample of the Figure 4 surface: system random-read
// bandwidth for an SMT level and a number of concurrent lists per thread.
type RandomPoint struct {
	Threads   int // threads per core (SMT level)
	Streams   int // concurrent lists per thread
	Bandwidth units.Bandwidth
}

// Figure4 sweeps SMT levels 1..8 and 1..8 lists per thread on all cores.
func Figure4(m *machine.Machine) []RandomPoint {
	var out []RandomPoint
	for t := 1; t <= m.Spec.Chip.ThreadsPerCore; t++ {
		for s := 1; s <= 8; s++ {
			out = append(out, RandomPoint{
				Threads: t, Streams: s,
				Bandwidth: m.RandomAccessBandwidth(t, s),
			})
		}
	}
	return out
}

// FMAPoint is one sample of the Figure 5 surface.
type FMAPoint struct {
	FMAs           int
	Threads        int
	FractionOfPeak float64
}

// Figure5 sweeps the FMA-loop microbenchmark: independent FMAs per loop
// 1..16 and threads per core 1..8.
func Figure5(m *machine.Machine) []FMAPoint {
	chip := m.Spec.Chip
	var out []FMAPoint
	for t := 1; t <= chip.ThreadsPerCore; t++ {
		for f := 1; f <= 16; f++ {
			out = append(out, FMAPoint{
				FMAs: f, Threads: t,
				FractionOfPeak: smt.FractionOfPeak(chip, smt.FMAKernel{FMAs: f, Threads: t}),
			})
		}
	}
	return out
}
