package micro

import (
	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/units"
)

// DSCRPoint is one sample of Figure 6: sequential latency and bandwidth
// at one DSCR prefetch-depth setting.
type DSCRPoint struct {
	DSCR      int
	LatencyNs float64
	Bandwidth units.Bandwidth
}

// Figure6 sweeps the DSCR depth 1..7 over a long sequential scan. The
// latency is the walker's per-line average; the bandwidth scales the
// per-thread rate to two threads per core (as in Figure 8: at full SMT
// even the prefetch-free scan would saturate the links and the depth
// effect would vanish into the ceiling), capped by the 2:1 link bound.
func Figure6(m *machine.Machine, lines int, reg *obs.Registry, budget *engine.Budget) []DSCRPoint {
	const threadsPerCore = 2
	if lines <= 0 {
		lines = 1 << 17
	}
	threads := threadsPerCore * m.Spec.TotalCores()
	out := make([]DSCRPoint, 0, 7)
	for dscr := 1; dscr <= 7; dscr++ {
		w := m.NewWalker(machine.WalkerConfig{
			Prefetch: prefetch.Config{DSCR: dscr},
			Obs:      reg,
			Budget:   budget,
		})
		res := w.Run(trace.NewSequential(0, lines), 0)
		total := float64(res.ThreadBandwidth()) * float64(threads)
		if limit := float64(m.Mem.StreamBandwidth(2.0/3, m.Spec.Topology.Chips)); total > limit {
			total = limit
		}
		out = append(out, DSCRPoint{
			DSCR:      dscr,
			LatencyNs: res.AvgNs(),
			Bandwidth: units.Bandwidth(total),
		})
	}
	return out
}

// StridePoint is one sample of Figure 7: stride-256 read latency at one
// DSCR depth, with stride-N detection on or off.
type StridePoint struct {
	DSCR      int
	StrideN   bool
	LatencyNs float64
}

// Figure7 sweeps DSCR depths for a stride-256 stream with the stride-N
// facility enabled and disabled. Huge pages keep TLB walks out of the
// measurement, as in the paper's setup.
func Figure7(m *machine.Machine, count int, reg *obs.Registry, budget *engine.Budget) []StridePoint {
	if count <= 0 {
		count = 50000
	}
	var out []StridePoint
	for _, strideN := range []bool{false, true} {
		for dscr := 1; dscr <= 7; dscr++ {
			w := m.NewWalker(machine.WalkerConfig{
				Page:     arch.Page16M,
				Prefetch: prefetch.Config{DSCR: dscr, StrideN: strideN},
				Obs:      reg,
				Budget:   budget,
			})
			res := w.Run(trace.NewStrided(0, 256, count), 0)
			out = append(out, StridePoint{DSCR: dscr, StrideN: strideN, LatencyNs: res.AvgNs()})
		}
	}
	return out
}

// DCBTPoint is one sample of Figure 8: achieved read bandwidth as a
// fraction of the peak read bandwidth, for one block size, with and
// without the DCBT software hint.
type DCBTPoint struct {
	BlockBytes units.Bytes
	PlainFrac  float64
	HintFrac   float64
}

// Figure8 runs the random-block sequential scan at several block sizes.
// totalLines bounds the footprint per point (<= 0 uses 2^20 lines). The
// scan runs at two threads per core: at full SMT even the un-hinted scan
// saturates the read links and the DCBT effect disappears into the
// ceiling; the paper's sub-saturation percentages imply a moderate
// thread count.
func Figure8(m *machine.Machine, blockBytes []units.Bytes, totalLines int, reg *obs.Registry, budget *engine.Budget) []DCBTPoint {
	const threadsPerCore = 2
	if totalLines <= 0 {
		totalLines = 1 << 20
	}
	if len(blockBytes) == 0 {
		blockBytes = []units.Bytes{
			1 * units.KiB, 2 * units.KiB, 4 * units.KiB, 8 * units.KiB,
			16 * units.KiB, 64 * units.KiB, 256 * units.KiB, 1 * units.MiB,
		}
	}
	peak := float64(m.Spec.PeakReadBW())
	out := make([]DCBTPoint, 0, len(blockBytes))
	for _, bb := range blockBytes {
		blockLines := int(bb / 128)
		if blockLines < 1 {
			continue
		}
		plain := dcbtRun(m, totalLines, blockLines, false, reg, budget)
		hint := dcbtRun(m, totalLines, blockLines, true, reg, budget)
		threads := threadsPerCore * m.Spec.TotalCores()
		out = append(out, DCBTPoint{
			BlockBytes: bb,
			PlainFrac:  float64(systemStreamReadOnly(m, plain, threads)) / peak,
			HintFrac:   float64(systemStreamReadOnly(m, hint, threads)) / peak,
		})
	}
	return out
}

// systemStreamReadOnly scales a per-thread read rate to `threads`
// threads, capped by the read-only link bound.
func systemStreamReadOnly(m *machine.Machine, perThread units.Bandwidth, threads int) units.Bandwidth {
	total := float64(perThread) * float64(threads)
	if limit := float64(m.Mem.StreamBandwidth(1, m.Spec.Topology.Chips)); total > limit {
		total = limit
	}
	return units.Bandwidth(total)
}

// dcbtRun scans randomly ordered blocks on one walker thread, optionally
// issuing a DCBT hint at each block start, and returns the thread's rate.
func dcbtRun(m *machine.Machine, totalLines, blockLines int, hint bool, reg *obs.Registry, budget *engine.Budget) units.Bandwidth {
	blocks := totalLines / blockLines
	if blocks < 2 {
		blocks = 2
	}
	g := trace.NewBlockedRandom(0, blocks, blockLines, 7)
	w := m.NewWalker(machine.WalkerConfig{Obs: reg, Budget: budget})
	var accesses uint64
	var totalNs float64
	for {
		atStart := g.BlockStart()
		addr, ok := g.Next()
		if !ok {
			break
		}
		if hint && atStart {
			w.Hint(addr, blockLines, 1)
		}
		lat := w.Access(addr)
		accesses++
		totalNs += lat
	}
	// The loop drives Access directly (it needs per-block Hint calls),
	// so flush the walker's counters explicitly.
	w.PublishStats()
	return machine.WalkResult{Accesses: accesses, TotalNs: totalNs}.ThreadBandwidth()
}
