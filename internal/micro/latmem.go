// Package micro drives the machine model through the paper's
// microbenchmarks and returns the series behind each Section III table
// and figure: the lmbench-style latency curve (Figure 2), the STREAM
// ratio table (Table III), the bandwidth scaling curves (Figure 3), the
// SMP interconnect table (Table IV), random-access bandwidth (Figure 4),
// the FMA throughput surface (Figure 5), and the prefetching studies
// (Figures 6-8).
package micro

import (
	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/units"
)

// LatPoint is one sample of the Figure 2 latency curve.
type LatPoint struct {
	WorkingSet units.Bytes
	AvgNs      float64
}

// Figure2Sizes returns the default working-set sweep: roughly
// logarithmic from 16 KiB to 512 MiB with extra resolution around the
// cache boundaries and the 3 MiB ERAT reach.
func Figure2Sizes() []units.Bytes {
	kib := []int{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
		1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384,
		24576, 32768, 49152, 65536, 98304, 131072, 196608, 262144, 393216, 524288}
	out := make([]units.Bytes, len(kib))
	for i, k := range kib {
		out[i] = units.Bytes(k) * units.KiB
	}
	return out
}

// LatencyCurve measures the Figure 2 pointer-chase latency for each
// working-set size at the given page size, prefetching disabled (as the
// paper configures lmbench). maxAccesses caps the measured accesses per
// point (<= 0 means a full lap) to bound runtime on large sets; a full
// warm lap always precedes measurement. A non-nil reg aggregates every
// point's walker counters (nil runs uninstrumented); a non-nil budget
// charges one unit per access and trips the harness watchdog when
// exhausted.
func LatencyCurve(m *machine.Machine, page arch.PageSize, sizes []units.Bytes, maxAccesses int, reg *obs.Registry, budget *engine.Budget) []LatPoint {
	out := make([]LatPoint, 0, len(sizes))
	for _, ws := range sizes {
		lines := int(ws / 128)
		if lines < 2 {
			continue
		}
		w := m.NewWalker(machine.WalkerConfig{Page: page, DisablePrefetch: true, Obs: reg, Budget: budget})
		// The warm lap always covers the whole working set: capping it
		// would leave only a cache-sized warmed prefix and the measured
		// pass would hit the wrong level.
		warm := trace.NewChase(0, lines, 1, 42)
		w.Run(warm, 0)
		meas := trace.NewChase(0, lines, 1, 42)
		res := w.Run(meas, maxAccesses)
		out = append(out, LatPoint{WorkingSet: ws, AvgNs: res.AvgNs()})
	}
	return out
}
