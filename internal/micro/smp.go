package micro

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/machine"
	"repro/internal/units"
)

// SMPPairRow is one chip-pair row of Table IV.
type SMPPairRow struct {
	Dst          arch.ChipID
	DemandNs     float64 // latency w/o prefetching
	PrefetchedNs float64 // latency w/ prefetching
	OneDirection units.Bandwidth
	BiDirection  units.Bandwidth
}

// SMPAggregates holds the bottom rows of Table IV.
type SMPAggregates struct {
	InterleavedLatNs float64
	InterleavedBW    units.Bandwidth
	AllToAll         units.Bandwidth
	XAggregate       units.Bandwidth
	AAggregate       units.Bandwidth
}

// TableIV measures every chip0<->chipN pair plus the aggregate rows.
func TableIV(m *machine.Machine) ([]SMPPairRow, SMPAggregates) {
	chips := m.Spec.Topology.Chips
	rows := make([]SMPPairRow, 0, chips-1)
	for d := 1; d < chips; d++ {
		dst := arch.ChipID(d)
		rows = append(rows, SMPPairRow{
			Dst:          dst,
			DemandNs:     m.DemandLatencyNs(0, dst),
			PrefetchedNs: m.PrefetchedLatencyNs(0, dst),
			OneDirection: m.Net.PairBandwidth(0, dst, false),
			BiDirection:  m.Net.PairBandwidth(0, dst, true),
		})
	}
	agg := SMPAggregates{
		InterleavedLatNs: m.InterleavedLatencyNs(0),
		InterleavedBW:    m.Net.InterleavedAbsorb(),
		AllToAll:         m.Net.AllToAll(),
		XAggregate:       m.Net.AggregateBandwidth(arch.XBus),
		AAggregate:       m.Net.AggregateBandwidth(arch.ABus),
	}
	return rows, agg
}

// String renders a pair row in the paper's layout.
func (r SMPPairRow) String() string {
	return fmt.Sprintf("Chip0<->Chip%d  %6.0f ns  %5.1f ns  %5.1f GB/s  %5.1f GB/s",
		r.Dst, r.DemandNs, r.PrefetchedNs, r.OneDirection.GBps(), r.BiDirection.GBps())
}
