package kernels

import (
	"sync"
	"testing"
)

// Stencil sweeps ping-pong between buffers for many iterations — the
// pattern that pays spawn-per-call overhead once per sweep without the
// persistent team.

func benchGrids(n int) (*Grid3D, *Grid3D) {
	a := NewGrid3D(n, n, n)
	b := NewGrid3D(n, n, n)
	a.Fill(func(x, y, z int) float64 { return float64((x + 2*y + 3*z) % 7) })
	return a, b
}

func BenchmarkStencilTeam(b *testing.B) {
	src, dst := benchGrids(64)
	c := JacobiCoeffs()
	interior := int64(62) * 62 * 62
	b.SetBytes(interior * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stencil7(dst, src, c, 4)
		src, dst = dst, src
	}
}

// stencilSpawn is the pre-team sweep: per-call worker spawn fed by a
// plane channel. Baseline only.
func stencilSpawn(dst, src *Grid3D, c StencilCoeffs, workers int) {
	nx, ny, nz := src.NX, src.NY, src.NZ
	var wg sync.WaitGroup
	planes := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for z := range planes {
				if z == 0 || z == nz-1 {
					copy(dst.Data[z*ny*nx:(z+1)*ny*nx], src.Data[z*ny*nx:(z+1)*ny*nx])
					continue
				}
				for y := 0; y < ny; y++ {
					row := (z*ny + y) * nx
					if y == 0 || y == ny-1 {
						copy(dst.Data[row:row+nx], src.Data[row:row+nx])
						continue
					}
					dst.Data[row] = src.Data[row]
					for x := 1; x < nx-1; x++ {
						i := row + x
						dst.Data[i] = c.C0*src.Data[i] + c.C1*(src.Data[i-1]+src.Data[i+1]+
							src.Data[i-nx]+src.Data[i+nx]+
							src.Data[i-nx*ny]+src.Data[i+nx*ny])
					}
					dst.Data[row+nx-1] = src.Data[row+nx-1]
				}
			}
		}()
	}
	for z := 0; z < nz; z++ {
		planes <- z
	}
	close(planes)
	wg.Wait()
}

func BenchmarkStencilSpawnBaseline(b *testing.B) {
	src, dst := benchGrids(64)
	c := JacobiCoeffs()
	interior := int64(62) * 62 * 62
	b.SetBytes(interior * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stencilSpawn(dst, src, c, 4)
		src, dst = dst, src
	}
}

func BenchmarkFFT3DTeam(b *testing.B) {
	c := NewCube(32)
	for i := range c.Data {
		c.Data[i] = complex(float64(i%13), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FFT3D(false, 4)
	}
}
