package kernels

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/roofline"
)

func TestStencilMatchesNaive(t *testing.T) {
	const n = 10
	src := NewGrid3D(n, n, n)
	r := rng.New(3)
	src.Fill(func(x, y, z int) float64 { return r.NormFloat64() })
	dst := NewGrid3D(n, n, n)
	c := StencilCoeffs{C0: 0.4, C1: 0.1}
	Stencil7(dst, src, c, 4)
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				want := c.C0*src.At(x, y, z) + c.C1*(src.At(x-1, y, z)+src.At(x+1, y, z)+
					src.At(x, y-1, z)+src.At(x, y+1, z)+src.At(x, y, z-1)+src.At(x, y, z+1))
				if math.Abs(dst.At(x, y, z)-want) > 1e-12 {
					t.Fatalf("(%d,%d,%d): %v, want %v", x, y, z, dst.At(x, y, z), want)
				}
			}
		}
	}
	// Boundaries copy through.
	if dst.At(0, 5, 5) != src.At(0, 5, 5) || dst.At(5, 0, 5) != src.At(5, 0, 5) || dst.At(5, 5, n-1) != src.At(5, 5, n-1) {
		t.Error("boundary not copied")
	}
}

// TestStencilLinearInvariant: a linear field u = ax+by+cz+d is a fixed
// point of the Laplace-Jacobi sweep on the interior.
func TestStencilLinearInvariant(t *testing.T) {
	const n = 8
	src := NewGrid3D(n, n, n)
	src.Fill(func(x, y, z int) float64 { return 2*float64(x) - 3*float64(y) + 0.5*float64(z) + 1 })
	dst := NewGrid3D(n, n, n)
	Stencil7(dst, src, JacobiCoeffs(), 2)
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				if math.Abs(dst.At(x, y, z)-src.At(x, y, z)) > 1e-12 {
					t.Fatalf("linear field not invariant at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

// TestStencilJacobiConverges: iterating the Laplace sweep with fixed
// boundaries converges toward the harmonic interior.
func TestStencilJacobiConverges(t *testing.T) {
	const n = 8
	a := NewGrid3D(n, n, n)
	a.Fill(func(x, y, z int) float64 {
		if x == 0 {
			return 1 // one hot face
		}
		return 0
	})
	b := NewGrid3D(n, n, n)
	for it := 0; it < 500; it++ {
		Stencil7(b, a, JacobiCoeffs(), 2)
		a, b = b, a
	}
	mid := a.At(n/2, n/2, n/2)
	if mid <= 0 || mid >= 1 {
		t.Errorf("interior value %v outside (0,1)", mid)
	}
	// Monotone falloff from the hot face along x.
	if !(a.At(1, n/2, n/2) > a.At(3, n/2, n/2) && a.At(3, n/2, n/2) > a.At(5, n/2, n/2)) {
		t.Error("no monotone falloff from the hot boundary")
	}
}

func TestStencilThreadInvariance(t *testing.T) {
	const n = 12
	src := NewGrid3D(n, n, n)
	r := rng.New(9)
	src.Fill(func(x, y, z int) float64 { return r.Float64() })
	d1 := NewGrid3D(n, n, n)
	d8 := NewGrid3D(n, n, n)
	Stencil7(d1, src, JacobiCoeffs(), 1)
	Stencil7(d8, src, JacobiCoeffs(), 8)
	for i := range d1.Data {
		if d1.Data[i] != d8.Data[i] {
			t.Fatal("thread count changed the sweep")
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		r := rng.New(uint64(n))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		want := DFTReference(x, false)
		got := append([]complex128(nil), x...)
		FFT(got, false)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d bin %d: %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	f := func(seed uint64, szBits uint8) bool {
		n := 1 << (szBits%7 + 1)
		r := rng.New(seed)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		FFT(y, false)
		FFT(y, true)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFFTParseval: energy is preserved (up to the 1/n convention).
func TestFFTParseval(t *testing.T) {
	const n = 64
	r := rng.New(5)
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
		timeEnergy += real(x[i] * cmplx.Conj(x[i]))
	}
	FFT(x, false)
	var freqEnergy float64
	for i := range x {
		freqEnergy += real(x[i] * cmplx.Conj(x[i]))
	}
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-9*timeEnergy {
		t.Errorf("Parseval violated: %v vs %v", freqEnergy/float64(n), timeEnergy)
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x, false)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFT3DRoundTripAndPlaneWave(t *testing.T) {
	const n = 8
	c := NewCube(n)
	// A single plane wave concentrates into one bin.
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				theta := 2 * math.Pi * (2*float64(x) + 1*float64(y) + 3*float64(z)) / n
				c.Set(x, y, z, cmplx.Exp(complex(0, theta)))
			}
		}
	}
	orig := append([]complex128(nil), c.Data...)
	c.FFT3D(false, 4)
	total := float64(n * n * n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				want := 0.0
				if x == 2 && y == 1 && z == 3 {
					want = total
				}
				if cmplx.Abs(c.At(x, y, z)-complex(want, 0)) > 1e-7 {
					t.Fatalf("bin (%d,%d,%d) = %v, want %v", x, y, z, c.At(x, y, z), want)
				}
			}
		}
	}
	c.FFT3D(true, 4)
	for i := range orig {
		if cmplx.Abs(c.Data[i]-orig[i]) > 1e-9 {
			t.Fatal("3D round trip failed")
		}
	}
}

func TestFFT3DThreadInvariance(t *testing.T) {
	a := NewCube(8)
	r := rng.New(2)
	for i := range a.Data {
		a.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	b := &Cube{N: 8, Data: append([]complex128(nil), a.Data...)}
	a.FFT3D(false, 1)
	b.FFT3D(false, 8)
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > 1e-10 {
			t.Fatal("thread count changed the transform")
		}
	}
}

// TestOperationalIntensities: the executable kernels' first-principles
// intensities must match what Figure 9 uses.
func TestOperationalIntensities(t *testing.T) {
	ks := roofline.ScientificKernels()
	var stencilRef, fftRef float64
	for _, k := range ks {
		switch k.Name {
		case "Stencil":
			stencilRef = k.OI
		case "3D FFT":
			fftRef = k.OI
		}
	}
	if got := StencilOI(); math.Abs(got-stencilRef) > 0.01 {
		t.Errorf("stencil OI = %v, roofline uses %v", got, stencilRef)
	}
	// The paper-era convention evaluates the FFT at large grids
	// (n = 512 per side).
	if got := FFT3DOI(512); math.Abs(got-fftRef) > 0.35 {
		t.Errorf("3D FFT OI at n=512 = %v, roofline uses %v", got, fftRef)
	}
}

func TestMeasureKernels(t *testing.T) {
	if r := MeasureStencil(32, 0, 2); r.GFs() <= 0 {
		t.Errorf("stencil rate %v", r)
	}
	if r := MeasureFFT3D(16, 0, 2); r.GFs() <= 0 {
		t.Errorf("FFT rate %v", r)
	}
}

func TestKernelPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGrid3D(2, 8, 8) },
		func() { NewCube(12) },
		func() { FFT(make([]complex128, 3), false) },
		func() { Stencil7(NewGrid3D(4, 4, 4), NewGrid3D(4, 4, 5), JacobiCoeffs(), 1) },
		func() { MeasureStencil(8, 1, 0) },
		func() { MeasureFFT3D(8, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
