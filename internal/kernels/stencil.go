// Package kernels implements, as real host-executable code, two of the
// four scientific kernels the paper's roofline analysis (Section IV,
// Figure 9) places on the E870 model: the 7-point 3D stencil and the 3D
// fast Fourier transform. The paper only positions them by operational
// intensity; having the kernels executable lets tests verify those
// intensities from first principles and lets users measure them on any
// host.
package kernels

import (
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/units"
)

// Grid3D is a dense scalar field on an nx x ny x nz grid, row-major with
// x fastest.
type Grid3D struct {
	NX, NY, NZ int
	Data       []float64
}

// NewGrid3D allocates a zero grid.
func NewGrid3D(nx, ny, nz int) *Grid3D {
	if nx < 3 || ny < 3 || nz < 3 {
		panic(fmt.Sprintf("kernels: grid %dx%dx%d too small for a 7-point stencil", nx, ny, nz))
	}
	return &Grid3D{NX: nx, NY: ny, NZ: nz, Data: make([]float64, nx*ny*nz)}
}

// At returns the value at (x, y, z).
func (g *Grid3D) At(x, y, z int) float64 { return g.Data[(z*g.NY+y)*g.NX+x] }

// Set assigns the value at (x, y, z).
func (g *Grid3D) Set(x, y, z int, v float64) { g.Data[(z*g.NY+y)*g.NX+x] = v }

// Fill sets every point from f(x, y, z).
func (g *Grid3D) Fill(f func(x, y, z int) float64) {
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				g.Set(x, y, z, f(x, y, z))
			}
		}
	}
}

// StencilCoeffs are the 7-point stencil weights: c0 for the centre, c1
// for each of the six neighbours. The classic Jacobi iteration for the
// Laplace equation uses c0 = 0, c1 = 1/6.
type StencilCoeffs struct {
	C0, C1 float64
}

// JacobiCoeffs returns the Laplace-Jacobi weights.
func JacobiCoeffs() StencilCoeffs { return StencilCoeffs{C0: 0, C1: 1.0 / 6} }

// Stencil7 applies one 7-point stencil sweep to the interior of src,
// writing dst (boundaries copy through). Parallel over z-planes on the
// persistent worker team with dynamic chunking, so repeated sweeps
// (ping-pong Jacobi iteration) spawn no goroutines. Every plane's
// writes are disjoint and computed in the same order as the sequential
// sweep, so results are bit-identical regardless of schedule.
func Stencil7(dst, src *Grid3D, c StencilCoeffs, threads int) {
	if dst.NX != src.NX || dst.NY != src.NY || dst.NZ != src.NZ {
		panic("kernels: grid shape mismatch")
	}
	nx, ny, nz := src.NX, src.NY, src.NZ
	workers := parallel.Workers(threads)
	parallel.For(workers, nz, 1, func(zlo, zhi int) {
		for z := zlo; z < zhi; z++ {
			if z == 0 || z == nz-1 {
				copy(dst.Data[z*ny*nx:(z+1)*ny*nx], src.Data[z*ny*nx:(z+1)*ny*nx])
				continue
			}
			for y := 0; y < ny; y++ {
				row := (z*ny + y) * nx
				if y == 0 || y == ny-1 {
					copy(dst.Data[row:row+nx], src.Data[row:row+nx])
					continue
				}
				dst.Data[row] = src.Data[row]
				for x := 1; x < nx-1; x++ {
					i := row + x
					dst.Data[i] = c.C0*src.Data[i] + c.C1*(src.Data[i-1]+src.Data[i+1]+
						src.Data[i-nx]+src.Data[i+nx]+
						src.Data[i-nx*ny]+src.Data[i+nx*ny])
				}
				dst.Data[row+nx-1] = src.Data[row+nx-1]
			}
		}
	})
}

// StencilFlopsPerPoint is the floating-point work of one interior update:
// 6 adds inside the neighbour sum would be 5, plus 2 multiplies and 1 add
// for the weighted combination — 8 FLOPs, the conventional count.
const StencilFlopsPerPoint = 8

// StencilOI returns the operational intensity of an out-of-cache stencil
// sweep: 8 FLOPs per point over one 8-byte read plus one 8-byte write
// (neighbour reuse comes from cache), the conventional ~0.5 FLOP/B that
// Figure 9 uses.
func StencilOI() float64 { return StencilFlopsPerPoint / 16.0 }

// MeasureStencil times iters sweeps (ping-pong buffers) and returns the
// sustained rate.
func MeasureStencil(n, threads, iters int) units.Rate {
	if iters <= 0 {
		panic("kernels: iters must be positive")
	}
	a := NewGrid3D(n, n, n)
	b := NewGrid3D(n, n, n)
	a.Fill(func(x, y, z int) float64 { return float64((x + 2*y + 3*z) % 7) })
	c := JacobiCoeffs()
	Stencil7(b, a, c, threads) // warmup
	interior := float64(n-2) * float64(n-2) * float64(n-2)
	start := time.Now()
	for it := 0; it < iters; it++ {
		Stencil7(b, a, c, threads)
		a, b = b, a
	}
	sec := time.Since(start).Seconds()
	return units.Rate(interior * StencilFlopsPerPoint * float64(iters) / sec)
}
