package kernels

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"repro/internal/parallel"
	"repro/internal/units"
)

// FFT performs an in-place radix-2 decimation-in-time transform of a
// power-of-two-length complex vector. inverse selects the inverse
// transform, which includes the 1/n scaling so FFT(FFT(x, false), true)
// is the identity.
func FFT(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("kernels: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		theta := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(theta), math.Sin(theta))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// DFTReference is the O(n^2) direct transform the tests validate FFT
// against.
func DFTReference(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			theta := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * complex(math.Cos(theta), math.Sin(theta))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

// Cube is a dense complex field on an n x n x n grid (x fastest).
type Cube struct {
	N    int
	Data []complex128
}

// NewCube allocates a zero cube; n must be a power of two.
func NewCube(n int) *Cube {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("kernels: cube edge %d is not a power of two", n))
	}
	return &Cube{N: n, Data: make([]complex128, n*n*n)}
}

// At returns the value at (x, y, z).
func (c *Cube) At(x, y, z int) complex128 { return c.Data[(z*c.N+y)*c.N+x] }

// Set assigns the value at (x, y, z).
func (c *Cube) Set(x, y, z int, v complex128) { c.Data[(z*c.N+y)*c.N+x] = v }

// FFT3D transforms the cube in place along all three axes — the 3D FFT
// kernel of Figure 9. Lines along each axis transform independently in
// parallel on the persistent worker team; per-worker strided-line
// buffers are allocated lazily and reused across that worker's chunks.
func (c *Cube) FFT3D(inverse bool, threads int) {
	n := c.N
	workers := parallel.Workers(threads)

	bufs := make([][]complex128, workers)
	run := func(lines int, body func(line int, buf []complex128)) {
		parallel.ForWorker(workers, lines, 0, func(w, lo, hi int) {
			buf := bufs[w]
			if buf == nil {
				buf = make([]complex128, n)
				bufs[w] = buf
			}
			for line := lo; line < hi; line++ {
				body(line, buf)
			}
		})
	}

	// X axis: contiguous lines.
	run(n*n, func(line int, _ []complex128) {
		FFT(c.Data[line*n:(line+1)*n], inverse)
	})
	// Y axis: stride n within a z-plane.
	run(n*n, func(line int, buf []complex128) {
		z := line / n
		x := line % n
		base := z*n*n + x
		for y := 0; y < n; y++ {
			buf[y] = c.Data[base+y*n]
		}
		FFT(buf, inverse)
		for y := 0; y < n; y++ {
			c.Data[base+y*n] = buf[y]
		}
	})
	// Z axis: stride n*n.
	run(n*n, func(line int, buf []complex128) {
		for z := 0; z < n; z++ {
			buf[z] = c.Data[line+z*n*n]
		}
		FFT(buf, inverse)
		for z := 0; z < n; z++ {
			c.Data[line+z*n*n] = buf[z]
		}
	})
}

// FFT3DFlops returns the conventional operation count of one 3D
// transform: 5 N log2(N) with N = n^3 total points.
func FFT3DFlops(n int) float64 {
	total := float64(n) * float64(n) * float64(n)
	return 5 * total * math.Log2(total)
}

// FFT3DOI returns the operational intensity of an out-of-cache 3D FFT:
// three passes, each streaming the 16-byte complex cube in and out, is
// the conventional accounting behind Figure 9's ~1.6 FLOP/B at the
// paper's problem sizes (n = 2^9 per side).
func FFT3DOI(n int) float64 {
	total := float64(n) * float64(n) * float64(n)
	traffic := 3 * 2 * 16 * total
	return FFT3DFlops(n) / traffic
}

// MeasureFFT3D times iters forward transforms and returns the rate.
func MeasureFFT3D(n, threads, iters int) units.Rate {
	if iters <= 0 {
		panic("kernels: iters must be positive")
	}
	c := NewCube(n)
	for i := range c.Data {
		c.Data[i] = complex(float64(i%17), float64(i%5))
	}
	c.FFT3D(false, threads) // warmup
	start := time.Now()
	for it := 0; it < iters; it++ {
		c.FFT3D(false, threads)
	}
	sec := time.Since(start).Seconds()
	return units.Rate(FFT3DFlops(n) * float64(iters) / sec)
}
