package graph

import (
	"fmt"

	"repro/internal/rng"
)

// RMATConfig parameterizes the recursive-matrix graph generator. The
// paper's experiments use Graph500 parameters (a=0.57, b=0.19, c=0.19,
// d=0.05) with an average degree of 16 (EdgeFactor 16 for directed use,
// or 8 mirrored edges for undirected).
type RMATConfig struct {
	Scale      int // 2^Scale vertices
	EdgeFactor int // generated edges per vertex
	A, B, C, D float64
	Seed       uint64
	Undirected bool // mirror each edge
	NoSelf     bool // drop self loops
}

// DefaultRMAT returns the Graph500 parameter set at the given scale with
// average degree 16, matching the paper's Jaccard and SpMV workloads.
func DefaultRMAT(scale int, seed uint64) RMATConfig {
	return RMATConfig{
		Scale: scale, EdgeFactor: 16,
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Seed: seed, NoSelf: true,
	}
}

// Validate checks the configuration.
func (c RMATConfig) Validate() error {
	if c.Scale < 1 || c.Scale > 31 {
		return fmt.Errorf("graph: R-MAT scale %d out of [1,31]", c.Scale)
	}
	if c.EdgeFactor < 1 {
		return fmt.Errorf("graph: edge factor %d < 1", c.EdgeFactor)
	}
	sum := c.A + c.B + c.C + c.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("graph: R-MAT probabilities sum to %g", sum)
	}
	return nil
}

// Vertices returns the vertex count 2^Scale.
func (c RMATConfig) Vertices() int { return 1 << c.Scale }

// Edges returns the number of generated edges before mirroring/dedup.
func (c RMATConfig) Edges() int64 { return int64(c.Vertices()) * int64(c.EdgeFactor) }

// RMATEdges generates the raw edge list. It returns the configuration
// error, if any, instead of panicking, so CLI callers can report bad
// flags gracefully.
func RMATEdges(cfg RMATConfig) (src, dst []int32, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	r := rng.New(cfg.Seed)
	n := cfg.Edges()
	src = make([]int32, 0, n)
	dst = make([]int32, 0, n)
	for e := int64(0); e < n; e++ {
		var i, j int32
		for {
			i, j = rmatOne(cfg, r)
			if cfg.NoSelf && i == j {
				continue
			}
			break
		}
		src = append(src, i)
		dst = append(dst, j)
	}
	return src, dst, nil
}

// rmatOne draws one edge by recursive quadrant descent.
func rmatOne(cfg RMATConfig, r *rng.Rand) (int32, int32) {
	var i, j int32
	ab := cfg.A + cfg.B
	abc := ab + cfg.C
	for bit := 0; bit < cfg.Scale; bit++ {
		u := r.Float64()
		switch {
		case u < cfg.A:
			// top-left: no bits set
		case u < ab:
			j |= 1 << bit
		case u < abc:
			i |= 1 << bit
		default:
			i |= 1 << bit
			j |= 1 << bit
		}
	}
	return i, j
}

// RMATDegrees streams the generator and returns only the per-vertex
// degree counts of the undirected multigraph (each generated edge
// contributes to both endpoints), without materializing the edge list.
// This is what lets the Figure 10 projection reach paper scales: the
// degree array for scale s costs 4 * 2^s bytes while the edge list would
// cost 8 * 16 * 2^s. Like RMATEdges it returns the configuration error
// instead of panicking.
func RMATDegrees(cfg RMATConfig) ([]int32, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	deg := make([]int32, cfg.Vertices())
	r := rng.New(cfg.Seed)
	n := cfg.Edges()
	for e := int64(0); e < n; e++ {
		var i, j int32
		for {
			i, j = rmatOne(cfg, r)
			if cfg.NoSelf && i == j {
				continue
			}
			break
		}
		deg[i]++
		deg[j]++
	}
	return deg, nil
}

// RMAT generates the graph and assembles it into a deduplicated CSR
// adjacency matrix (values all 1). With Undirected set, each edge is
// mirrored before assembly, producing a symmetric matrix. It keeps the
// panic-on-invalid-config contract for the model code paths that build
// graphs from programmatic configurations; CLIs validate first.
func RMAT(cfg RMATConfig) *CSR {
	src, dst, err := RMATEdges(cfg)
	if err != nil {
		panic(err)
	}
	n := cfg.Vertices()
	coo := &COO{Rows: n, Cols: n}
	if cfg.Undirected {
		coo.I = make([]int32, 0, 2*len(src))
		coo.J = make([]int32, 0, 2*len(src))
		coo.I = append(coo.I, src...)
		coo.J = append(coo.J, dst...)
		coo.I = append(coo.I, dst...)
		coo.J = append(coo.J, src...)
	} else {
		coo.I, coo.J = src, dst
	}
	m := FromCOO(coo)
	// Deduplicated values accumulate; reset to 1 to represent adjacency.
	for k := range m.Vals {
		m.Vals[k] = 1
	}
	return m
}
