package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
2 3 -1
3 4 7
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 3 {
		t.Fatalf("shape = %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	cols, vals := m.Row(0)
	if cols[0] != 0 || vals[0] != 2.5 {
		t.Errorf("row 0 = %v %v", cols, vals)
	}
	cols, vals = m.Row(2)
	if cols[0] != 3 || vals[0] != 7 {
		t.Errorf("row 2 = %v %v", cols, vals)
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 1
2 1 5
3 2 6
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Off-diagonals mirror: nnz = 1 + 2 + 2.
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[1] != 1 || vals[1] != 5 {
		t.Errorf("row 0 = %v %v", cols, vals)
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vals[0] != 1 || m.Vals[1] != 1 {
		t.Error("pattern values not unit")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	orig := RMAT(DefaultRMAT(8, 5))
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != orig.Rows || back.NNZ() != orig.NNZ() {
		t.Fatalf("round trip changed shape: %d/%d nnz %d/%d",
			back.Rows, orig.Rows, back.NNZ(), orig.NNZ())
	}
	for i := 0; i < orig.Rows; i++ {
		c1, v1 := orig.Row(i)
		c2, v2 := back.Row(i)
		for k := range c1 {
			if c1[k] != c2[k] || v1[k] != v2[k] {
				t.Fatalf("row %d differs after round trip", i)
			}
		}
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not mm":         "hello\n1 1 1\n",
		"array form":     "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex field":  "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"no size":        "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"bad size":       "%%MatrixMarket matrix coordinate real general\n2 2\n",
		"out of range":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 x\n",
		"count mismatch": "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
		"short entry":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
