package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// pow is math.Pow, aliased for brevity in the degree samplers.
func pow(x, y float64) float64 { return math.Pow(x, y) }

// MatrixKind classifies the structural family of a synthetic matrix.
type MatrixKind int

// Structural families: banded FEM-style stencils, block-structured
// matrices with dense node blocks, uniformly random rows, and power-law
// (scale-free) rows.
const (
	KindBanded MatrixKind = iota
	KindBlocked
	KindRandom
	KindPowerLaw
	KindDense
)

// String implements fmt.Stringer.
func (k MatrixKind) String() string {
	switch k {
	case KindBanded:
		return "banded"
	case KindBlocked:
		return "blocked"
	case KindRandom:
		return "random"
	case KindPowerLaw:
		return "power-law"
	case KindDense:
		return "dense"
	default:
		return fmt.Sprintf("MatrixKind(%d)", int(k))
	}
}

// MatrixProfile describes a synthetic stand-in for one matrix of the
// Figure 11 suite: the published dimensions and nonzero count of the
// University of Florida original, plus the structural family that drives
// SpMV behaviour. The originals are not redistributable inputs for an
// offline reproduction; SpMV performance depends on size, nnz/row and
// structure, which the profiles preserve.
type MatrixProfile struct {
	Name string
	N    int
	NNZ  int64
	Kind MatrixKind
	// BlockSize is the dense node-block edge for KindBlocked (FEM
	// matrices couple 3-6 degrees of freedom per mesh node).
	BlockSize int
}

// Suite returns the Figure 11 matrix set: the dense reference plus
// representative UF matrices commonly used in SpMV studies, with their
// published sizes and nonzero counts.
func Suite() []MatrixProfile {
	return []MatrixProfile{
		{Name: "Dense", N: 4096, NNZ: 4096 * 4096, Kind: KindDense},
		{Name: "Protein", N: 36417, NNZ: 4344765, Kind: KindBlocked, BlockSize: 3},
		{Name: "FEM/Spheres", N: 83334, NNZ: 6010480, Kind: KindBlocked, BlockSize: 3},
		{Name: "FEM/Cantilever", N: 62451, NNZ: 4007383, Kind: KindBlocked, BlockSize: 3},
		{Name: "Wind Tunnel", N: 217918, NNZ: 11634424, Kind: KindBlocked, BlockSize: 3},
		{Name: "FEM/Harbor", N: 46835, NNZ: 2374001, Kind: KindBanded},
		{Name: "QCD", N: 49152, NNZ: 1916928, Kind: KindBanded},
		{Name: "FEM/Ship", N: 140874, NNZ: 7813404, Kind: KindBlocked, BlockSize: 6},
		{Name: "Economics", N: 206500, NNZ: 1273389, Kind: KindRandom},
		{Name: "Epidemiology", N: 525825, NNZ: 2100225, Kind: KindBanded},
		{Name: "FEM/Accelerator", N: 121192, NNZ: 2624331, Kind: KindRandom},
		{Name: "Circuit", N: 170998, NNZ: 958936, Kind: KindPowerLaw},
		{Name: "Webbase", N: 1000005, NNZ: 3105536, Kind: KindPowerLaw},
	}
}

// Generate synthesizes the matrix for a profile deterministically.
func Generate(p MatrixProfile, seed uint64) *CSR {
	if p.N <= 0 || p.NNZ <= 0 {
		panic(fmt.Sprintf("graph: invalid profile %+v", p))
	}
	switch p.Kind {
	case KindDense:
		return Dense(p.N)
	case KindBanded:
		return genBanded(p)
	case KindBlocked:
		return genBlocked(p, seed)
	case KindRandom:
		return genRandom(p, seed)
	case KindPowerLaw:
		return genPowerLaw(p, seed)
	default:
		panic(fmt.Sprintf("graph: unknown kind %v", p.Kind))
	}
}

// genBanded lays nonzeros on a symmetric set of diagonals sized to hit
// the target nnz/row, like FEM stencil matrices.
func genBanded(p MatrixProfile) *CSR {
	perRow := int(p.NNZ / int64(p.N))
	if perRow < 1 {
		perRow = 1
	}
	half := perRow / 2
	// Spread the band: nearby diagonals plus a few distant ones for
	// realistic cache behaviour.
	offsets := make([]int, 0, perRow)
	offsets = append(offsets, 0)
	for d := 1; len(offsets) < perRow; d++ {
		offsets = append(offsets, d)
		if len(offsets) < perRow {
			offsets = append(offsets, -d)
		}
		if d == half/2 && len(offsets) < perRow-1 {
			// A far coupling, as in 3D meshes.
			offsets = append(offsets, p.N/64+1, -(p.N/64 + 1))
		}
	}
	coo := &COO{Rows: p.N, Cols: p.N}
	for i := 0; i < p.N; i++ {
		for _, off := range offsets {
			j := i + off
			if j >= 0 && j < p.N {
				coo.Append(int32(i), int32(j), 1+float64((i+j)%3))
			}
		}
	}
	return FromCOO(coo)
}

// genBlocked scatters dense BlockSize x BlockSize node blocks along rows,
// like FEM matrices with multiple degrees of freedom per node.
func genBlocked(p MatrixProfile, seed uint64) *CSR {
	b := p.BlockSize
	if b < 1 {
		b = 3
	}
	nodes := p.N / b
	blocksPerRow := int(p.NNZ / int64(p.N) / int64(b))
	if blocksPerRow < 1 {
		blocksPerRow = 1
	}
	r := rng.New(seed)
	coo := &COO{Rows: p.N, Cols: p.N}
	for node := 0; node < nodes; node++ {
		for blk := 0; blk < blocksPerRow; blk++ {
			// Mostly near-diagonal coupling with occasional long range.
			var other int
			if r.Float64() < 0.8 {
				span := 64
				other = node + r.Intn(2*span+1) - span
			} else {
				other = r.Intn(nodes)
			}
			if other < 0 || other >= nodes {
				other = node
			}
			for di := 0; di < b; di++ {
				for dj := 0; dj < b; dj++ {
					i, j := node*b+di, other*b+dj
					if i < p.N && j < p.N {
						coo.Append(int32(i), int32(j), 1)
					}
				}
			}
		}
	}
	return FromCOO(coo)
}

// genRandom scatters nonzeros uniformly.
func genRandom(p MatrixProfile, seed uint64) *CSR {
	r := rng.New(seed)
	perRow := int(p.NNZ / int64(p.N))
	if perRow < 1 {
		perRow = 1
	}
	coo := &COO{Rows: p.N, Cols: p.N}
	for i := 0; i < p.N; i++ {
		for k := 0; k < perRow; k++ {
			coo.Append(int32(i), int32(r.Intn(p.N)), 1)
		}
	}
	return FromCOO(coo)
}

// genPowerLaw draws row degrees from a Zipf-like distribution, producing
// the scale-free structure of web and circuit matrices.
func genPowerLaw(p MatrixProfile, seed uint64) *CSR {
	r := rng.New(seed)
	avg := float64(p.NNZ) / float64(p.N)
	// Pareto(alpha=2.5) with scale chosen so the mean equals the target
	// nnz/row: xm = avg * (alpha-1)/alpha; clamped so one row cannot
	// dominate the matrix.
	const alpha = 2.5
	xm := avg * (alpha - 1) / alpha
	coo := &COO{Rows: p.N, Cols: p.N}
	for i := 0; i < p.N; i++ {
		u := 1 - r.Float64() // (0, 1]
		deg := int(xm * pow(u, -1/alpha))
		if deg < 1 {
			deg = 1
		}
		if deg > p.N/8 {
			deg = p.N / 8
		}
		for k := 0; k < deg; k++ {
			// Preferential-ish attachment: bias columns to low indices.
			j := int(float64(p.N) * r.Float64() * r.Float64())
			if j >= p.N {
				j = p.N - 1
			}
			coo.Append(int32(i), int32(j), 1)
		}
	}
	return FromCOO(coo)
}
