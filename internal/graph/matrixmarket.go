package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The Figure 11 suite ships as synthetic stand-ins because the original
// University of Florida matrices cannot be bundled offline; this reader
// lets anyone who has the originals (Matrix Market .mtx files) run the
// same kernels and benchmarks on them. The subset of the format that the
// UF collection uses is supported: coordinate-form real/integer/pattern
// matrices, general or symmetric.

// ReadMatrixMarket parses a coordinate-form Matrix Market stream into a
// CSR matrix. Symmetric files are expanded; pattern files get unit
// values.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty Matrix Market stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("graph: not a Matrix Market header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: only coordinate format is supported, got %q", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("graph: unsupported field type %q", field)
	}
	symmetry := "general"
	if len(header) >= 5 {
		symmetry = header[4]
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("graph: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols int
	var nnz int64
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("graph: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("graph: malformed size line %q", line)
		}
		var err error
		if rows, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("graph: bad row count: %v", err)
		}
		if cols, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("graph: bad column count: %v", err)
		}
		if nnz, err = strconv.ParseInt(f[2], 10, 64); err != nil {
			return nil, fmt.Errorf("graph: bad nnz count: %v", err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("graph: invalid dimensions %d x %d, %d nnz", rows, cols, nnz)
	}

	coo := &COO{Rows: rows, Cols: cols}
	read := int64(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("graph: malformed entry %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad row index: %v", err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad column index: %v", err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("graph: entry (%d,%d) outside %d x %d", i, j, rows, cols)
		}
		v := 1.0
		if field != "pattern" {
			if v, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("graph: bad value: %v", err)
			}
		}
		coo.Append(int32(i-1), int32(j-1), v)
		if symmetry == "symmetric" && i != j {
			coo.Append(int32(j-1), int32(i-1), v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read error: %v", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("graph: header promises %d entries, found %d", nnz, read)
	}
	return FromCOO(coo), nil
}

// WriteMatrixMarket emits a CSR matrix as coordinate-form real general
// Matrix Market.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", i+1, cols[k]+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
