// Package graph provides the sparse-matrix and graph substrate the
// paper's applications run on: CSR storage, COO assembly, the R-MAT
// generator used for the Jaccard and SpMV experiments (Figures 10 and
// 12), and a synthetic matrix suite reproducing the structural profiles
// of the University of Florida matrices used in Figure 11.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// CSR is a sparse matrix in compressed sparse row format. Column indices
// within each row are sorted and unique after construction through
// FromCOO.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Vals       []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int64 { return int64(len(m.ColIdx)) }

// AvgDegree returns the mean nonzeros per row.
func (m *CSR) AvgDegree() float64 {
	if m.Rows == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.Rows)
}

// Row returns the column indices and values of row i as shared slices.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// Degree returns the number of nonzeros in row i.
func (m *CSR) Degree(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// MaxDegree returns the largest row degree (0 for an empty matrix).
func (m *CSR) MaxDegree() int {
	max := 0
	for i := 0; i < m.Rows; i++ {
		if d := m.Degree(i); d > max {
			max = d
		}
	}
	return max
}

// Bytes returns the memory footprint of the CSR arrays.
func (m *CSR) Bytes() units.Bytes {
	return units.Bytes(len(m.RowPtr)*8 + len(m.ColIdx)*4 + len(m.Vals)*8)
}

// Validate checks structural invariants: monotone row pointers, in-range
// sorted unique column indices, and matching array lengths.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("graph: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != m.NNZ() {
		return fmt.Errorf("graph: RowPtr endpoints %d..%d, want 0..%d", m.RowPtr[0], m.RowPtr[m.Rows], m.NNZ())
	}
	if len(m.Vals) != len(m.ColIdx) {
		return fmt.Errorf("graph: %d values for %d column indices", len(m.Vals), len(m.ColIdx))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("graph: RowPtr not monotone at row %d", i)
		}
		cols, _ := m.Row(i)
		for j, c := range cols {
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("graph: row %d column %d out of range", i, c)
			}
			if j > 0 && cols[j-1] >= c {
				return fmt.Errorf("graph: row %d columns not sorted/unique at %d", i, j)
			}
		}
	}
	return nil
}

// COO is an edge/triplet list used for assembly.
type COO struct {
	Rows, Cols int
	I, J       []int32
	V          []float64 // nil means all-ones
}

// Append adds a triplet.
func (c *COO) Append(i, j int32, v float64) {
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	if c.V != nil || v != 1 {
		if c.V == nil {
			c.V = make([]float64, len(c.I)-1)
			for k := range c.V {
				c.V[k] = 1
			}
		}
		c.V = append(c.V, v)
	}
}

// value returns triplet k's value.
func (c *COO) value(k int) float64 {
	if c.V == nil {
		return 1
	}
	return c.V[k]
}

// FromCOO assembles a CSR from triplets: bucket by row, sort each row by
// column, and sum duplicate entries. Out-of-range indices panic.
func FromCOO(c *COO) *CSR {
	nnz := len(c.I)
	if len(c.J) != nnz || (c.V != nil && len(c.V) != nnz) {
		panic("graph: COO arrays disagree in length")
	}
	counts := make([]int64, c.Rows+1)
	for k := 0; k < nnz; k++ {
		i, j := c.I[k], c.J[k]
		if i < 0 || int(i) >= c.Rows || j < 0 || int(j) >= c.Cols {
			panic(fmt.Sprintf("graph: triplet (%d,%d) out of %dx%d", i, j, c.Rows, c.Cols))
		}
		counts[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		counts[i+1] += counts[i]
	}
	cols := make([]int32, nnz)
	vals := make([]float64, nnz)
	next := make([]int64, c.Rows)
	copy(next, counts[:c.Rows])
	for k := 0; k < nnz; k++ {
		p := next[c.I[k]]
		next[c.I[k]]++
		cols[p] = c.J[k]
		vals[p] = c.value(k)
	}
	// Sort within each row and merge duplicates, compacting in place.
	out := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int64, c.Rows+1)}
	w := int64(0)
	for i := 0; i < c.Rows; i++ {
		lo, hi := counts[i], counts[i+1]
		seg := rowSeg{cols: cols[lo:hi], vals: vals[lo:hi]}
		sort.Sort(seg)
		for r := 0; r < len(seg.cols); r++ {
			if w > out.RowPtr[i] && cols[w-1] == seg.cols[r] && w-1 >= out.RowPtr[i] {
				vals[w-1] += seg.vals[r]
				continue
			}
			cols[w] = seg.cols[r]
			vals[w] = seg.vals[r]
			w++
		}
		out.RowPtr[i+1] = w
	}
	out.ColIdx = cols[:w]
	out.Vals = vals[:w]
	return out
}

type rowSeg struct {
	cols []int32
	vals []float64
}

func (s rowSeg) Len() int           { return len(s.cols) }
func (s rowSeg) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s rowSeg) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Transpose returns the transposed matrix (CSC view materialized as CSR).
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int64, m.Cols+1)}
	t.ColIdx = make([]int32, m.NNZ())
	t.Vals = make([]float64, m.NNZ())
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < t.Rows; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int64, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			p := next[j]
			next[j]++
			t.ColIdx[p] = int32(i)
			t.Vals[p] = vals[k]
		}
	}
	return t
}

// Dense builds an n x n fully dense matrix in CSR form — the paper's
// "Dense" reference point for peak achievable SpMV performance.
func Dense(n int) *CSR {
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}
	m.ColIdx = make([]int32, n*n)
	m.Vals = make([]float64, n*n)
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = int64((i + 1) * n)
		for j := 0; j < n; j++ {
			m.ColIdx[i*n+j] = int32(j)
			m.Vals[i*n+j] = 1 + float64((i+j)%5)
		}
	}
	return m
}

// DegreeHistogram returns counts of rows per log2-degree bucket:
// bucket[k] counts rows with degree in [2^k, 2^(k+1)), bucket[0] also
// counting degree-0 and 1 rows.
func (m *CSR) DegreeHistogram() []int64 {
	var hist []int64
	for i := 0; i < m.Rows; i++ {
		d := m.Degree(i)
		b := 0
		for v := d; v > 1; v >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}
