package graph

import (
	"testing"
	"testing/quick"
)

func TestFromCOOBasic(t *testing.T) {
	coo := &COO{Rows: 3, Cols: 3}
	coo.Append(2, 0, 5)
	coo.Append(0, 1, 2)
	coo.Append(0, 0, 1)
	m := FromCOO(coo)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 || vals[0] != 1 || vals[1] != 2 {
		t.Errorf("row 0 = %v %v", cols, vals)
	}
	if m.Degree(1) != 0 {
		t.Errorf("row 1 degree = %d", m.Degree(1))
	}
}

func TestFromCOODuplicatesSum(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 2}
	coo.Append(0, 1, 2)
	coo.Append(0, 1, 3)
	coo.Append(0, 0, 1)
	m := FromCOO(coo)
	cols, vals := m.Row(0)
	if len(cols) != 2 {
		t.Fatalf("duplicates not merged: %v", cols)
	}
	if vals[1] != 5 {
		t.Errorf("duplicate sum = %v, want 5", vals[1])
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromCOOAllOnesDefault(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 2}
	coo.Append(0, 0, 1)
	coo.Append(1, 1, 1)
	m := FromCOO(coo)
	if m.Vals[0] != 1 || m.Vals[1] != 1 {
		t.Error("default values not 1")
	}
}

func TestFromCOOPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range triplet did not panic")
		}
	}()
	FromCOO(&COO{Rows: 2, Cols: 2, I: []int32{2}, J: []int32{0}})
}

func TestFromCOOProperty(t *testing.T) {
	// Property: assembly preserves the summed value per (i,j) pair.
	f := func(seed uint64, nTrip uint8) bool {
		coo := &COO{Rows: 8, Cols: 8}
		want := map[[2]int32]float64{}
		s := seed
		for k := 0; k < int(nTrip); k++ {
			s = s*6364136223846793005 + 1442695040888963407
			i := int32((s >> 10) % 8)
			j := int32((s >> 20) % 8)
			v := float64((s>>30)%5) + 1
			coo.Append(i, j, v)
			want[[2]int32{i, j}] += v
		}
		m := FromCOO(coo)
		if m.Validate() != nil {
			return false
		}
		got := map[[2]int32]float64{}
		for i := 0; i < m.Rows; i++ {
			cols, vals := m.Row(i)
			for k := range cols {
				got[[2]int32{int32(i), cols[k]}] = vals[k]
			}
		}
		if len(got) != len(want) {
			return false
		}
		for key, v := range want {
			if got[key] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranspose(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 3}
	coo.Append(0, 2, 7)
	coo.Append(1, 0, 3)
	m := FromCOO(coo)
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cols, vals := tr.Row(2)
	if len(cols) != 1 || cols[0] != 0 || vals[0] != 7 {
		t.Errorf("transpose row 2 = %v %v", cols, vals)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := RMAT(DefaultRMAT(8, 99))
	tt := m.Transpose().Transpose()
	if tt.NNZ() != m.NNZ() || tt.Rows != m.Rows {
		t.Fatal("double transpose changed shape")
	}
	for i := 0; i < m.Rows; i++ {
		c1, _ := m.Row(i)
		c2, _ := tt.Row(i)
		if len(c1) != len(c2) {
			t.Fatalf("row %d degree changed", i)
		}
		for k := range c1 {
			if c1[k] != c2[k] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestDense(t *testing.T) {
	m := Dense(16)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 256 || m.AvgDegree() != 16 || m.MaxDegree() != 16 {
		t.Errorf("dense stats wrong: nnz=%d", m.NNZ())
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(DefaultRMAT(10, 7))
	b := RMAT(DefaultRMAT(10, 7))
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestRMATShape(t *testing.T) {
	cfg := DefaultRMAT(12, 1)
	m := RMAT(cfg)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 4096 {
		t.Fatalf("rows = %d", m.Rows)
	}
	// Dedup loses some edges but the bulk must remain.
	if m.NNZ() < cfg.Edges()/2 || m.NNZ() > cfg.Edges() {
		t.Errorf("nnz = %d of %d generated", m.NNZ(), cfg.Edges())
	}
	// Scale-free: max degree far above average.
	if float64(m.MaxDegree()) < 8*m.AvgDegree() {
		t.Errorf("max degree %d vs avg %.1f: not skewed", m.MaxDegree(), m.AvgDegree())
	}
	// No self loops.
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			if int(c) == i {
				t.Fatalf("self loop at %d", i)
			}
		}
	}
}

func TestRMATUndirectedSymmetric(t *testing.T) {
	cfg := DefaultRMAT(9, 3)
	cfg.Undirected = true
	m := RMAT(cfg)
	tr := m.Transpose()
	if tr.NNZ() != m.NNZ() {
		t.Fatal("asymmetric nnz")
	}
	for i := 0; i < m.Rows; i++ {
		c1, _ := m.Row(i)
		c2, _ := tr.Row(i)
		for k := range c1 {
			if c1[k] != c2[k] {
				t.Fatalf("row %d not symmetric", i)
			}
		}
	}
}

func TestRMATValidate(t *testing.T) {
	bad := DefaultRMAT(10, 1)
	bad.A = 0.9
	if bad.Validate() == nil {
		t.Error("bad probabilities accepted")
	}
	bad = DefaultRMAT(0, 1)
	if bad.Validate() == nil {
		t.Error("scale 0 accepted")
	}
	bad = DefaultRMAT(10, 1)
	bad.EdgeFactor = 0
	if bad.Validate() == nil {
		t.Error("edge factor 0 accepted")
	}
}

func TestSuiteProfiles(t *testing.T) {
	suite := Suite()
	if len(suite) < 10 {
		t.Fatalf("suite has %d matrices", len(suite))
	}
	if suite[0].Name != "Dense" {
		t.Error("suite should lead with the Dense reference")
	}
	seen := map[string]bool{}
	for _, p := range suite {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.N <= 0 || p.NNZ <= 0 {
			t.Errorf("%s: empty profile", p.Name)
		}
	}
}

// TestGenerateMatchesProfiles checks each synthetic matrix lands near its
// published size and nnz (within 35% — structure matters more than the
// exact count, but the scale must be right).
func TestGenerateMatchesProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix synthesis is slow")
	}
	for _, p := range Suite() {
		m := Generate(p, 1)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if m.Rows != p.N {
			t.Errorf("%s: rows %d, want %d", p.Name, m.Rows, p.N)
		}
		ratio := float64(m.NNZ()) / float64(p.NNZ)
		if ratio < 0.65 || ratio > 1.35 {
			t.Errorf("%s: nnz %d vs published %d (ratio %.2f)", p.Name, m.NNZ(), p.NNZ, ratio)
		}
	}
}

func TestGeneratePowerLawIsSkewed(t *testing.T) {
	p := MatrixProfile{Name: "pl", N: 20000, NNZ: 120000, Kind: KindPowerLaw}
	m := Generate(p, 3)
	if float64(m.MaxDegree()) < 10*m.AvgDegree() {
		t.Errorf("power-law max degree %d vs avg %.1f", m.MaxDegree(), m.AvgDegree())
	}
}

func TestDegreeHistogram(t *testing.T) {
	coo := &COO{Rows: 4, Cols: 8}
	coo.Append(0, 0, 1) // degree 1 -> bucket 0
	for j := int32(0); j < 4; j++ {
		coo.Append(1, j, 1) // degree 4 -> bucket 2
	}
	m := FromCOO(coo)
	h := m.DegreeHistogram()
	if h[0] != 3 { // rows 0 (deg 1), 2, 3 (deg 0)
		t.Errorf("bucket 0 = %d, want 3", h[0])
	}
	if len(h) < 3 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestCSRBytes(t *testing.T) {
	m := Dense(8)
	want := int64(9*8 + 64*4 + 64*8)
	if got := int64(m.Bytes()); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[MatrixKind]string{
		KindBanded: "banded", KindBlocked: "blocked", KindRandom: "random",
		KindPowerLaw: "power-law", KindDense: "dense",
	}
	for k, s := range kinds {
		if k.String() != s {
			t.Errorf("%d -> %q", int(k), k.String())
		}
	}
}
