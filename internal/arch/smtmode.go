package arch

import "fmt"

// SMTMode is one of the four POWER8 core threading modes. The core picks
// the mode dynamically from the number of active threads; in every mode
// except ST the hardware threads are split into two thread-sets, each of
// which can use only half of the core's resources (Section III-C). That
// split is why odd active-thread counts lose performance: one thread-set
// carries more threads than the other but has the same resources.
type SMTMode int

// The four POWER8 SMT modes.
const (
	ST SMTMode = iota
	SMT2
	SMT4
	SMT8
)

// String implements fmt.Stringer.
func (m SMTMode) String() string {
	switch m {
	case ST:
		return "ST"
	case SMT2:
		return "SMT2"
	case SMT4:
		return "SMT4"
	case SMT8:
		return "SMT8"
	default:
		return fmt.Sprintf("SMTMode(%d)", int(m))
	}
}

// SMTModeFor returns the mode the core selects for n active threads:
// 1 thread -> ST, 2 -> SMT2, 3-4 -> SMT4, 5-8 -> SMT8.
// It panics for n outside [1, 8].
func SMTModeFor(n int) SMTMode {
	switch {
	case n == 1:
		return ST
	case n == 2:
		return SMT2
	case n <= 4 && n >= 3:
		return SMT4
	case n >= 5 && n <= 8:
		return SMT8
	default:
		panic(fmt.Sprintf("arch: invalid active thread count %d", n))
	}
}

// ThreadSets returns how the n active threads are distributed over
// thread-sets in the mode chosen for n. In ST mode there is a single set;
// otherwise threads alternate between two sets, so odd counts leave the
// sets imbalanced.
func ThreadSets(n int) []int {
	if SMTModeFor(n) == ST {
		return []int{1}
	}
	a := (n + 1) / 2
	b := n / 2
	return []int{a, b}
}
