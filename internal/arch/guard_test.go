package arch

import "testing"

func TestGuardMapAccounting(t *testing.T) {
	g := NewGuardMap().GuardCores(0, 2).GuardCores(3, 1).GuardCores(0, 1)
	if got := g.GuardedCores(0); got != 3 {
		t.Errorf("chip 0 guarded = %d, want 3", got)
	}
	if got := g.GuardedCores(1); got != 0 {
		t.Errorf("chip 1 guarded = %d, want 0", got)
	}
	if got := g.TotalGuardedCores(); got != 4 {
		t.Errorf("total guarded = %d, want 4", got)
	}
}

func TestGuardMapNilSafe(t *testing.T) {
	var g *GuardMap
	if g.GuardedCores(0) != 0 || g.TotalGuardedCores() != 0 {
		t.Error("nil guard map guards cores")
	}
	if g.Clone() != nil {
		t.Error("nil Clone is not nil")
	}
	if err := g.Validate(E870()); err != nil {
		t.Errorf("nil Validate: %v", err)
	}
}

func TestGuardMapCloneIsDeep(t *testing.T) {
	g := NewGuardMap().GuardCores(2, 1)
	c := g.Clone()
	c.GuardCores(2, 5)
	if g.GuardedCores(2) != 1 {
		t.Error("mutating the clone changed the original")
	}
}

func TestGuardMapValidate(t *testing.T) {
	spec := E870()
	if err := NewGuardMap().GuardCores(0, spec.Chip.Cores-1).Validate(spec); err != nil {
		t.Errorf("guarding all but one core should validate: %v", err)
	}
	if err := NewGuardMap().GuardCores(0, spec.Chip.Cores).Validate(spec); err == nil {
		t.Error("guarding every core validated")
	}
	if err := NewGuardMap().GuardCores(ChipID(spec.Topology.Chips), 1).Validate(spec); err == nil {
		t.Error("guarding an out-of-range chip validated")
	}
}

func TestGuardAwareSpecAccounting(t *testing.T) {
	spec := E870()
	healthyCores := spec.TotalCores()
	healthyPeak := spec.PeakDP()

	deg := spec.Clone()
	deg.Guard = NewGuardMap().GuardCores(0, 2)
	if got, want := deg.ActiveCores(0), spec.Chip.Cores-2; got != want {
		t.Errorf("ActiveCores(0) = %d, want %d", got, want)
	}
	if got, want := deg.TotalCores(), healthyCores-2; got != want {
		t.Errorf("TotalCores = %d, want %d", got, want)
	}
	if deg.PeakDP() >= healthyPeak {
		t.Errorf("guarded peak %v not below healthy %v", deg.PeakDP(), healthyPeak)
	}
	// The clone must not have touched the healthy spec.
	if spec.TotalCores() != healthyCores || spec.PeakDP() != healthyPeak {
		t.Error("deriving a guarded clone mutated the healthy spec")
	}
}
