package arch

import (
	"repro/internal/units"
)

// UncoreLatency holds the nanosecond-scale latency components of the
// machine that are not expressed as core cycles: the on-chip NUCA L3
// remote regions, the Centaur L4, local DRAM, SMP hop costs and address
// translation penalties. The E870 values are derived from the paper's
// measurements (Figure 2 and Table IV): local DRAM latency anchors the
// Figure 2 memory plateau, the per-hop costs reproduce the Table IV
// latency column, and the layout skews model the small per-position
// differences the paper attributes to chip layout.
type UncoreLatency struct {
	L3RemoteNs  float64 // hit in another core's L3 region on the same chip
	L4HitNs     float64 // hit in the Centaur eDRAM L4
	LocalDRAMNs float64 // local DRAM, dependent load, no prefetch

	// DRAMStridedNs is the local DRAM latency for an access whose address
	// was predictable from the previous stride: the Centaur scheduler
	// overlaps the row activation, which is why the paper's stride-256
	// stream reads in ~50 ns even with stream detection disabled
	// (Figure 7).
	DRAMStridedNs float64

	XHopNs float64 // added by one X-bus hop
	AHopNs float64 // added by one A-bus hop

	// IntraGroupSkewNs is indexed by the position distance (1..3) between
	// two chips in the same group and models layout-dependent latency.
	IntraGroupSkewNs [4]float64
	// InterGroupSkewNs is indexed by the position distance (0..3); distance
	// zero is the directly A-bus-paired chip.
	InterGroupSkewNs [4]float64

	ERATMissNs float64 // first-level translation (ERAT) miss penalty
	// ERATMissHugeNs is the ERAT miss penalty under huge pages: the ERAT
	// caches translations at a 64 KiB granule, so a huge-page entry is
	// fragmented and the refill is costlier. This produces the Figure 2
	// spike at the 3 MiB (= ERAT reach) working set on the huge-page
	// curve only.
	ERATMissHugeNs float64
	TLBMissNs      float64 // TLB miss: hardware table walk penalty

	// PrefetchResidue is the fraction of the demand latency still visible
	// when the hardware stream prefetcher is fully ramped (Table IV,
	// "latency w/ prefetching" is roughly a tenth of the demand latency).
	PrefetchResidue float64
	// MinPrefetchedNs floors the steady-state prefetched per-line latency
	// at the line transfer plus detect cost.
	MinPrefetchedNs float64
}

// TranslationSpec describes the address-translation hardware. The ERAT
// (first-level translation cache) holds translations at a fixed 64 KiB
// granule regardless of page size, which is what produces the Figure 2
// spike at a 3 MiB working set for 16 MiB huge pages: 48 entries x 64 KiB
// = 3 MiB of ERAT reach, beyond which every line in a fresh granule pays
// the ERAT miss, while the TLB (whose reach with huge pages is enormous)
// still hits.
type TranslationSpec struct {
	ERATEntries int
	ERATGranule units.Bytes
	TLBEntries  int
}

// Reach returns the ERAT reach in bytes.
func (t TranslationSpec) Reach() units.Bytes {
	return units.Bytes(t.ERATEntries) * t.ERATGranule
}

// PageSize is a supported virtual-memory page size.
type PageSize units.Bytes

// The two page sizes the paper measures (Figure 2).
const (
	Page64K PageSize = PageSize(64 * units.KiB)
	Page16M PageSize = PageSize(16 * units.MiB)
)

// SystemSpec is a complete SMP system description: the chip, the memory
// subsystem behind each chip, the interconnect topology, and the latency
// and translation parameters the simulator consumes.
type SystemSpec struct {
	Name     string
	Chip     ChipSpec
	Memory   MemorySubsystem
	Topology *Topology
	Latency  UncoreLatency
	Xlate    TranslationSpec
	// Guard lists firmware-deconfigured resources on a degraded
	// machine; nil (the healthy default) guards nothing. Derived specs
	// set it via internal/fault; it is never mutated afterwards.
	Guard *GuardMap
}

// TotalCores returns the number of active cores in the system (guarded
// cores excluded).
func (s *SystemSpec) TotalCores() int {
	return s.Topology.Chips*s.Chip.Cores - s.Guard.TotalGuardedCores()
}

// ActiveCores returns the number of usable cores on one chip after
// guarding.
func (s *SystemSpec) ActiveCores(c ChipID) int {
	return s.Chip.Cores - s.Guard.GuardedCores(c)
}

// TotalThreads returns the number of hardware threads on active cores.
func (s *SystemSpec) TotalThreads() int { return s.TotalCores() * s.Chip.ThreadsPerCore }

// Clone returns a copy of the spec that can be independently modified
// into a derived (e.g. RAS-degraded) machine description. The topology
// is shared — it is immutable — while the guard map is deep-copied.
func (s *SystemSpec) Clone() *SystemSpec {
	out := *s
	out.Guard = s.Guard.Clone()
	return &out
}

// PeakDP returns the system's peak double-precision throughput over
// its active (non-guarded) cores.
func (s *SystemSpec) PeakDP() units.Rate {
	perCore := s.Chip.ClockGHz * 1e9 * float64(s.Chip.DPFlopsPerCycle())
	return units.Rate(perCore * float64(s.TotalCores()))
}

// PeakReadBW returns the aggregate peak memory read bandwidth.
func (s *SystemSpec) PeakReadBW() units.Bandwidth {
	return units.Bandwidth(float64(s.Memory.ReadPeak()) * float64(s.Topology.Chips))
}

// PeakWriteBW returns the aggregate peak memory write bandwidth.
func (s *SystemSpec) PeakWriteBW() units.Bandwidth {
	return units.Bandwidth(float64(s.Memory.WritePeak()) * float64(s.Topology.Chips))
}

// PeakMemoryBW returns the aggregate sustainable memory bandwidth at the
// optimal 2:1 read:write mix.
func (s *SystemSpec) PeakMemoryBW() units.Bandwidth {
	return units.Bandwidth(float64(s.PeakReadBW()) + float64(s.PeakWriteBW()))
}

// MemoryCapacity returns the total DRAM capacity.
func (s *SystemSpec) MemoryCapacity() units.Bytes {
	return units.Bytes(s.Topology.Chips) * s.Memory.DRAMPerChip()
}

// L4Total returns the total L4 capacity.
func (s *SystemSpec) L4Total() units.Bytes {
	return units.Bytes(s.Topology.Chips) * s.Memory.L4PerChip()
}

// Balance returns the system balance: peak compute divided by peak
// sustainable memory bandwidth (FLOPs per byte), the quantity Section IV
// reports as 1.2 for the E870.
func (s *SystemSpec) Balance() float64 {
	return float64(s.PeakDP()) / float64(s.PeakMemoryBW())
}

// E870 returns the specification of the system evaluated in the paper:
// an IBM Power System E870 with eight single-chip 8-core POWER8 sockets
// at 4.35 GHz, two 4-chip groups, eight Centaur chips per socket and
// 512 GiB of DRAM per socket (4 TiB total).
func E870() *SystemSpec {
	return &SystemSpec{
		Name: "IBM Power System E870",
		Chip: POWER8(8, 4.35),
		Memory: MemorySubsystem{
			Centaur:         Centaur(),
			CentaursPerChip: 8,
			DRAMPerCentaur:  64 * units.GiB,
		},
		Topology: NewGroupedTopology(2, 4, 3),
		Latency: UncoreLatency{
			L3RemoteNs:    28,
			L4HitNs:       62,
			LocalDRAMNs:   95,
			DRAMStridedNs: 50,
			XHopNs:        28,
			AHopNs:        118,
			// Table IV: chips 1,2,3 measure 123/125/133 ns; chips 4..7
			// measure 213/235/237/243 ns. Base model: 95 + hops; skews
			// absorb the layout-dependent residue.
			IntraGroupSkewNs: [4]float64{0, 0, 2, 10},
			InterGroupSkewNs: [4]float64{0, -6, -4, 2},
			ERATMissNs:       5,
			ERATMissHugeNs:   12,
			TLBMissNs:        40,
			PrefetchResidue:  0.095,
			MinPrefetchedNs:  11.5,
		},
		Xlate: TranslationSpec{
			ERATEntries: 48,
			ERATGranule: 64 * units.KiB,
			TLBEntries:  2048,
		},
	}
}

// MaxPOWER8SMP returns the largest configuration Section II-B describes:
// 16 sockets of 12-core chips at 4 GHz with eight Centaurs each, good for
// 6,144 GFLOP/s, 3,686 GB/s and 16 TB of memory. Latency and translation
// parameters reuse the E870 profile.
func MaxPOWER8SMP() *SystemSpec {
	s := E870()
	s.Name = "POWER8 192-way SMP (maximum configuration)"
	s.Chip = POWER8(12, 4.0)
	s.Memory.DRAMPerCentaur = 128 * units.GiB
	s.Topology = NewGroupedTopology(4, 4, 1)
	return s
}
