package arch

import (
	"math"
	"testing"

	"repro/internal/units"
)

// TestTableI verifies the POWER7 vs POWER8 comparison the paper presents
// as Table I.
func TestTableI(t *testing.T) {
	p7 := POWER7(8, 3.8)
	p8 := POWER8(12, 4.0)

	if p7.ThreadsPerCore != 4 || p8.ThreadsPerCore != 8 {
		t.Errorf("threads/core: P7=%d P8=%d, want 4/8", p7.ThreadsPerCore, p8.ThreadsPerCore)
	}
	if p7.L1D.Size != 32*units.KiB || p8.L1D.Size != 64*units.KiB {
		t.Errorf("L1D: P7=%v P8=%v, want 32/64 KiB", p7.L1D.Size, p8.L1D.Size)
	}
	if p7.L2.Size != 256*units.KiB || p8.L2.Size != 512*units.KiB {
		t.Errorf("L2: P7=%v P8=%v", p7.L2.Size, p8.L2.Size)
	}
	if p7.L3PerCore.Size != 4*units.MiB || p8.L3PerCore.Size != 8*units.MiB {
		t.Errorf("L3/core: P7=%v P8=%v", p7.L3PerCore.Size, p8.L3PerCore.Size)
	}
	if p7.IssueWidth != 8 || p8.IssueWidth != 10 {
		t.Errorf("issue width: P7=%d P8=%d", p7.IssueWidth, p8.IssueWidth)
	}
	if p7.CommitWidth != 6 || p8.CommitWidth != 8 {
		t.Errorf("commit width: P7=%d P8=%d", p7.CommitWidth, p8.CommitWidth)
	}
	if p7.LoadPorts != 2 || p8.LoadPorts != 4 {
		t.Errorf("load ports: P7=%d P8=%d", p7.LoadPorts, p8.LoadPorts)
	}
	if p8.L3Total() != 96*units.MiB {
		t.Errorf("12-core POWER8 aggregate L3 = %v, want 96 MiB", p8.L3Total())
	}
}

// TestCacheLineSize checks the constant 128-byte line across levels.
func TestCacheLineSize(t *testing.T) {
	p8 := POWER8(8, 4.35)
	for _, g := range []CacheGeom{p8.L1I, p8.L1D, p8.L2, p8.L3PerCore} {
		if g.LineSize != 128 {
			t.Errorf("line size %v, want 128", g.LineSize)
		}
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{Size: 64 * units.KiB, LineSize: 128, Assoc: 8}
	if got := g.Sets(); got != 64 {
		t.Errorf("64KiB/128B/8-way sets = %d, want 64", got)
	}
}

func TestCacheGeomSetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("indivisible geometry did not panic")
		}
	}()
	CacheGeom{Size: 1000, LineSize: 128, Assoc: 3}.Sets()
}

// TestCentaurSpec checks Section II-A's Centaur numbers.
func TestCentaurSpec(t *testing.T) {
	c := Centaur()
	if c.L4Size != 16*units.MiB {
		t.Errorf("L4 = %v, want 16 MiB", c.L4Size)
	}
	if c.ReadLink.GBps() != 19.2 || c.WriteLink.GBps() != 9.6 {
		t.Errorf("links = %v/%v, want 19.2/9.6", c.ReadLink, c.WriteLink)
	}
	if c.MaxDRAM != 128*units.GiB {
		t.Errorf("max DRAM = %v", c.MaxDRAM)
	}
}

// TestE870Peaks verifies the headline Table II / Section IV numbers: a
// 64-core 4.35 GHz system delivering 2,227 GFLOP/s and 1,843 GB/s with a
// balance of 1.2.
func TestE870Peaks(t *testing.T) {
	s := E870()
	if s.TotalCores() != 64 || s.TotalThreads() != 512 {
		t.Fatalf("cores/threads = %d/%d, want 64/512", s.TotalCores(), s.TotalThreads())
	}
	if got := s.PeakDP().GFs(); math.Abs(got-2227.2) > 0.1 {
		t.Errorf("peak DP = %v GFLOP/s, want 2227.2", got)
	}
	if got := s.PeakMemoryBW().GBps(); math.Abs(got-1843.2) > 0.1 {
		t.Errorf("peak memory BW = %v GB/s, want 1843.2", got)
	}
	if got := s.PeakReadBW().GBps(); math.Abs(got-1228.8) > 0.1 {
		t.Errorf("peak read BW = %v, want 1228.8", got)
	}
	if got := s.PeakWriteBW().GBps(); math.Abs(got-614.4) > 0.1 {
		t.Errorf("peak write BW = %v, want 614.4", got)
	}
	if got := s.Balance(); math.Abs(got-1.208) > 0.01 {
		t.Errorf("balance = %v, want ~1.2", got)
	}
	if got := s.Memory.SustainablePeak().GBps(); math.Abs(got-230.4) > 0.1 {
		t.Errorf("per-socket sustainable = %v, want 230.4", got)
	}
	if s.L4Total() != units.Bytes(8)*128*units.MiB {
		t.Errorf("aggregate L4 = %v, want 1 GiB", s.L4Total())
	}
	if s.MemoryCapacity() != 4*units.TiB {
		t.Errorf("memory capacity = %v, want 4 TiB", s.MemoryCapacity())
	}
}

// TestMaxSMPPeaks verifies Section II-B's largest-configuration numbers:
// 6,144 GFLOP/s and 3,686 GB/s from a 192-way SMP with 16 TB of memory.
func TestMaxSMPPeaks(t *testing.T) {
	s := MaxPOWER8SMP()
	if s.TotalCores() != 192 {
		t.Fatalf("cores = %d, want 192", s.TotalCores())
	}
	if got := s.PeakDP().GFs(); math.Abs(got-6144) > 0.1 {
		t.Errorf("peak DP = %v, want 6144", got)
	}
	if got := s.PeakMemoryBW().GBps(); math.Abs(got-3686.4) > 0.1 {
		t.Errorf("peak BW = %v, want 3686.4", got)
	}
	if s.MemoryCapacity() != 16*units.TiB {
		t.Errorf("capacity = %v, want 16 TiB", s.MemoryCapacity())
	}
}

func TestDPFlopsPerCycle(t *testing.T) {
	if got := POWER8(8, 4.35).DPFlopsPerCycle(); got != 8 {
		t.Errorf("DP flops/cycle = %d, want 8 (2 pipes x 2 lanes x FMA)", got)
	}
}

func TestSMTModeFor(t *testing.T) {
	cases := []struct {
		n    int
		want SMTMode
	}{
		{1, ST}, {2, SMT2}, {3, SMT4}, {4, SMT4},
		{5, SMT8}, {6, SMT8}, {7, SMT8}, {8, SMT8},
	}
	for _, c := range cases {
		if got := SMTModeFor(c.n); got != c.want {
			t.Errorf("SMTModeFor(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestSMTModeForPanics(t *testing.T) {
	for _, n := range []int{0, 9, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SMTModeFor(%d) did not panic", n)
				}
			}()
			SMTModeFor(n)
		}()
	}
}

func TestThreadSets(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 1}},
		{3, []int{2, 1}},
		{4, []int{2, 2}},
		{5, []int{3, 2}},
		{8, []int{4, 4}},
	}
	for _, c := range cases {
		got := ThreadSets(c.n)
		if len(got) != len(c.want) {
			t.Errorf("ThreadSets(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ThreadSets(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

// TestTopologyE870 verifies the Figure 1 wiring: two groups of four chips,
// a full X-bus crossbar inside each group and bonded triple A-bus lanes
// between paired chips.
func TestTopologyE870(t *testing.T) {
	topo := NewGroupedTopology(2, 4, 3)
	if topo.Chips != 8 {
		t.Fatalf("chips = %d", topo.Chips)
	}
	var xLinks, aLinks int
	for _, l := range topo.Links() {
		switch l.Kind {
		case XBus:
			xLinks++
			if l.Capacity().GBps() != 39.2 {
				t.Errorf("X link capacity %v", l.Capacity())
			}
		case ABus:
			aLinks++
			if math.Abs(l.Capacity().GBps()-38.4) > 1e-9 {
				t.Errorf("A bundle capacity %v, want 38.4", l.Capacity())
			}
		}
	}
	if xLinks != 12 {
		t.Errorf("X links = %d, want 12 (6 per group)", xLinks)
	}
	if aLinks != 4 {
		t.Errorf("A bundles = %d, want 4", aLinks)
	}
	if !topo.SameGroup(0, 3) || topo.SameGroup(0, 4) {
		t.Error("grouping wrong")
	}
	if !topo.Paired(0, 4) || topo.Paired(0, 5) || topo.Paired(1, 1) {
		t.Error("pairing wrong")
	}
	if _, ok := topo.LinkBetween(0, 1); !ok {
		t.Error("missing X link 0-1")
	}
	if _, ok := topo.LinkBetween(0, 4); !ok {
		t.Error("missing A bundle 0-4")
	}
	if _, ok := topo.LinkBetween(0, 5); ok {
		t.Error("unexpected direct link 0-5")
	}
	if _, ok := topo.LinkBetween(2, 2); ok {
		t.Error("self link")
	}
}

func TestTopologyAggregates(t *testing.T) {
	topo := NewGroupedTopology(2, 4, 3)
	if got := topo.AggregateCapacity(XBus).GBps(); math.Abs(got-940.8) > 1e-9 {
		t.Errorf("raw X aggregate = %v, want 940.8", got)
	}
	if got := topo.AggregateCapacity(ABus).GBps(); math.Abs(got-307.2) > 1e-9 {
		t.Errorf("raw A aggregate = %v, want 307.2", got)
	}
}

func TestTopologyPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGroupedTopology(0, 4, 3) },
		func() { NewGroupedTopology(2, 5, 3) },
		func() { NewGroupedTopology(5, 4, 3) },
		func() { NewGroupedTopology(2, 4, 0) },
		func() { NewGroupedTopology(2, 4, 3).Group(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTranslationReach(t *testing.T) {
	x := E870().Xlate
	if got := x.Reach(); got != 3*units.MiB {
		t.Errorf("ERAT reach = %v, want 3 MiB (the Figure 2 spike position)", got)
	}
}

func TestWritePolicyString(t *testing.T) {
	if StoreThrough.String() != "store-through" || StoreIn.String() != "store-in" || Victim.String() != "victim" {
		t.Error("WritePolicy strings wrong")
	}
	if WritePolicy(99).String() != "WritePolicy(99)" {
		t.Error("unknown policy string wrong")
	}
}
