package arch

import (
	"fmt"

	"repro/internal/units"
)

// ChipID identifies a processor chip in an SMP system. In the E870 the
// numbering follows the paper: chips 0-3 form group 0, chips 4-7 form
// group 1, and chip i is A-bus-paired with chip i+4.
type ChipID int

// LinkKind distinguishes the two SMP interconnect link types.
type LinkKind int

// The POWER8 SMP link types: X-bus connects chips within a group, A-bus
// connects each chip to its corresponding chip in another group.
const (
	XBus LinkKind = iota
	ABus
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	if k == XBus {
		return "X-bus"
	}
	return "A-bus"
}

// Link is one (possibly bonded) SMP link between two chips. Count is the
// number of physical lanes bonded between the pair (the E870 bonds its
// three A-bus lanes to the single partner chip in the other group);
// PerLane is the unidirectional bandwidth of one lane.
type Link struct {
	A, B    ChipID
	Kind    LinkKind
	PerLane units.Bandwidth
	Count   int
}

// Capacity returns the total unidirectional bandwidth of the link.
func (l Link) Capacity() units.Bandwidth {
	return units.Bandwidth(float64(l.PerLane) * float64(l.Count))
}

// Topology describes the chip-to-chip wiring of an SMP system.
type Topology struct {
	Chips         int
	Groups        int
	ChipsPerGroup int
	links         []Link
}

// Published per-lane unidirectional link bandwidths (Section II-B).
const (
	XBusLaneGBs = 39.2
	ABusLaneGBs = 12.8
)

// NewGroupedTopology builds the POWER8 SMP wiring for groups x perGroup
// chips: a full X-bus crossbar inside each group, and aLanes bonded A-bus
// lanes between each chip and its same-position chip in every other group.
// It panics on non-positive dimensions or perGroup > 4 (a POWER8 chip has
// only three X-bus ports).
func NewGroupedTopology(groups, perGroup, aLanes int) *Topology {
	if groups <= 0 || perGroup <= 0 || aLanes <= 0 {
		panic("arch: topology dimensions must be positive")
	}
	if perGroup > 4 {
		panic("arch: a POWER8 chip has three X-bus ports; groups are at most four chips")
	}
	if groups > 4 {
		panic("arch: a POWER8 chip has three A-bus ports; at most four groups")
	}
	t := &Topology{Chips: groups * perGroup, Groups: groups, ChipsPerGroup: perGroup}
	for g := 0; g < groups; g++ {
		base := g * perGroup
		for i := 0; i < perGroup; i++ {
			for j := i + 1; j < perGroup; j++ {
				t.links = append(t.links, Link{
					A: ChipID(base + i), B: ChipID(base + j),
					Kind: XBus, PerLane: units.GBps(XBusLaneGBs), Count: 1,
				})
			}
		}
	}
	for g1 := 0; g1 < groups; g1++ {
		for g2 := g1 + 1; g2 < groups; g2++ {
			for i := 0; i < perGroup; i++ {
				t.links = append(t.links, Link{
					A: ChipID(g1*perGroup + i), B: ChipID(g2*perGroup + i),
					Kind: ABus, PerLane: units.GBps(ABusLaneGBs), Count: aLanes,
				})
			}
		}
	}
	return t
}

// Links returns all links; the slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// Group returns the group a chip belongs to.
func (t *Topology) Group(c ChipID) int {
	t.check(c)
	return int(c) / t.ChipsPerGroup
}

// PositionInGroup returns the chip's index within its group.
func (t *Topology) PositionInGroup(c ChipID) int {
	t.check(c)
	return int(c) % t.ChipsPerGroup
}

// SameGroup reports whether two chips share a group.
func (t *Topology) SameGroup(a, b ChipID) bool { return t.Group(a) == t.Group(b) }

// Paired reports whether two chips in different groups are directly
// connected by an A-bus (same position in their groups).
func (t *Topology) Paired(a, b ChipID) bool {
	return t.Group(a) != t.Group(b) && t.PositionInGroup(a) == t.PositionInGroup(b)
}

// LinkBetween returns the direct link between two chips, if any.
func (t *Topology) LinkBetween(a, b ChipID) (Link, bool) {
	t.check(a)
	t.check(b)
	if t.SameGroup(a, b) && a != b {
		return t.findLink(a, b, XBus)
	}
	if t.Paired(a, b) {
		return t.findLink(a, b, ABus)
	}
	return Link{}, false
}

func (t *Topology) findLink(a, b ChipID, kind LinkKind) (Link, bool) {
	for _, l := range t.links {
		if l.Kind != kind {
			continue
		}
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l, true
		}
	}
	return Link{}, false
}

// AggregateCapacity returns the total raw bidirectional bandwidth of all
// links of the given kind: sum over links of 2 x lanes x per-lane.
func (t *Topology) AggregateCapacity(kind LinkKind) units.Bandwidth {
	var total float64
	for _, l := range t.links {
		if l.Kind == kind {
			total += 2 * float64(l.Capacity())
		}
	}
	return units.Bandwidth(total)
}

func (t *Topology) check(c ChipID) {
	if int(c) < 0 || int(c) >= t.Chips {
		panic(fmt.Sprintf("arch: chip %d out of range [0,%d)", c, t.Chips)) //p8:allow hotpath: panic path only — the Sprintf runs once, on a programming error, never on the steady-state access path
	}
}
