package arch

import "repro/internal/units"

// CentaurSpec describes the Centaur memory-buffer chip. Each Centaur
// contains 16 MiB of eDRAM acting as an L4 cache and the DRAM memory
// controller. The processor connects to each Centaur with two read links
// and one write link, which is why POWER8 memory bandwidth is asymmetric
// and peaks at a 2:1 read:write ratio (Section II-A).
type CentaurSpec struct {
	L4Size    units.Bytes
	MaxDRAM   units.Bytes
	ReadLink  units.Bandwidth // aggregate read bandwidth into the processor
	WriteLink units.Bandwidth // aggregate write bandwidth out of the processor
}

// Centaur returns the published Centaur specification: 16 MiB of eDRAM L4,
// up to 128 GiB of DRAM, 19.2 GB/s read and 9.6 GB/s write.
func Centaur() CentaurSpec {
	return CentaurSpec{
		L4Size:    16 * units.MiB,
		MaxDRAM:   128 * units.GiB,
		ReadLink:  units.GBps(19.2),
		WriteLink: units.GBps(9.6),
	}
}

// MemorySubsystem describes the memory attached to one processor chip:
// how many Centaur chips it is wired to and how much DRAM sits behind each.
type MemorySubsystem struct {
	Centaur         CentaurSpec
	CentaursPerChip int
	DRAMPerCentaur  units.Bytes
}

// ReadPeak returns the aggregate peak read bandwidth per chip.
func (m MemorySubsystem) ReadPeak() units.Bandwidth {
	return units.Bandwidth(float64(m.Centaur.ReadLink) * float64(m.CentaursPerChip))
}

// WritePeak returns the aggregate peak write bandwidth per chip.
func (m MemorySubsystem) WritePeak() units.Bandwidth {
	return units.Bandwidth(float64(m.Centaur.WriteLink) * float64(m.CentaursPerChip))
}

// SustainablePeak returns the peak combined bandwidth per chip, reached
// only at a 2:1 read:write mix where both link directions saturate.
func (m MemorySubsystem) SustainablePeak() units.Bandwidth {
	return units.Bandwidth(float64(m.ReadPeak()) + float64(m.WritePeak()))
}

// L4PerChip returns the aggregate L4 capacity attached to one chip.
func (m MemorySubsystem) L4PerChip() units.Bytes {
	return units.Bytes(m.CentaursPerChip) * m.Centaur.L4Size
}

// DRAMPerChip returns the DRAM capacity attached to one chip.
func (m MemorySubsystem) DRAMPerChip() units.Bytes {
	return units.Bytes(m.CentaursPerChip) * m.DRAMPerCentaur
}
