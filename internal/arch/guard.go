package arch

import (
	"fmt"
	"sort"
)

// GuardMap records resources the firmware has deconfigured ("guarded
// out") after detecting faults — the POWER8 RAS behaviour where a core
// that fails runtime diagnostics is fenced off and the partition keeps
// running on the remainder. A GuardMap is part of a derived, degraded
// SystemSpec; the healthy spec carries a nil GuardMap. Like the rest of
// a SystemSpec it is read-only once the spec is handed to a Machine.
type GuardMap struct {
	// cores[c] is the number of cores guarded out on chip c.
	cores map[ChipID]int
}

// NewGuardMap returns an empty guard map.
func NewGuardMap() *GuardMap {
	return &GuardMap{cores: map[ChipID]int{}}
}

// GuardCores marks n additional cores on chip c as guarded out. It
// returns the map for chaining.
func (g *GuardMap) GuardCores(c ChipID, n int) *GuardMap {
	if n < 0 {
		panic(fmt.Sprintf("arch: cannot guard %d cores", n))
	}
	g.cores[c] += n
	return g
}

// GuardedCores returns the number of cores guarded out on chip c. A
// nil GuardMap guards nothing.
func (g *GuardMap) GuardedCores(c ChipID) int {
	if g == nil {
		return 0
	}
	return g.cores[c]
}

// TotalGuardedCores returns the number of cores guarded out across the
// system.
func (g *GuardMap) TotalGuardedCores() int {
	if g == nil {
		return 0
	}
	total := 0
	for _, n := range g.cores {
		total += n
	}
	return total
}

// Clone returns a deep copy (nil stays nil).
func (g *GuardMap) Clone() *GuardMap {
	if g == nil {
		return nil
	}
	out := NewGuardMap()
	for c, n := range g.cores {
		out.cores[c] = n
	}
	return out
}

// Validate checks the guard map against a spec's chip geometry: a chip
// must keep at least one active core.
func (g *GuardMap) Validate(s *SystemSpec) error {
	if g == nil {
		return nil
	}
	// Chips are checked in ascending order so that when several are
	// invalid the error — which reaches API clients verbatim — always
	// names the same one.
	chips := make([]ChipID, 0, len(g.cores))
	for c := range g.cores {
		chips = append(chips, c)
	}
	sort.Slice(chips, func(i, j int) bool { return chips[i] < chips[j] })
	for _, c := range chips {
		n := g.cores[c]
		if int(c) < 0 || int(c) >= s.Topology.Chips {
			return fmt.Errorf("arch: guard map names chip %d outside [0,%d)", c, s.Topology.Chips)
		}
		if n >= s.Chip.Cores {
			return fmt.Errorf("arch: guarding %d of %d cores on chip %d leaves none active", n, s.Chip.Cores, c)
		}
	}
	return nil
}
