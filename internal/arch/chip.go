// Package arch holds the static hardware descriptions used by the machine
// model: POWER7/POWER8 chip specifications (Table I of the paper), the
// Centaur memory-buffer chip, SMP topologies built from X-bus and A-bus
// links (Figure 1), and the IBM Power System E870 configuration evaluated
// in the paper (Table II).
//
// Everything in this package is data: published clock rates, cache
// geometries, link bandwidths and pipeline widths. Behavioural models that
// consume these specs live in internal/cache, internal/fabric,
// internal/memsys, internal/smt and internal/machine.
package arch

import (
	"fmt"

	"repro/internal/units"
)

// WritePolicy describes how a cache level handles stores.
type WritePolicy int

// Write policies present in the POWER8 hierarchy: the L1 is store-through
// (stores update L1 and are forwarded to L2), the L2 is store-in
// (write-back), and the L3 is a victim cache populated by L2 castouts.
const (
	StoreThrough WritePolicy = iota
	StoreIn
	Victim
)

// String implements fmt.Stringer.
func (p WritePolicy) String() string {
	switch p {
	case StoreThrough:
		return "store-through"
	case StoreIn:
		return "store-in"
	case Victim:
		return "victim"
	default:
		return fmt.Sprintf("WritePolicy(%d)", int(p))
	}
}

// CacheGeom is the geometry of one cache level.
type CacheGeom struct {
	Size          units.Bytes
	LineSize      units.Bytes
	Assoc         int
	LatencyCycles int // load-to-use latency for a hit in this level
	Policy        WritePolicy
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeom) Sets() int {
	lines := int(g.Size / g.LineSize)
	if g.Assoc <= 0 || lines%g.Assoc != 0 {
		panic(fmt.Sprintf("arch: cache geometry %v not divisible by associativity %d", g.Size, g.Assoc))
	}
	return lines / g.Assoc
}

// ChipSpec describes one POWER processor chip (a die). The E870 uses
// single-chip modules, so in this reproduction "chip" and "socket"
// coincide; the types still distinguish them so dual-chip-module systems
// can be described.
type ChipSpec struct {
	Name           string
	ClockGHz       float64
	Cores          int
	ThreadsPerCore int

	// Front-end widths per core per cycle (Table I).
	IssueWidth  int
	CommitWidth int
	LoadPorts   int
	StorePorts  int

	// Per-core cache geometry. L3 is the per-core local region of the
	// shared NUCA L3; the chip-level L3 capacity is Cores * L3PerCore.
	L1I, L1D, L2, L3PerCore CacheGeom

	// VSX (SIMD) execution resources per core.
	VSXPipes         int // symmetric FP/VSX pipelines
	VSXLatencyCycles int // FMA result latency
	VSXWidthDP       int // double-precision lanes per pipe
	ArchVSXRegs      int // architected VSX registers per core
	RenameVSXRegs    int // additional rename (non-architected) registers

	// Memory-level parallelism limits.
	LoadMissQueue   int // outstanding demand load misses per core
	PrefetchStreams int // concurrent hardware prefetch streams per core
}

// DPFlopsPerCycle returns the peak double-precision FLOPs one core retires
// per cycle: pipes x DP lanes x 2 (multiply + add of an FMA).
func (c ChipSpec) DPFlopsPerCycle() int {
	return c.VSXPipes * c.VSXWidthDP * 2
}

// PeakDP returns the chip's peak double-precision throughput.
func (c ChipSpec) PeakDP() units.Rate {
	return units.Rate(float64(c.Cores) * c.ClockGHz * 1e9 * float64(c.DPFlopsPerCycle()))
}

// CycleNs returns the duration of one clock cycle in nanoseconds.
func (c ChipSpec) CycleNs() float64 { return 1.0 / c.ClockGHz }

// HardwareThreads returns the number of hardware threads on the chip.
func (c ChipSpec) HardwareThreads() int { return c.Cores * c.ThreadsPerCore }

// L3Total returns the chip-level aggregated NUCA L3 capacity.
func (c ChipSpec) L3Total() units.Bytes { return units.Bytes(c.Cores) * c.L3PerCore.Size }

// POWER8 returns the POWER8 chip specification used in the paper's E870:
// an 8-core chip at 4.35 GHz. Cache sizes, issue widths and SMT levels
// follow Table I; VSX latency (6 cycles) and the two-level register file
// (128 architected VSX registers) follow Section III-C.
func POWER8(cores int, clockGHz float64) ChipSpec {
	return ChipSpec{
		Name:             "POWER8",
		ClockGHz:         clockGHz,
		Cores:            cores,
		ThreadsPerCore:   8,
		IssueWidth:       10,
		CommitWidth:      8,
		LoadPorts:        4,
		StorePorts:       2,
		L1I:              CacheGeom{Size: 32 * units.KiB, LineSize: LineSize, Assoc: 8, LatencyCycles: 3, Policy: StoreThrough},
		L1D:              CacheGeom{Size: 64 * units.KiB, LineSize: LineSize, Assoc: 8, LatencyCycles: 3, Policy: StoreThrough},
		L2:               CacheGeom{Size: 512 * units.KiB, LineSize: LineSize, Assoc: 8, LatencyCycles: 13, Policy: StoreIn},
		L3PerCore:        CacheGeom{Size: 8 * units.MiB, LineSize: LineSize, Assoc: 8, LatencyCycles: 27, Policy: Victim},
		VSXPipes:         2,
		VSXLatencyCycles: 6,
		VSXWidthDP:       2,
		ArchVSXRegs:      128,
		RenameVSXRegs:    106,
		// Effective outstanding demand misses per core, including the
		// prefetch-assisted reload machinery; calibrated so that random
		// access saturates at threads x lists ~= 32 (Section III-C).
		LoadMissQueue:   32,
		PrefetchStreams: 16,
	}
}

// POWER7 returns the predecessor chip for the Table I comparison. Only the
// fields surfaced by Table I are meaningful for POWER7 in this repo.
func POWER7(cores int, clockGHz float64) ChipSpec {
	return ChipSpec{
		Name:             "POWER7",
		ClockGHz:         clockGHz,
		Cores:            cores,
		ThreadsPerCore:   4,
		IssueWidth:       8,
		CommitWidth:      6,
		LoadPorts:        2,
		StorePorts:       2,
		L1I:              CacheGeom{Size: 32 * units.KiB, LineSize: LineSize, Assoc: 4, LatencyCycles: 3, Policy: StoreThrough},
		L1D:              CacheGeom{Size: 32 * units.KiB, LineSize: LineSize, Assoc: 8, LatencyCycles: 3, Policy: StoreThrough},
		L2:               CacheGeom{Size: 256 * units.KiB, LineSize: LineSize, Assoc: 8, LatencyCycles: 13, Policy: StoreIn},
		L3PerCore:        CacheGeom{Size: 4 * units.MiB, LineSize: LineSize, Assoc: 8, LatencyCycles: 27, Policy: Victim},
		VSXPipes:         2,
		VSXLatencyCycles: 6,
		VSXWidthDP:       2,
		ArchVSXRegs:      64,
		RenameVSXRegs:    80,
		LoadMissQueue:    8,
		PrefetchStreams:  12,
	}
}

// LineSize is the cache line size, constant across all four POWER8 cache
// levels (Section II-A).
const LineSize = 128 * units.Bytes(1)
