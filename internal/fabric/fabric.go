// Package fabric models the POWER8 SMP interconnect of Section III-B: the
// X-bus crossbar inside each 4-chip group, the bonded A-bus lanes between
// groups, the routing asymmetry the paper highlights (a single permitted
// route inside a group, multiple routes between groups), and the
// calibrated effective bandwidths of Table IV.
package fabric

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/units"
)

// HopKind labels one hop of a route.
type HopKind int

// Route hop kinds.
const (
	HopX HopKind = iota
	HopA
)

// String implements fmt.Stringer.
func (k HopKind) String() string {
	if k == HopX {
		return "X"
	}
	return "A"
}

// Route is a sequence of hops between two chips; an empty route means the
// chips are the same.
type Route struct {
	Src, Dst arch.ChipID
	Hops     []HopKind
}

// Calibration holds the fabric's measured protocol efficiencies. The raw
// link capacities come from the topology; these factors are fitted to the
// Table IV measurements and are the only non-mechanistic inputs:
//
//   - UniEfficiency: data efficiency of a single route driven in one
//     direction (X-bus chip0->chip1 sustains 30 of 39.2 GB/s raw = 0.765).
//   - SatEfficiency: per-direction efficiency when many links run
//     saturated in both directions (X-bus aggregate 632 of 940.8 raw =
//     0.672; the A-bus aggregate independently gives 206/307.2 = 0.670).
//   - BiDirFactor: per-direction derate when one chip pair exchanges
//     traffic both ways (chip0<->chip1 bidirectional 53 vs 2x30 = 0.88;
//     inter-group pairs give 0.91-0.97; 0.92 is the compromise).
//   - InterGroupRouteCapGBs: usable raw route capacity between two chips
//     in different groups. The direct bonded A-bus provides 38.4 GB/s and
//     the routing protocol adds limited spillover through neighbour
//     chips' A-bundles; 58.8 GB/s reproduces the measured 45 GB/s
//     (58.8 x 0.765) for both paired and non-paired chips.
//   - ChipInterleavedAbsorbGBs: the sustained rate one chip's cores
//     absorb when its accesses interleave over every chip's memory
//     (Table IV row "Chip0 <-> interleaved": 69 GB/s). This is a
//     requester-side limit, not a link limit.
type Calibration struct {
	UniEfficiency            float64
	SatEfficiency            float64
	BiDirFactor              float64
	InterGroupRouteCapGBs    float64
	ChipInterleavedAbsorbGBs float64
}

// E870Calibration returns the efficiencies fitted to Table IV.
func E870Calibration() Calibration {
	return Calibration{
		UniEfficiency:            0.765,
		SatEfficiency:            0.672,
		BiDirFactor:              0.92,
		InterGroupRouteCapGBs:    58.8,
		ChipInterleavedAbsorbGBs: 69,
	}
}

// Network is the SMP interconnect model for one system.
type Network struct {
	topo  *arch.Topology
	lat   arch.UncoreLatency
	calib Calibration
	deg   *Degradation
}

// New assembles the healthy network model.
func New(topo *arch.Topology, lat arch.UncoreLatency, calib Calibration) *Network {
	return NewDegraded(topo, lat, calib, nil)
}

// NewDegraded assembles a network whose links carry the lane-sparing
// overlay deg (nil for a healthy fabric). The topology stays the
// healthy wiring; the overlay derates affected routes' raw bandwidth.
func NewDegraded(topo *arch.Topology, lat arch.UncoreLatency, calib Calibration, deg *Degradation) *Network {
	if err := deg.Validate(topo); err != nil {
		panic(err)
	}
	return &Network{topo: topo, lat: lat, calib: calib, deg: deg}
}

// Degradation returns the lane-sparing overlay (nil when healthy).
func (n *Network) Degradation() *Degradation { return n.deg }

// Calibration returns the fitted efficiency profile the network was
// built with (internal/canon hashes it into machine fingerprints).
func (n *Network) Calibration() Calibration { return n.calib }

// Topology exposes the underlying wiring.
func (n *Network) Topology() *arch.Topology { return n.topo }

// RouteBetween returns the latency-relevant route between two chips:
// none (same chip), a single X hop (same group), a single A hop (paired
// chips), or A+X (everything else). Bandwidth may use additional routes;
// latency always follows the shortest.
func (n *Network) RouteBetween(src, dst arch.ChipID) Route {
	r := Route{Src: src, Dst: dst}
	switch {
	case src == dst:
	case n.topo.SameGroup(src, dst):
		r.Hops = []HopKind{HopX}
	case n.topo.Paired(src, dst):
		r.Hops = []HopKind{HopA}
	default:
		r.Hops = []HopKind{HopA, HopX}
	}
	return r
}

// HopLatencyNs returns the added nanoseconds for crossing from src to dst,
// including the layout-dependent skews of Table IV. Zero for src == dst.
func (n *Network) HopLatencyNs(src, dst arch.ChipID) float64 {
	if src == dst {
		return 0
	}
	if n.topo.SameGroup(src, dst) {
		dist := posDistance(n.topo, src, dst)
		return n.lat.XHopNs + n.lat.IntraGroupSkewNs[dist]
	}
	dist := posDistance(n.topo, src, dst)
	base := n.lat.AHopNs
	if dist != 0 {
		base += n.lat.XHopNs
	}
	return base + n.lat.InterGroupSkewNs[dist]
}

// MinCrossLatencyNs returns the smallest hop latency between any two
// chips assigned to different shards, given shardOf[chip] = shard
// index. This is the conservative lookahead bound of the sharded DES:
// no cross-shard interaction can land sooner than the cheapest link
// crossing a shard boundary, so events within that window are safe to
// execute in parallel. The bound is computed per Network — lane
// sparing derates bandwidth, not latency, so degraded machines keep
// the healthy bound, but the method goes through HopLatencyNs so any
// future latency-affecting degradation is picked up automatically.
// It returns 0 when no chip pair crosses a shard boundary (a single
// shard), which the engine rejects for parallel runs.
func (n *Network) MinCrossLatencyNs(shardOf []int) float64 {
	if len(shardOf) != n.topo.Chips {
		panic(fmt.Sprintf("fabric: shard map covers %d chips, topology has %d", len(shardOf), n.topo.Chips))
	}
	min := 0.0
	for a := 0; a < n.topo.Chips; a++ {
		for b := a + 1; b < n.topo.Chips; b++ {
			if shardOf[a] == shardOf[b] {
				continue
			}
			l := n.HopLatencyNs(arch.ChipID(a), arch.ChipID(b))
			if min == 0 || l < min {
				min = l
			}
		}
	}
	return min
}

// posDistance is the position distance within a group, used to index the
// layout skew tables: 1..3 intra-group, 0..3 inter-group (0 = paired).
func posDistance(t *arch.Topology, a, b arch.ChipID) int {
	d := t.PositionInGroup(b) - t.PositionInGroup(a)
	if d < 0 {
		d = -d
	}
	return d
}

// PairBandwidth returns the effective memory-read bandwidth between two
// distinct chips. With bidirectional=false a single direction is driven
// (the Table IV "one-direction" column); with bidirectional=true both
// directions run and the returned figure is the two-direction total.
func (n *Network) PairBandwidth(src, dst arch.ChipID, bidirectional bool) units.Bandwidth {
	if src == dst {
		panic(fmt.Sprintf("fabric: PairBandwidth needs distinct chips, got %d", src))
	}
	var rawGBs float64
	if n.topo.SameGroup(src, dst) {
		// Single permitted route inside a group, derated when the X-bus
		// between the pair is running on spared lanes.
		rawGBs = arch.XBusLaneGBs * n.deg.Factor(src, dst, arch.XBus)
	} else {
		rawGBs = n.interGroupRouteCapGBs(src, dst)
	}
	oneWay := rawGBs * n.calib.UniEfficiency
	if !bidirectional {
		return units.GBps(oneWay)
	}
	return units.GBps(2 * oneWay * n.calib.BiDirFactor)
}

// interGroupRouteCapGBs returns the usable raw route capacity between
// two chips in different groups: the calibrated healthy cap, reduced by
// whatever the route's direct A-bundle (the bonded lanes between src
// and its same-position partner in dst's group) lost to lane sparing.
// The protocol's spillover through neighbour chips' bundles is left
// intact — it rides links the sparing event did not touch.
func (n *Network) interGroupRouteCapGBs(src, dst arch.ChipID) float64 {
	partner := arch.ChipID(n.topo.Group(dst)*n.topo.ChipsPerGroup + n.topo.PositionInGroup(src))
	capGBs := n.calib.InterGroupRouteCapGBs
	f := n.deg.Factor(src, partner, arch.ABus)
	if f < 1 {
		if l, ok := n.topo.LinkBetween(src, partner); ok {
			capGBs -= l.Capacity().GBps() * (1 - f)
		}
	}
	return capGBs
}

// AggregateBandwidth returns the sustained bidirectional bandwidth of all
// links of a kind when every core in the system drives them (the Table IV
// "X-Bus Aggregate" and "A-Bus Aggregate" rows), counting spared lanes
// out of the raw capacity.
func (n *Network) AggregateBandwidth(kind arch.LinkKind) units.Bandwidth {
	var raw float64
	if n.deg.Degraded() {
		for _, l := range n.topo.Links() {
			if l.Kind == kind {
				raw += 2 * float64(l.Capacity()) * n.deg.Factor(l.A, l.B, kind)
			}
		}
	} else {
		raw = float64(n.topo.AggregateCapacity(kind))
	}
	return units.Bandwidth(raw * n.calib.SatEfficiency)
}

// InterleavedAbsorb returns the bandwidth one chip sustains when reading
// memory interleaved across every chip in the system.
func (n *Network) InterleavedAbsorb() units.Bandwidth {
	return units.GBps(n.calib.ChipInterleavedAbsorbGBs)
}

// LinkShares describes, for uniform all-to-all interleaved traffic, the
// fraction of delivered bytes that crosses each link class.
type LinkShares struct {
	X float64
	A float64
}

// AllToAllShares computes the link-class crossing fractions for traffic
// uniformly interleaved over all chips (each chip addresses every chip's
// memory, including its own, with equal weight).
func (n *Network) AllToAllShares() LinkShares {
	chips := n.topo.Chips
	var xCross, aCross, total float64
	for s := 0; s < chips; s++ {
		for d := 0; d < chips; d++ {
			total++
			r := n.RouteBetween(arch.ChipID(s), arch.ChipID(d))
			for _, h := range r.Hops {
				if h == HopX {
					xCross++
				} else {
					aCross++
				}
			}
		}
	}
	return LinkShares{X: xCross / total, A: aCross / total}
}

// AllToAll returns the system-wide sustained bandwidth for all-to-all
// interleaved traffic: the tightest link class bounds the total, derated
// by the bidirectional factor since every bundle carries traffic both
// ways (Table IV row "All-to-all interleaved").
func (n *Network) AllToAll() units.Bandwidth {
	shares := n.AllToAllShares()
	bound := func(kind arch.LinkKind, share float64) float64 {
		if share == 0 {
			return 0
		}
		return float64(n.AggregateBandwidth(kind)) * n.calib.BiDirFactor / share
	}
	xBound := bound(arch.XBus, shares.X)
	aBound := bound(arch.ABus, shares.A)
	min := xBound
	if aBound > 0 && (min == 0 || aBound < min) {
		min = aBound
	}
	return units.Bandwidth(min)
}
