package fabric

import (
	"testing"

	"repro/internal/arch"
)

func TestDegradationFactorCanonical(t *testing.T) {
	d := NewDegradation().SpareLanes(3, 1, arch.XBus, 0.5)
	// The key is canonical: both endpoint orders see the derate.
	if d.Factor(1, 3, arch.XBus) != 0.5 || d.Factor(3, 1, arch.XBus) != 0.5 {
		t.Errorf("factor(1,3)=%g factor(3,1)=%g, want 0.5 both ways",
			d.Factor(1, 3, arch.XBus), d.Factor(3, 1, arch.XBus))
	}
	// Other links and kinds stay at full width.
	if d.Factor(1, 3, arch.ABus) != 1 || d.Factor(0, 1, arch.XBus) != 1 {
		t.Error("untouched links got derated")
	}
}

func TestDegradationCompose(t *testing.T) {
	d := NewDegradation().
		SpareLanes(0, 1, arch.XBus, 0.5).
		SpareLanes(1, 0, arch.XBus, 0.5)
	if got := d.Factor(0, 1, arch.XBus); got != 0.25 {
		t.Errorf("composed factor = %g, want 0.25 (multiplicative)", got)
	}
	if d.Links() != 1 {
		t.Errorf("Links = %d, want 1 (same canonical key)", d.Links())
	}
}

func TestDegradationNilSafe(t *testing.T) {
	var d *Degradation
	if d.Factor(0, 1, arch.XBus) != 1 || d.Degraded() || d.Links() != 0 {
		t.Error("nil overlay is not a healthy fabric")
	}
	if err := d.Validate(arch.E870().Topology); err != nil {
		t.Errorf("nil Validate: %v", err)
	}
}

func TestDegradationSpareLanesPanicsOnBadFactor(t *testing.T) {
	for _, f := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SpareLanes(%g) did not panic", f)
				}
			}()
			NewDegradation().SpareLanes(0, 1, arch.XBus, f)
		}()
	}
}

func TestDegradationValidate(t *testing.T) {
	topo := arch.E870().Topology
	if err := NewDegradation().SpareLanes(0, 1, arch.XBus, 0.5).Validate(topo); err != nil {
		t.Errorf("valid X-bus derate rejected: %v", err)
	}
	// Chips 0 and 4 sit in different groups: their link is an A-bus.
	if err := NewDegradation().SpareLanes(0, 4, arch.XBus, 0.5).Validate(topo); err == nil {
		t.Error("X-bus derate on an A-bus link validated")
	}
	if err := NewDegradation().SpareLanes(0, 3, arch.ABus, 0.5).Validate(topo); err == nil {
		t.Error("A-bus derate on an intra-group pair validated")
	}
}

func TestDegradedNetworkBandwidth(t *testing.T) {
	spec := arch.E870()
	calib := E870Calibration()
	healthy := New(spec.Topology, spec.Latency, calib)
	deg := NewDegraded(spec.Topology, spec.Latency, calib,
		NewDegradation().SpareLanes(0, 1, arch.XBus, 0.5))

	hp := healthy.PairBandwidth(0, 1, false)
	dp := deg.PairBandwidth(0, 1, false)
	if dp.GBps() != hp.GBps()/2 {
		t.Errorf("derated pair = %v, want half of %v", dp, hp)
	}
	// Untouched pairs are identical.
	if deg.PairBandwidth(2, 3, false) != healthy.PairBandwidth(2, 3, false) {
		t.Error("derating one link changed another pair")
	}
	// Aggregate X-bus bandwidth strictly drops; A-bus is untouched.
	if deg.AggregateBandwidth(arch.XBus).GBps() >= healthy.AggregateBandwidth(arch.XBus).GBps() {
		t.Error("aggregate X-bus bandwidth did not drop under lane sparing")
	}
	if deg.AggregateBandwidth(arch.ABus) != healthy.AggregateBandwidth(arch.ABus) {
		t.Error("X-lane sparing changed the A-bus aggregate")
	}
}
