package fabric

import (
	"fmt"
	"sort"

	"repro/internal/arch"
)

// linkKey canonically identifies one link of the topology (smaller chip
// id first).
type linkKey struct {
	a, b arch.ChipID
	kind arch.LinkKind
}

func keyFor(a, b arch.ChipID, kind arch.LinkKind) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a: a, b: b, kind: kind}
}

// Degradation is an overlay of RAS events on a healthy topology: for
// each affected link it records the fraction of the raw link bandwidth
// still available after lane sparing (the POWER8 X/A buses drop failed
// lanes and continue at reduced width rather than failing the link).
// The topology itself stays the healthy description; a Network built
// with a Degradation derates the affected routes. A nil *Degradation
// means a healthy fabric, and like the rest of a constructed Network
// the overlay is read-only: degraded and healthy machines run
// race-free side by side.
type Degradation struct {
	factors map[linkKey]float64
}

// NewDegradation returns an empty overlay (all links at full width).
func NewDegradation() *Degradation {
	return &Degradation{factors: map[linkKey]float64{}}
}

// SpareLanes records that the link between a and b of the given kind
// runs at `factor` of its raw bandwidth (0 < factor <= 1). Repeated
// calls on the same link compose multiplicatively. It returns the
// overlay for chaining.
func (d *Degradation) SpareLanes(a, b arch.ChipID, kind arch.LinkKind, factor float64) *Degradation {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("fabric: lane-spare factor %g out of (0,1]", factor))
	}
	k := keyFor(a, b, kind)
	cur, ok := d.factors[k]
	if !ok {
		cur = 1
	}
	d.factors[k] = cur * factor
	return d
}

// Factor returns the remaining raw-bandwidth fraction of a link; 1 for
// untouched links and on a nil overlay.
func (d *Degradation) Factor(a, b arch.ChipID, kind arch.LinkKind) float64 {
	if d == nil {
		return 1
	}
	if f, ok := d.factors[keyFor(a, b, kind)]; ok {
		return f
	}
	return 1
}

// Degraded reports whether the overlay derates any link.
func (d *Degradation) Degraded() bool {
	return d != nil && len(d.factors) > 0
}

// Links returns the number of derated links.
func (d *Degradation) Links() int {
	if d == nil {
		return 0
	}
	return len(d.factors)
}

// Validate checks every derated link against the topology: the pair
// must be wired with a link of the recorded kind. Links are checked in
// canonical (a, b, kind) order so that when several are invalid the
// error — which reaches API clients verbatim — always names the same
// one.
func (d *Degradation) Validate(topo *arch.Topology) error {
	if d == nil {
		return nil
	}
	keys := make([]linkKey, 0, len(d.factors))
	for k := range d.factors {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.a != b.a {
			return a.a < b.a
		}
		if a.b != b.b {
			return a.b < b.b
		}
		return a.kind < b.kind
	})
	for _, k := range keys {
		l, ok := topo.LinkBetween(k.a, k.b)
		if !ok || l.Kind != k.kind {
			return fmt.Errorf("fabric: no %v link between chips %d and %d to spare lanes on", k.kind, k.a, k.b)
		}
	}
	return nil
}
