package fabric

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/stats"
)

func e870Net() *Network {
	spec := arch.E870()
	return New(spec.Topology, spec.Latency, E870Calibration())
}

func TestRouteShapes(t *testing.T) {
	n := e870Net()
	cases := []struct {
		src, dst arch.ChipID
		want     []HopKind
	}{
		{0, 0, nil},
		{0, 1, []HopKind{HopX}},
		{0, 4, []HopKind{HopA}},
		{0, 5, []HopKind{HopA, HopX}},
		{6, 2, []HopKind{HopA}},
		{7, 1, []HopKind{HopA, HopX}},
	}
	for _, c := range cases {
		r := n.RouteBetween(c.src, c.dst)
		if len(r.Hops) != len(c.want) {
			t.Errorf("route %d->%d = %v, want %v", c.src, c.dst, r.Hops, c.want)
			continue
		}
		for i := range c.want {
			if r.Hops[i] != c.want[i] {
				t.Errorf("route %d->%d = %v, want %v", c.src, c.dst, r.Hops, c.want)
			}
		}
	}
}

// TestTableIVLatencies reproduces the demand-latency column of Table IV:
// local DRAM latency plus the modelled hop costs must land on the paper's
// measurements exactly (the skews are calibrated to them).
func TestTableIVLatencies(t *testing.T) {
	spec := arch.E870()
	n := New(spec.Topology, spec.Latency, E870Calibration())
	want := map[arch.ChipID]float64{
		1: 123, 2: 125, 3: 133, 4: 213, 5: 235, 6: 237, 7: 243,
	}
	for dst, lat := range want {
		got := spec.Latency.LocalDRAMNs + n.HopLatencyNs(0, dst)
		if math.Abs(got-lat) > 0.01 {
			t.Errorf("chip0->chip%d latency = %v ns, want %v", dst, got, lat)
		}
	}
	if n.HopLatencyNs(3, 3) != 0 {
		t.Error("same-chip hop latency nonzero")
	}
}

// TestIntraVsInterGroupLatency checks the paper's 2x observation: memory
// latencies within a chip group are about half those between groups.
func TestIntraVsInterGroupLatency(t *testing.T) {
	spec := arch.E870()
	n := New(spec.Topology, spec.Latency, E870Calibration())
	intra := spec.Latency.LocalDRAMNs + n.HopLatencyNs(0, 1)
	inter := spec.Latency.LocalDRAMNs + n.HopLatencyNs(0, 5)
	ratio := inter / intra
	if ratio < 1.7 || ratio > 2.2 {
		t.Errorf("inter/intra latency ratio = %v, want ~2", ratio)
	}
}

// TestPairBandwidths reproduces the Table IV bandwidth columns.
func TestPairBandwidths(t *testing.T) {
	n := e870Net()
	cases := []struct {
		src, dst arch.ChipID
		bidir    bool
		want     float64
		tol      float64
	}{
		{0, 1, false, 30, 0.05},
		{0, 2, false, 30, 0.05},
		{0, 3, false, 30, 0.05},
		{0, 1, true, 53, 0.06},
		{0, 4, false, 45, 0.05},
		{0, 5, false, 45, 0.05},
		{0, 4, true, 87, 0.06},
		{0, 5, true, 82, 0.06},
	}
	for _, c := range cases {
		got := n.PairBandwidth(c.src, c.dst, c.bidir).GBps()
		if !stats.Within(got, c.want, c.tol) {
			t.Errorf("PairBandwidth(%d,%d,bidir=%v) = %.1f GB/s, want %v (±%v%%)",
				c.src, c.dst, c.bidir, got, c.want, c.tol*100)
		}
	}
}

// TestInterGroupBeatsIntraGroup checks the paper's counter-intuitive
// finding: measured bandwidth between chip groups exceeds bandwidth
// within a group, because inter-group traffic can use multiple routes.
func TestInterGroupBeatsIntraGroup(t *testing.T) {
	n := e870Net()
	intra := n.PairBandwidth(0, 1, false)
	inter := n.PairBandwidth(0, 5, false)
	if inter <= intra {
		t.Errorf("inter-group %v <= intra-group %v; paper measures the opposite", inter, intra)
	}
}

// TestAggregates reproduces the Table IV aggregate rows: X-bus 632 GB/s,
// A-bus 206 GB/s (3x ratio), all-to-all 380 GB/s in between the two.
func TestAggregates(t *testing.T) {
	n := e870Net()
	x := n.AggregateBandwidth(arch.XBus).GBps()
	a := n.AggregateBandwidth(arch.ABus).GBps()
	all := n.AllToAll().GBps()
	if !stats.Within(x, 632, 0.02) {
		t.Errorf("X aggregate = %.1f, want 632", x)
	}
	if !stats.Within(a, 206, 0.02) {
		t.Errorf("A aggregate = %.1f, want 206", a)
	}
	if ratio := x / a; ratio < 2.8 || ratio > 3.3 {
		t.Errorf("X/A ratio = %.2f, want ~3", ratio)
	}
	if !stats.Within(all, 380, 0.05) {
		t.Errorf("all-to-all = %.1f, want 380", all)
	}
	if !(all > a && all < x) {
		t.Errorf("all-to-all %v not between A aggregate %v and X aggregate %v", all, a, x)
	}
}

func TestInterleavedAbsorb(t *testing.T) {
	n := e870Net()
	if got := n.InterleavedAbsorb().GBps(); got != 69 {
		t.Errorf("interleaved absorb = %v, want 69", got)
	}
}

func TestAllToAllShares(t *testing.T) {
	n := e870Net()
	s := n.AllToAllShares()
	if math.Abs(s.X-0.75) > 1e-12 || math.Abs(s.A-0.5) > 1e-12 {
		t.Errorf("shares = %+v, want X=0.75 A=0.5", s)
	}
}

func TestPairBandwidthPanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self pair did not panic")
		}
	}()
	e870Net().PairBandwidth(2, 2, false)
}

func TestHopKindString(t *testing.T) {
	if HopX.String() != "X" || HopA.String() != "A" {
		t.Error("HopKind strings wrong")
	}
}

// TestMinCrossLatencyNs pins the sharded-DES lookahead bounds on the
// E870: socket-granular shards see the cheapest X-bus hop; splitting at
// the group boundary sees the cheapest A-bus hop (the paired chips).
func TestMinCrossLatencyNs(t *testing.T) {
	n := e870Net()
	shardPer := func(chipsPerShard int) []int {
		m := make([]int, 8)
		for c := range m {
			m[c] = c / chipsPerShard
		}
		return m
	}
	cases := []struct {
		chipsPerShard int
		want          float64
	}{
		{1, 28},  // X-bus neighbours cross everywhere
		{2, 28},  // chips 1 and 2 still cross a boundary inside a group
		{4, 118}, // group split: only A-bus pairs cross
	}
	for _, c := range cases {
		if got := n.MinCrossLatencyNs(shardPer(c.chipsPerShard)); got != c.want {
			t.Errorf("%d chips/shard: lookahead %v, want %v", c.chipsPerShard, got, c.want)
		}
	}
	if got := n.MinCrossLatencyNs(shardPer(8)); got != 0 {
		t.Errorf("single shard: lookahead %v, want 0 (no crossing pairs)", got)
	}
}

func TestMinCrossLatencyPanicsOnBadMap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short shard map did not panic")
		}
	}()
	e870Net().MinCrossLatencyNs([]int{0, 1})
}
