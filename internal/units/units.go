// Package units provides typed quantities and formatting helpers used
// throughout the POWER8 machine model: byte sizes, bandwidths, times and
// rates. Keeping these as distinct types catches unit mix-ups (GB vs GiB,
// GB/s vs ns) at compile time in the model code.
package units

import "fmt"

// Bytes is a memory size in bytes.
type Bytes int64

// Common byte quantities. Cache and page sizes in the POWER8 documentation
// are binary units; memory bandwidth uses decimal GB.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40

	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
)

// String formats a size with a binary suffix, choosing the largest suffix
// that yields a value >= 1.
func (b Bytes) String() string {
	switch {
	case b >= TiB && b%TiB == 0:
		return fmt.Sprintf("%d TiB", b/TiB)
	case b >= GiB:
		return fmtScaled(float64(b)/float64(GiB), "GiB")
	case b >= MiB:
		return fmtScaled(float64(b)/float64(MiB), "MiB")
	case b >= KiB:
		return fmtScaled(float64(b)/float64(KiB), "KiB")
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

func fmtScaled(v float64, suffix string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d %s", int64(v), suffix)
	}
	return fmt.Sprintf("%.2f %s", v, suffix)
}

// GBs converts to decimal gigabytes.
func (b Bytes) GBs() float64 { return float64(b) / 1e9 }

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// GBps constructs a Bandwidth from decimal GB/s, the unit used in the paper.
func GBps(v float64) Bandwidth { return Bandwidth(v * 1e9) }

// GBps reports the bandwidth in decimal GB/s.
func (bw Bandwidth) GBps() float64 { return float64(bw) / 1e9 }

// String formats the bandwidth in GB/s with one decimal.
func (bw Bandwidth) String() string { return fmt.Sprintf("%.1f GB/s", bw.GBps()) }

// Duration is simulated time in nanoseconds, stored as a float to allow
// sub-nanosecond cycle arithmetic at multi-GHz clocks.
type Duration float64

// Nanoseconds constructs a Duration.
func Nanoseconds(v float64) Duration { return Duration(v) }

// Ns reports the duration in nanoseconds.
func (d Duration) Ns() float64 { return float64(d) }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) * 1e-9 }

// String formats a duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= 1e9:
		return fmt.Sprintf("%.3f s", float64(d)/1e9)
	case d >= 1e6:
		return fmt.Sprintf("%.3f ms", float64(d)/1e6)
	case d >= 1e3:
		return fmt.Sprintf("%.3f us", float64(d)/1e3)
	default:
		return fmt.Sprintf("%.2f ns", float64(d))
	}
}

// Flops is a floating-point operation count.
type Flops float64

// GFlops constructs a Flops count from giga-flops.
func GFlops(v float64) Flops { return Flops(v * 1e9) }

// Rate is a compute throughput in FLOP/s.
type Rate float64

// GFlopsPerSec constructs a Rate from GFLOP/s, the unit used in the paper.
func GFlopsPerSec(v float64) Rate { return Rate(v * 1e9) }

// BandwidthOf returns the memory bandwidth that gives a system with peak
// compute r the stated machine balance (FLOPs per byte).
func BandwidthOf(r Rate, balance float64) Bandwidth {
	return Bandwidth(float64(r) / balance)
}

// GFs reports the rate in GFLOP/s.
func (r Rate) GFs() float64 { return float64(r) / 1e9 }

// String formats the rate in GFLOP/s.
func (r Rate) String() string { return fmt.Sprintf("%.1f GFLOP/s", r.GFs()) }
