package units

import "testing"

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{128, "128 B"},
		{KiB, "1 KiB"},
		{64 * KiB, "64 KiB"},
		{512 * KiB, "512 KiB"},
		{8 * MiB, "8 MiB"},
		{3 * MiB / 2, "1.50 MiB"},
		{16 * GiB, "16 GiB"},
		{2 * TiB, "2 TiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBytesGBs(t *testing.T) {
	if got := (2 * GB).GBs(); got != 2.0 {
		t.Errorf("GBs() = %v, want 2", got)
	}
	if got := GiB.GBs(); got != 1.073741824 {
		t.Errorf("GiB.GBs() = %v, want 1.073741824", got)
	}
}

func TestBandwidth(t *testing.T) {
	bw := GBps(39.2)
	if got := bw.GBps(); got != 39.2 {
		t.Errorf("GBps() = %v, want 39.2", got)
	}
	if got := bw.String(); got != "39.2 GB/s" {
		t.Errorf("String() = %q", got)
	}
}

func TestDuration(t *testing.T) {
	cases := []struct {
		in   Duration
		want string
	}{
		{Nanoseconds(95), "95.00 ns"},
		{Nanoseconds(1500), "1.500 us"},
		{Nanoseconds(2.5e6), "2.500 ms"},
		{Nanoseconds(3e9), "3.000 s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Duration(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
	if got := Nanoseconds(1e9).Seconds(); got != 1.0 {
		t.Errorf("Seconds() = %v, want 1", got)
	}
}

func TestRate(t *testing.T) {
	r := GFlopsPerSec(2227.2)
	if got := r.GFs(); got != 2227.2 {
		t.Errorf("GFs() = %v, want 2227.2", got)
	}
	if got := r.String(); got != "2227.2 GFLOP/s" {
		t.Errorf("String() = %q", got)
	}
}
