package iofault

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/rng"
)

// Op names one class of filesystem operation the injector can target.
type Op uint8

// The injectable operation classes. OpWrite counts individual
// File.Write calls across every file opened through the injector;
// OpSync counts File.Sync calls; the rest count the FS-level calls of
// the same name.
const (
	OpWrite Op = iota
	OpSync
	OpCreate
	OpRename
	OpRemove
	OpRead // ReadFile and Open
	opCount
)

// String names the op for error messages and test labels.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpRead:
		return "read"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind is the failure a Fault injects when its trigger fires.
type Kind uint8

// The injectable failure kinds.
const (
	// KindErr fails the operation with ErrInjected and no side effect
	// (an EIO-shaped error).
	KindErr Kind = iota
	// KindNoSpace fails the operation with ErrNoSpace; on a write, Arg
	// bytes are written before the failure (a short write, the
	// ENOSPC-mid-write shape).
	KindNoSpace
	// KindCrash kills the filesystem at this operation: on a write,
	// Arg bytes of the attempted payload still land (a torn tail);
	// then the wrapped FS crashes (unsynced data is lost when it is a
	// *Mem) and every subsequent operation fails with ErrCrashed.
	KindCrash
)

// String names the kind for test labels.
func (k Kind) String() string {
	switch k {
	case KindErr:
		return "err"
	case KindNoSpace:
		return "nospace"
	case KindCrash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// A Fault arms one injection: when the N-th operation of class Op
// (0-indexed, counted since the injector was built) executes, fail it
// with Kind. Arg is the kind's parameter (bytes retained by a torn or
// short write).
type Fault struct {
	Op   Op
	N    int
	Kind Kind
	Arg  int
}

// String renders the fault for test names ("write@3:crash/2").
func (f Fault) String() string {
	return fmt.Sprintf("%s@%d:%s/%d", f.Op, f.N, f.Kind, f.Arg)
}

// The injector's sentinel errors. Callers match with errors.Is.
var (
	// ErrInjected is the generic injected I/O failure.
	ErrInjected = errors.New("iofault: injected I/O error")
	// ErrNoSpace is the injected out-of-space failure.
	ErrNoSpace = errors.New("iofault: injected ENOSPC")
	// ErrCrashed fails every operation after an injected crash point:
	// the process this FS belonged to is conceptually dead.
	ErrCrashed = errors.New("iofault: filesystem crashed")
)

// Crasher is implemented by filesystems that can simulate power loss;
// *Mem is the one in this package. A Faulty wrapping a Crasher
// propagates KindCrash into it, so unsynced bytes are lost exactly as
// the durability model prescribes.
type Crasher interface{ Crash() }

// Faulty wraps an FS with a deterministic fault schedule. Operations
// are counted per class; when a count matches an armed Fault, the
// failure is injected. All methods are safe for concurrent use; the
// count order under concurrency is the caller's schedule to control
// (the journal serializes appends, so its sweeps are exact).
type Faulty struct {
	inner  FS
	mu     sync.Mutex
	counts [opCount]int
	faults []Fault
	// crashed latches after a KindCrash fires.
	crashed bool
}

// NewFaulty wraps inner with a fault schedule. The schedule may be
// empty (no-op wrapper) and may arm several faults; each fires at most
// once.
func NewFaulty(inner FS, faults ...Fault) *Faulty {
	f := &Faulty{inner: inner}
	f.faults = append(f.faults, faults...)
	return f
}

// Random derives a deterministic fault schedule from a seed: n faults
// spread over the first span operations, biased toward writes and
// syncs (the operations durability bugs hide behind). Equal seeds give
// equal schedules on every platform.
func Random(seed uint64, n, span int) []Fault {
	r := rng.New(seed)
	ops := []Op{OpWrite, OpWrite, OpWrite, OpSync, OpSync, OpCreate, OpRename, OpRead}
	kinds := []Kind{KindErr, KindNoSpace, KindCrash}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		faults = append(faults, Fault{
			Op:   ops[r.Intn(len(ops))],
			N:    r.Intn(span),
			Kind: kinds[r.Intn(len(kinds))],
			Arg:  r.Intn(16),
		})
	}
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Op != faults[j].Op {
			return faults[i].Op < faults[j].Op
		}
		return faults[i].N < faults[j].N
	})
	return faults
}

// Crashed reports whether an armed crash point has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops reports how many operations of class op have executed (including
// the one a fault failed). Crash-point sweeps use it to size the sweep.
func (f *Faulty) Ops(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// step counts one operation of class op and returns the fault to
// inject, if any. A latched crash fails everything.
func (f *Faulty) step(op Op) (Fault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return Fault{}, ErrCrashed
	}
	n := f.counts[op]
	f.counts[op]++
	for i, ft := range f.faults {
		if ft.Op == op && ft.N == n {
			f.faults = append(f.faults[:i], f.faults[i+1:]...)
			if ft.Kind == KindCrash {
				f.crashed = true
				if c, ok := f.inner.(Crasher); ok {
					defer c.Crash()
				}
			}
			return ft, errFor(ft.Kind)
		}
	}
	return Fault{}, nil
}

// errFor maps a kind to its sentinel.
func errFor(k Kind) error {
	switch k {
	case KindNoSpace:
		return ErrNoSpace
	case KindCrash:
		return ErrCrashed
	}
	return ErrInjected
}

// MkdirAll passes through uninjected (directory creation is setup, not
// a durability edge), but still honors a latched crash.
func (f *Faulty) MkdirAll(path string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path)
}

// Create opens path for writing through the injector.
func (f *Faulty) Create(path string) (File, error) {
	if _, err := f.step(OpCreate); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: file}, nil
}

// CreateTemp creates a unique file in dir through the injector.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if _, err := f.step(OpCreate); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: file}, nil
}

// Open opens path read-only through the injector.
func (f *Faulty) Open(path string) (File, error) {
	if _, err := f.step(OpRead); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: file}, nil
}

// ReadFile reads path through the injector.
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	if _, err := f.step(OpRead); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

// Rename moves oldpath to newpath through the injector.
func (f *Faulty) Rename(oldpath, newpath string) error {
	if _, err := f.step(OpRename); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove deletes path through the injector.
func (f *Faulty) Remove(path string) error {
	if _, err := f.step(OpRemove); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// ReadDir lists dir; uninjected (listing is recovery setup; the
// injectable read path is the per-file content reads).
func (f *Faulty) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

// Stat sizes path; uninjected apart from a latched crash.
func (f *Faulty) Stat(path string) (int64, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return f.inner.Stat(path)
}

// SyncDir flushes directory metadata through the injector's sync
// counter.
func (f *Faulty) SyncDir(dir string) error {
	if _, err := f.step(OpSync); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultyFile threads a file's writes and syncs through the injector.
type faultyFile struct {
	fs    *Faulty
	inner File
}

// Read passes through to the wrapped handle.
func (ff *faultyFile) Read(p []byte) (int, error) { return ff.inner.Read(p) }

// Write counts one OpWrite. An injected short write (KindNoSpace with
// Arg < len(p)) or torn tail (KindCrash) lands Arg bytes in the
// wrapped file before failing, so recovery code sees exactly the
// partial frame a real power cut leaves.
func (ff *faultyFile) Write(p []byte) (int, error) {
	ft, err := ff.fs.step(OpWrite)
	if err != nil {
		n := 0
		if keep := ft.Arg; keep > 0 && (ft.Kind == KindNoSpace || ft.Kind == KindCrash) {
			if keep > len(p) {
				keep = len(p)
			}
			n, _ = ff.inner.Write(p[:keep])
		}
		return n, err
	}
	return ff.inner.Write(p)
}

// Sync counts one OpSync and passes through.
func (ff *faultyFile) Sync() error {
	if _, err := ff.fs.step(OpSync); err != nil {
		return err
	}
	return ff.inner.Sync()
}

// Close passes through uninjected apart from a latched crash.
func (ff *faultyFile) Close() error {
	ff.fs.mu.Lock()
	crashed := ff.fs.crashed
	ff.fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return ff.inner.Close()
}

// Name returns the wrapped handle's path.
func (ff *faultyFile) Name() string { return ff.inner.Name() }
