package iofault

import (
	"bytes"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Mem is an in-memory FS that models crash durability: every file
// tracks its written content and its synced content separately, and
// Crash discards everything that was never acknowledged by Sync. The
// model is deliberately pessimistic about data and optimistic about
// metadata — after a crash a file keeps only its last synced byte
// prefix, while renames and removes that already happened stick (the
// common mental model of a metadata-journaling filesystem). A file that
// was created but never synced at all does not survive.
//
// Mem is safe for concurrent use and the zero value is not ready;
// construct with NewMem.
type Mem struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	tempSeq int
}

// memFile is one file's content: data is what readers see now, synced
// is what survives a Crash.
type memFile struct {
	data   []byte
	synced []byte
	// everSynced marks at least one successful Sync; files that were
	// never synced do not survive a crash at all.
	everSynced bool
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{files: map[string]*memFile{}, dirs: map[string]bool{"/": true, ".": true}}
}

// Crash simulates power loss: every file's content reverts to its last
// synced prefix, and files never synced disappear. Open handles keep
// working (the process that held them is conceptually dead; tests open
// fresh ones), and the filesystem remains usable for the "restarted"
// process.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Collect-then-sort: the revert must not leak map iteration order
	// into anything downstream (deterministic replay is the whole point
	// of this filesystem).
	paths := make([]string, 0, len(m.files))
	for path := range m.files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		f := m.files[path]
		if !f.everSynced {
			delete(m.files, path)
			continue
		}
		f.data = append([]byte(nil), f.synced...)
	}
}

// MkdirAll creates a directory and any missing parents.
func (m *Mem) MkdirAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(path)
	for p != "." && p != "/" {
		m.dirs[p] = true
		p = filepath.Dir(p)
	}
	return nil
}

// Create opens path for writing, truncating any existing content.
func (m *Mem) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = clean(path)
	f := &memFile{}
	m.files[path] = f
	return &memHandle{fs: m, name: path, f: f}, nil
}

// CreateTemp creates a unique file in dir; the unique suffix is a
// deterministic per-FS counter, so two runs of the same test see the
// same names.
func (m *Mem) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tempSeq++
	name := fmt.Sprintf("%s%08d", pattern, m.tempSeq)
	if i := strings.IndexByte(pattern, '*'); i >= 0 {
		name = fmt.Sprintf("%s%08d%s", pattern[:i], m.tempSeq, pattern[i+1:])
	}
	path := clean(filepath.Join(dir, name))
	f := &memFile{}
	m.files[path] = f
	return &memHandle{fs: m, name: path, f: f}, nil
}

// Open opens path read-only. The handle reads a snapshot of the content
// at open time.
func (m *Mem) Open(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = clean(path)
	f, ok := m.files[path]
	if !ok {
		return nil, notExist(path)
	}
	return &memHandle{fs: m, name: path, f: f, rd: bytes.NewReader(append([]byte(nil), f.data...)), readOnly: true}, nil
}

// ReadFile reads the whole content of path.
func (m *Mem) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(path)]
	if !ok {
		return nil, notExist(path)
	}
	return append([]byte(nil), f.data...), nil
}

// Rename atomically moves oldpath to newpath, replacing newpath.
func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = clean(oldpath), clean(newpath)
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

// Remove deletes path.
func (m *Mem) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = clean(path)
	if _, ok := m.files[path]; !ok {
		return &fs.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

// ReadDir lists the file names directly inside dir, sorted.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = clean(dir)
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat returns the size of path.
func (m *Mem) Stat(path string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(path)]
	if !ok {
		return 0, notExist(path)
	}
	return int64(len(f.data)), nil
}

// SyncDir is a no-op in the memory model: metadata operations stick
// (see the type comment for the crash model).
func (m *Mem) SyncDir(dir string) error { return nil }

// memHandle is an open file on a Mem.
type memHandle struct {
	fs       *Mem
	name     string
	f        *memFile
	rd       *bytes.Reader
	readOnly bool
	closed   bool
}

// Read reads from the open-time snapshot (read-only handles only).
func (h *memHandle) Read(p []byte) (int, error) {
	if h.rd == nil {
		return 0, &fs.PathError{Op: "read", Path: h.name, Err: fs.ErrInvalid}
	}
	return h.rd.Read(p)
}

// Write appends to the file's volatile content.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || h.readOnly {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrInvalid}
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync acknowledges every written byte as durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return &fs.PathError{Op: "sync", Path: h.name, Err: fs.ErrInvalid}
	}
	h.f.synced = append([]byte(nil), h.f.data...)
	h.f.everSynced = true
	return nil
}

// Close marks the handle unusable. It does not sync.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return &fs.PathError{Op: "close", Path: h.name, Err: fs.ErrClosed}
	}
	h.closed = true
	return nil
}

// Name returns the path the file was opened under.
func (h *memHandle) Name() string { return h.name }
