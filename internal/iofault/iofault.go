// Package iofault is the filesystem seam under the repository's
// durable state: a small FS interface, the real os-backed
// implementation, an in-memory implementation that models what survives
// a crash (only fsynced bytes), and a deterministic fault injector that
// wraps either one. internal/journal writes its write-ahead log through
// this seam and internal/memo's disk tier reads and writes through it,
// so recovery invariants — "every acknowledged append survives a crash",
// "a torn tail is truncated, never trusted" — are provable in ordinary
// `go test` instead of hoped for in production.
//
// The package is deliberately wall-clock-free and seed-deterministic:
// a fault schedule is either written out explicitly (crash at the Nth
// write) or derived from a seed via the repository's xoshiro generator,
// so a failing crash-point sweep reproduces from its seed alone.
package iofault

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the journal and the memo disk tier
// need. Write and Sync follow the crash model: bytes written are
// volatile until Sync returns nil.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's written bytes to stable storage; only
	// synced bytes survive a Crash in the in-memory model.
	Sync() error
	// Close releases the handle. It does not imply Sync.
	Close() error
	// Name returns the path the file was opened under.
	Name() string
}

// FS is the filesystem surface the durable layers use. All paths are
// plain slash-joined strings; implementations may be backed by the real
// OS, by memory, or by a fault injector wrapping either.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// Create opens path for writing, truncating any existing content.
	Create(path string) (File, error)
	// CreateTemp creates a new unique file in dir; pattern's final "*"
	// is replaced by a unique suffix, exactly like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// ReadFile reads the whole content of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically moves oldpath to newpath, replacing newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Stat returns the size of path, or an error satisfying
	// errors.Is(err, fs.ErrNotExist) when it does not exist.
	Stat(path string) (int64, error)
	// SyncDir flushes directory metadata (created, renamed or removed
	// entries) to stable storage.
	SyncDir(dir string) error
}

// OS is the real filesystem. The zero value is ready to use.
type OS struct{}

// MkdirAll creates a directory and any missing parents.
func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Create opens path for writing, truncating any existing content.
func (OS) Create(path string) (File, error) { return os.Create(path) }

// CreateTemp creates a new unique file in dir.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Open opens path read-only.
func (OS) Open(path string) (File, error) { return os.Open(path) }

// ReadFile reads the whole content of path.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Rename atomically moves oldpath to newpath.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes path.
func (OS) Remove(path string) error { return os.Remove(path) }

// ReadDir lists the file names in dir, sorted.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat returns the size of path.
func (OS) Stat(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// SyncDir fsyncs the directory itself, making created/renamed/removed
// entries durable on filesystems that require it (the usual POSIX
// journaling contract).
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// notExist wraps fs.ErrNotExist with the offending path, so
// errors.Is(err, fs.ErrNotExist) works across implementations.
func notExist(path string) error {
	return &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
}

// clean normalizes a path for map keys in the memory implementation.
func clean(path string) string { return filepath.Clean(path) }
