package iofault

import (
	"errors"
	"io"
	"io/fs"
	"testing"
)

// TestMemCrashKeepsOnlySyncedBytes pins the durability model: written
// bytes are volatile until Sync; Crash reverts to the synced prefix;
// files never synced disappear.
func TestMemCrashKeepsOnlySyncedBytes(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	g, err := m.Create("d/never-synced")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}

	// Before the crash, readers see everything written.
	data, err := m.ReadFile("d/a")
	if err != nil || string(data) != "durable-volatile" {
		t.Fatalf("pre-crash read: %q, %v", data, err)
	}

	m.Crash()

	data, err = m.ReadFile("d/a")
	if err != nil || string(data) != "durable" {
		t.Fatalf("post-crash read: %q, %v; want synced prefix only", data, err)
	}
	if _, err := m.ReadFile("d/never-synced"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("never-synced file survived the crash: %v", err)
	}
}

// TestMemRenameRemoveReadDir drives the metadata surface.
func TestMemRenameRemoveReadDir(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("dir/x")
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("dir/x", "dir/y"); err != nil {
		t.Fatal(err)
	}
	names, err := m.ReadDir("dir")
	if err != nil || len(names) != 1 || names[0] != "y" {
		t.Fatalf("ReadDir after rename: %v, %v", names, err)
	}
	if size, err := m.Stat("dir/y"); err != nil || size != 1 {
		t.Fatalf("Stat: %d, %v", size, err)
	}
	if err := m.Remove("dir/y"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("dir/y"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat after remove: %v", err)
	}
	// Read-only handles read a snapshot.
	h, _ := m.Create("dir/z")
	if _, err := h.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	r, err := m.Open("dir/z")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "abc" {
		t.Fatalf("snapshot read: %q, %v", got, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMemCreateTempDeterministic pins that temp names are a per-FS
// counter, so two identical runs see identical names.
func TestMemCreateTempDeterministic(t *testing.T) {
	a, b := NewMem(), NewMem()
	fa, _ := a.CreateTemp("d", "tmp-*")
	fb, _ := b.CreateTemp("d", "tmp-*")
	if fa.Name() != fb.Name() {
		t.Fatalf("temp names diverge: %q vs %q", fa.Name(), fb.Name())
	}
}

// TestFaultyShortWrite pins the ENOSPC-mid-write shape: Arg bytes land,
// the error is ErrNoSpace, and the next write goes through untouched.
func TestFaultyShortWrite(t *testing.T) {
	mem := NewMem()
	ffs := NewFaulty(mem, Fault{Op: OpWrite, N: 0, Kind: KindNoSpace, Arg: 3})
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if n != 3 {
		t.Fatalf("short write landed %d bytes, want 3", n)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatalf("second write should pass: %v", err)
	}
	data, _ := mem.ReadFile("a")
	if string(data) != "helworld" {
		t.Fatalf("content %q, want %q", data, "helworld")
	}
}

// TestFaultyCrashLatch pins crash semantics: the torn tail lands, the
// filesystem latches, and unsynced data from before the crash is gone.
func TestFaultyCrashLatch(t *testing.T) {
	mem := NewMem()
	ffs := NewFaulty(mem, Fault{Op: OpWrite, N: 2, Kind: KindCrash, Arg: 2})
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("AA")); err != nil { // write 0
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("BB")); err != nil { // write 1: volatile
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("CCC")); err == nil { // write 2: crash, torn to 2 bytes
		t.Fatal("crash write should fail")
	} else if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() should latch")
	}
	// Everything after the crash fails.
	if _, err := ffs.Create("b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if _, err := ffs.ReadFile("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	// The "restarted process" reads the raw Mem: the synced prefix
	// survived, the unsynced middle did not, the torn tail did.
	data, err := mem.ReadFile("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "AACC" {
		t.Fatalf("post-crash content %q, want %q (synced prefix + torn tail)", data, "AACC")
	}
}

// TestFaultySyncError pins an injected fsync failure.
func TestFaultySyncError(t *testing.T) {
	ffs := NewFaulty(NewMem(), Fault{Op: OpSync, N: 0, Kind: KindErr})
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected from sync, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync should pass: %v", err)
	}
}

// TestRandomSchedulesDeterministic pins that equal seeds derive equal
// schedules and different seeds (overwhelmingly) differ.
func TestRandomSchedulesDeterministic(t *testing.T) {
	a := Random(42, 8, 100)
	b := Random(42, 8, 100)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("schedule lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Random(43, 8, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestOSRoundTrip drives the real-OS implementation through a temp dir:
// the seam has to behave identically over both backends.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var osfs OS
	if err := osfs.MkdirAll(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	f, err := osfs.Create(dir + "/sub/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("content")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tmp, err := osfs.CreateTemp(dir+"/sub", "tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := osfs.Rename(tmp.Name(), dir+"/sub/renamed"); err != nil {
		t.Fatal(err)
	}
	names, err := osfs.ReadDir(dir + "/sub")
	if err != nil || len(names) != 2 {
		t.Fatalf("ReadDir: %v, %v", names, err)
	}
	if data, err := osfs.ReadFile(dir + "/sub/file"); err != nil || string(data) != "content" {
		t.Fatalf("ReadFile: %q, %v", data, err)
	}
	if size, err := osfs.Stat(dir + "/sub/renamed"); err != nil || size != 1 {
		t.Fatalf("Stat: %d, %v", size, err)
	}
	if err := osfs.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	if err := osfs.Remove(dir + "/sub/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := osfs.Stat(dir + "/sub/renamed"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat after remove: %v", err)
	}
}
