// Package prefetch models the POWER8 hardware data-prefetch engine and
// the software facilities the paper exercises in Section III-D:
//
//   - sequential stream detection with a configurable depth via the DSCR
//     register (depths "none" through "deepest", DSCR values 1-7);
//   - optional stride-N stream detection (Figure 7), which the default
//     engine configuration does not perform;
//   - DCBT software hints that declare a stream's start address, length
//     and direction, letting the engine skip the detection phase
//     (Figure 8).
//
// The engine is a pure address-stream observer: OnDemand reports which
// line addresses the hardware would fetch ahead; the machine model decides
// when those prefetches complete and what they cost.
package prefetch

import "fmt"

// LineSize is the 128-byte POWER8 cache line.
const LineSize = 128

// Config controls the engine, mirroring the DSCR fields the paper uses.
type Config struct {
	// DSCR is the Data Stream Control Register depth setting, 1..7.
	// 1 disables prefetching; 7 is the deepest setting.
	DSCR int
	// StrideN enables detection of streams that touch every N-th line.
	StrideN bool
	// DetectAfter is the number of consecutive same-stride accesses the
	// hardware needs before it declares a stream. The paper notes the
	// engine "requires several cache line accesses" to recognize a
	// pattern; the default is 3.
	DetectAfter int
	// MaxStreams bounds the number of streams tracked concurrently.
	MaxStreams int
}

// DefaultConfig is the hardware's default behaviour: deepest prefetch,
// stride-N detection off.
func DefaultConfig() Config {
	return Config{DSCR: 7, StrideN: false, DetectAfter: 3, MaxStreams: 16}
}

// DepthLines maps a DSCR depth setting to the number of lines the engine
// runs ahead of the demand stream. DSCR=1 means no prefetching; the
// remaining settings double roughly per step up to the deepest.
func DepthLines(dscr int) int {
	switch dscr {
	case 1:
		return 0
	case 2:
		return 1
	case 3:
		return 2
	case 4:
		return 4
	case 5:
		return 6
	case 6:
		return 8
	case 7:
		return 12
	default:
		panic(fmt.Sprintf("prefetch: DSCR value %d out of range [1,7]", dscr))
	}
}

type stream struct {
	lastLine   int64 // line number of the most recent access in the stream
	stride     int64 // in lines; negative for decreasing streams
	confidence int   // consecutive matching accesses observed
	active     bool  // detection complete, prefetching
	ahead      int64 // line number up to which prefetches were issued
	bounded    bool  // hinted streams know where they end
	endLine    int64 // last line of a bounded stream (inclusive)
	lastUse    uint64
}

// Engine is the prefetch engine state for one hardware thread.
type Engine struct {
	cfg     Config
	depth   int64
	streams []stream
	clock   uint64

	issued   uint64
	detected uint64
}

// New returns an engine with the given configuration. A zero DetectAfter
// or MaxStreams falls back to the defaults.
func New(cfg Config) *Engine {
	if cfg.DSCR == 0 {
		cfg.DSCR = 7
	}
	if cfg.DetectAfter <= 0 {
		cfg.DetectAfter = 3
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 16
	}
	depth := DepthLines(cfg.DSCR) // validates DSCR
	return &Engine{cfg: cfg, depth: int64(depth)}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Issued returns the total number of prefetches generated.
func (e *Engine) Issued() uint64 { return e.issued }

// Detected returns how many streams completed hardware detection (hinted
// streams are not counted; they skip detection).
func (e *Engine) Detected() uint64 { return e.detected }

// OnDemand observes a demand access and returns the line addresses the
// engine fetches ahead as a result (possibly none).
func (e *Engine) OnDemand(addr uint64) []uint64 {
	return e.OnDemandInto(addr, nil)
}

// OnDemandInto is OnDemand appending into buf, so a hot caller can reuse
// one scratch slice across accesses instead of allocating a fresh result
// per prefetch advance. It returns buf extended with the newly issued
// line addresses.
func (e *Engine) OnDemandInto(addr uint64, buf []uint64) []uint64 {
	if e.depth == 0 {
		return buf
	}
	e.clock++
	line := int64(addr / LineSize)

	// Try to extend an existing stream.
	for i := range e.streams {
		s := &e.streams[i]
		if s.active {
			if line == s.lastLine+s.stride {
				if s.bounded && ((s.stride > 0 && line > s.endLine) || (s.stride < 0 && line < s.endLine)) {
					// A declared (DCBT) stream ends where the software
					// said it would; an access past the end belongs to
					// whatever stream comes next — crucial when blocks
					// are address-adjacent but accessed in random order.
					continue
				}
				s.lastLine = line
				s.lastUse = e.clock
				return e.run(s, buf)
			}
			continue
		}
		// Stream under detection.
		delta := line - s.lastLine
		if delta == 0 {
			continue
		}
		match := delta == s.stride
		if s.stride == 0 {
			// Second access of a candidate: adopt the observed stride if
			// it is acceptable under the configuration.
			if e.acceptableStride(delta) {
				s.stride = delta
				match = true
			}
		}
		if match {
			s.lastLine = line
			s.confidence++
			s.lastUse = e.clock
			if s.confidence >= e.cfg.DetectAfter {
				s.active = true
				s.ahead = line
				e.detected++
				return e.run(s, buf)
			}
			return buf
		}
	}

	// No stream matched: start a new candidate at this address.
	e.insert(stream{lastLine: line, confidence: 1, lastUse: e.clock})
	return buf
}

// acceptableStride reports whether the hardware would track a stream with
// the given stride: sequential (|stride| == 1) always, larger strides only
// when stride-N detection is enabled.
func (e *Engine) acceptableStride(stride int64) bool {
	if stride == 1 || stride == -1 {
		return true
	}
	return e.cfg.StrideN && stride != 0
}

// run advances an active stream's prefetch frontier to depth stream
// elements ahead of the last demand access and appends the newly
// prefetched addresses to buf. The frontier never trails the demand
// pointer.
func (e *Engine) run(s *stream, buf []uint64) []uint64 {
	if (s.stride > 0 && s.ahead < s.lastLine) || (s.stride < 0 && s.ahead > s.lastLine) {
		s.ahead = s.lastLine
	}
	target := s.lastLine + e.depth*s.stride
	if s.bounded {
		if s.stride > 0 && target > s.endLine {
			target = s.endLine
		}
		if s.stride < 0 && target < s.endLine {
			target = s.endLine
		}
	}
	issued := 0
	for next := s.ahead + s.stride; ; next += s.stride {
		if s.stride > 0 && next > target {
			break
		}
		if s.stride < 0 && next < target {
			break
		}
		if next < 0 {
			break
		}
		buf = append(buf, uint64(next)*LineSize)
		issued++
	}
	if issued > 0 {
		s.ahead = int64(buf[len(buf)-1] / LineSize)
		e.issued += uint64(issued)
	}
	return buf
}

// Hint implements the DCBT software facility: it declares a stream
// starting at start, running for lines cache lines in the given direction
// (+1 increasing, -1 decreasing), and returns the initial burst of
// prefetch addresses. The stream skips detection entirely.
func (e *Engine) Hint(start uint64, lines int, dir int) []uint64 {
	if e.depth == 0 || lines <= 0 {
		return nil
	}
	if dir != 1 && dir != -1 {
		panic(fmt.Sprintf("prefetch: hint direction must be +1 or -1, got %d", dir))
	}
	e.clock++
	line := int64(start / LineSize)
	s := stream{
		// lastLine is one step before the start so the first demand access
		// matches the stream.
		lastLine:   line - int64(dir),
		stride:     int64(dir),
		confidence: e.cfg.DetectAfter,
		active:     true,
		ahead:      line - int64(dir),
		bounded:    true,
		endLine:    line + int64(dir)*int64(lines-1),
		lastUse:    e.clock,
	}
	burst := e.run(&s, nil)
	e.insert(s)
	return burst
}

// insert adds a stream, evicting the least recently used one if the table
// is full.
func (e *Engine) insert(s stream) {
	if len(e.streams) < e.cfg.MaxStreams {
		e.streams = append(e.streams, s)
		return
	}
	victim := 0
	for i := 1; i < len(e.streams); i++ {
		if e.streams[i].lastUse < e.streams[victim].lastUse {
			victim = i
		}
	}
	e.streams[victim] = s
}

// Reset drops all stream state and statistics.
func (e *Engine) Reset() {
	e.streams = e.streams[:0]
	e.clock, e.issued, e.detected = 0, 0, 0
}
