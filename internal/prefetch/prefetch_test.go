package prefetch

import (
	"testing"
)

func drive(e *Engine, startLine, n int) (prefetched []uint64) {
	for i := 0; i < n; i++ {
		prefetched = append(prefetched, e.OnDemand(uint64(startLine+i)*LineSize)...)
	}
	return prefetched
}

func TestSequentialDetection(t *testing.T) {
	e := New(DefaultConfig())
	// First DetectAfter accesses: no prefetches yet.
	if got := drive(e, 0, 2); len(got) != 0 {
		t.Fatalf("prefetches before detection: %v", got)
	}
	// Third access completes detection and bursts depth lines ahead.
	got := e.OnDemand(2 * LineSize)
	if len(got) != DepthLines(7) {
		t.Fatalf("detection burst = %d lines, want %d", len(got), DepthLines(7))
	}
	if got[0] != 3*LineSize {
		t.Errorf("first prefetch at line %d, want 3", got[0]/LineSize)
	}
	if e.Detected() != 1 {
		t.Errorf("Detected = %d", e.Detected())
	}
}

func TestSteadyStateOnePerAccess(t *testing.T) {
	e := New(DefaultConfig())
	drive(e, 0, 3) // detect
	for i := 3; i < 10; i++ {
		got := e.OnDemand(uint64(i) * LineSize)
		if len(got) != 1 {
			t.Fatalf("steady-state access %d issued %d prefetches, want 1", i, len(got))
		}
		if got[0] != uint64(i+DepthLines(7))*LineSize {
			t.Errorf("access %d prefetched line %d, want %d", i, got[0]/LineSize, i+DepthLines(7))
		}
	}
}

func TestDSCRDepths(t *testing.T) {
	want := map[int]int{1: 0, 2: 1, 3: 2, 4: 4, 5: 6, 6: 8, 7: 12}
	for dscr, depth := range want {
		if got := DepthLines(dscr); got != depth {
			t.Errorf("DepthLines(%d) = %d, want %d", dscr, got, depth)
		}
	}
}

func TestDepthLinesPanics(t *testing.T) {
	for _, v := range []int{0, 8, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DepthLines(%d) did not panic", v)
				}
			}()
			DepthLines(v)
		}()
	}
}

func TestDSCR1DisablesPrefetch(t *testing.T) {
	e := New(Config{DSCR: 1})
	if got := drive(e, 0, 100); len(got) != 0 {
		t.Errorf("DSCR=1 issued %d prefetches", len(got))
	}
}

func TestStrideNDisabledByDefault(t *testing.T) {
	e := New(DefaultConfig())
	var got []uint64
	for i := 0; i < 20; i++ {
		got = append(got, e.OnDemand(uint64(i*256)*LineSize)...)
	}
	if len(got) != 0 {
		t.Errorf("default engine prefetched a stride-256 stream: %d lines", len(got))
	}
}

func TestStrideNEnabledDetects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StrideN = true
	e := New(cfg)
	var got []uint64
	for i := 0; i < 10; i++ {
		got = append(got, e.OnDemand(uint64(i*256)*LineSize)...)
	}
	if len(got) == 0 {
		t.Fatal("stride-N engine did not detect a stride-256 stream")
	}
	// All prefetched lines must be on the stride.
	for _, p := range got {
		if (p/LineSize)%256 != 0 {
			t.Errorf("off-stride prefetch at line %d", p/LineSize)
		}
	}
}

func TestDecreasingStream(t *testing.T) {
	e := New(DefaultConfig())
	var got []uint64
	for i := 100; i > 80; i-- {
		got = append(got, e.OnDemand(uint64(i)*LineSize)...)
	}
	if len(got) == 0 {
		t.Fatal("decreasing stream not detected")
	}
	for _, p := range got {
		if p/LineSize >= 98 {
			t.Errorf("decreasing stream prefetched forward line %d", p/LineSize)
		}
	}
}

func TestHintSkipsDetection(t *testing.T) {
	e := New(DefaultConfig())
	burst := e.Hint(1000*LineSize, 64, 1)
	if len(burst) != DepthLines(7) {
		t.Fatalf("hint burst = %d, want %d", len(burst), DepthLines(7))
	}
	if burst[0] != 1000*LineSize {
		t.Errorf("hint burst starts at line %d, want 1000", burst[0]/LineSize)
	}
	if e.Detected() != 0 {
		t.Error("hinted stream counted as hardware-detected")
	}
	// Demand accesses continue the stream immediately.
	got := e.OnDemand(1000 * LineSize)
	if len(got) != 1 {
		t.Errorf("post-hint demand issued %d prefetches, want 1", len(got))
	}
}

func TestHintRespectsStreamEnd(t *testing.T) {
	e := New(DefaultConfig())
	var all []uint64
	all = append(all, e.Hint(0, 4, 1)...) // 4-line stream, depth 12
	for i := 0; i < 4; i++ {
		all = append(all, e.OnDemand(uint64(i)*LineSize)...)
	}
	for _, p := range all {
		if p/LineSize >= 4 {
			t.Errorf("prefetch beyond hinted stream end: line %d", p/LineSize)
		}
	}
	if len(all) != 4 {
		t.Errorf("hinted 4-line stream prefetched %d lines, want exactly 4", len(all))
	}
}

func TestHintBackward(t *testing.T) {
	e := New(DefaultConfig())
	burst := e.Hint(100*LineSize, 8, -1)
	if len(burst) == 0 {
		t.Fatal("backward hint produced nothing")
	}
	for _, p := range burst {
		line := int64(p / LineSize)
		if line > 100 || line < 93 {
			t.Errorf("backward hint prefetched line %d", line)
		}
	}
}

func TestHintDirectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad direction did not panic")
		}
	}()
	New(DefaultConfig()).Hint(0, 4, 2)
}

func TestStreamTableEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxStreams = 2
	e := New(cfg)
	// Start many candidate streams at distant addresses; table must not
	// grow beyond MaxStreams (indirectly: engine keeps working).
	for i := 0; i < 100; i++ {
		e.OnDemand(uint64(i) * 1 << 20)
	}
	if len(e.streams) > 2 {
		t.Errorf("stream table grew to %d entries", len(e.streams))
	}
}

func TestConcurrentStreams(t *testing.T) {
	e := New(DefaultConfig())
	// Interleave two sequential streams; both should be detected.
	for i := 0; i < 10; i++ {
		e.OnDemand(uint64(i) * LineSize)
		e.OnDemand(uint64(1<<20) + uint64(i)*LineSize)
	}
	if e.Detected() != 2 {
		t.Errorf("detected %d streams, want 2", e.Detected())
	}
}

func TestReset(t *testing.T) {
	e := New(DefaultConfig())
	drive(e, 0, 10)
	e.Reset()
	if e.Issued() != 0 || e.Detected() != 0 {
		t.Error("Reset did not clear stats")
	}
	if got := drive(e, 100, 2); len(got) != 0 {
		t.Error("stream state survived Reset")
	}
}

func TestIssuedCounter(t *testing.T) {
	e := New(DefaultConfig())
	drive(e, 0, 20)
	if e.Issued() == 0 {
		t.Error("Issued not counted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	e := New(Config{})
	cfg := e.Config()
	if cfg.DSCR != 7 || cfg.DetectAfter != 3 || cfg.MaxStreams != 16 {
		t.Errorf("zero config defaults = %+v", cfg)
	}
}
