package linalg

import (
	"fmt"
	"math"
)

// McWeenyPurify computes the closed-shell density matrix as a spectral
// projector of the Fock matrix without diagonalization — the alternative
// "Density" stage the paper's Section V-C mentions. Working in the
// orthogonal basis (F' = X F X), it maps F' to an initial guess with
// eigenvalues in [0, 1], then iterates D <- 3D^2 - 2D^3, which drives
// every eigenvalue to 0 or 1 while preserving the eigenvectors; the
// trace-preserving variant used here (canonical purification, Palser &
// Manolopoulos) fixes the trace at nOcc so exactly the lowest nOcc
// eigenstates survive.
//
// fOrtho must be symmetric; the returned density is in the same
// (orthogonal) basis, so callers transform back with D = X D' X.
func McWeenyPurify(fOrtho *Matrix, nOcc int, tol float64, maxIters int) (*Matrix, error) {
	n := fOrtho.N
	if nOcc < 0 || nOcc > n {
		return nil, fmt.Errorf("linalg: nOcc %d out of [0, %d]", nOcc, n)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	// Gershgorin bounds on the spectrum of F'.
	lo, hi := gershgorin(fOrtho)
	if hi == lo {
		hi = lo + 1
	}
	// Initial guess: D0 = (mu*I - F') / theta scaled so the trace is
	// nOcc and the spectrum sits in [0, 1]. Canonical choice:
	// D0 = lambda/n * (mu*I - F') + nOcc/n * I with mu = Tr(F')/n and
	// lambda chosen from the spectral bounds.
	mu := fOrtho.Trace() / float64(n)
	occ := float64(nOcc)
	// Either ratio may be 0/0 (empty or full occupation with a flat
	// spectrum edge); treat those as 0 — the initial guess then already
	// is the exact projector Ne/n * I.
	lambda := math.Min(safeRatio(occ, hi-mu), safeRatio(float64(n)-occ, mu-lo))
	if math.IsInf(lambda, 0) || math.IsNaN(lambda) || lambda < 0 {
		lambda = 1
	}
	d := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := lambda / float64(n) * (mu*delta(i, j) - fOrtho.At(i, j))
			if i == j {
				v += occ / float64(n)
			}
			d.Set(i, j, v)
		}
	}

	d2 := NewMatrix(n)
	d3 := NewMatrix(n)
	for iter := 0; iter < maxIters; iter++ {
		MatMul(d2, d, d)
		MatMul(d3, d2, d)
		// Idempotency error: ||D^2 - D||_max.
		if err := MaxAbsDiff(d2, d); err < tol {
			return d, nil
		}
		// Canonical (trace-preserving) purification, Palser &
		// Manolopoulos: c = Tr(D^2 - D^3) / Tr(D - D^2) selects the
		// branch that keeps Tr(D) = nOcc exactly.
		trD, trD2, trD3 := d.Trace(), d2.Trace(), d3.Trace()
		denom := trD - trD2
		var c float64
		if math.Abs(denom) > 1e-14 {
			c = (trD2 - trD3) / denom
		} else {
			c = 0.5
		}
		if c <= 0 || c >= 1 {
			// The canonical coefficient leaves (0,1) only at or beyond
			// convergence; plain McWeeny finishes the job.
			c = 0.5
		}
		if c < 0.5 {
			for k := range d.Data {
				d.Data[k] = ((1-2*c)*d.Data[k] + (1+c)*d2.Data[k] - d3.Data[k]) / (1 - c)
			}
		} else {
			for k := range d.Data {
				d.Data[k] = ((1+c)*d2.Data[k] - d3.Data[k]) / c
			}
		}
	}
	MatMul(d2, d, d)
	if err := MaxAbsDiff(d2, d); err < tol*100 {
		return d, nil
	}
	return nil, fmt.Errorf("linalg: purification did not converge in %d iterations", maxIters)
}

// safeRatio returns num/den with 0 numerator winning over a 0 or
// negative denominator.
func safeRatio(num, den float64) float64 {
	if num == 0 {
		return 0
	}
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

func delta(i, j int) float64 {
	if i == j {
		return 1
	}
	return 0
}

// gershgorin returns lower and upper bounds on a symmetric matrix's
// eigenvalues from Gershgorin discs.
func gershgorin(m *Matrix) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.N; i++ {
		var radius float64
		for j := 0; j < m.N; j++ {
			if j != i {
				radius += math.Abs(m.At(i, j))
			}
		}
		c := m.At(i, i)
		if c-radius < lo {
			lo = c - radius
		}
		if c+radius > hi {
			hi = c + radius
		}
	}
	return lo, hi
}
