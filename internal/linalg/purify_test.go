package linalg

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// randomFock builds a symmetric matrix with a clear gap after the nOcc
// lowest eigenvalues, as a converged Fock matrix would have.
func randomFock(n, nOcc int, seed uint64) *Matrix {
	r := rng.New(seed)
	// Diagonal with a gap, rotated by a random orthogonal-ish similarity
	// built from Jacobi rotations.
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		v := -2 + 0.1*float64(i)
		if i >= nOcc {
			v = 1 + 0.1*float64(i)
		}
		m.Set(i, i, v)
	}
	for k := 0; k < 3*n; k++ {
		p := r.Intn(n)
		q := r.Intn(n)
		if p == q {
			continue
		}
		theta := r.Float64()
		c, s := math.Cos(theta), math.Sin(theta)
		rotate(m, NewMatrix(n), minInt(p, q), maxInt(p, q), c, s)
	}
	// Re-symmetrize against drift.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestPurifyMatchesEigensolver: the purified projector must equal the
// eigensolver's density built from the lowest nOcc orbitals.
func TestPurifyMatchesEigensolver(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		const n, nOcc = 16, 5
		f := randomFock(n, nOcc, seed)
		want := func() *Matrix {
			_, vecs := JacobiEigen(f)
			return DensityFromOrbitals(vecs, nOcc)
		}()
		got, err := McWeenyPurify(f, nOcc, 1e-12, 200)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if diff := MaxAbsDiff(got, want); diff > 1e-6 {
			t.Errorf("seed %d: purified density differs from eigensolver by %v", seed, diff)
		}
	}
}

// TestPurifyInvariants: trace nOcc, idempotent, commutes with F.
func TestPurifyInvariants(t *testing.T) {
	const n, nOcc = 20, 7
	f := randomFock(n, nOcc, 9)
	d, err := McWeenyPurify(f, nOcc, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if tr := d.Trace(); math.Abs(tr-nOcc) > 1e-8 {
		t.Errorf("trace = %v, want %d", tr, nOcc)
	}
	d2 := NewMatrix(n)
	MatMul(d2, d, d)
	if diff := MaxAbsDiff(d2, d); diff > 1e-8 {
		t.Errorf("not idempotent: %v", diff)
	}
	// [D, F] = 0 for a spectral projector of F.
	df := NewMatrix(n)
	fd := NewMatrix(n)
	MatMul(df, d, f)
	MatMul(fd, f, d)
	if diff := MaxAbsDiff(df, fd); diff > 1e-6 {
		t.Errorf("does not commute with F: %v", diff)
	}
}

func TestPurifyEdgeCases(t *testing.T) {
	f := randomFock(8, 3, 4)
	// nOcc = 0: zero matrix.
	d, err := McWeenyPurify(f, 0, 1e-10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr := d.Trace(); math.Abs(tr) > 1e-8 {
		t.Errorf("nOcc=0 trace = %v", tr)
	}
	// nOcc = n: identity.
	d, err = McWeenyPurify(f, 8, 1e-10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr := d.Trace(); math.Abs(tr-8) > 1e-8 {
		t.Errorf("nOcc=n trace = %v", tr)
	}
	// Out of range.
	if _, err := McWeenyPurify(f, 9, 1e-10, 100); err == nil {
		t.Error("nOcc > n accepted")
	}
}

func TestGershgorinBounds(t *testing.T) {
	m := NewMatrix(3)
	m.Data = []float64{2, 1, 0, 1, 2, 1, 0, 1, 2}
	lo, hi := gershgorin(m)
	vals, _ := JacobiEigen(m)
	if vals[0] < lo-1e-12 || vals[2] > hi+1e-12 {
		t.Errorf("eigenvalues %v outside Gershgorin [%v, %v]", vals, lo, hi)
	}
}
