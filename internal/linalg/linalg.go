// Package linalg provides the dense linear algebra the Hartree-Fock
// application needs: row-major square matrices, parallel blocked matrix
// multiply, a cyclic Jacobi eigensolver for symmetric matrices, Löwdin
// symmetric orthogonalization (S^-1/2) and the density-matrix
// construction used in the SCF "Density" stage of Table VI.
package linalg

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/stream"
)

// Matrix is a dense square matrix in row-major order.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix returns a zero n x n matrix.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimension %d", n))
	}
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add accumulates into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			t.Data[j*m.N+i] = m.Data[i*m.N+j]
		}
	}
	return t
}

// Trace returns the trace.
func (m *Matrix) Trace() float64 {
	var t float64
	for i := 0; i < m.N; i++ {
		t += m.Data[i*m.N+i]
	}
	return t
}

// MaxAbsDiff returns max |a-b| elementwise; the SCF convergence check.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.N != b.N {
		panic("linalg: dimension mismatch")
	}
	var d float64
	for k := range a.Data {
		if v := math.Abs(a.Data[k] - b.Data[k]); v > d {
			d = v
		}
	}
	return d
}

// SymmetryError returns max |m - m^T| elementwise.
func (m *Matrix) SymmetryError() float64 {
	var d float64
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			if v := math.Abs(m.At(i, j) - m.At(j, i)); v > d {
				d = v
			}
		}
	}
	return d
}

// MatMul computes C = A * B with row-parallel inner kernels. A, B and C
// must share dimensions; C must not alias A or B.
func MatMul(c, a, b *Matrix) {
	n := a.N
	if b.N != n || c.N != n {
		panic("linalg: dimension mismatch")
	}
	workers := stream.Parallelism(0)
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				ci := c.Data[i*n : (i+1)*n]
				for j := range ci {
					ci[j] = 0
				}
				for k := 0; k < n; k++ {
					aik := a.Data[i*n+k]
					if aik == 0 {
						continue
					}
					bk := b.Data[k*n : (k+1)*n]
					for j, bkj := range bk {
						ci[j] += aik * bkj
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
}

// JacobiEigen diagonalizes a symmetric matrix with the cyclic Jacobi
// method, returning eigenvalues in ascending order and the corresponding
// eigenvectors as the columns of the returned matrix. The input is not
// modified. It panics if the matrix is visibly asymmetric.
func JacobiEigen(m *Matrix) ([]float64, *Matrix) {
	if m.SymmetryError() > 1e-8 {
		panic("linalg: JacobiEigen requires a symmetric matrix")
	}
	n := m.N
	a := m.Clone()
	v := NewMatrix(n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-14 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				cos := 1 / math.Sqrt(t*t+1)
				sin := t * cos
				rotate(a, v, p, q, cos, sin)
			}
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = a.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort keeps it simple and stable
		for j := i; j > 0 && vals[idx[j]] < vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n)
	for outCol, col := range idx {
		sortedVals[outCol] = vals[col]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, outCol, v.At(r, col))
		}
	}
	return sortedVals, sortedVecs
}

// rotate applies the Jacobi rotation to a and accumulates it into v.
func rotate(a, v *Matrix, p, q int, c, s float64) {
	n := a.N
	for k := 0; k < n; k++ {
		akp, akq := a.At(k, p), a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk, aqk := a.At(p, k), a.At(q, k)
		a.Set(p, k, c*apk-s*aqk)
		a.Set(q, k, s*apk+c*aqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.N; i++ {
		for j := i + 1; j < a.N; j++ {
			s += a.At(i, j) * a.At(i, j)
		}
	}
	return math.Sqrt(2 * s)
}

// SymInvSqrt returns S^(-1/2) via eigendecomposition — Löwdin symmetric
// orthogonalization. It panics on non-positive eigenvalues (a linearly
// dependent basis).
func SymInvSqrt(s *Matrix) *Matrix {
	vals, vecs := JacobiEigen(s)
	n := s.N
	scaled := NewMatrix(n)
	for col := 0; col < n; col++ {
		if vals[col] <= 1e-10 {
			panic(fmt.Sprintf("linalg: SymInvSqrt with eigenvalue %g (linearly dependent basis)", vals[col]))
		}
		inv := 1 / math.Sqrt(vals[col])
		for r := 0; r < n; r++ {
			scaled.Set(r, col, vecs.At(r, col)*inv)
		}
	}
	out := NewMatrix(n)
	MatMul(out, scaled, vecs.Transpose())
	return out
}

// DensityFromOrbitals builds the closed-shell density matrix
// D = C_occ C_occ^T from the lowest nOcc orbital columns of c.
func DensityFromOrbitals(c *Matrix, nOcc int) *Matrix {
	if nOcc < 0 || nOcc > c.N {
		panic(fmt.Sprintf("linalg: nOcc %d out of range", nOcc))
	}
	n := c.N
	d := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < nOcc; k++ {
				s += c.At(i, k) * c.At(j, k)
			}
			d.Set(i, j, s)
		}
	}
	return d
}
