package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomSym(n int, seed uint64) *Matrix {
	r := rng.New(seed)
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestMatMulIdentity(t *testing.T) {
	a := randomSym(8, 1)
	id := NewMatrix(8)
	for i := 0; i < 8; i++ {
		id.Set(i, i, 1)
	}
	c := NewMatrix(8)
	MatMul(c, a, id)
	if MaxAbsDiff(c, a) > 1e-14 {
		t.Error("A*I != A")
	}
	MatMul(c, id, a)
	if MaxAbsDiff(c, a) > 1e-14 {
		t.Error("I*A != A")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewMatrix(2)
	b := NewMatrix(2)
	a.Data = []float64{1, 2, 3, 4}
	b.Data = []float64{5, 6, 7, 8}
	c := NewMatrix(2)
	MatMul(c, a, b)
	want := []float64{19, 22, 43, 50}
	for k := range want {
		if c.Data[k] != want[k] {
			t.Fatalf("C = %v, want %v", c.Data, want)
		}
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	vals, vecs := JacobiEigen(m)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvectors must be unit columns of the permuted identity.
	for col := 0; col < 3; col++ {
		var norm float64
		for r := 0; r < 3; r++ {
			norm += vecs.At(r, col) * vecs.At(r, col)
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Errorf("column %d norm %v", col, norm)
		}
	}
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewMatrix(2)
	m.Data = []float64{2, 1, 1, 2}
	vals, _ := JacobiEigen(m)
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Errorf("vals = %v, want [1 3]", vals)
	}
}

// TestJacobiReconstruction: V diag(vals) V^T must reproduce the input.
func TestJacobiReconstruction(t *testing.T) {
	m := randomSym(12, 7)
	vals, vecs := JacobiEigen(m)
	d := NewMatrix(m.N)
	for i, v := range vals {
		d.Set(i, i, v)
	}
	tmp := NewMatrix(m.N)
	rec := NewMatrix(m.N)
	MatMul(tmp, vecs, d)
	MatMul(rec, tmp, vecs.Transpose())
	if diff := MaxAbsDiff(rec, m); diff > 1e-9 {
		t.Errorf("reconstruction error %v", diff)
	}
	// Input must be untouched.
	if m.SymmetryError() != 0 {
		t.Error("input modified")
	}
}

// TestJacobiOrthonormal: V^T V = I.
func TestJacobiOrthonormal(t *testing.T) {
	m := randomSym(10, 3)
	_, vecs := JacobiEigen(m)
	prod := NewMatrix(m.N)
	MatMul(prod, vecs.Transpose(), vecs)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-10 {
				t.Fatalf("V^T V [%d,%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

// TestJacobiTraceInvariant is a quick property: the eigenvalue sum equals
// the trace for random symmetric matrices.
func TestJacobiTraceInvariant(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%10 + 2
		m := randomSym(n, seed)
		vals, _ := JacobiEigen(m)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-m.Trace()) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestJacobiPanicsOnAsymmetric(t *testing.T) {
	m := NewMatrix(2)
	m.Data = []float64{1, 2, 3, 4}
	defer func() {
		if recover() == nil {
			t.Error("asymmetric input did not panic")
		}
	}()
	JacobiEigen(m)
}

func TestSymInvSqrt(t *testing.T) {
	// Build an SPD matrix S = B B^T + I, then check (S^-1/2)^2 S = I.
	b := randomSym(8, 9)
	s := NewMatrix(8)
	MatMul(s, b, b.Transpose())
	for i := 0; i < 8; i++ {
		s.Add(i, i, 1)
	}
	x := SymInvSqrt(s)
	xx := NewMatrix(8)
	MatMul(xx, x, x)
	prod := NewMatrix(8)
	MatMul(prod, xx, s)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-8 {
				t.Fatalf("S^-1 S [%d,%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestSymInvSqrtPanicsOnSingular(t *testing.T) {
	s := NewMatrix(3) // zero matrix: eigenvalues 0
	defer func() {
		if recover() == nil {
			t.Error("singular matrix did not panic")
		}
	}()
	SymInvSqrt(s)
}

func TestDensityFromOrbitals(t *testing.T) {
	c := NewMatrix(3)
	// First column (1,0,0): D = e1 e1^T.
	c.Set(0, 0, 1)
	d := DensityFromOrbitals(c, 1)
	if d.At(0, 0) != 1 || d.Trace() != 1 {
		t.Errorf("D = %v", d.Data)
	}
	// Idempotency for orthonormal orbitals: D^2 = D.
	d2 := NewMatrix(3)
	MatMul(d2, d, d)
	if MaxAbsDiff(d2, d) > 1e-12 {
		t.Error("density not idempotent")
	}
}

func TestDensityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad nOcc did not panic")
		}
	}()
	DensityFromOrbitals(NewMatrix(2), 3)
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Error("Set/Add/At broken")
	}
	if m.SymmetryError() != 7 {
		t.Errorf("SymmetryError = %v", m.SymmetryError())
	}
	cl := m.Clone()
	cl.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Error("Clone aliases")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=0 did not panic")
		}
	}()
	NewMatrix(0)
}
