package linalg

import (
	"fmt"
	"math"
)

// SolveLinear solves the dense system A x = b by Gaussian elimination
// with partial pivoting, destroying neither input. A is given row-major
// with dimension n = len(b). It returns an error for singular systems.
func SolveLinear(a []float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n*n {
		return nil, fmt.Errorf("linalg: system is %d x %d with %d rhs entries", len(a)/n, n, n)
	}
	m := append([]float64(nil), a...)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r*n+col]); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("linalg: singular system (pivot %g at column %d)", best, col)
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				m[pivot*n+c], m[col*n+c] = m[col*n+c], m[pivot*n+c]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r*n+c] -= f * m[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= m[col*n+c] * x[c]
		}
		x[col] = sum / m[col*n+col]
	}
	return x, nil
}
