package jaccard

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
)

func rmatGraph(scale int, seed uint64) *graph.CSR {
	cfg := graph.DefaultRMAT(scale, seed)
	cfg.EdgeFactor = 8
	cfg.Undirected = true
	return graph.RMAT(cfg)
}

// TestShardedTopKMatchesMutexOracle: the contention-free sharded
// collector selects the same top-K similarity values as the mutex TopK
// oracle. (Pairs tied at the cutoff similarity may legitimately differ
// between collectors; the sorted similarity sequence is unique.)
func TestShardedTopKMatchesMutexOracle(t *testing.T) {
	g := rmatGraph(9, 5)
	const k = 25
	for _, threads := range []int{1, 4, 8} {
		oracle := NewTopK(k)
		AllPairs(g, threads, oracle.Emit)

		workers := parallel.Workers(threads)
		sharded := NewShardedTopK(k, workers)
		st := AllPairsWorker(g, threads, sharded.Emit)
		if st.Pairs == 0 {
			t.Fatal("no pairs found")
		}

		want := oracle.Pairs()
		got := sharded.Pairs()
		if len(got) != len(want) {
			t.Fatalf("threads=%d: sharded kept %d pairs, oracle %d", threads, len(got), len(want))
		}
		for i := range want {
			if got[i].Similarity != want[i].Similarity {
				t.Fatalf("threads=%d: rank %d similarity %v, oracle %v",
					threads, i, got[i].Similarity, want[i].Similarity)
			}
		}
	}
}

// TestShardedTopKExactPairsWhenDistinct: on a graph with all
// similarities distinct within the top K, the sharded collector returns
// exactly the oracle's pairs.
func TestShardedTopKExactPairsWhenDistinct(t *testing.T) {
	g := rmatGraph(8, 2)
	// Collect everything, keep only a K where the cutoff is strict.
	var mu sync.Mutex
	var all []Pair
	AllPairs(g, 4, func(i, j int32, s float64) {
		mu.Lock()
		all = append(all, Pair{i, j, s})
		mu.Unlock()
	})
	if len(all) < 10 {
		t.Skip("graph too small")
	}
	oracle := NewTopK(10)
	for _, p := range all {
		oracle.Emit(p.I, p.J, p.Similarity)
	}
	want := oracle.Pairs()
	k := len(want)
	// Shrink k until the cutoff similarity is strictly above the rest.
	for k > 1 && want[k-1].Similarity == want[k-2].Similarity {
		k--
	}
	want = want[:k]

	workers := parallel.Workers(4)
	sharded := NewShardedTopK(10, workers)
	AllPairsWorker(g, 4, sharded.Emit)
	got := sharded.Pairs()[:k]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v, oracle %+v", i, got[i], want[i])
		}
	}
}

// TestAllPairsWorkerIndexIsExclusive: emits with the same worker index
// never overlap, which is the contract ShardedTopK relies on.
func TestAllPairsWorkerIndexIsExclusive(t *testing.T) {
	g := rmatGraph(9, 7)
	const threads = 8
	workers := parallel.Workers(threads)
	active := make([]int32, workers)
	var mu sync.Mutex // only guards the failure flag, not the counters
	failed := false
	AllPairsWorker(g, threads, func(w int, _, _ int32, _ float64) {
		if w < 0 || w >= workers {
			mu.Lock()
			failed = true
			mu.Unlock()
			return
		}
		// Not atomic on purpose: the per-worker serialization contract is
		// what makes this plain increment safe; -race verifies it.
		active[w]++
	})
	if failed {
		t.Fatal("worker index out of range")
	}
	var total int64
	for _, c := range active {
		total += int64(c)
	}
	st := AllPairs(g, threads, nil)
	if total != st.Pairs {
		t.Fatalf("worker-indexed emit saw %d pairs, count-only run saw %d", total, st.Pairs)
	}
}

// TestAllPairsSteadyStateSpawnsNothing: repeated runs reuse the
// persistent team.
func TestAllPairsSteadyStateSpawnsNothing(t *testing.T) {
	g := rmatGraph(8, 3)
	const threads = 4
	AllPairs(g, threads, nil) // warmup
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		AllPairs(g, threads, nil)
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Errorf("goroutines grew %d -> %d across AllPairs calls", before, after)
	}
}

// TestNewShardedTopKPanics rejects bad arguments.
func TestNewShardedTopKPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewShardedTopK(0, 4) },
		func() { NewShardedTopK(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
