package jaccard

import (
	"container/heap"
	"sort"
	"sync"
)

// Pair is one scored vertex pair.
type Pair struct {
	I, J       int32
	Similarity float64
}

// TopK collects the K most similar pairs from a concurrent AllPairs run.
// It is an Emit implementation: pass collector.Emit to AllPairs and read
// Pairs afterwards. The paper's use cases (near-duplicate detection,
// query refinement) consume exactly this reduction rather than the full
// quadratic output.
type TopK struct {
	k  int
	mu sync.Mutex
	h  pairHeap
}

// NewTopK returns a collector for the k best pairs (k > 0).
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("jaccard: k must be positive")
	}
	return &TopK{k: k}
}

// Emit implements the AllPairs callback; safe for concurrent use.
func (t *TopK) Emit(i, j int32, sim float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.h) < t.k {
		heap.Push(&t.h, Pair{i, j, sim})
		return
	}
	if sim > t.h[0].Similarity {
		t.h[0] = Pair{i, j, sim}
		heap.Fix(&t.h, 0)
	}
}

// Pairs returns the collected pairs, most similar first (ties broken by
// vertex ids for determinism).
func (t *TopK) Pairs() []Pair {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Pair(nil), t.h...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// pairHeap is a min-heap on similarity, so the root is the weakest of
// the current top K.
type pairHeap []Pair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].Similarity < h[j].Similarity }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(Pair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
