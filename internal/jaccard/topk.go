package jaccard

import (
	"container/heap"
	"sort"
	"sync"
)

// Pair is one scored vertex pair.
type Pair struct {
	I, J       int32
	Similarity float64
}

// TopK collects the K most similar pairs from a concurrent AllPairs run.
// It is an Emit implementation: pass collector.Emit to AllPairs and read
// Pairs afterwards. The paper's use cases (near-duplicate detection,
// query refinement) consume exactly this reduction rather than the full
// quadratic output.
type TopK struct {
	k  int
	mu sync.Mutex
	h  pairHeap
}

// NewTopK returns a collector for the k best pairs (k > 0).
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("jaccard: k must be positive")
	}
	return &TopK{k: k}
}

// Emit implements the AllPairs callback; safe for concurrent use.
func (t *TopK) Emit(i, j int32, sim float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.h) < t.k {
		heap.Push(&t.h, Pair{i, j, sim})
		return
	}
	if sim > t.h[0].Similarity {
		t.h[0] = Pair{i, j, sim}
		heap.Fix(&t.h, 0)
	}
}

// Pairs returns the collected pairs, most similar first (ties broken by
// vertex ids for determinism).
func (t *TopK) Pairs() []Pair {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Pair(nil), t.h...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// ShardedTopK collects the K most similar pairs without any locking:
// each worker pushes into its own heap (AllPairsWorker guarantees calls
// with one worker index never overlap) and Pairs merges the shards once
// at the end. It is the contention-free counterpart of TopK, whose
// global mutex serializes every emit; tests keep TopK as the oracle.
type ShardedTopK struct {
	k      int
	shards []pairHeap
}

// NewShardedTopK returns a lock-free collector for the k best pairs
// across `workers` emit shards (both must be positive; size workers with
// parallel.Workers(threads) to match the AllPairsWorker run).
func NewShardedTopK(k, workers int) *ShardedTopK {
	if k <= 0 {
		panic("jaccard: k must be positive")
	}
	if workers <= 0 {
		panic("jaccard: workers must be positive")
	}
	return &ShardedTopK{k: k, shards: make([]pairHeap, workers)}
}

// Emit implements the AllPairsWorker callback. It touches only the
// calling worker's shard, so no synchronization is needed.
func (t *ShardedTopK) Emit(w int, i, j int32, sim float64) {
	h := &t.shards[w]
	if len(*h) < t.k {
		heap.Push(h, Pair{i, j, sim})
		return
	}
	if sim > (*h)[0].Similarity {
		(*h)[0] = Pair{i, j, sim}
		heap.Fix(h, 0)
	}
}

// Pairs merges the shards and returns the k best pairs, most similar
// first (ties broken by vertex ids for determinism). Call only after
// the AllPairsWorker run has returned.
func (t *ShardedTopK) Pairs() []Pair {
	var out []Pair
	for _, h := range t.shards {
		out = append(out, h...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	if len(out) > t.k {
		out = out[:t.k]
	}
	return out
}

// pairHeap is a min-heap on similarity, so the root is the weakest of
// the current top K.
type pairHeap []Pair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].Similarity < h[j].Similarity }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(Pair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
