package jaccard

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func benchGraph() *graph.CSR {
	cfg := graph.DefaultRMAT(12, 1)
	cfg.EdgeFactor = 8
	cfg.Undirected = true
	return graph.RMAT(cfg)
}

func BenchmarkAllPairsTeam(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := AllPairs(g, 4, nil); st.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

// allPairsSpawn is the pre-team kernel: per-call worker spawn fed by an
// unbuffered block channel. Baseline only.
func allPairsSpawn(g *graph.CSR, workers int) int64 {
	var pairs int64
	var wg sync.WaitGroup
	const blockSize = 256
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := make([]int32, g.Rows)
			touched := make([]int32, 0, 4096)
			var local int64
			for blk := range work {
				lo := blk * blockSize
				hi := lo + blockSize
				if hi > g.Rows {
					hi = g.Rows
				}
				for i := lo; i < hi; i++ {
					ni, _ := g.Row(i)
					for _, u := range ni {
						nu, _ := g.Row(int(u))
						for _, j := range nu {
							if int(j) <= i {
								continue
							}
							if counts[j] == 0 {
								touched = append(touched, j)
							}
							counts[j]++
						}
					}
					for _, j := range touched {
						counts[j] = 0
						local++
					}
					touched = touched[:0]
				}
			}
			atomic.AddInt64(&pairs, local)
		}()
	}
	blocks := (g.Rows + blockSize - 1) / blockSize
	for blk := 0; blk < blocks; blk++ {
		work <- blk
	}
	close(work)
	wg.Wait()
	return pairs
}

func BenchmarkAllPairsSpawnBaseline(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if allPairsSpawn(g, 4) == 0 {
			b.Fatal("no pairs")
		}
	}
}

// Emit-path benchmarks: the mutex TopK serializes every emit; the
// sharded collector touches only worker-local state.

func benchPairs(n int) []Pair {
	r := rng.New(7)
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{int32(i), int32(i + 1), r.Float64()}
	}
	return ps
}

func BenchmarkTopKEmitMutex(b *testing.B) {
	ps := benchPairs(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := NewTopK(100)
		for _, p := range ps {
			tk.Emit(p.I, p.J, p.Similarity)
		}
	}
}

func BenchmarkTopKEmitSharded(b *testing.B) {
	ps := benchPairs(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := NewShardedTopK(100, 4)
		for k, p := range ps {
			tk.Emit(k&3, p.I, p.J, p.Similarity)
		}
		if len(tk.Pairs()) != 100 {
			b.Fatal("bad merge")
		}
	}
}

func BenchmarkAllPairsTopKMutex(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := NewTopK(100)
		AllPairs(g, 4, tk.Emit)
	}
}

func BenchmarkAllPairsTopKSharded(b *testing.B) {
	g := benchGraph()
	workers := parallel.Workers(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := NewShardedTopK(100, workers)
		AllPairsWorker(g, 4, tk.Emit)
	}
}
