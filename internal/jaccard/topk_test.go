package jaccard

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestTopKSelectsBest(t *testing.T) {
	tk := NewTopK(3)
	sims := []float64{0.1, 0.9, 0.5, 0.7, 0.3, 0.8}
	for i, s := range sims {
		tk.Emit(int32(i), int32(i+100), s)
	}
	got := tk.Pairs()
	if len(got) != 3 {
		t.Fatalf("got %d pairs", len(got))
	}
	want := []float64{0.9, 0.8, 0.7}
	for i := range want {
		if got[i].Similarity != want[i] {
			t.Errorf("pair %d similarity = %v, want %v", i, got[i].Similarity, want[i])
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Emit(1, 2, 0.5)
	if got := tk.Pairs(); len(got) != 1 || got[0].I != 1 {
		t.Errorf("pairs = %v", got)
	}
}

func TestTopKWithAllPairs(t *testing.T) {
	cfg := graph.DefaultRMAT(9, 11)
	cfg.Undirected = true
	g := graph.RMAT(cfg)

	const k = 25
	tk := NewTopK(k)
	AllPairs(g, 8, tk.Emit)
	top := tk.Pairs()
	if len(top) != k {
		t.Fatalf("collected %d pairs", len(top))
	}
	// Oracle: gather everything and sort.
	var all []Pair
	var mu sync.Mutex
	AllPairs(g, 4, func(i, j int32, s float64) {
		mu.Lock()
		all = append(all, Pair{i, j, s})
		mu.Unlock()
	})
	sort.Slice(all, func(a, b int) bool { return all[a].Similarity > all[b].Similarity })
	// The collected set must match the best K similarities (pairs with
	// equal similarity may differ).
	for i := 0; i < k; i++ {
		if top[i].Similarity != all[i].Similarity {
			t.Fatalf("rank %d: got %v, oracle %v", i, top[i].Similarity, all[i].Similarity)
		}
	}
	// And every collected pair must verify against the exact oracle.
	for _, p := range top {
		if got := Exact(g, int(p.I), int(p.J)); got != p.Similarity {
			t.Fatalf("pair (%d,%d): stored %v, exact %v", p.I, p.J, p.Similarity, got)
		}
	}
}

func TestTopKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	NewTopK(0)
}
