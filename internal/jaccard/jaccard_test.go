package jaccard

import (
	"math"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/units"
)

// path builds the path graph 0-1-2-...-(n-1) as a symmetric CSR.
func path(n int) *graph.CSR {
	coo := &graph.COO{Rows: n, Cols: n}
	for i := 0; i < n-1; i++ {
		coo.Append(int32(i), int32(i+1), 1)
		coo.Append(int32(i+1), int32(i), 1)
	}
	return graph.FromCOO(coo)
}

// triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
func triangleWithTail() *graph.CSR {
	coo := &graph.COO{Rows: 4, Cols: 4}
	add := func(a, b int32) {
		coo.Append(a, b, 1)
		coo.Append(b, a, 1)
	}
	add(0, 1)
	add(1, 2)
	add(2, 0)
	add(2, 3)
	return graph.FromCOO(coo)
}

func collect(g *graph.CSR, threads int) map[[2]int32]float64 {
	var mu sync.Mutex
	out := map[[2]int32]float64{}
	AllPairs(g, threads, func(i, j int32, s float64) {
		mu.Lock()
		out[[2]int32{i, j}] = s
		mu.Unlock()
	})
	return out
}

func TestTriangleWithTail(t *testing.T) {
	g := triangleWithTail()
	got := collect(g, 2)
	// N(0)={1,2}, N(1)={0,2}, N(2)={0,1,3}, N(3)={2}.
	want := map[[2]int32]float64{
		{0, 1}: 1.0 / 3, // common {2}, union {0,1,2}
		{0, 2}: 1.0 / 4, // common {1}, union {0,1,2,3}
		{0, 3}: 1.0 / 2, // common {2}, union {1,2}... N(0)={1,2}, N(3)={2}: inter 1, union 2
		{1, 2}: 1.0 / 4,
		{1, 3}: 1.0 / 2,
	}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-12 {
			t.Errorf("J(%d,%d) = %v, want %v", k[0], k[1], got[k], v)
		}
	}
}

func TestPathGraph(t *testing.T) {
	// In a path, i and i+2 share exactly one neighbor; adjacent vertices
	// share none (no triangles).
	g := path(10)
	got := collect(g, 4)
	for k := range got {
		if k[1]-k[0] != 2 {
			t.Errorf("unexpected similar pair (%d,%d)", k[0], k[1])
		}
	}
	if len(got) != 8 {
		t.Errorf("pairs = %d, want 8", len(got))
	}
}

func TestMatchesExactOracle(t *testing.T) {
	cfg := graph.DefaultRMAT(9, 17)
	cfg.Undirected = true
	g := graph.RMAT(cfg)
	got := collect(g, 8)
	for k, v := range got {
		if want := Exact(g, int(k[0]), int(k[1])); math.Abs(v-want) > 1e-12 {
			t.Fatalf("J(%d,%d) = %v, oracle %v", k[0], k[1], v, want)
		}
	}
	// Every emitted pair must actually intersect.
	for k := range got {
		if Exact(g, int(k[0]), int(k[1])) == 0 {
			t.Fatalf("pair (%d,%d) has empty intersection", k[0], k[1])
		}
	}
}

func TestCountOnlyMatchesEmit(t *testing.T) {
	cfg := graph.DefaultRMAT(8, 23)
	cfg.Undirected = true
	g := graph.RMAT(cfg)
	st := AllPairs(g, 4, nil)
	emitted := collect(g, 4)
	if st.Pairs != int64(len(emitted)) {
		t.Errorf("count-only pairs %d, emit pairs %d", st.Pairs, len(emitted))
	}
	if st.OutputBytes != units.Bytes(st.Pairs*PairBytes) {
		t.Errorf("output bytes %v for %d pairs", st.OutputBytes, st.Pairs)
	}
}

func TestThreadCountInvariance(t *testing.T) {
	cfg := graph.DefaultRMAT(8, 5)
	cfg.Undirected = true
	g := graph.RMAT(cfg)
	one := AllPairs(g, 1, nil)
	many := AllPairs(g, 8, nil)
	if one.Pairs != many.Pairs {
		t.Errorf("pairs differ by thread count: %d vs %d", one.Pairs, many.Pairs)
	}
}

// TestOutputExceedsInput reproduces the Figure 10 observation: the
// all-pairs output dwarfs the input graph.
func TestOutputExceedsInput(t *testing.T) {
	cfg := graph.DefaultRMAT(12, 1)
	cfg.Undirected = true
	g := graph.RMAT(cfg)
	st := AllPairs(g, 0, nil)
	if int64(st.OutputBytes) <= int64(st.InputBytes()) {
		t.Errorf("output %v not larger than input %v", st.OutputBytes, st.InputBytes())
	}
	if st.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestPanicsOnRectangular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rectangular matrix did not panic")
		}
	}()
	coo := &graph.COO{Rows: 2, Cols: 3}
	coo.Append(0, 2, 1)
	AllPairs(graph.FromCOO(coo), 1, nil)
}

func TestExactDisjoint(t *testing.T) {
	g := path(4)
	if Exact(g, 0, 1) != 0 {
		t.Error("adjacent path vertices should have zero similarity")
	}
}
