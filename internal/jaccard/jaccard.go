// Package jaccard implements the all-pairs Jaccard similarity kernel of
// Section V-A: for an undirected graph, the similarity of every vertex
// pair that shares at least one neighbor, J(i,j) = |N(i) n N(j)| /
// |N(i) u N(j)|. The paper computes it as a sparse matrix product
// (squaring the adjacency matrix); this implementation uses the
// equivalent locality-aware blocked two-hop expansion with per-worker
// sparse accumulators, which is how such masked products are evaluated
// row-block by row-block.
//
// The headline system observation reproduced here is Figure 10: the
// output (all similar pairs) is vastly larger than the input graph, which
// is why the kernel demands the memory capacity of a large SMP.
package jaccard

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/units"
)

// PairBytes is the memory footprint of one output pair: two vertex ids
// and the similarity (4 + 4 + 8 bytes).
const PairBytes = 16

// Stats summarizes an all-pairs run.
type Stats struct {
	Vertices    int
	InputEdges  int64 // directed edge slots in the CSR (2x undirected edges)
	Pairs       int64 // unordered similar pairs found
	OutputBytes units.Bytes
	Elapsed     time.Duration
}

// InputBytes returns the CSR footprint of the input graph.
func (s Stats) InputBytes() units.Bytes {
	return units.Bytes(s.InputEdges*12 + int64(s.Vertices+1)*8)
}

// Emit receives one similar pair with i < j. Emit implementations must be
// safe for concurrent use; AllPairs calls it from multiple workers.
type Emit func(i, j int32, similarity float64)

// EmitWorker is Emit with the worker index (0-based, below
// parallel.Workers(threads)) of the calling worker. Collectors such as
// ShardedTopK use it to keep contention-free per-worker state; calls
// with the same worker index never overlap.
type EmitWorker func(worker int, i, j int32, similarity float64)

// AllPairs computes the Jaccard similarity of every pair of vertices with
// a common neighbor. The graph must be undirected (a symmetric adjacency
// matrix, as produced by graph.RMAT with Undirected set). A nil emit
// counts pairs without materializing them, which is how the large-scale
// footprint sweeps run.
func AllPairs(g *graph.CSR, threads int, emit Emit) Stats {
	var ew EmitWorker
	if emit != nil {
		ew = func(_ int, i, j int32, s float64) { emit(i, j, s) }
	}
	return AllPairsWorker(g, threads, ew)
}

// AllPairsWorker is AllPairs with a worker-indexed emit. Row blocks are
// dynamically scheduled on the persistent worker team: hub vertices of a
// scale-free graph make some blocks orders of magnitude heavier than
// others, and pulling from the shared cursor rebalances them.
func AllPairsWorker(g *graph.CSR, threads int, emit EmitWorker) Stats {
	if g.Rows != g.Cols {
		panic(fmt.Sprintf("jaccard: adjacency matrix must be square, got %dx%d", g.Rows, g.Cols))
	}
	start := time.Now()
	workers := parallel.Workers(threads)
	const blockSize = 256 // source vertices per scheduling chunk
	// Per-worker scratch, allocated lazily on first use by each worker
	// and reused across that worker's chunks.
	type scratch struct {
		counts  []int32
		touched []int32
		pairs   int64
	}
	scratches := make([]scratch, workers)
	parallel.ForWorker(workers, g.Rows, blockSize, func(w, lo, hi int) {
		s := &scratches[w]
		if s.counts == nil {
			s.counts = make([]int32, g.Rows)
			s.touched = make([]int32, 0, 4096)
		}
		counts, touched := s.counts, s.touched
		var local int64
		for i := lo; i < hi; i++ {
			ni, _ := g.Row(i)
			// Two-hop expansion: every j > i reachable in two
			// steps shares at least one neighbor with i.
			for _, u := range ni {
				nu, _ := g.Row(int(u))
				for _, j := range nu {
					if int(j) <= i {
						continue
					}
					if counts[j] == 0 {
						touched = append(touched, j)
					}
					counts[j]++
				}
			}
			di := len(ni)
			if emit != nil {
				for _, j := range touched {
					c := counts[j]
					counts[j] = 0
					union := di + g.Degree(int(j)) - int(c)
					emit(w, int32(i), j, float64(c)/float64(union))
				}
			} else {
				// Counting-only mode (footprint sweeps): skip the
				// degree lookup and division entirely.
				for _, j := range touched {
					counts[j] = 0
				}
			}
			local += int64(len(touched))
			touched = touched[:0]
		}
		s.touched = touched[:0]
		s.pairs += local
	})
	var pairs int64
	for w := range scratches {
		pairs += scratches[w].pairs
	}
	return Stats{
		Vertices:    g.Rows,
		InputEdges:  g.NNZ(),
		Pairs:       pairs,
		OutputBytes: units.Bytes(pairs) * PairBytes,
		Elapsed:     time.Since(start),
	}
}

// Exact computes J(i,j) for one pair by sorted-list intersection — the
// oracle the tests validate AllPairs against.
func Exact(g *graph.CSR, i, j int) float64 {
	a, _ := g.Row(i)
	b, _ := g.Row(j)
	var inter int
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			inter++
			x++
			y++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
