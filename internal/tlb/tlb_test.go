package tlb

import (
	"testing"

	"repro/internal/arch"
)

func spec() arch.TranslationSpec { return arch.E870().Xlate }

func TestColdMissThenHits(t *testing.T) {
	x := New(spec(), arch.Page64K)
	if got := x.Translate(0); got != TLBMiss {
		t.Errorf("cold translate = %v, want TLB miss", got)
	}
	if got := x.Translate(128); got != ERATHit {
		t.Errorf("same-granule translate = %v, want ERAT hit", got)
	}
	if got := x.Translate(64 * 1024); got != TLBMiss {
		t.Errorf("new 64K page = %v, want TLB miss", got)
	}
}

func TestHugePageERATGranularity(t *testing.T) {
	x := New(spec(), arch.Page16M)
	x.Translate(0)
	// Same huge page, but a different 64 KiB ERAT granule: must be an
	// ERAT miss (refilled from the TLB), not a full TLB miss.
	if got := x.Translate(64 * 1024); got != ERATMiss {
		t.Errorf("different granule, same page = %v, want ERAT miss", got)
	}
	// Same granule again: ERAT hit.
	if got := x.Translate(64*1024 + 4096); got != ERATHit {
		t.Errorf("same granule = %v, want ERAT hit", got)
	}
}

// TestERATReachBoundary verifies the Figure 2 spike mechanism: with huge
// pages, working sets beyond 3 MiB (48 x 64 KiB) start missing the ERAT
// while still hitting the TLB.
func TestERATReachBoundary(t *testing.T) {
	x := New(spec(), arch.Page16M)
	const granule = 64 * 1024
	// Touch 96 granules (6 MiB) round-robin, twice the ERAT reach.
	for lap := 0; lap < 3; lap++ {
		for g := 0; g < 96; g++ {
			x.Translate(uint64(g) * granule)
		}
	}
	eratHit, eratMiss, tlbMiss := x.Counts()
	if eratMiss == 0 {
		t.Error("no ERAT misses over a 2x-reach working set")
	}
	// All 96 granules live in a single 16 MiB page: at most one TLB miss.
	if tlbMiss != 1 {
		t.Errorf("TLB misses = %d, want 1 (single huge page)", tlbMiss)
	}
	_ = eratHit
}

// TestSmallWorkingSetAllERATHits verifies no spike below the reach.
func TestSmallWorkingSetAllERATHits(t *testing.T) {
	x := New(spec(), arch.Page16M)
	const granule = 64 * 1024
	for g := 0; g < 24; g++ { // 1.5 MiB, half the reach
		x.Translate(uint64(g) * granule)
	}
	before, _, _ := x.Counts()
	_ = before
	for lap := 0; lap < 5; lap++ {
		for g := 0; g < 24; g++ {
			if got := x.Translate(uint64(g) * granule); got != ERATHit {
				t.Fatalf("lap %d granule %d: %v, want ERAT hit", lap, g, got)
			}
		}
	}
}

// TestTLBReach64K verifies that 64 KiB pages exhaust the 2048-entry TLB
// beyond 128 MiB, the mechanism behind the Figure 2 red curve's rise at
// large working sets.
func TestTLBReach64K(t *testing.T) {
	x := New(spec(), arch.Page64K)
	const page = 64 * 1024
	const pages = 4096 // 256 MiB, twice the TLB reach
	for lap := 0; lap < 2; lap++ {
		for p := 0; p < pages; p++ {
			x.Translate(uint64(p) * page)
		}
	}
	_, _, tlbMiss := x.Counts()
	// Second lap must keep missing: sequential sweep over 2x capacity
	// with LRU evicts every entry before reuse.
	if tlbMiss < pages+pages/2 {
		t.Errorf("TLB misses = %d, want nearly 2x%d", tlbMiss, pages)
	}
}

func TestFlush(t *testing.T) {
	x := New(spec(), arch.Page64K)
	x.Translate(0)
	x.Flush()
	h, m, tm := x.Counts()
	if h+m+tm != 0 {
		t.Error("Flush did not clear counters")
	}
	if got := x.Translate(0); got != TLBMiss {
		t.Errorf("post-flush translate = %v, want TLB miss", got)
	}
}

func TestTinyPageGranuleCap(t *testing.T) {
	// A hypothetical 4 KiB page must cap the ERAT granule at the page
	// size so granules never span pages.
	x := New(arch.TranslationSpec{ERATEntries: 48, ERATGranule: 64 * 1024, TLBEntries: 2048}, arch.PageSize(4096))
	x.Translate(0)
	if got := x.Translate(4096); got == ERATHit {
		t.Error("adjacent 4K page hit the ERAT; granule not capped at page size")
	}
}

func TestOutcomeString(t *testing.T) {
	if ERATHit.String() != "ERAT-hit" || ERATMiss.String() != "ERAT-miss" || TLBMiss.String() != "TLB-miss" {
		t.Error("Outcome strings wrong")
	}
}

func TestBadERATEntriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-multiple-of-8 ERATEntries did not panic")
		}
	}()
	New(arch.TranslationSpec{ERATEntries: 50, ERATGranule: 65536, TLBEntries: 2048}, arch.Page64K)
}
