// Package tlb models POWER8 address translation for the latency
// experiments: a first-level ERAT that caches translations at a fixed
// 64 KiB granule regardless of the page size, backed by a TLB holding
// full-page entries. The fixed ERAT granule is what produces the Figure 2
// latency spike at a 3 MiB working set when 16 MiB huge pages are used
// (48 entries x 64 KiB = 3 MiB of reach), while the huge-page TLB reach is
// effectively unbounded for the measured working sets.
package tlb

import (
	"math/bits"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/units"
)

// Outcome classifies a translation.
type Outcome int

// Translation outcomes in increasing cost: ERAT hit (free), ERAT miss that
// hits the TLB, and a full TLB miss requiring a hardware table walk.
const (
	ERATHit Outcome = iota
	ERATMiss
	TLBMiss
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case ERATHit:
		return "ERAT-hit"
	case ERATMiss:
		return "ERAT-miss"
	default:
		return "TLB-miss"
	}
}

// TLB is the two-level translation model for one hardware thread.
type TLB struct {
	erat *cache.SetAssoc
	tlb  *cache.SetAssoc

	counts [3]uint64
}

// New builds a translation model for the given hardware spec and page
// size. The ERAT granule is capped at the page size (tiny pages would
// otherwise alias multiple pages into one granule entry).
func New(spec arch.TranslationSpec, page arch.PageSize) *TLB {
	granule := spec.ERATGranule
	if units.Bytes(page) < granule {
		granule = units.Bytes(page)
	}
	eratShift := uint(bits.TrailingZeros64(uint64(granule)))
	pageShift := uint(bits.TrailingZeros64(uint64(page)))
	// Eight sets for the ERAT (ways = entries/8, preserving the exact
	// reach that sets the Figure 2 spike position), 8-way for the TLB;
	// reach, not associativity, drives the behaviour the paper measures.
	if spec.ERATEntries%8 != 0 || spec.ERATEntries <= 0 {
		panic("tlb: ERATEntries must be a positive multiple of 8")
	}
	tlbSets := nextPow2(spec.TLBEntries / 8)
	return &TLB{
		erat: cache.NewRaw(8, spec.ERATEntries/8, eratShift),
		tlb:  cache.NewRaw(tlbSets, 8, pageShift),
	}
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Translate looks up addr, updating both levels' contents, and returns
// where the translation was found.
func (t *TLB) Translate(addr uint64) Outcome {
	out := TLBMiss
	switch {
	case t.erat.Lookup(addr):
		out = ERATHit
	case t.tlb.Lookup(addr):
		out = ERATMiss
		t.erat.Insert(addr)
	default:
		t.tlb.Insert(addr)
		t.erat.Insert(addr)
	}
	t.counts[out]++
	return out
}

// Counts returns per-outcome totals since construction or Flush.
func (t *TLB) Counts() (eratHit, eratMiss, tlbMiss uint64) {
	return t.counts[ERATHit], t.counts[ERATMiss], t.counts[TLBMiss]
}

// Flush empties both levels and clears counters.
func (t *TLB) Flush() {
	t.erat.Flush()
	t.tlb.Flush()
	t.counts = [3]uint64{}
}
