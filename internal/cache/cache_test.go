package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func lineAddr(n int) uint64 { return uint64(n) * 128 }

func TestLookupMissThenHit(t *testing.T) {
	c := NewRaw(4, 2, 7)
	if c.Lookup(lineAddr(1)) {
		t.Error("cold lookup hit")
	}
	c.Insert(lineAddr(1))
	if !c.Lookup(lineAddr(1)) {
		t.Error("inserted line missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewRaw(1, 2, 7) // one set, two ways
	c.Insert(lineAddr(1))
	c.Insert(lineAddr(2))
	c.Lookup(lineAddr(1)) // make line 2 the LRU
	victim, evicted := c.Insert(lineAddr(3))
	if !evicted || victim != lineAddr(2) {
		t.Errorf("evicted %v (%d), want line 2", evicted, victim)
	}
	if !c.Contains(lineAddr(1)) || c.Contains(lineAddr(2)) || !c.Contains(lineAddr(3)) {
		t.Error("post-eviction contents wrong")
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	c := NewRaw(1, 2, 7)
	c.Insert(lineAddr(1))
	c.Insert(lineAddr(2))
	c.Insert(lineAddr(1)) // refresh, no eviction
	victim, evicted := c.Insert(lineAddr(3))
	if !evicted || victim != lineAddr(2) {
		t.Errorf("refresh did not update LRU: evicted line %d", victim/128)
	}
}

func TestInsertPrefersEmptyWay(t *testing.T) {
	c := NewRaw(1, 4, 7)
	c.Insert(lineAddr(1))
	if _, evicted := c.Insert(lineAddr(2)); evicted {
		t.Error("eviction with empty ways available")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewRaw(2, 2, 7)
	c.Insert(lineAddr(4))
	if !c.Invalidate(lineAddr(4)) {
		t.Error("Invalidate missed present line")
	}
	if c.Invalidate(lineAddr(4)) {
		t.Error("Invalidate hit absent line")
	}
	if c.Contains(lineAddr(4)) {
		t.Error("line still present after invalidate")
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	c := NewRaw(7, 2, 7)
	// Insert more lines than capacity; everything must remain findable
	// immediately after its own insert and set mapping must be stable.
	for i := 0; i < 100; i++ {
		c.Insert(lineAddr(i))
		if !c.Contains(lineAddr(i)) {
			t.Fatalf("line %d not present immediately after insert", i)
		}
	}
}

func TestCapacityRespected(t *testing.T) {
	f := func(nLines uint8) bool {
		c := NewRaw(4, 2, 7)
		for i := 0; i < int(nLines); i++ {
			c.Insert(lineAddr(i))
		}
		resident := 0
		for i := 0; i < int(nLines); i++ {
			if c.Contains(lineAddr(i)) {
				resident++
			}
		}
		return resident <= c.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlush(t *testing.T) {
	c := NewRaw(2, 2, 7)
	c.Insert(lineAddr(1))
	c.Lookup(lineAddr(1))
	c.Flush()
	if c.Contains(lineAddr(1)) || c.Hits() != 0 || c.Misses() != 0 {
		t.Error("Flush incomplete")
	}
}

func TestNewFromGeometry(t *testing.T) {
	g := arch.CacheGeom{Size: 64 * 1024, LineSize: 128, Assoc: 8}
	c := New(g)
	if c.Sets() != 64 || c.Ways() != 8 || c.Capacity() != 512 {
		t.Errorf("geometry: sets=%d ways=%d", c.Sets(), c.Ways())
	}
}

func TestNewRawPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRaw(0, 1, 7) },
		func() { NewRaw(1, 0, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func newTestHierarchy() *Hierarchy {
	return NewHierarchy(arch.POWER8(8, 4.35), arch.Centaur(), 8)
}

func TestHierarchyLevels(t *testing.T) {
	h := newTestHierarchy()
	addr := uint64(1 << 30)
	if got := h.Read(addr, true); got != LevelDRAM {
		t.Errorf("cold read = %v, want DRAM", got)
	}
	if got := h.Read(addr, true); got != LevelL1 {
		t.Errorf("second read = %v, want L1", got)
	}
}

func TestHierarchyL4MemorySide(t *testing.T) {
	h := newTestHierarchy()
	addr := uint64(1 << 30)
	h.Read(addr, true) // DRAM -> fills L4
	// Evict from core caches by invalidating directly.
	h.L1.Invalidate(addr)
	h.L2.Invalidate(addr)
	if got := h.Read(addr, true); got != LevelL4 {
		t.Errorf("read after core eviction = %v, want L4", got)
	}
}

func TestHierarchyRemoteHomeSkipsL4(t *testing.T) {
	h := newTestHierarchy()
	addr := uint64(1 << 30)
	h.Read(addr, false)
	h.L1.Invalidate(addr)
	h.L2.Invalidate(addr)
	if got := h.Read(addr, false); got != LevelDRAM {
		t.Errorf("remote-homed line hit %v, want DRAM (no local L4 fill)", got)
	}
}

// TestHierarchyWorkingSetPlateaus checks that growing working sets land in
// the expected level, mirroring the Figure 2 plateaus.
func TestHierarchyWorkingSetPlateaus(t *testing.T) {
	cases := []struct {
		lines     int
		wantLevel Level
	}{
		{256, LevelL1},          // 32 KiB
		{2048, LevelL2},         // 256 KiB
		{16384, LevelL3},        // 2 MiB
		{262144, LevelL3Remote}, // 32 MiB: beyond 8 MiB local L3, within 64 MiB chip L3
	}
	for _, c := range cases {
		h := newTestHierarchy()
		for i := 0; i < c.lines; i++ { // warm pass
			h.Read(lineAddr(i), true)
		}
		counts := map[Level]uint64{}
		for i := 0; i < c.lines; i++ { // measured pass
			counts[h.Read(lineAddr(i), true)]++
		}
		dominant, best := LevelDRAM, uint64(0)
		for l, n := range counts {
			if n > best {
				dominant, best = l, n
			}
		}
		if dominant != c.wantLevel {
			t.Errorf("working set %d lines: dominant level %v (counts %v), want %v",
				c.lines, dominant, counts, c.wantLevel)
		}
	}
}

func TestHierarchyInstallMakesL1Hit(t *testing.T) {
	h := newTestHierarchy()
	addr := uint64(4096)
	h.Install(addr)
	if got := h.Read(addr, true); got != LevelL1 {
		t.Errorf("read after Install = %v, want L1", got)
	}
}

func TestHierarchyContainsAny(t *testing.T) {
	h := newTestHierarchy()
	addr := uint64(8192)
	if h.ContainsAny(addr) {
		t.Error("empty hierarchy contains line")
	}
	h.Install(addr)
	if !h.ContainsAny(addr) {
		t.Error("installed line not found")
	}
}

func TestHierarchyCounters(t *testing.T) {
	h := newTestHierarchy()
	h.Read(0, true)
	h.Read(0, true)
	if h.Reads() != 2 {
		t.Errorf("Reads = %d", h.Reads())
	}
	lc := h.LevelCounts()
	if lc[LevelDRAM] != 1 || lc[LevelL1] != 1 {
		t.Errorf("LevelCounts = %v", lc)
	}
	h.Flush()
	if h.Reads() != 0 {
		t.Error("Flush did not clear counters")
	}
}

func TestLevelString(t *testing.T) {
	want := map[Level]string{
		LevelL1: "L1", LevelL2: "L2", LevelL3: "L3",
		LevelL3Remote: "L3-remote", LevelL4: "L4", LevelDRAM: "DRAM",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("Level %d String = %q, want %q", int(l), l.String(), s)
		}
	}
}
