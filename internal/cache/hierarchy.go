package cache

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/units"
)

// Level identifies where in the hierarchy a read was satisfied.
type Level int

// Hierarchy levels in increasing distance from the core. L3Remote is a hit
// in another core's L3 region on the same chip (the NUCA/victim behaviour
// of Section II-A); L4 is the Centaur eDRAM.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelL3Remote
	LevelL4
	LevelDRAM
	numLevels
)

// NumLevels is the number of distinct Level values; Level values are the
// integers [0, NumLevels), so callers can index fixed-size arrays by
// Level instead of paying for a map on hot paths.
const NumLevels = int(numLevels)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelL3Remote:
		return "L3-remote"
	case LevelL4:
		return "L4"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Hierarchy models the caches one hardware thread sees on a POWER8 chip:
// its core's L1/L2, the core's local 8 MiB L3 region, the remaining cores'
// L3 regions acting as a victim cache, and the chip's Centaur L4. Stores
// are not modelled separately here — the latency experiments in the paper
// are read benchmarks; store bandwidth is handled by the analytic solver.
type Hierarchy struct {
	L1       *SetAssoc
	L2       *SetAssoc
	L3Local  *SetAssoc
	L3Victim *SetAssoc
	L4       *SetAssoc

	// DisableVictim turns off the NUCA lateral-castout behaviour: local
	// L3 evictions are dropped instead of spilling into the other cores'
	// regions. Used by the ablation studies to quantify what the
	// paper's "each L3 also serving requests for other cores" design is
	// worth.
	DisableVictim bool

	counts [numLevels]uint64
}

// NewHierarchy builds the hierarchy for one core of chip, backed by the
// chip-wide victim L3 (the other cores' regions) and the chip's aggregate
// L4 built from centaurs Centaur chips.
func NewHierarchy(chip arch.ChipSpec, centaur arch.CentaurSpec, centaurs int) *Hierarchy {
	victim := chip.L3PerCore
	victim.Size = victim.Size * units.Bytes(chip.Cores-1)
	l4 := arch.CacheGeom{
		Size:     centaur.L4Size * units.Bytes(centaurs),
		LineSize: chip.L3PerCore.LineSize,
		Assoc:    16,
	}
	return &Hierarchy{
		L1:       New(chip.L1D),
		L2:       New(chip.L2),
		L3Local:  New(chip.L3PerCore),
		L3Victim: New(victim),
		L4:       New(l4),
	}
}

// Read walks a demand load through the hierarchy, returning the level that
// supplied the line, and updates contents along the fill path: the line is
// installed in L1 and L2; L2 castouts fall into the local L3; local-L3
// victims spill to the on-chip victim L3; DRAM fills also populate the
// memory-side L4 when l4Homed is true (the L4 caches only the DRAM behind
// this chip's own Centaurs).
func (h *Hierarchy) Read(addr uint64, l4Homed bool) Level {
	level := h.lookup(addr, l4Homed)
	h.fill(addr, level, l4Homed)
	h.counts[level]++
	return level
}

func (h *Hierarchy) lookup(addr uint64, l4Homed bool) Level {
	switch {
	case h.L1.Lookup(addr):
		return LevelL1
	case h.L2.Lookup(addr):
		return LevelL2
	case h.L3Local.Lookup(addr):
		// Victim semantics: a hit promotes the line back toward the core
		// and removes it from L3.
		h.L3Local.Invalidate(addr)
		return LevelL3
	case !h.DisableVictim && h.L3Victim.Lookup(addr):
		h.L3Victim.Invalidate(addr)
		return LevelL3Remote
	case l4Homed && h.L4.Lookup(addr):
		return LevelL4
	default:
		return LevelDRAM
	}
}

func (h *Hierarchy) fill(addr uint64, level Level, l4Homed bool) {
	if level == LevelDRAM && l4Homed {
		// Memory-side fill: the Centaur caches lines read from its DRAM.
		h.L4.Insert(addr)
	}
	if level != LevelL1 {
		h.L1.Insert(addr)
		if cast, ok := h.L2.Insert(addr); ok {
			if spill, ok := h.L3Local.Insert(cast); ok && !h.DisableVictim {
				h.L3Victim.Insert(spill)
			}
		}
	}
}

// Install places a line into L1/L2 without recording a demand read,
// modelling a completed hardware prefetch. Castouts propagate as in fill.
func (h *Hierarchy) Install(addr uint64) {
	h.L1.Insert(addr)
	if cast, ok := h.L2.Insert(addr); ok {
		if spill, ok := h.L3Local.Insert(cast); ok && !h.DisableVictim {
			h.L3Victim.Insert(spill)
		}
	}
}

// ContainsAny reports whether any core-side level (L1..victim L3) holds
// the line; the prefetch engine skips lines that are already resident.
func (h *Hierarchy) ContainsAny(addr uint64) bool {
	return h.L1.Contains(addr) || h.L2.Contains(addr) ||
		h.L3Local.Contains(addr) || h.L3Victim.Contains(addr)
}

// LevelCounts returns how many reads each level satisfied.
func (h *Hierarchy) LevelCounts() map[Level]uint64 {
	m := make(map[Level]uint64, int(numLevels))
	for l, n := range h.counts {
		if n > 0 {
			m[Level(l)] = n
		}
	}
	return m
}

// Reads returns the total number of Read calls.
func (h *Hierarchy) Reads() uint64 {
	var total uint64
	for _, n := range h.counts {
		total += n
	}
	return total
}

// Flush empties every level and clears statistics.
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
	h.L3Local.Flush()
	h.L3Victim.Flush()
	h.L4.Flush()
	h.counts = [numLevels]uint64{}
}
