// Package cache implements the set-associative cache structures the
// machine model composes into the POWER8 four-level hierarchy: a generic
// LRU set-associative array, plus the Hierarchy type that wires together
// the store-through L1, store-in L2, NUCA victim L3 and the memory-side
// Centaur L4 (Section II-A of the paper).
package cache

import (
	"math/bits"

	"repro/internal/arch"
)

// SetAssoc is a set-associative cache directory with true-LRU replacement.
// It tracks tags only (no data), which is all a performance model needs.
type SetAssoc struct {
	sets      int
	ways      int
	lineShift uint
	setMask   uint64

	// lines[set*ways+way] holds the line number (addr >> lineShift) + 1;
	// zero means invalid. age holds the LRU stamp of the way.
	lines []uint64
	age   []uint64
	stamp uint64

	hits, misses uint64
}

// New builds a cache from a geometry. Size, line size and associativity
// must describe a power-of-two number of sets.
func New(geom arch.CacheGeom) *SetAssoc {
	return NewRaw(geom.Sets(), geom.Assoc, uint(bits.TrailingZeros64(uint64(geom.LineSize))))
}

// NewRaw builds a cache directly from set count, way count and the log2 of
// the indexing granule. Power-of-two set counts index with a mask; other
// counts (e.g. the 7-core victim L3 region) fall back to modulo.
func NewRaw(sets, ways int, lineShift uint) *SetAssoc {
	if sets <= 0 || ways <= 0 {
		panic("cache: sets and ways must be positive")
	}
	c := &SetAssoc{
		sets:      sets,
		ways:      ways,
		lineShift: lineShift,
		lines:     make([]uint64, sets*ways),
		age:       make([]uint64, sets*ways),
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
	}
	return c
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Capacity returns the number of lines the cache can hold.
func (c *SetAssoc) Capacity() int { return c.sets * c.ways }

// Hits returns the number of lookup hits so far.
func (c *SetAssoc) Hits() uint64 { return c.hits }

// Misses returns the number of lookup misses so far.
func (c *SetAssoc) Misses() uint64 { return c.misses }

func (c *SetAssoc) index(addr uint64) (line uint64, base int) {
	line = addr>>c.lineShift + 1 // +1 so zero means invalid
	var set uint64
	if c.setMask != 0 || c.sets == 1 {
		set = (line - 1) & c.setMask
	} else {
		set = (line - 1) % uint64(c.sets)
	}
	return line, int(set) * c.ways
}

// Lookup probes for addr, updating LRU state and hit/miss counters.
func (c *SetAssoc) Lookup(addr uint64) bool {
	line, base := c.index(addr)
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == line {
			c.stamp++
			c.age[base+w] = c.stamp
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains probes for addr without touching LRU state or counters.
func (c *SetAssoc) Contains(addr uint64) bool {
	line, base := c.index(addr)
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == line {
			return true
		}
	}
	return false
}

// Insert places addr's line, evicting the LRU way if the set is full.
// It returns the evicted line's address and whether an eviction occurred.
// Inserting a line that is already present refreshes its LRU position.
func (c *SetAssoc) Insert(addr uint64) (victimAddr uint64, evicted bool) {
	line, base := c.index(addr)
	c.stamp++
	victimWay, victimAge := -1, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		switch {
		case c.lines[base+w] == line:
			c.age[base+w] = c.stamp
			return 0, false
		case c.lines[base+w] == 0:
			// Remember the first empty way; keep scanning in case the
			// line is present in a later way.
			if victimAge != 0 {
				victimWay, victimAge = w, 0
			}
		case c.age[base+w] < victimAge:
			victimWay, victimAge = w, c.age[base+w]
		}
	}
	old := c.lines[base+victimWay]
	c.lines[base+victimWay] = line
	c.age[base+victimWay] = c.stamp
	if old == 0 {
		return 0, false
	}
	return (old - 1) << c.lineShift, true
}

// Invalidate removes addr's line if present, reporting whether it was.
func (c *SetAssoc) Invalidate(addr uint64) bool {
	line, base := c.index(addr)
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == line {
			c.lines[base+w] = 0
			c.age[base+w] = 0
			return true
		}
	}
	return false
}

// ResetStats clears hit/miss counters without touching contents.
func (c *SetAssoc) ResetStats() { c.hits, c.misses = 0, 0 }

// Flush empties the cache and clears statistics.
func (c *SetAssoc) Flush() {
	for i := range c.lines {
		c.lines[i] = 0
		c.age[i] = 0
	}
	c.stamp = 0
	c.ResetStats()
}
